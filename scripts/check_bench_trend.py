#!/usr/bin/env python3
"""Perf-trend regression gate over bench_* JSON records.

Compares the current commit's bench records (bench_smt.json /
bench_parallel.json, arrays of {"metric": ..., "value": ...} -- or
{"metric": ..., "values": [...]} for multi-sample records, aggregated
by mean; a record with zero samples is skipped with a warning, never a
crash) against a baseline set downloaded from the previous
`bench-records-*` artifact on main, and fails on a >threshold relative
drop in any watched higher-is-better metric:

  * smt.incremental_speedup
  * smt.trail_reuse_speedup
  * parallel.speedup/workers=N                 (N in BOTH sweeps)
  * parallel.clause_exchange_speedup/workers=N (N in BOTH sweeps)
  * fig11.core_query_reduction_pct/<section>/workers=N
  * fig11.prune_index_query_reduction_pct/<section>/workers=N
  * fig11.overlay_hit_rate/<section>/workers=N
  * corpus.trojan_yield[/<family>]             (bench_corpus)
  * corpus.portfolio_speedup                   (bench_corpus --portfolio)
  * smt.portfolio_speedup
  * smt.portfolio_win_rate/<class>             (bench_smt --portfolio)
  * warmstart.speedup                          (bench_warmstart)
  * warmstart.query_reduction_pct
  * warmstart.corpus_query_reduction_pct

Lower-is-better metrics invert the comparison: the gate fails on a
>threshold relative RISE instead of a drop. Currently that is
corpus.queries_per_protocol[/<family>] -- solver effort per corpus
protocol creeping up is the regression, not shrinking. Corpus metrics
absent from the baseline (e.g. the artifact predates bench_corpus, or
a new sampled family appeared) follow the one-sided rule and are
skipped -- warn-only by construction.

Sweep matching: a per-worker parallel metric is only compared when both
record sets carry its `parallel.swept/workers=N` marker (bench_parallel
emits one per worker count actually run), so a truncated or widened
sweep never produces a bogus comparison. Baselines that predate the
markers fall back to metric presence. Metrics absent from the baseline
(e.g. fig11.* before the artifact accumulated, or the ablations added
later) are reported one-sided and skipped -- warn-only by construction.

Nested records: {"metric": <name>, "nested": {...}} (the benches'
observability summary) flattens to "<name>.<key>" entries, so flat
lookups and the watch patterns keep working.

Absolute ceilings: some metrics are gated against a fixed bound rather
than the baseline -- obs.overhead_pct (the observability layer's
measured wall-clock cost) must stay under 5%. Ceilings apply to the
current records alone, so they hold even on first runs with no
baseline artifact.

Exit codes: 0 ok / nothing to compare (first run, forks), 1 regression
or ceiling violation (suppressed by --warn-only), 2 usage error.
"""

import argparse
import fnmatch
import json
import pathlib
import sys

WATCHED_PATTERNS = [
    "smt.incremental_speedup",
    "smt.trail_reuse_speedup",
    "parallel.speedup/workers=*",
    "parallel.clause_exchange_speedup/workers=*",
    "fig11.core_query_reduction_pct/*",
    "fig11.prune_index_query_reduction_pct/*",
    "fig11.overlay_hit_rate/*",
    "fig11.batch_query_reduction_pct/*",
    "fig11.prefilter_hit_rate/*",
    "corpus.trojan_yield",
    "corpus.trojan_yield/*",
    "corpus.portfolio_speedup",
    "smt.portfolio_speedup",
    "smt.portfolio_win_rate/*",
    "warmstart.speedup",
    "warmstart.query_reduction_pct",
    "warmstart.corpus_query_reduction_pct",
]
# Watched metrics where a relative RISE beyond the threshold fails.
LOWER_IS_BETTER_PATTERNS = [
    "corpus.queries_per_protocol",
    "corpus.queries_per_protocol/*",
]
# Per-worker metrics gated on the sweep markers both record sets carry.
SWEEP_METRIC_PREFIXES = (
    "parallel.speedup/workers=",
    "parallel.clause_exchange_speedup/workers=",
)
SWEEP_MARKER_PREFIX = "parallel.swept/workers="
# metric -> highest acceptable value, checked against current alone.
CEILING_METRICS = {
    "obs.overhead_pct": 5.0,
}


def record_value(record):
    """Scalar value of one record: its "value", or the mean of its
    "values" samples. Returns None for a zero-sample record (a metric
    that was declared but never measured -- e.g. a truncated sweep's
    flush); the caller skips it instead of dividing by zero."""
    if "values" in record:
        samples = [float(v) for v in record["values"]]
        if not samples:
            return None
        return sum(samples) / len(samples)
    return float(record["value"])


def load_records(paths):
    """Merge {"metric": v} maps from a list of JSON record files."""
    merged = {}
    for path in paths:
        try:
            records = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"trend: unreadable record file {path}: {err}")
            continue
        for record in records:
            try:
                metric = str(record["metric"])
                if "nested" in record:
                    # Observability summary: one object of name -> value
                    # entries, flattened to "<metric>.<name>".
                    for name, value in dict(record["nested"]).items():
                        merged[f"{metric}.{name}"] = float(value)
                    continue
                value = record_value(record)
            except (KeyError, TypeError, ValueError):
                print(f"trend: malformed record in {path}: {record!r}")
                continue
            if value is None:
                print(f"trend: zero-sample metric in {path}: "
                      f"{record.get('metric')!r}; skipped")
                continue
            merged[metric] = value
    return merged


def swept_workers(records):
    """Worker counts a record set actually ran, or None (no markers)."""
    swept = {
        metric[len(SWEEP_MARKER_PREFIX):]
        for metric in records
        if metric.startswith(SWEEP_MARKER_PREFIX)
    }
    return swept or None


def comparable(metric, current, baseline):
    """Apply the sweep-intersection rule for per-worker metrics."""
    prefix = next(
        (p for p in SWEEP_METRIC_PREFIXES if metric.startswith(p)), None)
    if prefix is None:
        return True
    workers = metric[len(prefix):]
    for records in (current, baseline):
        swept = swept_workers(records)
        if swept is not None and workers not in swept:
            return False
    return True


def ceiling_violations(current):
    """(metric, value, ceiling) for every current metric over its
    absolute bound. Absent metrics pass (the bench may not have run
    with the relevant flag)."""
    return [
        (metric, current[metric], ceiling)
        for metric, ceiling in sorted(CEILING_METRICS.items())
        if metric in current and current[metric] > ceiling
    ]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", nargs="+", type=pathlib.Path,
                        required=True,
                        help="bench JSON files for this commit")
    parser.add_argument("--baseline-dir", type=pathlib.Path,
                        required=True,
                        help="directory holding the previous artifact's "
                             "JSON files (may be missing: warn-only)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative drop that fails (default 0.20)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (forks, "
                             "first runs)")
    args = parser.parse_args()
    if not 0 < args.threshold < 1:
        print(f"trend: bad threshold {args.threshold}")
        return 2

    current = load_records([p for p in args.current if p.exists()])
    if not current:
        print("trend: no current records; nothing to gate")
        return 0

    # Absolute ceilings hold with or without a baseline.
    ceilings = ceiling_violations(current)
    for metric, value, ceiling in ceilings:
        print(f"trend: {metric} = {value:.3f} exceeds its absolute "
              f"ceiling of {ceiling:.3f}")
    if ceilings and not args.warn_only:
        return 1
    if ceilings:
        print("trend: --warn-only set; not failing the job")

    baseline_files = (sorted(args.baseline_dir.glob("*.json"))
                      if args.baseline_dir.is_dir() else [])
    baseline = load_records(baseline_files)
    if not baseline:
        print(f"trend: no baseline under {args.baseline_dir} "
              "(first run or fork); skipping the gate")
        return 0

    watched = sorted(
        metric for metric in set(current) | set(baseline)
        if any(fnmatch.fnmatchcase(metric, pat)
               for pat in WATCHED_PATTERNS + LOWER_IS_BETTER_PATTERNS))

    regressions = []
    print(f"{'metric':44s} {'baseline':>10s} {'current':>10s} "
          f"{'delta':>8s}")
    for metric in watched:
        if metric not in current or metric not in baseline:
            print(f"{metric:44s} {'-':>10s} {'-':>10s} "
                  f"{'(one-sided, skipped)':>8s}")
            continue
        if not comparable(metric, current, baseline):
            print(f"{metric:44s} {'-':>10s} {'-':>10s} "
                  f"{'(sweep mismatch, skipped)':>8s}")
            continue
        base, cur = baseline[metric], current[metric]
        if base <= 0:
            print(f"{metric:44s} {base:10.3f} {cur:10.3f} "
                  f"{'(bad baseline, skipped)':>8s}")
            continue
        lower_better = any(fnmatch.fnmatchcase(metric, pat)
                           for pat in LOWER_IS_BETTER_PATTERNS)
        delta = (cur - base) / base
        print(f"{metric:44s} {base:10.3f} {cur:10.3f} {delta:+7.1%}"
              f"{'  (lower is better)' if lower_better else ''}")
        regressed = (delta > args.threshold if lower_better
                     else delta < -args.threshold)
        if regressed:
            regressions.append((metric, base, cur, delta))

    if regressions:
        print(f"\ntrend: {len(regressions)} metric(s) regressed more "
              f"than {args.threshold:.0%}:")
        for metric, base, cur, delta in regressions:
            print(f"  {metric}: {base:.3f} -> {cur:.3f} ({delta:+.1%})")
        if args.warn_only:
            print("trend: --warn-only set; not failing the job")
            return 0
        return 1
    print("\ntrend: no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
