#!/usr/bin/env python3
"""Unit tests for check_bench_trend.py.

Run directly (python3 scripts/test_check_bench_trend.py) or through
CTest (registered as test_check_bench_trend). The regression scenarios
drive the script as a subprocess, exactly as CI does; the zero-sample
guard is also covered at the function level.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

SCRIPT_DIR = pathlib.Path(__file__).resolve().parent
SCRIPT = SCRIPT_DIR / "check_bench_trend.py"
sys.path.insert(0, str(SCRIPT_DIR))

import check_bench_trend  # noqa: E402  (path set up above)


def run_gate(current, baseline, extra_args=()):
    """Write record sets to a temp tree and run the gate; returns
    (exit_code, stdout)."""
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = pathlib.Path(tmp)
        current_file = tmp_path / "current.json"
        current_file.write_text(json.dumps(current))
        baseline_dir = tmp_path / "baseline"
        baseline_dir.mkdir()
        if baseline is not None:
            (baseline_dir / "baseline.json").write_text(
                json.dumps(baseline))
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), "--current", str(current_file),
             "--baseline-dir", str(baseline_dir), *extra_args],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr


class LoadRecordsTest(unittest.TestCase):
    def test_zero_samples_is_skipped_not_a_crash(self):
        # The regression this guards: a baseline artifact carrying a
        # metric with an empty sample list (a truncated sweep's flush)
        # must not crash the mean computation.
        self.assertIsNone(
            check_bench_trend.record_value(
                {"metric": "smt.incremental_speedup", "values": []}))

    def test_values_list_is_mean_aggregated(self):
        self.assertEqual(
            check_bench_trend.record_value(
                {"metric": "m", "values": [1.0, 2.0, 3.0]}), 2.0)

    def test_scalar_value_passes_through(self):
        self.assertEqual(
            check_bench_trend.record_value({"metric": "m", "value": 4.5}),
            4.5)


class GateTest(unittest.TestCase):
    def test_zero_sample_baseline_does_not_crash_the_gate(self):
        code, out = run_gate(
            current=[{"metric": "smt.incremental_speedup", "value": 10.0}],
            baseline=[{"metric": "smt.incremental_speedup", "values": []}])
        self.assertEqual(code, 0, out)
        self.assertIn("zero-sample", out)

    def test_regression_fails(self):
        code, out = run_gate(
            current=[{"metric": "smt.incremental_speedup", "value": 5.0}],
            baseline=[{"metric": "smt.incremental_speedup",
                       "values": [10.0, 10.0]}])
        self.assertEqual(code, 1, out)

    def test_regression_warn_only_passes(self):
        code, out = run_gate(
            current=[{"metric": "smt.incremental_speedup", "value": 5.0}],
            baseline=[{"metric": "smt.incremental_speedup", "value": 10.0}],
            extra_args=("--warn-only",))
        self.assertEqual(code, 0, out)

    def test_small_drop_passes(self):
        code, out = run_gate(
            current=[{"metric": "smt.incremental_speedup", "value": 9.0}],
            baseline=[{"metric": "smt.incremental_speedup",
                       "value": 10.0}])
        self.assertEqual(code, 0, out)

    def test_one_sided_metric_is_skipped(self):
        code, out = run_gate(
            current=[
                {"metric": "fig11.prune_index_query_reduction_pct"
                           "/fsp/workers=1", "value": 5.0}],
            baseline=[{"metric": "smt.incremental_speedup",
                       "value": 10.0}])
        self.assertEqual(code, 0, out)
        self.assertIn("one-sided", out)

    def test_sweep_mismatch_is_skipped(self):
        # workers=8 only swept in the baseline: its regression must not
        # fire.
        code, out = run_gate(
            current=[
                {"metric": "parallel.swept/workers=1", "value": 1.0},
                {"metric": "parallel.speedup/workers=8", "value": 1.0}],
            baseline=[
                {"metric": "parallel.swept/workers=1", "value": 1.0},
                {"metric": "parallel.swept/workers=8", "value": 1.0},
                {"metric": "parallel.speedup/workers=8", "value": 8.0}])
        self.assertEqual(code, 0, out)
        self.assertIn("sweep mismatch", out)

    def test_missing_baseline_passes(self):
        code, out = run_gate(
            current=[{"metric": "smt.incremental_speedup", "value": 5.0}],
            baseline=None)
        self.assertEqual(code, 0, out)


class NestedRecordTest(unittest.TestCase):
    def test_nested_record_flattens_with_metric_prefix(self):
        # Drive through the file loader, as CI does.
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "r.json"
            path.write_text(json.dumps([
                {"metric": "metrics",
                 "nested": {"solver.queries": 53, "cache.hits": 8.5}},
                {"metric": "parallel.trojans", "value": 3.0}]))
            merged = check_bench_trend.load_records([path])
        self.assertEqual(merged["metrics.solver.queries"], 53.0)
        self.assertEqual(merged["metrics.cache.hits"], 8.5)
        self.assertEqual(merged["parallel.trojans"], 3.0)

    def test_malformed_nested_record_is_skipped(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "r.json"
            path.write_text(json.dumps([
                {"metric": "metrics", "nested": {"k": "not-a-number"}},
                {"metric": "ok", "value": 1.0}]))
            merged = check_bench_trend.load_records([path])
        self.assertEqual(merged, {"ok": 1.0})


class CorpusMetricsTest(unittest.TestCase):
    def test_yield_drop_fails(self):
        code, out = run_gate(
            current=[{"metric": "corpus.trojan_yield", "value": 2.0}],
            baseline=[{"metric": "corpus.trojan_yield", "value": 5.0}])
        self.assertEqual(code, 1, out)
        self.assertIn("corpus.trojan_yield", out)

    def test_queries_rise_fails_lower_is_better(self):
        # queries_per_protocol is lower-is-better: the inverted
        # comparison must fire on a rise, not a drop.
        code, out = run_gate(
            current=[{"metric": "corpus.queries_per_protocol",
                      "value": 150.0}],
            baseline=[{"metric": "corpus.queries_per_protocol",
                       "value": 100.0}])
        self.assertEqual(code, 1, out)
        self.assertIn("lower is better", out)

    def test_queries_drop_passes_lower_is_better(self):
        code, out = run_gate(
            current=[{"metric": "corpus.queries_per_protocol",
                      "value": 50.0}],
            baseline=[{"metric": "corpus.queries_per_protocol",
                       "value": 100.0}])
        self.assertEqual(code, 0, out)

    def test_per_family_metrics_are_watched(self):
        code, out = run_gate(
            current=[{"metric": "corpus.trojan_yield/synth/d2.f2.c75.v25",
                      "value": 1.0}],
            baseline=[{"metric": "corpus.trojan_yield/synth/d2.f2.c75.v25",
                       "value": 4.0}])
        self.assertEqual(code, 1, out)

    def test_corpus_metric_absent_from_baseline_is_warn_only(self):
        # A baseline artifact that predates bench_corpus (or a newly
        # added family) must not fail the gate.
        code, out = run_gate(
            current=[
                {"metric": "corpus.trojan_yield", "value": 2.0},
                {"metric": "corpus.queries_per_protocol", "value": 90.0}],
            baseline=[{"metric": "smt.incremental_speedup",
                       "value": 10.0}])
        self.assertEqual(code, 0, out)
        self.assertIn("one-sided", out)


class BatchMetricsTest(unittest.TestCase):
    def test_batch_reduction_drop_fails(self):
        code, out = run_gate(
            current=[{"metric": "fig11.batch_query_reduction_pct"
                                "/fsp/workers=1", "value": 5.0}],
            baseline=[{"metric": "fig11.batch_query_reduction_pct"
                                 "/fsp/workers=1", "value": 40.0}])
        self.assertEqual(code, 1, out)
        self.assertIn("fig11.batch_query_reduction_pct", out)

    def test_prefilter_hit_rate_drop_fails(self):
        code, out = run_gate(
            current=[{"metric": "fig11.prefilter_hit_rate"
                                "/guarded/workers=4", "value": 0.05}],
            baseline=[{"metric": "fig11.prefilter_hit_rate"
                                 "/guarded/workers=4", "value": 0.5}])
        self.assertEqual(code, 1, out)
        self.assertIn("fig11.prefilter_hit_rate", out)

    def test_batch_metrics_absent_from_baseline_are_warn_only(self):
        # A baseline artifact that predates the --batch ablation must
        # not fail the gate: the comparison is one-sided.
        code, out = run_gate(
            current=[
                {"metric": "fig11.batch_query_reduction_pct"
                           "/fsp/workers=1", "value": 30.0},
                {"metric": "fig11.prefilter_hit_rate/fsp/workers=1",
                 "value": 0.4}],
            baseline=[{"metric": "smt.incremental_speedup",
                       "value": 10.0}])
        self.assertEqual(code, 0, out)
        self.assertIn("one-sided", out)


class PortfolioMetricsTest(unittest.TestCase):
    def test_corpus_portfolio_speedup_drop_fails(self):
        code, out = run_gate(
            current=[{"metric": "corpus.portfolio_speedup",
                      "value": 0.9}],
            baseline=[{"metric": "corpus.portfolio_speedup",
                       "value": 1.4}])
        self.assertEqual(code, 1, out)
        self.assertIn("corpus.portfolio_speedup", out)

    def test_per_worker_portfolio_timings_are_not_watched(self):
        # The multi-worker grid cells are determinism checks whose
        # timings are scheduler-dominated on small slices; the bench
        # does not emit per-worker speedup records, and a stray one
        # must not be gated.
        code, out = run_gate(
            current=[{"metric": "corpus.portfolio_speedup/workers=4",
                      "value": 0.8}],
            baseline=[{"metric": "corpus.portfolio_speedup/workers=4",
                       "value": 1.3}])
        self.assertEqual(code, 0, out)

    def test_win_rate_drop_fails(self):
        code, out = run_gate(
            current=[{"metric": "smt.portfolio_win_rate/deep",
                      "value": 0.3}],
            baseline=[{"metric": "smt.portfolio_win_rate/deep",
                       "value": 0.9}])
        self.assertEqual(code, 1, out)
        self.assertIn("smt.portfolio_win_rate", out)

    def test_portfolio_metrics_absent_from_baseline_are_warn_only(self):
        # A baseline artifact that predates the --portfolio ablation
        # must not fail the gate: the comparison is one-sided.
        code, out = run_gate(
            current=[
                {"metric": "corpus.portfolio_speedup", "value": 1.2},
                {"metric": "smt.portfolio_speedup", "value": 1.1},
                {"metric": "smt.portfolio_win_rate/straggler",
                 "value": 0.5}],
            baseline=[{"metric": "smt.incremental_speedup",
                       "value": 10.0}])
        self.assertEqual(code, 0, out)
        self.assertIn("one-sided", out)


class WarmstartMetricsTest(unittest.TestCase):
    def test_query_reduction_drop_fails(self):
        code, out = run_gate(
            current=[{"metric": "warmstart.query_reduction_pct",
                      "value": 2.0}],
            baseline=[{"metric": "warmstart.query_reduction_pct",
                       "value": 8.0}])
        self.assertEqual(code, 1, out)
        self.assertIn("warmstart.query_reduction_pct", out)

    def test_speedup_drop_fails(self):
        code, out = run_gate(
            current=[{"metric": "warmstart.speedup", "value": 0.6}],
            baseline=[{"metric": "warmstart.speedup", "value": 1.0}])
        self.assertEqual(code, 1, out)
        self.assertIn("warmstart.speedup", out)

    def test_corpus_reduction_drop_fails(self):
        code, out = run_gate(
            current=[{"metric": "warmstart.corpus_query_reduction_pct",
                      "value": 5.0}],
            baseline=[{"metric": "warmstart.corpus_query_reduction_pct",
                       "value": 28.0}])
        self.assertEqual(code, 1, out)

    def test_per_worker_warmstart_timings_are_not_watched(self):
        # The per-worker speedup cells exist for the bench's own tables;
        # wall-clock at a fixed worker count is scheduler-dominated and
        # must not be gated -- only the headline metrics are.
        code, out = run_gate(
            current=[{"metric": "warmstart.speedup/fsp/workers=8",
                      "value": 0.5}],
            baseline=[{"metric": "warmstart.speedup/fsp/workers=8",
                       "value": 1.2}])
        self.assertEqual(code, 0, out)

    def test_warmstart_metrics_absent_from_baseline_are_warn_only(self):
        # A baseline artifact that predates bench_warmstart must not
        # fail the gate: the comparison is one-sided.
        code, out = run_gate(
            current=[
                {"metric": "warmstart.speedup", "value": 1.0},
                {"metric": "warmstart.query_reduction_pct", "value": 8.0},
                {"metric": "warmstart.corpus_query_reduction_pct",
                 "value": 28.0}],
            baseline=[{"metric": "smt.incremental_speedup",
                       "value": 10.0}])
        self.assertEqual(code, 0, out)
        self.assertIn("one-sided", out)


class CeilingTest(unittest.TestCase):
    def test_overhead_within_ceiling_passes(self):
        code, out = run_gate(
            current=[{"metric": "obs.overhead_pct", "value": 2.5}],
            baseline=None)
        self.assertEqual(code, 0, out)

    def test_overhead_over_ceiling_fails_without_baseline(self):
        # The ceiling is absolute: it must hold even on a first run
        # with no baseline artifact to compare against.
        code, out = run_gate(
            current=[{"metric": "obs.overhead_pct", "value": 7.5}],
            baseline=None)
        self.assertEqual(code, 1, out)
        self.assertIn("ceiling", out)

    def test_overhead_over_ceiling_warn_only_passes(self):
        code, out = run_gate(
            current=[{"metric": "obs.overhead_pct", "value": 7.5}],
            baseline=None,
            extra_args=("--warn-only",))
        self.assertEqual(code, 0, out)
        self.assertIn("ceiling", out)

    def test_absent_overhead_metric_passes(self):
        self.assertEqual(
            check_bench_trend.ceiling_violations({"other": 100.0}), [])

    def test_violation_reports_metric_value_and_bound(self):
        violations = check_bench_trend.ceiling_violations(
            {"obs.overhead_pct": 6.0})
        self.assertEqual(violations, [("obs.overhead_pct", 6.0, 5.0)])


if __name__ == "__main__":
    unittest.main()
