// Achilles reproduction -- Section 6.2 fuzzing comparison.
//
// The paper measures a fuzzer's raw throughput on the FSP testbed
// (75,000 tests/minute), counts the Trojan population analytically
// (66 million Trojans among 256^8 = 1.8e19 relevant-byte combinations),
// and concludes black-box fuzzing would find ~1e-5 Trojans per hour
// while producing millions of accepted-but-not-Trojan messages.
//
// We reproduce all three parts: measured throughput on our concrete
// server, the analytical expectation, and an empirical fuzzing run over
// the same 8 relevant bytes.

#include <cstdio>

#include "baselines/fuzzer.h"
#include "bench/bench_util.h"
#include "proto/fsp/fsp_concrete.h"
#include "proto/fsp/fsp_protocol.h"

using namespace achilles;

namespace {

/** Count the Trojan population of our bounded FSP space exactly. */
double
TrojanPopulation()
{
    // Relevant bytes: cmd (8 valid / 256), bb_len low byte (4 valid
    // values 1..4 given high byte 0), 5 buf bytes. Count messages that
    // are accepted but not generatable, mirroring the paper's counting
    // for length-1 Trojans (94^3*... style closed form) but summed
    // exactly over our oracle's rules:
    //   accepted: first NUL before bb_len allowed, printables otherwise
    //   generatable: no '*', exact length, zero tail
    // Enumerate cmd x bb_len x per-byte classes instead of 256^5 raw.
    double total = 0;
    const double printable = 94;       // 33..126
    const double printable_no_star = 93;
    const double any = 256;
    for (int len = 1; len <= 4; ++len) {
        // True length t < len: buf[0..t-1] printable, buf[t] == 0,
        // bytes (t, len) unconstrained? No: the server stops scanning
        // at buf[t], so bytes after t (within and beyond len) are free.
        for (int t = 0; t < len; ++t) {
            double count = 1;
            for (int i = 0; i < t; ++i)
                count *= printable;
            // buf[t] = 0; the remaining (kMaxPath - t) bytes are free.
            count *= 1;
            for (int i = t + 1; i <= static_cast<int>(fsp::kMaxPath);
                 ++i)
                count *= any;
            total += count;
        }
        // True length == len: all len bytes printable; Trojan iff a
        // '*' appears somewhere (tail bytes are payload on both sides).
        double accepted_paths = 1;
        double generatable_paths = 1;
        for (int i = 0; i < len; ++i) {
            accepted_paths *= printable;
            generatable_paths *= printable_no_star;
        }
        double tail = 1;
        for (int i = len; i <= static_cast<int>(fsp::kMaxPath); ++i)
            tail *= any;
        total += (accepted_paths - generatable_paths) * tail;
    }
    return total * 8;  // 8 valid commands
}

}  // namespace

int
main()
{
    bench::Header("Section 6.2 -- black-box fuzzing comparison (FSP)");

    // ----- Measured fuzzing throughput -----
    auto generator = [](Rng *rng) {
        fsp::Bytes msg = fsp::EncodeRawMessage(
            static_cast<uint8_t>(rng->Below(256)),
            static_cast<uint16_t>(rng->Below(256)), "");
        for (uint32_t i = 0; i <= fsp::kMaxPath; ++i)
            msg[fsp::kOffBuf + i] = static_cast<uint8_t>(rng->Below(256));
        return msg;
    };
    baselines::Fuzzer fuzzer(
        generator,
        [](const fsp::Bytes &m) { return fsp::ServerAccepts(m); },
        [](const fsp::Bytes &m) { return fsp::IsTrojan(m); }, 20140301);
    const baselines::FuzzResult run = fuzzer.Run(2'000'000);

    bench::Section("measured throughput (concrete FSP server)");
    std::printf("  tests: %llu in %.2f s  ->  %.0f tests/minute\n",
                static_cast<unsigned long long>(run.tests), run.seconds,
                run.TestsPerMinute());
    bench::Note("paper: 75,000 tests/minute on their testbed");

    // ----- Analytical expectation -----
    const double relevant_space = 256.0 * 256.0 *  // cmd, len byte
                                  256.0 * 256.0 * 256.0 * 256.0 * 256.0;
    const double trojans = TrojanPopulation();
    bench::Section("Trojan population (exact, our bounded space)");
    std::printf("  Trojan messages: %.3e of %.3e relevant-byte "
                "combinations (%.2e density)\n",
                trojans, relevant_space, trojans / relevant_space);
    bench::Note("paper: 66e6 Trojans of 1.8e19 (8 relevant bytes, "
                "density 3.7e-12); our space is 7 bytes wide, so the "
                "density is higher but still dominated by rejects");

    std::printf("  expected tests per Trojan hit: %.0f (vs one "
                "sub-second Achilles run for all 80 types)\n",
                relevant_space / trojans);

    // With the paper's own parameters (66e6 Trojans / 1.8e19 space /
    // 75k tests per minute), the expectation is the paper's headline.
    const double paper_per_hour = baselines::ExpectedTrojansFound(
        66e6, 1.8e19, 75000.0 * 60.0);
    std::printf("  paper-parameter expectation: %.6f Trojans per "
                "fuzzing hour\n", paper_per_hour);
    bench::Note("paper: 0.00001 expected Trojans per hour");

    // ----- Empirical confirmation -----
    bench::Section("empirical fuzzing run");
    std::printf("  accepted: %llu (%.4f%%), trojans: %llu, "
                "false positives: %llu\n",
                static_cast<unsigned long long>(run.accepted),
                100.0 * run.accepted / run.tests,
                static_cast<unsigned long long>(run.trojans),
                static_cast<unsigned long long>(run.false_positives));
    bench::Note("paper: fuzzing produces millions of non-Trojan "
                "accepted messages (false positives) and essentially "
                "no Trojans; Achilles finds all 80 in one run");

    // Shape: the fuzzer must be orders of magnitude less productive
    // than Achilles (80 Trojan types in a sub-second run: see
    // bench_table1). Empirically the Trojan hit rate must match the
    // analytical density within noise.
    const double hit_rate =
        static_cast<double>(run.trojans) / static_cast<double>(run.tests);
    const double density = trojans / relevant_space;
    const bool ok = hit_rate < 100 * density + 1e-3;
    std::printf("\nRESULT: %s (hit rate %.2e vs density %.2e)\n",
                ok ? "PASS (shape reproduced)" : "MISMATCH", hit_rate,
                density);
    return ok ? 0 : 1;
}
