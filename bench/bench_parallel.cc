// Achilles reproduction -- parallel exploration subsystem benchmark.
//
// Sweeps the FSP server exploration (phase 2, the dominant cost in the
// paper's Section 6.2 breakdown) over 1/2/4/8 workers and reports the
// wall-clock speedup, the shared Trojan-query cache hit rate and the
// work-stealing counters. Also validates the subsystem's determinism
// guarantee: the Trojan witness sets (accept labels, definitions,
// concrete bytes) must be bitwise-identical at every worker count.
//
// Usage: bench_parallel [--clients N] [--workers 1,2,4,8]
//                       [--clause-exchange] [--lemma-cap N]
//                       [--json <path>] [--trace-out <path>]
//                       [--progress[=secs]] [--obs-overhead]
//
// Observability: `--trace-out` re-runs the max-worker point with the
// Chrome-trace recorder attached and writes the trace there (load it in
// chrome://tracing or ui.perfetto.dev); `--progress` attaches the live
// heartbeat to that run; with `--json`, the instrumented run's
// RunReport lands as the nested "metrics" record. `--obs-overhead`
// measures the full-instrumentation wall-clock cost at the max worker
// count -- two paired off/on runs, the minimum pairwise overhead,
// floored at zero -- and records it as obs.overhead_pct (the CI trend
// gate holds this under an absolute ceiling). Witness sets must stay
// identical with instrumentation on or off.
//
// `--clause-exchange` appends the learned-clause-exchange ablation:
// every multi-worker point of the sweep reruns with the cross-worker
// lemma pool disabled, reporting the on/off speedup and the lemma
// counters, and re-checking that witness sets match the serial run in
// both configurations.
//
// `--lemma-cap N` caps the shared lemma pool's live entries at N
// (0 = unbounded); the eviction counters land in the JSON records, and
// witness sets must stay identical at any cap -- eviction can only
// cost an acceleration, never a verdict.
//
// Every JSON record set includes one `parallel.swept/workers=N` marker
// per worker count actually run, so downstream consumers (the CI
// perf-trend gate) can intersect sweeps instead of comparing a point
// that one side never measured; records are flushed even when the
// sweep is truncated or the determinism check fails.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <fstream>

#include "bench/bench_util.h"
#include "core/achilles.h"
#include "obs/heartbeat.h"
#include "proto/fsp/fsp_protocol.h"

using namespace achilles;
using namespace achilles::core;

namespace {

/** Witness summary comparable across independent runs. */
using WitnessSummary =
    std::tuple<std::string, std::vector<uint8_t>, uint64_t>;

struct SweepPoint
{
    size_t workers = 1;
    double seconds = 0.0;
    size_t trojans = 0;
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    int64_t states_stolen = 0;
    int64_t lemmas_published = 0;
    int64_t lemmas_installed = 0;
    int64_t lemmas_evicted = 0;
    std::vector<WitnessSummary> witnesses;
    obs::RunReport report;
};

/** Observability attachments for one RunOnce invocation. */
struct ObsOptions
{
    bool metrics = false;
    bool tracing = false;
    double progress_secs = 0.0;  ///< 0 = heartbeat off
    std::string trace_path;      ///< written when tracing is on
};

/** `lemma_cap` < 0 keeps the SolverConfig default. */
SweepPoint
RunOnce(size_t workers, size_t num_clients, bool clause_exchange = true,
        int64_t lemma_cap = -1, const ObsOptions &obs_opts = {})
{
    smt::ExprContext ctx;
    smt::SolverConfig solver_config;
    solver_config.share_learned_clauses = clause_exchange;
    if (lemma_cap >= 0)
        solver_config.lemma_pool_cap = lemma_cap;

    // Lane 0 is the pipeline thread; workers own lanes 1..N.
    std::unique_ptr<obs::MetricsRegistry> registry;
    std::unique_ptr<obs::TraceRecorder> tracer;
    if (obs_opts.metrics)
        registry = std::make_unique<obs::MetricsRegistry>(workers + 1);
    if (obs_opts.tracing)
        tracer = std::make_unique<obs::TraceRecorder>(workers + 1);
    obs::ObsHandle obs_handle;
    obs_handle.registry = registry.get();
    obs_handle.tracer = tracer.get();
    solver_config.obs = obs_handle;

    smt::Solver solver(&ctx, solver_config);

    const std::vector<symexec::Program> clients = fsp::MakeAllClients();
    const symexec::Program server = fsp::MakeServer();

    AchillesConfig config;
    config.layout = fsp::MakeLayout();
    for (size_t i = 0; i < clients.size() && i < num_clients; ++i)
        config.clients.push_back(&clients[i]);
    config.server = &server;
    config.server_config.engine.num_workers = workers;
    config.obs = obs_handle;

    std::unique_ptr<obs::Heartbeat> heartbeat;
    if (registry != nullptr && obs_opts.progress_secs > 0) {
        heartbeat = std::make_unique<obs::Heartbeat>(
            registry.get(), obs_opts.progress_secs);
        heartbeat->Start();
    }

    const AchillesResult result = RunAchilles(&ctx, &solver, config);

    if (heartbeat != nullptr)
        heartbeat->Stop();
    if (tracer != nullptr && !obs_opts.trace_path.empty()) {
        std::ofstream out(obs_opts.trace_path);
        if (out.is_open())
            tracer->WriteChromeTrace(out);
        else
            obs::LogError("bench: cannot write " + obs_opts.trace_path);
    }

    SweepPoint point;
    point.report = result.report;
    point.workers = workers;
    point.seconds = result.timings.server_analysis;
    point.trojans = result.server.trojans.size();
    point.cache_hits = result.server.stats.Get("exec.queries_cached");
    point.cache_misses =
        result.server.stats.Get("exec.query_cache_misses");
    point.states_stolen = result.server.stats.Get("exec.states_stolen");
    point.lemmas_published =
        result.server.stats.Get("exec.lemmas_published");
    point.lemmas_installed =
        result.server.stats.Get("solver.lemmas_installed");
    point.lemmas_evicted = result.server.stats.Get("exec.lemmas_evicted");
    CanonicalHasher hasher(&ctx);
    for (const TrojanWitness &t : result.server.trojans) {
        point.witnesses.emplace_back(t.accept_label, t.concrete,
                                     hasher.HashExprs(t.definition));
    }
    std::sort(point.witnesses.begin(), point.witnesses.end());
    return point;
}

}  // namespace

int
main(int argc, char **argv)
{
    bench::ParseBenchArgs(argc, argv);
    size_t num_clients = 8;
    bool exchange_ablation = false;
    bool obs_overhead = false;
    double progress_secs = 0.0;
    std::string trace_path;
    int64_t lemma_cap = -1;
    std::vector<size_t> worker_counts{1, 2, 4, 8};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--clause-exchange") == 0)
            exchange_ablation = true;
        else if (std::strcmp(argv[i], "--obs-overhead") == 0)
            obs_overhead = true;
        else if (std::strcmp(argv[i], "--progress") == 0)
            progress_secs = 1.0;
        else if (std::strncmp(argv[i], "--progress=", 11) == 0)
            progress_secs = std::atof(argv[i] + 11);
    }
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--clients") == 0) {
            num_clients = static_cast<size_t>(std::atoi(argv[i + 1]));
        } else if (std::strcmp(argv[i], "--lemma-cap") == 0) {
            lemma_cap = std::atoll(argv[i + 1]);
        } else if (std::strcmp(argv[i], "--trace-out") == 0) {
            trace_path = argv[i + 1];
        } else if (std::strcmp(argv[i], "--workers") == 0) {
            worker_counts.clear();
            for (const char *p = argv[i + 1]; *p != '\0';) {
                char *end = nullptr;
                const long w = std::strtol(p, &end, 10);
                if (end == p)
                    break;
                if (w > 0)
                    worker_counts.push_back(static_cast<size_t>(w));
                p = *end == ',' ? end + 1 : end;
            }
        }
    }
    if (std::find(worker_counts.begin(), worker_counts.end(), 1u) ==
        worker_counts.end()) {
        // The sweep's speedup baseline is the serial run; force it in.
        worker_counts.insert(worker_counts.begin(), 1);
    }
    std::sort(worker_counts.begin(), worker_counts.end());
    worker_counts.erase(
        std::unique(worker_counts.begin(), worker_counts.end()),
        worker_counts.end());

    bench::Header("Parallel server exploration -- work-stealing scheduler "
                  "sweep (FSP)");
    bench::Note("phase 2 only; 1 worker = the serial in-engine worklist");

    std::vector<SweepPoint> points;
    for (size_t w : worker_counts)
        points.push_back(RunOnce(w, num_clients, true, lemma_cap));

    const SweepPoint &serial = points.front();

    bench::Section("sweep");
    std::printf("  %8s %12s %9s %10s %12s %9s\n", "workers", "seconds",
                "speedup", "trojans", "cache-hit%", "stolen");
    bool identical = true;
    for (const SweepPoint &p : points) {
        const double speedup =
            p.seconds > 0 ? serial.seconds / p.seconds : 0.0;
        const int64_t lookups = p.cache_hits + p.cache_misses;
        const double hit_rate =
            lookups > 0 ? 100.0 * static_cast<double>(p.cache_hits) /
                              static_cast<double>(lookups)
                        : 0.0;
        std::printf("  %8zu %12.3f %8.2fx %10zu %11.1f%% %9lld\n",
                    p.workers, p.seconds, speedup, p.trojans, hit_rate,
                    static_cast<long long>(p.states_stolen));
        identical &= p.witnesses == serial.witnesses;

        const std::string suffix =
            "/workers=" + std::to_string(p.workers);
        // Sweep marker first: a consumer must never compare a metric
        // at a worker count the other record set did not run.
        bench::JsonRecorder::Instance().Record(
            "parallel.swept" + suffix, 1.0);
        bench::JsonRecorder::Instance().Record(
            "parallel.server_seconds" + suffix, p.seconds);
        bench::JsonRecorder::Instance().Record(
            "parallel.speedup" + suffix, speedup);
        bench::JsonRecorder::Instance().Record(
            "parallel.cache_hit_rate" + suffix, hit_rate);
        bench::JsonRecorder::Instance().Record(
            "parallel.states_stolen" + suffix,
            static_cast<double>(p.states_stolen));
    }
    bench::Metric("parallel.trojans", static_cast<double>(serial.trojans));

    if (exchange_ablation) {
        bench::Section("clause-exchange ablation");
        std::printf("  %8s %10s %10s %9s %10s %10s\n", "workers",
                    "s(off)", "s(on)", "speedup", "published",
                    "installed");
        for (const SweepPoint &swept : points) {
            if (swept.workers <= 1)
                continue;  // no siblings, no exchange
            // Paired back-to-back runs (rather than reusing the main
            // sweep's timing) so the ratio is not polluted by drift
            // between sections.
            const SweepPoint off =
                RunOnce(swept.workers, num_clients,
                        /*clause_exchange=*/false, lemma_cap);
            const SweepPoint on =
                RunOnce(swept.workers, num_clients,
                        /*clause_exchange=*/true, lemma_cap);
            const double speedup =
                on.seconds > 0 ? off.seconds / on.seconds : 0.0;
            std::printf("  %8zu %10.3f %10.3f %8.2fx %10lld %10lld\n",
                        on.workers, off.seconds, on.seconds, speedup,
                        static_cast<long long>(on.lemmas_published),
                        static_cast<long long>(on.lemmas_installed));
            identical &= off.witnesses == serial.witnesses &&
                         on.witnesses == serial.witnesses;

            const std::string suffix =
                "/workers=" + std::to_string(on.workers);
            bench::JsonRecorder::Instance().Record(
                "parallel.clause_exchange_speedup" + suffix, speedup);
            bench::JsonRecorder::Instance().Record(
                "parallel.lemmas_published" + suffix,
                static_cast<double>(on.lemmas_published));
            bench::JsonRecorder::Instance().Record(
                "parallel.lemmas_installed" + suffix,
                static_cast<double>(on.lemmas_installed));
            bench::JsonRecorder::Instance().Record(
                "parallel.lemmas_evicted" + suffix,
                static_cast<double>(on.lemmas_evicted));
        }
        bench::Note("witness sets must match the serial run in both "
                    "configurations; lemma counts are small by design "
                    "(only <=2-literal refutations over the shared "
                    "prefix travel, and interval-refutable conflicts "
                    "never reach the SAT backend that exports)");
    }
    if (obs_overhead || progress_secs > 0 || !trace_path.empty()) {
        bench::Section("observability");
        const size_t max_workers = worker_counts.back();
        ObsOptions full;
        full.metrics = true;
        full.tracing = true;
        full.progress_secs = progress_secs;
        full.trace_path = trace_path;
        const SweepPoint instrumented =
            RunOnce(max_workers, num_clients, true, lemma_cap, full);
        identical &= instrumented.witnesses == serial.witnesses;
        std::printf("  instrumented run (%zu workers): %.3f s, "
                    "%lld trace events (%lld dropped)\n",
                    max_workers, instrumented.seconds,
                    static_cast<long long>(
                        instrumented.report.Get("obs.trace_events")),
                    static_cast<long long>(
                        instrumented.report.Get("obs.trace_dropped")));
        // The instrumented run's full observability summary rides the
        // JSON artifact as the nested "metrics" record.
        bench::RecordRunMetrics(instrumented.report);

        if (obs_overhead) {
            // Two paired off/on runs; the minimum pairwise overhead
            // discounts one-off scheduling noise, and the zero floor
            // keeps lucky negative deltas from masking a regression
            // elsewhere in the trend history.
            ObsOptions quiet = full;
            quiet.progress_secs = 0.0;  // no sampler thread in the
            quiet.trace_path.clear();   // timed region, no file I/O
            double overhead_pct = 1e9;
            for (int round = 0; round < 2; ++round) {
                const SweepPoint off =
                    RunOnce(max_workers, num_clients, true, lemma_cap);
                const SweepPoint on = RunOnce(max_workers, num_clients,
                                              true, lemma_cap, quiet);
                identical &= off.witnesses == serial.witnesses &&
                             on.witnesses == serial.witnesses;
                if (off.seconds > 0) {
                    overhead_pct = std::min(
                        overhead_pct, 100.0 *
                                          (on.seconds - off.seconds) /
                                          off.seconds);
                }
            }
            overhead_pct =
                overhead_pct >= 1e9 ? 0.0 : std::max(0.0, overhead_pct);
            bench::Metric("obs.overhead_pct", overhead_pct, "%");
        }
    }

    // Recorded after the ablation so the archived verdict covers every
    // witness-set comparison this process made.
    bench::Metric("parallel.witness_sets_identical", identical ? 1 : 0);

    bench::Section("determinism");
    if (identical) {
        std::printf("  witness sets (labels, definitions, concrete bytes) "
                    "are identical at every worker count\n");
    } else {
        std::printf("  ERROR: witness sets diverged across worker "
                    "counts\n");
    }
    bench::Note("speedup is bounded by the machine's core count; on a "
                "single-core container all worker counts serialize");
    // Flush explicitly: the perf-trajectory artifact must exist even
    // when the determinism gate fails the process (that is exactly the
    // run someone will want to inspect).
    bench::JsonRecorder::Instance().Flush();
    return identical ? 0 : 1;
}
