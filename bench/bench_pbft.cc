// Achilles reproduction -- Section 6.2/6.3, PBFT.
//
// Reproduces the PBFT analysis results: Achilles completes in seconds,
// discovers a single type of Trojan message (requests with corrupted
// MAC authenticators -- the known "MAC attack" vulnerability), and the
// Trojan appears bundled with valid messages on every accepting path,
// so classic symbolic execution cannot isolate it.

#include <cstdio>

#include "baselines/classic_se.h"
#include "bench/bench_util.h"
#include "core/achilles.h"
#include "proto/pbft/pbft_concrete.h"
#include "proto/pbft/pbft_protocol.h"

using namespace achilles;

namespace {

uint16_t
Read16At(const std::vector<uint8_t> &m, uint32_t off)
{
    return static_cast<uint16_t>(m[off]) |
           (static_cast<uint16_t>(m[off + 1]) << 8);
}

}  // namespace

int
main()
{
    bench::Header("Section 6.2 -- PBFT: rediscovering the MAC attack");

    smt::ExprContext ctx;
    smt::Solver solver(&ctx);

    const symexec::Program client = pbft::MakeClient();
    const symexec::Program replica = pbft::MakeReplica();

    core::AchillesConfig config;
    config.layout = pbft::MakeLayout();
    config.clients = {&client};
    config.server = &replica;
    const core::AchillesResult result =
        core::RunAchilles(&ctx, &solver, config);
    bench::RecordRunMetrics(result.report);

    bench::Section("analysis summary");
    std::printf("  total time: %.3f s (client %.3f + preprocess %.3f + "
                "server %.3f)\n",
                result.timings.Total(),
                result.timings.client_extraction,
                result.timings.preprocessing,
                result.timings.server_analysis);
    bench::Note("paper: 'Achilles completed the PBFT analysis in just "
                "a few seconds'");
    std::printf("  client path predicates: %zu\n",
                result.client_predicate.paths.size());
    std::printf("  accepting replica paths: %zu\n",
                result.server.accepting_paths.size());
    std::printf("  Trojan witnesses: %zu\n",
                result.server.trojans.size());

    size_t bad_mac_witnesses = 0;
    size_t bundled = 0;
    for (const core::TrojanWitness &t : result.server.trojans) {
        bool bad_mac = false;
        for (uint32_t r = 0; r < pbft::kNumReplicas; ++r) {
            if (Read16At(t.concrete, pbft::kOffMac + 2 * r) !=
                pbft::kValidMac) {
                bad_mac = true;
            }
        }
        bad_mac_witnesses += bad_mac ? 1 : 0;
        bundled += t.bundled_with_valid ? 1 : 0;
    }
    std::printf("  witnesses with corrupted authenticators: %zu/%zu\n",
                bad_mac_witnesses, result.server.trojans.size());
    std::printf("  witnesses bundled with valid messages: %zu/%zu\n",
                bundled, result.server.trojans.size());
    bench::Note("paper: a single Trojan type (bad MAC), present on all "
                "accepting paths, always bundled with valid requests");

    // Classic SE for contrast: accepted messages are a blend.
    baselines::ClassicSeConfig classic_config;
    classic_config.enumerate_per_path = 16;
    const baselines::ClassicSeResult classic = baselines::RunClassicSe(
        &ctx, &solver, &replica, config.layout, classic_config);
    size_t classic_trojans = 0;
    for (const auto &m : classic.messages) {
        bool bad_mac = false;
        for (uint32_t r = 0; r < pbft::kNumReplicas; ++r)
            bad_mac |= (Read16At(m, pbft::kOffMac + 2 * r) !=
                        pbft::kValidMac);
        classic_trojans += bad_mac ? 1 : 0;
    }
    bench::Section("classic symbolic execution (contrast)");
    std::printf("  enumerated accepted messages: %zu, of which "
                "MAC-Trojan: %zu\n",
                classic.messages.size(), classic_trojans);
    bench::Note("the MAC bytes are unconstrained on the accepting "
                "paths, so enumeration surfaces them only by chance; "
                "Achilles pinpoints them via the negated client "
                "predicate");

    // Fixed replica: no Trojans.
    pbft::ReplicaChecks fixed;
    fixed.verify_mac = true;
    const symexec::Program fixed_replica = pbft::MakeReplica(fixed);
    config.server = &fixed_replica;
    const core::AchillesResult fixed_result =
        core::RunAchilles(&ctx, &solver, config);
    bench::Section("fixed replica (primary verifies its MAC)");
    std::printf("  Trojan witnesses: %zu\n",
                fixed_result.server.trojans.size());

    const bool ok = !result.server.trojans.empty() &&
                    bad_mac_witnesses == result.server.trojans.size() &&
                    bundled == result.server.trojans.size() &&
                    fixed_result.server.trojans.empty() &&
                    result.timings.Total() < 60.0;
    std::printf("\nRESULT: %s\n", ok ? "PASS (shape reproduced)"
                                     : "MISMATCH (see numbers above)");
    return ok ? 0 : 1;
}
