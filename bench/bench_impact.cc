// Achilles reproduction -- Section 6.3: the impact of Trojan messages.
//
// Fault-injection demonstrations on the concrete substrates:
//   * FSP wildcard bug -- a Trojan creates a file named 'f*'; removing
//     it with a correct client collaterally destroys every f-prefixed
//     file (and 'rm f\*' does not help: FSP globbing has no escape).
//   * FSP mismatched-length bug -- a message smuggles extra payload
//     bytes past the path terminator.
//   * PBFT MAC attack -- corrupted authenticators pass the primary and
//     trigger the expensive recovery protocol, collapsing throughput.

#include <cstdio>

#include "bench/bench_util.h"
#include "proto/fsp/fsp_concrete.h"
#include "proto/pbft/pbft_concrete.h"

using namespace achilles;

int
main()
{
    bool ok = true;
    bench::Header("Section 6.3 -- impact of the discovered Trojans");

    // ----- FSP: the wildcard character -----
    bench::Section("FSP wildcard bug (fault injection)");
    {
        fsp::FspServer server;
        server.CreateFile("fa", "bank accounts");
        server.CreateFile("fb", "family photos");

        // Inject the Trojan: create 'f*' directly (bit flip / malicious
        // third party; no correct client can send this).
        const fsp::Bytes trojan = fsp::EncodeMessage(fsp::kMakeDir, "f*");
        std::printf("  inject MAKE_DIR 'f*': trojan=%s accepted=%s\n",
                    fsp::IsTrojan(trojan) ? "yes" : "no",
                    server.Handle(trojan).accepted ? "yes" : "no");
        ok &= fsp::IsTrojan(trojan) && server.HasFile("f*");

        // A correct client now tries to remove 'f*'.
        fsp::FspClient client(&server);
        const size_t before = server.FileCount();
        client.Run(fsp::kDelFile, "f*");
        std::printf("  correct client 'frm f*': files %zu -> %zu "
                    "(collateral damage: %s)\n",
                    before, server.FileCount(),
                    server.HasFile("fa") ? "none" : "fa and fb deleted");
        ok &= !server.HasFile("fa") && !server.HasFile("fb") &&
              !server.HasFile("f*");

        // Escaping does not work either.
        fsp::FspServer server2;
        server2.CreateFile("f*", "trojan file");
        fsp::FspClient client2(&server2);
        client2.Run(fsp::kDelFile, "f\\*");
        std::printf("  correct client 'frm f\\*': wildcard file still "
                    "present: %s\n",
                    server2.HasFile("f*") ? "yes" : "no");
        ok &= server2.HasFile("f*");
        bench::Note("paper: files containing '*' can be created on the "
                    "server but not removed without collateral damage");
    }

    // ----- FSP: mismatched string lengths -----
    bench::Section("FSP mismatched-length bug (payload smuggling)");
    {
        fsp::FspServer server;
        // bb_len = 4 but the path is just "a": 2 smuggled bytes follow.
        const fsp::Bytes msg =
            fsp::EncodeRawMessage(fsp::kMakeDir, 4,
                                  std::string("a\0XY", 4));
        const fsp::HandleResult r = server.Handle(msg);
        std::printf("  bb_len=4, path='a', smuggled bytes 'XY': "
                    "accepted=%s action=%s\n",
                    r.accepted ? "yes" : "no", r.action.c_str());
        ok &= r.accepted && server.HasFile("a");
        bench::Note("paper: the server accepts paths shorter than "
                    "bb_len, letting clients append arbitrary payload");
    }

    // ----- PBFT: the MAC attack -----
    bench::Section("PBFT MAC attack (throughput collapse)");
    {
        std::printf("  %16s %12s %12s %14s\n", "trojan fraction",
                    "committed", "recoveries", "throughput/s");
        Rng rng(20140301);
        double clean_tput = 0.0, worst_tput = 0.0;
        for (double fraction : {0.0, 0.01, 0.05, 0.1, 0.2, 0.5}) {
            pbft::PbftCluster cluster;
            const pbft::WorkloadResult r =
                cluster.RunWorkload(50000, fraction, &rng);
            std::printf("  %15.0f%% %12llu %12llu %14.0f\n",
                        100 * fraction,
                        static_cast<unsigned long long>(r.committed),
                        static_cast<unsigned long long>(r.recoveries),
                        r.ThroughputOpsPerSec());
            if (fraction == 0.0)
                clean_tput = r.ThroughputOpsPerSec();
            worst_tput = r.ThroughputOpsPerSec();
        }
        std::printf("  degradation at 50%% Trojans: %.1fx\n",
                    clean_tput / worst_tput);
        ok &= clean_tput / worst_tput > 10.0;
        bench::Note("paper: incorrect nodes can significantly degrade "
                    "system performance by triggering recovery (the "
                    "Clement et al. MAC attack)");

        // The fix: verification at the primary stops the attack.
        pbft::ReplicaChecks fixed;
        fixed.verify_mac = true;
        pbft::PbftCluster fixed_cluster(pbft::ClusterCosts{}, fixed);
        Rng rng2(7);
        const pbft::WorkloadResult fr =
            fixed_cluster.RunWorkload(50000, 0.5, &rng2);
        std::printf("  fixed primary at 50%% Trojans: %.0f ops/s "
                    "(%llu rejected up front, %llu recoveries)\n",
                    fr.ThroughputOpsPerSec(),
                    static_cast<unsigned long long>(
                        fr.rejected_at_primary),
                    static_cast<unsigned long long>(fr.recoveries));
        ok &= fr.recoveries == 0;
    }

    std::printf("\nRESULT: %s\n",
                ok ? "PASS (all three impact scenarios reproduced)"
                   : "MISMATCH");
    return ok ? 0 : 1;
}
