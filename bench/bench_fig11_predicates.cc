// Achilles reproduction -- Figure 11.
//
// "Number of client path predicates that can trigger each execution
// path in the FSP server, as a function of the length of the path."
// The paper's curve starts at ~5,000 predicates (their client predicate
// count) and decays toward 1 as server paths specialize; ours starts at
// 32 (8 utilities x 4 path lengths under the length<5 bound) and must
// show the same monotone-decay shape: longer execution paths are
// triggered by fewer client predicates, so Trojan checks get cheaper.
//
// Ablation grids (both self-gating on witness identity and query
// counts, both emitting JSON for the CI trend gate):
//   --cores        unsat-core-guided predicate dropping on/off
//   --prune-index  the shared pruning knowledge base (cross-state
//                  Trojan-core subsumption + differentFrom overlay)
//                  on/off
//   --batch        concrete pre-filtering against the solver's standing
//                  model + the batched all-sat sweep over the match
//                  stream, both toggles on/off together

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench/bench_util.h"
#include "proto/synth/synth_family.h"
#include "core/achilles.h"
#include "core/path_predicate.h"
#include "proto/fsp/fsp_protocol.h"

using namespace achilles;

namespace {

/** Witness summary comparable across independent runs/configs. */
using WitnessSummary =
    std::tuple<std::string, std::vector<uint8_t>, uint64_t>;

struct ComparePoint
{
    int64_t solver_queries = 0;  ///< match + Trojan queries issued
    int64_t core_drops = 0;      ///< match queries skipped via cores
    int64_t trojan_subsumed = 0; ///< Trojan queries skipped via cores
    std::vector<WitnessSummary> witnesses;
};

/**
 * One full pipeline run for the core-ablation grid. Cores are toggled
 * at both layers (SolverConfig::enable_cores so the no-cores run pays
 * no extraction cost, ServerExplorerConfig::use_unsat_cores for the
 * consumption), differentFrom independently so the grid can separate
 * what the static matrix already covers from what only the dynamic
 * cores find.
 */
ComparePoint
RunComparePoint(const std::vector<const symexec::Program *> &clients,
                const symexec::Program *server,
                const core::MessageLayout &layout, size_t workers,
                bool cores, bool difffrom)
{
    smt::ExprContext ctx;
    smt::SolverConfig solver_config;
    solver_config.enable_cores = cores;
    smt::Solver solver(&ctx, solver_config);

    core::AchillesConfig config;
    config.layout = layout;
    config.clients = clients;
    config.server = server;
    config.server_config.engine.num_workers = workers;
    config.server_config.use_unsat_cores = cores;
    config.server_config.use_different_from = difffrom;
    config.compute_different_from = difffrom;
    const core::AchillesResult result =
        core::RunAchilles(&ctx, &solver, config);

    ComparePoint point;
    point.solver_queries =
        result.server.stats.Get("explorer.match_queries") +
        result.server.stats.Get("explorer.trojan_queries");
    point.core_drops = result.server.stats.Get("explorer.core_drops");
    point.trojan_subsumed =
        result.server.stats.Get("explorer.trojan_core_subsumed");
    core::CanonicalHasher hasher(&ctx);
    for (const core::TrojanWitness &t : result.server.trojans) {
        point.witnesses.emplace_back(t.accept_label, t.concrete,
                                     hasher.HashExprs(t.definition));
    }
    std::sort(point.witnesses.begin(), point.witnesses.end());
    return point;
}

/**
 * One pipeline run for the --prune-index ablation: the shared pruning
 * knowledge base (cross-state Trojan-core subsumption + differentFrom
 * overlay) toggled at the explorer while cores and the static matrix
 * stay on (production config).
 */
struct PrunePoint
{
    int64_t solver_queries = 0;   ///< match + Trojan queries issued
    int64_t trojan_subsumed = 0;  ///< Trojan queries skipped via index
    int64_t overlay_drops = 0;    ///< match queries skipped via overlay
    int64_t cross_hits = 0;       ///< hits on another worker's entry
    std::vector<WitnessSummary> witnesses;
};

PrunePoint
RunPrunePoint(const std::vector<const symexec::Program *> &clients,
              const symexec::Program *server,
              const core::MessageLayout &layout, size_t workers,
              bool prune_index)
{
    smt::ExprContext ctx;
    smt::Solver solver(&ctx);

    core::AchillesConfig config;
    config.layout = layout;
    config.clients = clients;
    config.server = server;
    config.server_config.engine.num_workers = workers;
    config.server_config.use_prune_index = prune_index;
    const core::AchillesResult result =
        core::RunAchilles(&ctx, &solver, config);

    PrunePoint point;
    point.solver_queries =
        result.server.stats.Get("explorer.match_queries") +
        result.server.stats.Get("explorer.trojan_queries");
    point.trojan_subsumed =
        result.server.stats.Get("explorer.trojan_core_subsumed");
    point.overlay_drops =
        result.server.stats.Get("explorer.overlay_drops");
    point.cross_hits =
        result.server.stats.Get("prune.cross_worker_hits");
    core::CanonicalHasher hasher(&ctx);
    for (const core::TrojanWitness &t : result.server.trojans) {
        point.witnesses.emplace_back(t.accept_label, t.concrete,
                                     hasher.HashExprs(t.definition));
    }
    std::sort(point.witnesses.begin(), point.witnesses.end());
    return point;
}

/**
 * The --prune-index comparison: the unified pruning knowledge base must
 * reduce solver queries on the FSP Trojan stream (the overlay skips
 * repeat predicate-match refutations) and on the guarded protocol (the
 * cross-state Trojan-core index subsumes sibling regions' dead states),
 * with bitwise-identical witness sets at every worker count in both
 * configurations.
 */
bool
RunPruneIndexComparison(size_t num_clients)
{
    bench::Header("PruneIndex -- solver queries with/without the shared "
                  "pruning knowledge base");
    const std::vector<size_t> worker_counts{1, 2, 4, 8};
    bool witnesses_identical = true;
    bool never_more = true;      // <= everywhere (hits only skip work)
    bool serial_fewer = true;    // strict < at workers=1, both sections

    const std::vector<symexec::Program> fsp_clients =
        fsp::MakeAllClients();
    std::vector<const symexec::Program *> fsp_client_ptrs;
    for (size_t i = 0; i < fsp_clients.size() && i < num_clients; ++i)
        fsp_client_ptrs.push_back(&fsp_clients[i]);
    const symexec::Program fsp_server = fsp::MakeServer();
    const core::MessageLayout fsp_layout = fsp::MakeLayout();

    const symexec::Program guarded_client = synth::MakeGuardedClient(2);
    const std::vector<const symexec::Program *> guarded_clients{
        &guarded_client};
    const symexec::Program guarded_server =
        synth::MakeGuardedServer(2, 8);
    const core::MessageLayout guarded_layout = synth::MakeGuardedLayout();

    struct Section
    {
        const char *title;
        const char *tag;
        const std::vector<const symexec::Program *> *clients;
        const symexec::Program *server;
        const core::MessageLayout *layout;
    };
    const Section sections[] = {
        {"FSP (overlay: runtime single-field cores densify "
         "differentFrom)",
         "fsp", &fsp_client_ptrs, &fsp_server, &fsp_layout},
        {"guarded protocol (cross-state Trojan cores: sibling regions' "
         "dead states subsume each other)",
         "guarded", &guarded_clients, &guarded_server, &guarded_layout},
    };

    for (const Section &section : sections) {
        bench::Section(section.title);
        std::printf("  %8s %12s %12s %11s %9s %9s %7s\n", "workers",
                    "q(no-index)", "q(index)", "reduction", "overlay",
                    "subsumed", "cross");
        for (size_t w : worker_counts) {
            const PrunePoint off = RunPrunePoint(
                *section.clients, section.server, *section.layout, w,
                /*prune_index=*/false);
            const PrunePoint on = RunPrunePoint(
                *section.clients, section.server, *section.layout, w,
                /*prune_index=*/true);
            const double reduction =
                off.solver_queries > 0
                    ? 100.0 *
                          static_cast<double>(off.solver_queries -
                                              on.solver_queries) /
                          static_cast<double>(off.solver_queries)
                    : 0.0;
            const double overlay_hit_rate =
                on.solver_queries + on.overlay_drops > 0
                    ? 100.0 * static_cast<double>(on.overlay_drops) /
                          static_cast<double>(on.solver_queries +
                                              on.overlay_drops)
                    : 0.0;
            std::printf(
                "  %8zu %12lld %12lld %10.1f%% %9lld %9lld %7lld\n", w,
                static_cast<long long>(off.solver_queries),
                static_cast<long long>(on.solver_queries), reduction,
                static_cast<long long>(on.overlay_drops),
                static_cast<long long>(on.trojan_subsumed),
                static_cast<long long>(on.cross_hits));
            witnesses_identical &= on.witnesses == off.witnesses;
            never_more &= on.solver_queries <= off.solver_queries;
            if (w == 1)
                serial_fewer &= on.solver_queries < off.solver_queries;

            const std::string suffix = std::string("/") + section.tag +
                                       "/workers=" + std::to_string(w);
            bench::JsonRecorder::Instance().Record(
                "fig11.prune_index_query_reduction_pct" + suffix,
                reduction);
            bench::JsonRecorder::Instance().Record(
                "fig11.overlay_hit_rate" + suffix, overlay_hit_rate);
            bench::JsonRecorder::Instance().Record(
                "fig11.prune_index_cross_hits" + suffix,
                static_cast<double>(on.cross_hits));
        }
    }
    bench::Metric("fig11.prune_witness_sets_identical",
                  witnesses_identical ? 1 : 0);
    bench::Note("hits answer exactly what the skipped query would have "
                "answered, so the index can reduce queries but never "
                "change a verdict; cross counts hits on entries another "
                "worker recorded (0 in serial runs)");

    const bool ok = witnesses_identical && never_more && serial_fewer;
    std::printf("\nPRUNE-INDEX: %s\n",
                ok ? "PASS (fewer queries, identical witness sets)"
                   : "MISMATCH");
    return ok;
}

/**
 * One pipeline run for the --batch ablation: the concrete pre-filter
 * and the batched all-sat sweep toggled together at the explorer.
 * Cores are off in BOTH arms: the serial arm then issues exactly one
 * match query per undecided live guard, which the batch arm's round
 * count is provably <= (every SAT round decides at least one pending
 * group, and the terminal round decides the rest). With cores on the
 * serial arm skips queries the sweep still passes over, and the <=
 * gate would compare unlike quantities.
 */
struct BatchPoint
{
    int64_t solver_queries = 0;   ///< match + Trojan queries issued
    int64_t match_queries = 0;    ///< solver passes on the match stream
    int64_t prefilter_hits = 0;   ///< guards answered from the model
    int64_t batch_rounds = 0;     ///< all-sat rounds across all sweeps
    std::vector<WitnessSummary> witnesses;
};

BatchPoint
RunBatchPoint(const std::vector<const symexec::Program *> &clients,
              const symexec::Program *server,
              const core::MessageLayout &layout, size_t workers,
              bool batch)
{
    smt::ExprContext ctx;
    smt::SolverConfig solver_config;
    solver_config.enable_cores = false;
    smt::Solver solver(&ctx, solver_config);

    core::AchillesConfig config;
    config.layout = layout;
    config.clients = clients;
    config.server = server;
    config.server_config.engine.num_workers = workers;
    config.server_config.use_unsat_cores = false;
    config.server_config.use_concrete_prefilter = batch;
    config.server_config.use_batch_sweep = batch;
    const core::AchillesResult result =
        core::RunAchilles(&ctx, &solver, config);

    BatchPoint point;
    point.match_queries =
        result.server.stats.Get("explorer.match_queries");
    point.solver_queries =
        point.match_queries +
        result.server.stats.Get("explorer.trojan_queries");
    point.prefilter_hits =
        result.server.stats.Get("explorer.prefilter_hits") +
        result.server.stats.Get("explorer.prefilter_trojan_hits");
    point.batch_rounds =
        result.server.stats.Get("explorer.batch_rounds");
    core::CanonicalHasher hasher(&ctx);
    for (const core::TrojanWitness &t : result.server.trojans) {
        point.witnesses.emplace_back(t.accept_label, t.concrete,
                                     hasher.HashExprs(t.definition));
    }
    std::sort(point.witnesses.begin(), point.witnesses.end());
    return point;
}

/**
 * The --batch comparison: at every worker count the pre-filter plus
 * batched sweep must issue no more solver queries than the serial
 * per-guard stream -- strictly fewer at workers=1 on both protocols --
 * with bitwise-identical witness sets in every cell (the pre-filter
 * only short-circuits kSat answers a fresh solver would also give, and
 * the unbudgeted sweep's per-guard verdicts are exact).
 */
bool
RunBatchComparison(size_t num_clients)
{
    bench::Header("Batched Trojan checking -- solver queries with the "
                  "concrete pre-filter + all-sat sweep vs the serial "
                  "per-guard stream");
    const std::vector<size_t> worker_counts{1, 2, 4, 8};
    bool witnesses_identical = true;
    bool never_more = true;    // <= everywhere
    bool serial_fewer = true;  // strict < at workers=1, both sections

    const std::vector<symexec::Program> fsp_clients =
        fsp::MakeAllClients();
    std::vector<const symexec::Program *> fsp_client_ptrs;
    for (size_t i = 0; i < fsp_clients.size() && i < num_clients; ++i)
        fsp_client_ptrs.push_back(&fsp_clients[i]);
    const symexec::Program fsp_server = fsp::MakeServer();
    const core::MessageLayout fsp_layout = fsp::MakeLayout();

    const symexec::Program guarded_client = synth::MakeGuardedClient(2);
    const std::vector<const symexec::Program *> guarded_clients{
        &guarded_client};
    const symexec::Program guarded_server =
        synth::MakeGuardedServer(2, 8);
    const core::MessageLayout guarded_layout = synth::MakeGuardedLayout();

    struct Section
    {
        const char *title;
        const char *tag;
        const std::vector<const symexec::Program *> *clients;
        const symexec::Program *server;
        const core::MessageLayout *layout;
    };
    const Section sections[] = {
        {"FSP (standing models answer repeat-satisfiable guards; the "
         "sweep compresses the residue)",
         "fsp", &fsp_client_ptrs, &fsp_server, &fsp_layout},
        {"guarded protocol (deep guard nests: one search tree decides "
         "whole sibling groups per round)",
         "guarded", &guarded_clients, &guarded_server, &guarded_layout},
    };

    for (const Section &section : sections) {
        bench::Section(section.title);
        std::printf("  %8s %12s %12s %11s %9s %8s\n", "workers",
                    "q(serial)", "q(batch)", "reduction", "prefilt",
                    "rounds");
        std::vector<WitnessSummary> reference;
        bool have_reference = false;
        for (size_t w : worker_counts) {
            const BatchPoint off = RunBatchPoint(
                *section.clients, section.server, *section.layout, w,
                /*batch=*/false);
            const BatchPoint on = RunBatchPoint(
                *section.clients, section.server, *section.layout, w,
                /*batch=*/true);
            const double reduction =
                off.solver_queries > 0
                    ? 100.0 *
                          static_cast<double>(off.solver_queries -
                                              on.solver_queries) /
                          static_cast<double>(off.solver_queries)
                    : 0.0;
            const double prefilter_hit_rate =
                on.prefilter_hits + on.match_queries > 0
                    ? 100.0 * static_cast<double>(on.prefilter_hits) /
                          static_cast<double>(on.prefilter_hits +
                                              on.match_queries)
                    : 0.0;
            std::printf("  %8zu %12lld %12lld %10.1f%% %9lld %8lld\n", w,
                        static_cast<long long>(off.solver_queries),
                        static_cast<long long>(on.solver_queries),
                        reduction,
                        static_cast<long long>(on.prefilter_hits),
                        static_cast<long long>(on.batch_rounds));
            witnesses_identical &= on.witnesses == off.witnesses;
            // Worker-count invariance, both arms: one canonical witness
            // set per protocol across the whole grid.
            if (!have_reference) {
                reference = off.witnesses;
                have_reference = true;
            }
            witnesses_identical &= off.witnesses == reference;
            never_more &= on.solver_queries <= off.solver_queries;
            if (w == 1)
                serial_fewer &= on.solver_queries < off.solver_queries;

            const std::string suffix = std::string("/") + section.tag +
                                       "/workers=" + std::to_string(w);
            bench::JsonRecorder::Instance().Record(
                "fig11.batch_query_reduction_pct" + suffix, reduction);
            bench::JsonRecorder::Instance().Record(
                "fig11.prefilter_hit_rate" + suffix, prefilter_hit_rate);
            bench::JsonRecorder::Instance().Record(
                "fig11.batch_rounds" + suffix,
                static_cast<double>(on.batch_rounds));
        }
    }
    bench::Metric("fig11.batch_witness_sets_identical",
                  witnesses_identical ? 1 : 0);
    bench::Note("the pre-filter answers a guard only when the standing "
                "model concretely satisfies path and guard (a proof of "
                "kSat); the sweep's rounds replace per-guard queries, "
                "and each SAT round decides every pending guard the "
                "round's model happens to satisfy");

    const bool ok = witnesses_identical && never_more && serial_fewer;
    std::printf("\nBATCH: %s\n",
                ok ? "PASS (fewer queries, identical witness sets)"
                   : "MISMATCH");
    return ok;
}

// ---------------------------------------------------------------------
// Compound-dispatch protocol: the workload where cores strictly beat
// the static differentFrom matrix even when the matrix is on. Pairs of
// client subcommands share one command byte, and the server validates
// command and argument in a single compound branch. The branch
// constraint touches two fields, so the matrix's single-field
// transitive rule never applies; the unsat core isolates the shared
// command equality and drops the partner predicate without a query.
// ---------------------------------------------------------------------

constexpr uint32_t kCompoundCmds = 8;  // 2 preds per cmd -> 16 preds

core::MessageLayout
MakeCompoundLayout()
{
    core::MessageLayout layout(3);
    layout.AddField("cmd", 0, 1).AddField("arg", 1, 1).AddField("tag", 2,
                                                                 1);
    return layout;
}

symexec::Program
MakeCompoundClient()
{
    using symexec::ProgramBuilder;
    using symexec::Val;
    ProgramBuilder b("compound-client");
    b.Function("main", {}, 0, [&] {
        Val which = b.ReadInput("which", 8);
        Val arg = b.ReadInput("arg", 8);
        b.Array("msg", 8, 3);
        for (uint32_t i = 0; i < 2 * kCompoundCmds; ++i) {
            b.If(which == i, [&] {
                const uint32_t cmd = i / 2;
                const uint64_t lo = 20 * cmd + 8 * (i % 2);
                b.If(arg < lo, [&] { b.Halt(); });
                b.If(arg > lo + 12, [&] { b.Halt(); });
                b.Store("msg", Val::Const(8, 0), Val::Const(8, cmd));
                b.Store("msg", Val::Const(8, 1), arg);
                // Integrity tag over the argument: arg and tag share a
                // variable, so neither is an independent field.
                b.Store("msg", Val::Const(8, 2),
                        arg * Val::Const(8, 13) +
                            Val::Const(8, (7 * cmd) & 0xff));
                b.SendMessage("msg");
            });
        }
    });
    return b.Build();
}

symexec::Program
MakeCompoundServer()
{
    using symexec::ProgramBuilder;
    using symexec::Val;
    ProgramBuilder b("compound-server");
    b.Function("main", {}, 0, [&] {
        b.ReceiveMessage("msg", 3);
        Val cmd = b.Local(
            "cmd", 8, ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, 0)));
        Val arg = b.Local(
            "arg", 8, ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, 1)));
        // One compound validity check per handler, the way parsers fuse
        // dispatch and sanity tests; the tag is never validated (the
        // Trojan source).
        for (uint32_t k = 0; k < kCompoundCmds; ++k) {
            b.If((cmd == k) && (arg <= 200),
                 [&] { b.MarkAccept("h" + std::to_string(k)); });
        }
        b.MarkReject("bad");
    });
    return b.Build();
}

/**
 * The --cores comparison: at every worker count, the explorer with
 * core-guided dropping must issue fewer solver queries than without,
 * and the Trojan witness sets must be bitwise identical (cores only
 * accelerate drops that are already sound). Run both with the
 * differentFrom matrix on (production config; cores add whatever the
 * single-field rule missed) and off (isolation; the dynamic cores must
 * recover the transitive drops the static matrix would have given).
 */
bool
RunCoreComparison(size_t num_clients)
{
    bench::Header("Core-guided predicate dropping -- solver queries "
                  "with/without unsat cores");
    const std::vector<size_t> worker_counts{1, 2, 4, 8};
    bool witnesses_identical = true;
    bool fsp_no_regression = true;     // <= (single-field branches: the
                                       // matrix already finds every drop)
    bool fsp_isolation_fewer = true;   // strict <, matrix off
    bool compound_fewer = true;        // strict <, matrix ON

    const std::vector<symexec::Program> fsp_clients =
        fsp::MakeAllClients();
    std::vector<const symexec::Program *> fsp_client_ptrs;
    for (size_t i = 0; i < fsp_clients.size() && i < num_clients; ++i)
        fsp_client_ptrs.push_back(&fsp_clients[i]);
    const symexec::Program fsp_server = fsp::MakeServer();
    const core::MessageLayout fsp_layout = fsp::MakeLayout();

    const symexec::Program compound_client = MakeCompoundClient();
    const std::vector<const symexec::Program *> compound_clients{
        &compound_client};
    const symexec::Program compound_server = MakeCompoundServer();
    const core::MessageLayout compound_layout = MakeCompoundLayout();

    struct Section
    {
        const char *title;
        const char *tag;
        const std::vector<const symexec::Program *> *clients;
        const symexec::Program *server;
        const core::MessageLayout *layout;
        bool difffrom;
        bool *gate;
        bool strict;
    };
    const Section sections[] = {
        {"FSP, differentFrom matrix ON (production config)", "fsp",
         &fsp_client_ptrs, &fsp_server, &fsp_layout, true,
         &fsp_no_regression, false},
        {"FSP, differentFrom matrix OFF (core isolation: the dynamic "
         "drops must recover the matrix's)",
         "fsp_nodifffrom", &fsp_client_ptrs, &fsp_server, &fsp_layout,
         false, &fsp_isolation_fewer, true},
        {"compound dispatch, matrix ON (multi-field branches: only "
         "cores can drop transitively)",
         "compound", &compound_clients, &compound_server,
         &compound_layout, true, &compound_fewer, true},
    };

    for (const Section &section : sections) {
        bench::Section(section.title);
        std::printf("  %8s %12s %12s %11s %10s %9s\n", "workers",
                    "q(no-cores)", "q(cores)", "reduction", "core-drop",
                    "subsumed");
        for (size_t w : worker_counts) {
            const ComparePoint off = RunComparePoint(
                *section.clients, section.server, *section.layout, w,
                /*cores=*/false, section.difffrom);
            const ComparePoint on = RunComparePoint(
                *section.clients, section.server, *section.layout, w,
                /*cores=*/true, section.difffrom);
            const double reduction =
                off.solver_queries > 0
                    ? 100.0 *
                          static_cast<double>(off.solver_queries -
                                              on.solver_queries) /
                          static_cast<double>(off.solver_queries)
                    : 0.0;
            std::printf("  %8zu %12lld %12lld %10.1f%% %10lld %9lld\n", w,
                        static_cast<long long>(off.solver_queries),
                        static_cast<long long>(on.solver_queries),
                        reduction,
                        static_cast<long long>(on.core_drops),
                        static_cast<long long>(on.trojan_subsumed));
            witnesses_identical &= on.witnesses == off.witnesses;
            *section.gate &=
                section.strict
                    ? on.solver_queries < off.solver_queries
                    : on.solver_queries <= off.solver_queries;

            const std::string suffix = std::string("/") + section.tag +
                                       "/workers=" + std::to_string(w);
            bench::JsonRecorder::Instance().Record(
                "fig11.solver_queries_nocores" + suffix,
                static_cast<double>(off.solver_queries));
            bench::JsonRecorder::Instance().Record(
                "fig11.solver_queries_cores" + suffix,
                static_cast<double>(on.solver_queries));
            bench::JsonRecorder::Instance().Record(
                "fig11.core_query_reduction_pct" + suffix, reduction);
        }
    }
    bench::Metric("fig11.core_witness_sets_identical",
                  witnesses_identical ? 1 : 0);
    bench::Note("FSP's branches are all single-field, so with the "
                "matrix on the cores merely tie it; the compound "
                "protocol's fused dispatch+sanity branches are the "
                "shape the matrix must skip and cores still prune");

    const bool ok = witnesses_identical && fsp_no_regression &&
                    fsp_isolation_fewer && compound_fewer;
    std::printf("\nCORES: %s\n",
                ok ? "PASS (fewer queries, identical witness sets)"
                   : "MISMATCH");
    return ok;
}

}  // namespace

int
main(int argc, char **argv)
{
    bench::ParseBenchArgs(argc, argv);
    bool compare = false;
    bool compare_prune = false;
    bool compare_batch = false;
    bool use_cores = true;
    size_t num_clients = 8;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cores") == 0)
            compare = true;
        else if (std::strcmp(argv[i], "--no-cores") == 0)
            use_cores = false;
        else if (std::strcmp(argv[i], "--prune-index") == 0)
            compare_prune = true;
        else if (std::strcmp(argv[i], "--batch") == 0)
            compare_batch = true;
        else if (std::strcmp(argv[i], "--json") == 0)
            compare = true;
        else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc)
            num_clients = static_cast<size_t>(std::atoi(argv[i + 1]));
    }

    bench::Header("Figure 11 -- client path predicates matching each "
                  "server path vs path length (FSP)");

    smt::ExprContext ctx;
    smt::SolverConfig solver_config;
    solver_config.enable_cores = use_cores;
    smt::Solver solver(&ctx, solver_config);

    const std::vector<symexec::Program> clients = fsp::MakeAllClients();
    const symexec::Program server = fsp::MakeServer();

    core::AchillesConfig config;
    config.layout = fsp::MakeLayout();
    for (const symexec::Program &c : clients)
        config.clients.push_back(&c);
    config.server = &server;
    // Disable pruning so the samples cover the whole exploration tree,
    // like the paper's figure (which plots incomplete paths too).
    config.server_config.prune_trojan_free_states = false;
    config.server_config.use_unsat_cores = use_cores;
    const core::AchillesResult result =
        core::RunAchilles(&ctx, &solver, config);

    // Aggregate the (path length, live predicates) samples.
    std::map<size_t, std::vector<size_t>> by_length;
    for (const core::LiveSetSample &s : result.server.live_samples)
        by_length[s.path_length].push_back(s.live_predicates);

    bench::Section("per-length distribution of matching predicates");
    std::printf("%8s %10s %10s %10s %10s\n", "length", "samples", "min",
                "avg", "max");
    double first_avg = 0.0, last_avg = 0.0;
    size_t deep_max = 0;
    bool first = true;
    for (const auto &[length, samples] : by_length) {
        const size_t min_v =
            *std::min_element(samples.begin(), samples.end());
        const size_t max_v =
            *std::max_element(samples.begin(), samples.end());
        double avg = 0;
        for (size_t v : samples)
            avg += static_cast<double>(v);
        avg /= static_cast<double>(samples.size());
        std::printf("%8zu %10zu %10zu %10.1f %10zu\n", length,
                    samples.size(), min_v, avg, max_v);
        if (first) {
            first_avg = avg;
            first = false;
        }
        last_avg = avg;
        deep_max = max_v;
    }

    bench::Note("paper: starts at ~5,000 matching expressions (their "
                "client predicate count; ours is 32 at the same bound) "
                "and decays toward a handful as paths lengthen; the "
                "scatter is not strictly monotone in either version");
    bench::Note("the decay is what makes the per-branch Trojan check "
                "tractable (Section 3.3)");

    const size_t total_preds = result.client_predicate.paths.size();
    // Shape: deep paths match a small fraction of the predicate set.
    const bool ok = !by_length.empty() && last_avg < first_avg &&
                    deep_max * 4 <= total_preds;

    // Scaled variant: the synthetic protocol with 64 client path
    // predicates and binary command dispatch shows the same curve at a
    // magnitude closer to the paper's (their ~5,000 predicates).
    bench::Section("scaled variant (synthetic protocol, N = 64)");
    const symexec::Program sclient = synth::MakeClient(64);
    const symexec::Program sserver = synth::MakeServer(64);
    core::AchillesConfig sconfig;
    sconfig.layout = synth::MakeLayout();
    sconfig.clients = {&sclient};
    sconfig.server = &sserver;
    sconfig.server_config.prune_trojan_free_states = false;
    sconfig.server_config.use_unsat_cores = use_cores;
    const core::AchillesResult sresult =
        core::RunAchilles(&ctx, &solver, sconfig);
    std::map<size_t, std::pair<double, size_t>> sagg;  // len -> sum,count
    for (const core::LiveSetSample &s : sresult.server.live_samples) {
        sagg[s.path_length].first += static_cast<double>(
            s.live_predicates);
        sagg[s.path_length].second += 1;
    }
    std::printf("%8s %10s\n", "length", "avg");
    for (const auto &[length, sum_count] : sagg) {
        if (length % 2 == 0 || length < 4) {
            std::printf("%8zu %10.1f\n", length,
                        sum_count.first / sum_count.second);
        }
    }
    bench::Note("binary dispatch halves the live set per level: "
                "64 -> 32 -> 16 -> ... -> 1, the paper's decay at "
                "larger magnitude");

    std::printf("\nRESULT: %s (avg matching predicates decays "
                "%.1f -> %.1f; deepest max %zu of %zu)\n",
                ok ? "PASS (shape reproduced)" : "MISMATCH", first_avg,
                last_avg, deep_max, total_preds);

    // The --cores/--json ablation grid; its verdict gates the process
    // (CI runs it and fails on a witness diff or a query regression).
    bool cores_ok = true;
    if (compare)
        cores_ok = RunCoreComparison(num_clients);
    // The --prune-index ablation: the shared pruning knowledge base
    // on/off, gated on witness identity and a query reduction.
    bool prune_ok = true;
    if (compare_prune)
        prune_ok = RunPruneIndexComparison(num_clients);
    // The --batch ablation: concrete pre-filter + batched all-sat
    // sweep on/off, gated on witness identity and a query reduction.
    bool batch_ok = true;
    if (compare_batch)
        batch_ok = RunBatchComparison(num_clients);
    bench::JsonRecorder::Instance().Flush();
    return ok && cores_ok && prune_ok && batch_ok ? 0 : 1;
}
