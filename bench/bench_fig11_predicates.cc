// Achilles reproduction -- Figure 11.
//
// "Number of client path predicates that can trigger each execution
// path in the FSP server, as a function of the length of the path."
// The paper's curve starts at ~5,000 predicates (their client predicate
// count) and decays toward 1 as server paths specialize; ours starts at
// 32 (8 utilities x 4 path lengths under the length<5 bound) and must
// show the same monotone-decay shape: longer execution paths are
// triggered by fewer client predicates, so Trojan checks get cheaper.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "bench/synth_protocol.h"
#include "core/achilles.h"
#include "proto/fsp/fsp_protocol.h"

using namespace achilles;

int
main()
{
    bench::Header("Figure 11 -- client path predicates matching each "
                  "server path vs path length (FSP)");

    smt::ExprContext ctx;
    smt::Solver solver(&ctx);

    const std::vector<symexec::Program> clients = fsp::MakeAllClients();
    const symexec::Program server = fsp::MakeServer();

    core::AchillesConfig config;
    config.layout = fsp::MakeLayout();
    for (const symexec::Program &c : clients)
        config.clients.push_back(&c);
    config.server = &server;
    // Disable pruning so the samples cover the whole exploration tree,
    // like the paper's figure (which plots incomplete paths too).
    config.server_config.prune_trojan_free_states = false;
    const core::AchillesResult result =
        core::RunAchilles(&ctx, &solver, config);

    // Aggregate the (path length, live predicates) samples.
    std::map<size_t, std::vector<size_t>> by_length;
    for (const core::LiveSetSample &s : result.server.live_samples)
        by_length[s.path_length].push_back(s.live_predicates);

    bench::Section("per-length distribution of matching predicates");
    std::printf("%8s %10s %10s %10s %10s\n", "length", "samples", "min",
                "avg", "max");
    double first_avg = 0.0, last_avg = 0.0;
    size_t deep_max = 0;
    bool first = true;
    for (const auto &[length, samples] : by_length) {
        const size_t min_v =
            *std::min_element(samples.begin(), samples.end());
        const size_t max_v =
            *std::max_element(samples.begin(), samples.end());
        double avg = 0;
        for (size_t v : samples)
            avg += static_cast<double>(v);
        avg /= static_cast<double>(samples.size());
        std::printf("%8zu %10zu %10zu %10.1f %10zu\n", length,
                    samples.size(), min_v, avg, max_v);
        if (first) {
            first_avg = avg;
            first = false;
        }
        last_avg = avg;
        deep_max = max_v;
    }

    bench::Note("paper: starts at ~5,000 matching expressions (their "
                "client predicate count; ours is 32 at the same bound) "
                "and decays toward a handful as paths lengthen; the "
                "scatter is not strictly monotone in either version");
    bench::Note("the decay is what makes the per-branch Trojan check "
                "tractable (Section 3.3)");

    const size_t total_preds = result.client_predicate.paths.size();
    // Shape: deep paths match a small fraction of the predicate set.
    const bool ok = !by_length.empty() && last_avg < first_avg &&
                    deep_max * 4 <= total_preds;

    // Scaled variant: the synthetic protocol with 64 client path
    // predicates and binary command dispatch shows the same curve at a
    // magnitude closer to the paper's (their ~5,000 predicates).
    bench::Section("scaled variant (synthetic protocol, N = 64)");
    const symexec::Program sclient = synth::MakeClient(64);
    const symexec::Program sserver = synth::MakeServer(64);
    core::AchillesConfig sconfig;
    sconfig.layout = synth::MakeLayout();
    sconfig.clients = {&sclient};
    sconfig.server = &sserver;
    sconfig.server_config.prune_trojan_free_states = false;
    const core::AchillesResult sresult =
        core::RunAchilles(&ctx, &solver, sconfig);
    std::map<size_t, std::pair<double, size_t>> sagg;  // len -> sum,count
    for (const core::LiveSetSample &s : sresult.server.live_samples) {
        sagg[s.path_length].first += static_cast<double>(
            s.live_predicates);
        sagg[s.path_length].second += 1;
    }
    std::printf("%8s %10s\n", "length", "avg");
    for (const auto &[length, sum_count] : sagg) {
        if (length % 2 == 0 || length < 4) {
            std::printf("%8zu %10.1f\n", length,
                        sum_count.first / sum_count.second);
        }
    }
    bench::Note("binary dispatch halves the live set per level: "
                "64 -> 32 -> 16 -> ... -> 1, the paper's decay at "
                "larger magnitude");

    std::printf("\nRESULT: %s (avg matching predicates decays "
                "%.1f -> %.1f; deepest max %zu of %zu)\n",
                ok ? "PASS (shape reproduced)" : "MISMATCH", first_avg,
                last_avg, deep_max, total_preds);
    return ok ? 0 : 1;
}
