// Achilles reproduction -- SMT solver micro-benchmarks (ablation).
//
// Measures the design choices DESIGN.md calls out for the solver
// substrate: the interval fast path vs full bit-blasting, expression
// interning, and raw CDCL search on a hard instance.

#include <benchmark/benchmark.h>

#include "smt/bitblast.h"
#include "smt/eval.h"
#include "smt/interval.h"
#include "smt/sat.h"
#include "smt/solver.h"
#include "support/rng.h"

using namespace achilles;
using namespace achilles::smt;

namespace {

/** Range-conflict queries: the interval pre-check refutes these. */
void
BM_IntervalFastPathUnsat(benchmark::State &state)
{
    ExprContext ctx;
    ExprRef x = ctx.FreshVar("x", 32);
    std::vector<ExprRef> query{
        ctx.MakeUlt(x, ctx.MakeConst(32, 100)),
        ctx.MakeUge(x, ctx.MakeConst(32, 200)),
    };
    for (auto _ : state) {
        SolverConfig config;
        config.enable_cache = false;
        Solver solver(&ctx, config);
        benchmark::DoNotOptimize(solver.CheckSat(query));
    }
}
BENCHMARK(BM_IntervalFastPathUnsat);

/** The same queries with the interval check disabled: full bit-blast. */
void
BM_BitblastUnsat(benchmark::State &state)
{
    ExprContext ctx;
    ExprRef x = ctx.FreshVar("x", 32);
    std::vector<ExprRef> query{
        ctx.MakeUlt(x, ctx.MakeConst(32, 100)),
        ctx.MakeUge(x, ctx.MakeConst(32, 200)),
    };
    for (auto _ : state) {
        SolverConfig config;
        config.use_interval_check = false;
        config.enable_cache = false;
        Solver solver(&ctx, config);
        benchmark::DoNotOptimize(solver.CheckSat(query));
    }
}
BENCHMARK(BM_BitblastUnsat);

/** SAT query with arithmetic: multiply/add chains like CRC checks. */
void
BM_ArithmeticSat(benchmark::State &state)
{
    ExprContext ctx;
    ExprRef x = ctx.FreshVar("x", 16);
    ExprRef y = ctx.FreshVar("y", 16);
    ExprRef crc = ctx.MakeXor(
        ctx.MakeMul(x, ctx.MakeConst(16, 13)),
        ctx.MakeMul(y, ctx.MakeConst(16, 31)));
    std::vector<ExprRef> query{
        ctx.MakeEq(crc, ctx.MakeConst(16, 0x1234)),
        ctx.MakeUlt(x, ctx.MakeConst(16, 1000)),
    };
    for (auto _ : state) {
        SolverConfig config;
        config.enable_cache = false;
        Solver solver(&ctx, config);
        benchmark::DoNotOptimize(solver.CheckSat(query));
    }
}
BENCHMARK(BM_ArithmeticSat);

/** Trojan-query shape: conjunction of per-predicate disjunctions. */
void
BM_TrojanQueryShape(benchmark::State &state)
{
    const int num_preds = static_cast<int>(state.range(0));
    ExprContext ctx;
    std::vector<ExprRef> bytes;
    for (int i = 0; i < 8; ++i)
        bytes.push_back(ctx.FreshVar("m", 8));
    std::vector<ExprRef> query;
    Rng rng(99);
    for (int p = 0; p < num_preds; ++p) {
        std::vector<ExprRef> disj;
        for (int f = 0; f < 4; ++f) {
            disj.push_back(ctx.MakeNe(
                bytes[rng.Below(8)],
                ctx.MakeConst(8, rng.Below(256))));
        }
        query.push_back(ctx.MakeOrList(disj));
    }
    for (auto _ : state) {
        SolverConfig config;
        config.enable_cache = false;
        Solver solver(&ctx, config);
        benchmark::DoNotOptimize(solver.CheckSat(query));
    }
}
BENCHMARK(BM_TrojanQueryShape)->Arg(8)->Arg(32)->Arg(128);

/** Raw CDCL on pigeonhole (hard UNSAT; measures learning machinery). */
void
BM_SatPigeonhole(benchmark::State &state)
{
    const int holes = static_cast<int>(state.range(0));
    for (auto _ : state) {
        SatSolver solver;
        const int pigeons = holes + 1;
        std::vector<std::vector<uint32_t>> var(
            pigeons, std::vector<uint32_t>(holes));
        for (int p = 0; p < pigeons; ++p)
            for (int h = 0; h < holes; ++h)
                var[p][h] = solver.NewVar();
        for (int p = 0; p < pigeons; ++p) {
            std::vector<Lit> clause;
            for (int h = 0; h < holes; ++h)
                clause.emplace_back(var[p][h], false);
            solver.AddClause(clause);
        }
        for (int h = 0; h < holes; ++h)
            for (int p1 = 0; p1 < pigeons; ++p1)
                for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                    solver.AddBinary(Lit(var[p1][h], true),
                                     Lit(var[p2][h], true));
        benchmark::DoNotOptimize(solver.Solve());
    }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(7);

/** Expression interning throughput (hash-consing hit path). */
void
BM_ExprInterning(benchmark::State &state)
{
    ExprContext ctx;
    ExprRef x = ctx.FreshVar("x", 32);
    ExprRef c = ctx.MakeConst(32, 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ctx.MakeAdd(ctx.MakeMul(x, c), ctx.MakeConst(32, 3)));
    }
}
BENCHMARK(BM_ExprInterning);

/** Concrete evaluation over a deep shared DAG. */
void
BM_Evaluate(benchmark::State &state)
{
    ExprContext ctx;
    ExprRef x = ctx.FreshVar("x", 32);
    ExprRef acc = x;
    for (int i = 0; i < 64; ++i)
        acc = ctx.MakeXor(ctx.MakeMul(acc, ctx.MakeConst(32, 13)), x);
    Model model;
    model.Set(x->VarId(), 0xDEADBEEF);
    for (auto _ : state)
        benchmark::DoNotOptimize(Evaluate(acc, model));
}
BENCHMARK(BM_Evaluate);

}  // namespace

BENCHMARK_MAIN();
