// Achilles reproduction -- SMT solver micro-benchmarks (ablation).
//
// Measures the design choices DESIGN.md calls out for the solver
// substrate: the interval fast path vs full bit-blasting, expression
// interning, and raw CDCL search on a hard instance.
//
// Besides the Google Benchmark suite, an incremental-vs-fresh
// comparison runs on the shared-prefix Trojan-query workload (phase 2's
// dominant query shape: one pathS prefix, many ¬pathC_i iterated
// against it) whenever `--compare-incremental` or `--json <path>` is on
// the command line, `--trail-reuse` adds the assumption-trail-reuse
// ablation on the same stream, and `--portfolio` the query-class
// dispatch ablation (plus its budgeted racing slice); their metrics
// feed the perf-trajectory artifacts CI collects.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "smt/bitblast.h"
#include "smt/eval.h"
#include "smt/interval.h"
#include "smt/sat.h"
#include "smt/solver.h"
#include "support/rng.h"
#include "support/timer.h"

using namespace achilles;
using namespace achilles::smt;

namespace {

/** Range-conflict queries: the interval pre-check refutes these. */
void
BM_IntervalFastPathUnsat(benchmark::State &state)
{
    ExprContext ctx;
    ExprRef x = ctx.FreshVar("x", 32);
    std::vector<ExprRef> query{
        ctx.MakeUlt(x, ctx.MakeConst(32, 100)),
        ctx.MakeUge(x, ctx.MakeConst(32, 200)),
    };
    for (auto _ : state) {
        SolverConfig config;
        config.enable_cache = false;
        Solver solver(&ctx, config);
        benchmark::DoNotOptimize(solver.CheckSat(query));
    }
}
BENCHMARK(BM_IntervalFastPathUnsat);

/** The same queries with the interval check disabled: full bit-blast. */
void
BM_BitblastUnsat(benchmark::State &state)
{
    ExprContext ctx;
    ExprRef x = ctx.FreshVar("x", 32);
    std::vector<ExprRef> query{
        ctx.MakeUlt(x, ctx.MakeConst(32, 100)),
        ctx.MakeUge(x, ctx.MakeConst(32, 200)),
    };
    for (auto _ : state) {
        SolverConfig config;
        config.use_interval_check = false;
        config.enable_cache = false;
        Solver solver(&ctx, config);
        benchmark::DoNotOptimize(solver.CheckSat(query));
    }
}
BENCHMARK(BM_BitblastUnsat);

/** SAT query with arithmetic: multiply/add chains like CRC checks. */
void
BM_ArithmeticSat(benchmark::State &state)
{
    ExprContext ctx;
    ExprRef x = ctx.FreshVar("x", 16);
    ExprRef y = ctx.FreshVar("y", 16);
    ExprRef crc = ctx.MakeXor(
        ctx.MakeMul(x, ctx.MakeConst(16, 13)),
        ctx.MakeMul(y, ctx.MakeConst(16, 31)));
    std::vector<ExprRef> query{
        ctx.MakeEq(crc, ctx.MakeConst(16, 0x1234)),
        ctx.MakeUlt(x, ctx.MakeConst(16, 1000)),
    };
    for (auto _ : state) {
        SolverConfig config;
        config.enable_cache = false;
        Solver solver(&ctx, config);
        benchmark::DoNotOptimize(solver.CheckSat(query));
    }
}
BENCHMARK(BM_ArithmeticSat);

/** Trojan-query shape: conjunction of per-predicate disjunctions. */
void
BM_TrojanQueryShape(benchmark::State &state)
{
    const int num_preds = static_cast<int>(state.range(0));
    ExprContext ctx;
    std::vector<ExprRef> bytes;
    for (int i = 0; i < 8; ++i)
        bytes.push_back(ctx.FreshVar("m", 8));
    std::vector<ExprRef> query;
    Rng rng(99);
    for (int p = 0; p < num_preds; ++p) {
        std::vector<ExprRef> disj;
        for (int f = 0; f < 4; ++f) {
            disj.push_back(ctx.MakeNe(
                bytes[rng.Below(8)],
                ctx.MakeConst(8, rng.Below(256))));
        }
        query.push_back(ctx.MakeOrList(disj));
    }
    for (auto _ : state) {
        SolverConfig config;
        config.enable_cache = false;
        Solver solver(&ctx, config);
        benchmark::DoNotOptimize(solver.CheckSat(query));
    }
}
BENCHMARK(BM_TrojanQueryShape)->Arg(8)->Arg(32)->Arg(128);

/** Raw CDCL on pigeonhole (hard UNSAT; measures learning machinery). */
void
BM_SatPigeonhole(benchmark::State &state)
{
    const int holes = static_cast<int>(state.range(0));
    for (auto _ : state) {
        SatSolver solver;
        const int pigeons = holes + 1;
        std::vector<std::vector<uint32_t>> var(
            pigeons, std::vector<uint32_t>(holes));
        for (int p = 0; p < pigeons; ++p)
            for (int h = 0; h < holes; ++h)
                var[p][h] = solver.NewVar();
        for (int p = 0; p < pigeons; ++p) {
            std::vector<Lit> clause;
            for (int h = 0; h < holes; ++h)
                clause.emplace_back(var[p][h], false);
            solver.AddClause(clause);
        }
        for (int h = 0; h < holes; ++h)
            for (int p1 = 0; p1 < pigeons; ++p1)
                for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                    solver.AddBinary(Lit(var[p1][h], true),
                                     Lit(var[p2][h], true));
        benchmark::DoNotOptimize(solver.Solve());
    }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(7);

/** Expression interning throughput (hash-consing hit path). */
void
BM_ExprInterning(benchmark::State &state)
{
    ExprContext ctx;
    ExprRef x = ctx.FreshVar("x", 32);
    ExprRef c = ctx.MakeConst(32, 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ctx.MakeAdd(ctx.MakeMul(x, c), ctx.MakeConst(32, 3)));
    }
}
BENCHMARK(BM_ExprInterning);

/** Concrete evaluation over a deep shared DAG. */
void
BM_Evaluate(benchmark::State &state)
{
    ExprContext ctx;
    ExprRef x = ctx.FreshVar("x", 32);
    ExprRef acc = x;
    for (int i = 0; i < 64; ++i)
        acc = ctx.MakeXor(ctx.MakeMul(acc, ctx.MakeConst(32, 13)), x);
    Model model;
    model.Set(x->VarId(), 0xDEADBEEF);
    for (auto _ : state)
        benchmark::DoNotOptimize(Evaluate(acc, model));
}
BENCHMARK(BM_Evaluate);

// ---------------------------------------------------------------------
// Incremental-vs-fresh comparison on the shared-prefix Trojan workload.
// ---------------------------------------------------------------------

struct TrojanWorkload
{
    ExprContext ctx;
    /** Growing pathS prefixes: prefix[d] has d+1 byte constraints. */
    std::vector<std::vector<ExprRef>> prefixes;
    /** Per-predicate negation disjunctions (¬pathC_i). */
    std::vector<ExprRef> negations;
    /** Match-shaped probes that conflict with deep prefixes: byte
     *  pins just outside a prefix range constraint, so the stream
     *  mixes kUnsat answers (and, with cores on, extractions) in the
     *  proportion the explorer's match loop sees. */
    std::vector<ExprRef> match_probes;
    /** Interval-opaque refutations for the portfolio ablation: xor
     *  parity contradictions keep every byte's range full, so the
     *  bounds pre-check cannot refute them and the kUnsat reaches the
     *  SAT backend with a core -- the query population whose
     *  deletion-minimization probes the shallow preset skips. */
    std::vector<std::vector<ExprRef>> hard_probes;
};

/** Phase-2 query shape: pathS over 16 message bytes, 96 predicate
 *  negations, a CRC-ish arithmetic coupling to keep the SAT core
 *  honest. */
std::unique_ptr<TrojanWorkload>
MakeTrojanWorkload()
{
    auto w = std::make_unique<TrojanWorkload>();
    ExprContext &ctx = w->ctx;
    Rng rng(0x7101a);
    std::vector<ExprRef> bytes;
    for (int i = 0; i < 16; ++i)
        bytes.push_back(ctx.FreshVar("m", 8));

    // pathS: per-byte range constraints plus a running checksum bound at
    // every depth, the way server parse paths accumulate arithmetic over
    // the bytes consumed so far. The deepening multiply/xor chain is
    // what makes re-bit-blasting the prefix per query expensive on the
    // fresh-instance path and free (memoized CNF) on the incremental
    // one.
    std::vector<ExprRef> prefix;
    ExprRef crc = ctx.MakeConst(8, 0x5a);
    for (size_t i = 0; i < bytes.size(); ++i) {
        crc = ctx.MakeXor(ctx.MakeMul(crc, ctx.MakeConst(8, 13)),
                          bytes[i]);
        prefix.push_back(i % 3 == 0
                             ? ctx.MakeUlt(bytes[i], ctx.MakeConst(8, 240))
                             : ctx.MakeNe(bytes[i],
                                          ctx.MakeConst(8, rng.Below(256))));
        prefix.push_back(ctx.MakeUlt(crc, ctx.MakeConst(8, 250)));
        w->prefixes.push_back(prefix);
    }

    for (int p = 0; p < 96; ++p) {
        std::vector<ExprRef> disj;
        for (int f = 0; f < 4; ++f) {
            disj.push_back(ctx.MakeNe(bytes[rng.Below(bytes.size())],
                                      ctx.MakeConst(8, rng.Below(256))));
        }
        w->negations.push_back(ctx.MakeOrList(disj));
    }

    // Byte positions with an Ult(byte, 240) range constraint in the
    // prefix: pinning 250 there is UNSAT once the prefix is deep
    // enough, SAT before.
    for (size_t i = 0; i < bytes.size(); i += 3)
        w->match_probes.push_back(
            ctx.MakeEq(bytes[i], ctx.MakeConst(8, 250)));

    // Xor triangles: (x^y) ^ (y^z) ^ (x^z) == 0 identically, so pinning
    // the three pairwise xors to constants that xor to nonzero is
    // unsatisfiable -- across all three assumptions, and with every
    // byte keeping its full range. The interval walk proves nothing,
    // the refutation runs on the SAT backend, and the resulting
    // 3-assumption core is above the minimizer's size threshold, so
    // the baseline arm pays deletion probes the shallow preset skips.
    for (int k = 0; k < 96; ++k) {
        const size_t i = rng.Below(bytes.size());
        size_t j = rng.Below(bytes.size());
        while (j == i)
            j = rng.Below(bytes.size());
        size_t l = rng.Below(bytes.size());
        while (l == i || l == j)
            l = rng.Below(bytes.size());
        const uint64_t c1 = rng.Below(256);
        const uint64_t c2 = rng.Below(256);
        const uint64_t c3 = (c1 ^ c2) ^ (1 + rng.Below(255));
        w->hard_probes.push_back(
            {ctx.MakeEq(ctx.MakeXor(bytes[i], bytes[j]),
                        ctx.MakeConst(8, c1)),
             ctx.MakeEq(ctx.MakeXor(bytes[j], bytes[l]),
                        ctx.MakeConst(8, c2)),
             ctx.MakeEq(ctx.MakeXor(bytes[i], bytes[l]),
                        ctx.MakeConst(8, c3))});
    }
    return w;
}

/** Per-stream solver counters surfaced next to the timings. */
struct StreamStats
{
    int64_t cores_extracted = 0;
    int64_t core_literals = 0;
    int64_t interval_cores = 0;
};

/** Run the full query stream; returns seconds. Results are recorded so
 *  the configurations can be cross-checked. */
double
RunTrojanStream(TrojanWorkload *w, bool incremental, bool cores,
                std::vector<CheckStatus> *results,
                StreamStats *stream_stats = nullptr)
{
    SolverConfig config;
    config.enable_incremental = incremental;
    config.enable_cores = cores;
    config.enable_cache = false;  // isolate the backend, not the memo
    Solver solver(&w->ctx, config);
    results->clear();
    Timer timer;
    // Every state (prefix depth) sweeps all live predicates, exactly the
    // HandleBranch/TrojanQuery iteration pattern.
    for (const std::vector<ExprRef> &prefix : w->prefixes) {
        for (ExprRef neg : w->negations)
            results->push_back(
                solver.CheckSatAssuming(prefix, {neg}).status);
        for (ExprRef probe : w->match_probes)
            results->push_back(
                solver.CheckSatAssuming(prefix, {probe}).status);
    }
    const double seconds = timer.Seconds();
    if (stream_stats != nullptr) {
        stream_stats->cores_extracted =
            solver.stats().Get("solver.cores_extracted");
        stream_stats->core_literals =
            solver.stats().Get("solver.core_literals");
        stream_stats->interval_cores =
            solver.stats().Get("solver.interval_cores");
    }
    return seconds;
}

/**
 * The trail-reuse target shape: refutation sweeps against one deep
 * shared prefix (the regime ROADMAP calls "deep-prefix streams that
 * miss solution reuse"). A refuting probe misses solution reuse by
 * definition -- no standing model satisfies it -- so without trail
 * reuse every query re-establishes all 256 assumption levels; with it,
 * consecutive probes resume where their sorted assumption vectors
 * diverge. Probes are swept in structural (canonical assumption) order,
 * mirroring the explorer's fixed predicate iteration, so each query
 * keeps the prefix up to the previous probe's position.
 */
struct TrailWorkload
{
    ExprContext ctx;
    std::vector<ExprRef> prefix;
    std::vector<ExprRef> probes;
};

std::unique_ptr<TrailWorkload>
MakeTrailWorkload()
{
    auto w = std::make_unique<TrailWorkload>();
    ExprContext &ctx = w->ctx;
    Rng rng(0x77a11);
    std::vector<ExprRef> bytes;
    for (int i = 0; i < 64; ++i)
        bytes.push_back(ctx.FreshVar("t", 8));
    for (ExprRef b : bytes) {
        w->prefix.push_back(ctx.MakeUlt(b, ctx.MakeConst(8, 240)));
        w->prefix.push_back(ctx.MakeUge(b, ctx.MakeConst(8, 3)));
        w->prefix.push_back(
            ctx.MakeNe(b, ctx.MakeConst(8, 5 + rng.Below(230))));
        w->prefix.push_back(
            ctx.MakeNe(b, ctx.MakeConst(8, 5 + rng.Below(230))));
    }
    // One refuting pin per byte (250 violates the Ult(b, 240) range).
    for (ExprRef b : bytes)
        w->probes.push_back(ctx.MakeEq(b, ctx.MakeConst(8, 250)));
    std::sort(w->probes.begin(), w->probes.end(),
              [](ExprRef a, ExprRef b) {
                  return StructuralCompare(a, b) < 0;
              });
    return w;
}

double
RunProbeStream(TrailWorkload *w, bool trail_reuse,
               std::vector<CheckStatus> *results, int64_t *trail_reuses)
{
    SolverConfig config;
    config.enable_cache = false;  // isolate the backend, not the memo
    // Bypass the interval pre-check: with attribution cores it decides
    // the range-conflict probes outright, and this ablation measures
    // the SAT trail.
    config.use_interval_check = false;
    config.enable_trail_reuse = trail_reuse;
    Solver solver(&w->ctx, config);
    results->clear();
    Timer timer;
    // Enough sweeps to push the measurement window well past scheduler
    // jitter: the trend gate watches the on/off ratio.
    for (int rep = 0; rep < 32; ++rep) {
        for (ExprRef probe : w->probes)
            results->push_back(
                solver.CheckSatAssuming(w->prefix, {probe}).status);
    }
    const double seconds = timer.Seconds();
    if (trail_reuses != nullptr)
        *trail_reuses = solver.stats().Get("solver.trail_reuses");
    return seconds;
}

/** Trail-reuse ablation: the deep-prefix probe stream with
 *  assumption-prefix trail reuse on vs off. */
bool
CompareTrailReuse()
{
    bench::Header("Assumption-trail reuse vs full re-establishment "
                  "(deep-prefix probe stream)");
    std::unique_ptr<TrailWorkload> w = MakeTrailWorkload();
    std::vector<CheckStatus> off_results, on_results;
    int64_t reuses = 0;
    // Warm once to stabilize allocator state, then measure.
    RunProbeStream(w.get(), /*trail_reuse=*/false, &off_results, nullptr);
    const double off_s = RunProbeStream(w.get(), /*trail_reuse=*/false,
                                        &off_results, nullptr);
    const double on_s = RunProbeStream(w.get(), /*trail_reuse=*/true,
                                       &on_results, &reuses);
    const bool agree = off_results == on_results;

    bench::Metric("smt.no_trail_reuse_seconds", off_s, "s");
    bench::Metric("smt.trail_reuse_seconds", on_s, "s");
    bench::Metric("smt.trail_reuse_speedup",
                  on_s > 0 ? off_s / on_s : 0.0, "x");
    bench::Metric("smt.trail_reuses", static_cast<double>(reuses));
    bench::Metric("smt.trail_results_identical", agree ? 1 : 0);
    if (!agree)
        std::printf("  ERROR: trail-reuse verdicts diverged\n");
    return agree;
}

/** Per-class and racing counters surfaced next to the timings. */
struct PortfolioStats
{
    int64_t class_queries[kNumQueryClasses] = {0, 0, 0, 0};
    int64_t class_decided[kNumQueryClasses] = {0, 0, 0, 0};
    int64_t race_attempts = 0;
    int64_t race_wins = 0;
};

double
RunPortfolioStream(TrojanWorkload *w, bool portfolio, bool budgeted,
                   std::vector<CheckStatus> *results,
                   PortfolioStats *pstats)
{
    SolverConfig config;
    config.enable_cache = false;  // isolate the dispatch, not the memo
    config.portfolio = portfolio;
    if (budgeted) {
        // Starved stream budget: plenty of kUnknown answers, so the
        // rolling unknown-rate feature reroutes the stream into the
        // straggler (racing) class.
        config.stream_budget.base = 4;
        config.stream_budget.decay = 1.0;
        config.stream_budget.floor = 0;
        config.stream_budget.carry = 0.0;
    }
    Solver solver(&w->ctx, config);
    results->clear();
    Timer timer;
    for (const std::vector<ExprRef> &prefix : w->prefixes) {
        for (ExprRef neg : w->negations)
            results->push_back(
                solver.CheckSatAssuming(prefix, {neg}).status);
        for (ExprRef probe : w->match_probes)
            results->push_back(
                solver.CheckSatAssuming(prefix, {probe}).status);
    }
    // The hard slice runs against a shallow prefix so it lands in the
    // class whose preset actually diverges from the baseline (deep
    // queries minimize cores on both arms).
    const std::vector<ExprRef> &hard_prefix =
        w->prefixes[std::min<size_t>(2, w->prefixes.size() - 1)];
    for (const std::vector<ExprRef> &hard : w->hard_probes)
        results->push_back(
            solver.CheckSatAssuming(hard_prefix, hard).status);
    const double seconds = timer.Seconds();
    if (pstats != nullptr) {
        for (int c = 0; c < kNumQueryClasses; ++c) {
            const std::string suffix =
                std::string("/") +
                QueryClassName(static_cast<QueryClass>(c));
            pstats->class_queries[c] =
                solver.stats().Get("solver.class_queries" + suffix);
            pstats->class_decided[c] =
                solver.stats().Get("solver.class_decided" + suffix);
        }
        pstats->race_attempts = solver.stats().Get("solver.race_attempts");
        pstats->race_wins = solver.stats().Get("solver.race_wins");
    }
    return seconds;
}

/**
 * Portfolio ablation: class-dispatched strategies vs the uniform
 * default on the same stream. Unbudgeted verdicts must be identical
 * (every preset is a complete search); the budgeted racing slice must
 * be compatible -- racing may only upgrade a kUnknown, never disagree
 * with a decided baseline verdict.
 */
bool
ComparePortfolio()
{
    bench::Header("Portfolio query-class dispatch vs uniform strategy "
                  "(shared-prefix Trojan stream)");
    std::unique_ptr<TrojanWorkload> w = MakeTrojanWorkload();
    std::vector<CheckStatus> off_results, on_results;
    // Warm once to stabilize allocator state, then measure with
    // interleaved off/on repetitions, taking the min per arm: a
    // single-shot off-then-on pass confounds the dispatch delta with
    // allocator state and scheduler drift, which on a shared box can
    // dwarf the effect under test. Verdict agreement is re-checked on
    // every repetition.
    RunPortfolioStream(w.get(), /*portfolio=*/false, /*budgeted=*/false,
                       &off_results, nullptr);
    constexpr int kReps = 5;
    double off_s = 0.0, on_s = 0.0;
    PortfolioStats pstats;
    bool agree = true;
    for (int rep = 0; rep < kReps; ++rep) {
        const double off =
            RunPortfolioStream(w.get(), /*portfolio=*/false,
                               /*budgeted=*/false, &off_results,
                               nullptr);
        const double on =
            RunPortfolioStream(w.get(), /*portfolio=*/true,
                               /*budgeted=*/false, &on_results,
                               &pstats);
        off_s = rep == 0 ? off : std::min(off_s, off);
        on_s = rep == 0 ? on : std::min(on_s, on);
        agree = agree && off_results == on_results;
    }

    bench::Metric("smt.portfolio_off_seconds", off_s, "s");
    bench::Metric("smt.portfolio_seconds", on_s, "s");
    bench::Metric("smt.portfolio_speedup",
                  on_s > 0 ? off_s / on_s : 0.0, "x");
    bench::Metric("smt.portfolio_results_identical", agree ? 1 : 0);
    for (int c = 0; c < kNumQueryClasses; ++c) {
        if (pstats.class_queries[c] == 0)
            continue;
        bench::Metric(
            std::string("smt.portfolio_win_rate/") +
                QueryClassName(static_cast<QueryClass>(c)),
            static_cast<double>(pstats.class_decided[c]) /
                static_cast<double>(pstats.class_queries[c]));
    }
    if (!agree)
        std::printf("  ERROR: portfolio verdicts diverged\n");

    // Budgeted racing slice: kUnknown conservatism must survive racing.
    std::vector<CheckStatus> budget_off, budget_on;
    RunPortfolioStream(w.get(), /*portfolio=*/false, /*budgeted=*/true,
                       &budget_off, nullptr);
    PortfolioStats rstats;
    RunPortfolioStream(w.get(), /*portfolio=*/true, /*budgeted=*/true,
                       &budget_on, &rstats);
    bool compatible = budget_off.size() == budget_on.size();
    size_t upgrades = 0;
    for (size_t i = 0; compatible && i < budget_off.size(); ++i) {
        if (budget_on[i] == budget_off[i])
            continue;
        // Divergence is only legal as a kUnknown -> decided upgrade.
        compatible = budget_off[i] == CheckStatus::kUnknown;
        ++upgrades;
    }
    bench::Metric("smt.race_attempts",
                  static_cast<double>(rstats.race_attempts));
    bench::Metric("smt.race_wins",
                  static_cast<double>(rstats.race_wins));
    bench::Metric("smt.race_upgrades", static_cast<double>(upgrades));
    bench::Metric("smt.portfolio_budgeted_compatible",
                  compatible ? 1 : 0);
    if (!compatible)
        std::printf("  ERROR: racing flipped a decided verdict\n");
    return agree && compatible;
}

bool
CompareIncrementalVsFresh(bool with_cores)
{
    bench::Header("Incremental assumption-based backend vs fresh "
                  "instances (shared-prefix Trojan stream)");
    std::unique_ptr<TrojanWorkload> w = MakeTrojanWorkload();
    std::vector<CheckStatus> fresh_results, inc_results, core_results;
    // Warm once to stabilize allocator state, then measure.
    RunTrojanStream(w.get(), /*incremental=*/false, /*cores=*/false,
                    &fresh_results);
    const double fresh_s = RunTrojanStream(
        w.get(), /*incremental=*/false, /*cores=*/false, &fresh_results);
    const double nocores_s = RunTrojanStream(
        w.get(), /*incremental=*/true, /*cores=*/false, &inc_results);
    const size_t queries = fresh_results.size();
    bool agree = fresh_results == inc_results;

    bench::Metric("smt.trojan_stream_queries",
                  static_cast<double>(queries));
    bench::Metric("smt.fresh_seconds", fresh_s, "s");
    bench::Metric("smt.incremental_nocores_seconds", nocores_s, "s");

    // The production configuration extracts (and minimizes) a core on
    // every refutation; smt.incremental_speedup tracks it so the CI
    // perf trend gates the backend as deployed.
    double inc_s = nocores_s;
    if (with_cores) {
        StreamStats stream_stats;
        inc_s = RunTrojanStream(w.get(), /*incremental=*/true,
                                /*cores=*/true, &core_results,
                                &stream_stats);
        agree &= fresh_results == core_results;
        const double overhead =
            nocores_s > 0 ? 100.0 * (inc_s - nocores_s) / nocores_s : 0.0;
        // Interval attribution answers this stream's range-conflict
        // refutations before the SAT backend, so most cores are
        // interval bound-pairs; both kinds are counted.
        bench::Metric("smt.cores_extracted",
                      static_cast<double>(stream_stats.cores_extracted));
        bench::Metric("smt.interval_cores",
                      static_cast<double>(stream_stats.interval_cores));
        bench::Metric("smt.mean_core_size",
                      stream_stats.cores_extracted > 0
                          ? static_cast<double>(stream_stats.core_literals) /
                                static_cast<double>(
                                    stream_stats.cores_extracted)
                          : 0.0);
        bench::Metric("smt.core_overhead_pct", overhead, "%");
    }
    bench::Metric("smt.incremental_seconds", inc_s, "s");
    bench::Metric("smt.incremental_speedup",
                  inc_s > 0 ? fresh_s / inc_s : 0.0, "x");
    bench::Metric("smt.results_identical", agree ? 1 : 0);
    if (!agree)
        std::printf("  ERROR: incremental and fresh verdicts diverged\n");
    return agree;
}

}  // namespace

int
main(int argc, char **argv)
{
    bench::ParseBenchArgs(argc, argv);
    bool compare = false;
    bool with_cores = true;
    bool trail_reuse = false;
    bool portfolio = false;
    // Strip harness-only flags before handing argv to Google Benchmark.
    std::vector<char *> gbench_argv{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            compare = true;
            ++i;
        } else if (std::strcmp(argv[i], "--compare-incremental") == 0) {
            compare = true;
        } else if (std::strcmp(argv[i], "--cores") == 0) {
            compare = true;
        } else if (std::strcmp(argv[i], "--no-cores") == 0) {
            with_cores = false;
        } else if (std::strcmp(argv[i], "--trail-reuse") == 0) {
            trail_reuse = true;
        } else if (std::strcmp(argv[i], "--portfolio") == 0) {
            portfolio = true;
        } else {
            gbench_argv.push_back(argv[i]);
        }
    }
    // A verdict divergence must fail the process (CI gates on it).
    bool agree = compare ? CompareIncrementalVsFresh(with_cores) : true;
    if (trail_reuse)
        agree &= CompareTrailReuse();
    if (portfolio)
        agree &= ComparePortfolio();

    int gbench_argc = static_cast<int>(gbench_argv.size());
    benchmark::Initialize(&gbench_argc, gbench_argv.data());
    if (benchmark::ReportUnrecognizedArguments(gbench_argc,
                                               gbench_argv.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return agree ? 0 : 1;
}
