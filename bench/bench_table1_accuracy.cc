// Achilles reproduction -- Table 1 + Section 6.2 timing breakdown.
//
// Reproduces: "Results obtained by Achilles in 1 hour, compared to
// classic symbolic execution" (Table 1) and the phase breakdown of the
// FSP accuracy experiment (client predicate 3 min / preprocessing
// 15 min / server analysis 45 min).
//
// Paper reference: Achilles 80 TP / 0 FP; classic SE 80 TP / 7,520 FP.
// Absolute times differ (our substrate is a DSL interpreter, not S2E on
// a 16-core Xeon); the shape under test is: both find all 80 known
// Trojan types, Achilles emits zero false positives, classic SE buries
// the Trojans in thousands of valid messages.

#include <cstdio>
#include <set>

#include "baselines/classic_se.h"
#include "bench/bench_util.h"
#include "core/achilles.h"
#include "proto/fsp/fsp_concrete.h"
#include "proto/fsp/fsp_protocol.h"

using namespace achilles;

int
main()
{
    bench::Header("Table 1 -- Achilles vs classic symbolic execution "
                  "(FSP, path length < 5)");

    smt::ExprContext ctx;
    smt::Solver solver(&ctx);

    const std::vector<symexec::Program> clients = fsp::MakeAllClients();
    const symexec::Program server = fsp::MakeServer();

    // ----- Achilles -----
    core::AchillesConfig config;
    config.layout = fsp::MakeLayout();
    for (const symexec::Program &c : clients)
        config.clients.push_back(&c);
    config.server = &server;
    const core::AchillesResult result =
        core::RunAchilles(&ctx, &solver, config);
    bench::RecordRunMetrics(result.report);

    std::set<fsp::LengthTrojanType> achilles_types;
    size_t achilles_fp = 0;
    size_t wildcard_extra = 0;
    for (const core::TrojanWitness &t : result.server.trojans) {
        const fsp::Bytes m(t.concrete.begin(), t.concrete.end());
        if (!fsp::IsTrojan(m)) {
            ++achilles_fp;
            continue;
        }
        auto type = fsp::ClassifyLengthTrojan(m);
        if (type.has_value())
            achilles_types.insert(*type);
        else
            ++wildcard_extra;
    }

    // ----- Classic symbolic execution -----
    baselines::ClassicSeConfig classic_config;
    classic_config.enumerate_per_path = 94;  // one per printable char
    const baselines::ClassicSeResult classic = baselines::RunClassicSe(
        &ctx, &solver, &server, config.layout, classic_config);

    std::set<fsp::LengthTrojanType> classic_types;
    size_t classic_fp = 0;
    for (const auto &m : classic.messages) {
        if (!fsp::IsTrojan(m)) {
            ++classic_fp;  // valid message in the output: noise
            continue;
        }
        auto type = fsp::ClassifyLengthTrojan(m);
        if (type.has_value())
            classic_types.insert(*type);
    }

    bench::Section("Table 1 (reproduced)");
    std::printf("%-28s %14s %24s\n", "", "Achilles",
                "Classic symbolic exec.");
    std::printf("%-28s %10zu /80 %20zu /80\n",
                "True positives (types)", achilles_types.size(),
                classic_types.size());
    std::printf("%-28s %14zu %24zu\n", "False positives", achilles_fp,
                classic_fp);
    bench::Note("paper: Achilles 80 TP / 0 FP; classic SE 80 TP / "
                "7,520 FP");
    bench::Note("classic-SE FP count scales with enumeration depth "
                "(94/path here); the Trojans are bundled with valid "
                "messages either way");
    std::printf("  additional non-length Trojan witnesses (wildcard "
                "family): %zu\n", wildcard_extra);

    bench::Section("Section 6.2 phase breakdown");
    std::printf("%-28s %10.3f s   (paper:  3 min of 63)\n",
                "client predicate", result.timings.client_extraction);
    std::printf("%-28s %10.3f s   (paper: 15 min of 63)\n",
                "preprocessing", result.timings.preprocessing);
    std::printf("%-28s %10.3f s   (paper: 45 min of 63)\n",
                "server analysis", result.timings.server_analysis);
    std::printf("%-28s %10.3f s   (paper: ~2 min)\n",
                "classic SE exploration", classic.exploration_seconds);
    std::printf("%-28s %10.3f s   (not measured in the paper)\n",
                "classic SE + enumeration", classic.seconds);
    bench::Note("shape: server analysis dominates Achilles' time; "
                "classic SE's raw exploration is faster than Achilles "
                "but cannot separate Trojans from valid messages");

    bench::Section("internal counters");
    std::printf("  client path predicates: %zu\n",
                result.client_predicate.paths.size());
    std::printf("  exact negations: %zu, approximate: %zu\n",
                result.negate_stats.exact_predicates,
                result.negate_stats.approx_predicates);
    std::printf("  match queries: %lld, trojan queries: %lld, "
                "states pruned: %lld\n",
                static_cast<long long>(
                    result.server.stats.Get("explorer.match_queries")),
                static_cast<long long>(
                    result.server.stats.Get("explorer.trojan_queries")),
                static_cast<long long>(
                    result.server.stats.Get("explorer.states_pruned")));

    const bool ok = achilles_types.size() == 80 && achilles_fp == 0 &&
                    classic_fp > achilles_types.size();
    std::printf("\nRESULT: %s\n", ok ? "PASS (shape reproduced)"
                                     : "MISMATCH (see numbers above)");
    return ok ? 0 : 1;
}
