// Achilles reproduction -- Figure 10.
//
// "Percentage of real Trojan messages in FSP discovered by Achilles, as
// a function of time." The paper's run produced the first Trojan after
// 20 of 43 minutes of server analysis and all 80 by minute 43;
// discovery is incremental and monotone, so interrupting the analysis
// early still yields useful output. We reproduce the discovery
// timeline over the 80 known length-mismatch Trojan types and print the
// cumulative curve (percent of analysis time vs percent of Trojans).

#include <algorithm>
#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "core/achilles.h"
#include "proto/fsp/fsp_concrete.h"
#include "proto/fsp/fsp_protocol.h"

using namespace achilles;

int
main()
{
    bench::Header("Figure 10 -- Trojan discovery timeline (FSP)");

    smt::ExprContext ctx;
    smt::Solver solver(&ctx);

    const std::vector<symexec::Program> clients = fsp::MakeAllClients();
    const symexec::Program server = fsp::MakeServer();

    core::AchillesConfig config;
    config.layout = fsp::MakeLayout();
    for (const symexec::Program &c : clients)
        config.clients.push_back(&c);
    config.server = &server;
    const core::AchillesResult result =
        core::RunAchilles(&ctx, &solver, config);
    bench::RecordRunMetrics(result.report);

    // Build the (time, newly discovered type) sequence.
    struct Event
    {
        double seconds;
        fsp::LengthTrojanType type;
    };
    std::vector<Event> events;
    std::set<fsp::LengthTrojanType> seen;
    std::vector<core::TrojanWitness> sorted = result.server.trojans;
    std::sort(sorted.begin(), sorted.end(),
              [](const core::TrojanWitness &a,
                 const core::TrojanWitness &b) {
                  return a.discovered_at_seconds < b.discovered_at_seconds;
              });
    for (const core::TrojanWitness &t : sorted) {
        const fsp::Bytes m(t.concrete.begin(), t.concrete.end());
        auto type = fsp::ClassifyLengthTrojan(m);
        if (!type.has_value() || !seen.insert(*type).second)
            continue;
        events.push_back(Event{t.discovered_at_seconds, *type});
    }
    const double total = result.server.seconds;

    bench::Section("cumulative discovery (percent of server-analysis "
                   "time -> percent of the 80 known Trojans)");
    std::printf("%12s %12s %12s\n", "time (s)", "time (%)", "found (%)");
    const size_t known_total = 80;
    size_t found = 0;
    // Print at every 10% discovery increment plus first/last events.
    size_t next_print = 1;
    for (const Event &e : events) {
        ++found;
        const bool is_decile =
            found * 10 / known_total >= next_print || found == 1 ||
            found == events.size();
        if (is_decile) {
            std::printf("%12.3f %11.1f%% %11.1f%%\n", e.seconds,
                        100.0 * e.seconds / total,
                        100.0 * found / known_total);
            next_print = found * 10 / known_total + 1;
        }
    }
    std::printf("%12.3f %11.1f%% %11.1f%%  (analysis end)\n", total,
                100.0, 100.0 * found / known_total);

    bench::Note("paper: first Trojan ~46% into the 43-minute server "
                "analysis, 100% at the end; discovery is incremental");
    bench::Note("interrupting the analysis early still produces "
                "every Trojan found so far");

    const bool ok = found == known_total;
    std::printf("\nRESULT: %s (%zu/%zu types discovered "
                "incrementally)\n",
                ok ? "PASS" : "MISMATCH", found, known_total);
    return ok ? 0 : 1;
}
