// Achilles reproduction -- protocol-corpus sweep.
//
// Runs the full pipeline over the registry's seeded synthetic corpus
// (src/proto/synth/) plus any wire-format specs loaded with
// `--specs <dir>`, and reports per-family aggregates:
//
//   corpus.trojan_yield[/family]          Trojans found per protocol
//   corpus.queries_per_protocol[/family]  solver queries per protocol
//   corpus.protocols[/family]             protocols run
//   corpus.phase_pct.*                    pipeline phase breakdown
//
// The sampled families are built so yield moves with the knobs (rises
// with field coupling, falls with validation density); the bench
// self-gates on that ordering plus a nonzero overall yield, and the CI
// trend gate watches the emitted metrics across PRs.
//
// Flags: --limit N     cap on synth protocols (default 40, 0 = all)
//        --workers N   explorer worker count (default 1)
//        --specs DIR   load every *.spec file in DIR and run those too
//        --json PATH   machine-readable metrics (bench_util.h)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/achilles.h"
#include "proto/registry.h"
#include "proto/spec/lower.h"

using namespace achilles;

namespace {

struct RunResult
{
    size_t trojans = 0;
    int64_t queries = 0;
    core::PhaseTimings timings;
};

RunResult
RunOne(const proto::ProtocolBundle &bundle, size_t workers)
{
    smt::ExprContext ctx;
    smt::Solver solver(&ctx);
    core::AchillesConfig config;
    config.layout = bundle.layout;
    const auto clients = bundle.ClientPtrs();
    config.clients = clients;
    config.server = &bundle.server;
    config.server_config.engine.num_workers = workers;
    const core::AchillesResult result =
        core::RunAchilles(&ctx, &solver, config);

    RunResult out;
    out.trojans = result.server.trojans.size();
    out.queries = result.server.stats.Get("explorer.match_queries") +
                  result.server.stats.Get("explorer.trojan_queries");
    out.timings = result.timings;
    return out;
}

struct FamilyAgg
{
    size_t protocols = 0;
    size_t trojans = 0;
    int64_t queries = 0;
};

/** "/"-free metric key for a family ("synth/d1.f1.c0.v25" keeps its
 *  inner dots; only the leading "synth/" varies per cell). */
std::string
MetricSuffix(const std::string &family)
{
    return "/" + family;
}

}  // namespace

int
main(int argc, char **argv)
{
    bench::ParseBenchArgs(argc, argv);
    size_t limit = 40;
    size_t workers = 1;
    std::string specs_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--limit") == 0 && i + 1 < argc)
            limit = static_cast<size_t>(std::atoll(argv[i + 1]));
        else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc)
            workers = static_cast<size_t>(std::atoi(argv[i + 1]));
        else if (std::strcmp(argv[i], "--specs") == 0 && i + 1 < argc)
            specs_dir = argv[i + 1];
    }

    bench::Header("Protocol corpus -- per-family Trojan yield over the "
                  "seeded synthetic families + wire-format specs");

    proto::ProtocolRegistry &registry = proto::ProtocolRegistry::Global();

    // Wire-format specs join the run (and the registry) at load time.
    std::vector<std::string> spec_names;
    if (!specs_dir.empty()) {
        std::vector<std::string> files;
        for (const auto &entry :
             std::filesystem::directory_iterator(specs_dir)) {
            if (entry.path().extension() == ".spec")
                files.push_back(entry.path().string());
        }
        std::sort(files.begin(), files.end());
        for (const std::string &file : files) {
            std::string name, error;
            if (!spec::RegisterSpecFile(file, &registry, &name, &error)) {
                std::fprintf(stderr, "bench_corpus: %s\n", error.c_str());
                return 1;
            }
            spec_names.push_back(name);
        }
    }

    // The run list: the synth corpus (name-sorted, so --limit slices a
    // deterministic prefix) plus every loaded spec.
    std::vector<std::string> names;
    for (const std::string &name : registry.Names()) {
        if (name.rfind("synth/", 0) == 0)
            names.push_back(name);
    }
    if (limit != 0 && names.size() > limit)
        names.resize(limit);
    names.insert(names.end(), spec_names.begin(), spec_names.end());
    if (names.empty()) {
        std::fprintf(stderr, "bench_corpus: nothing to run\n");
        return 1;
    }

    std::map<std::string, FamilyAgg> by_family;
    size_t total_trojans = 0;
    int64_t total_queries = 0;
    core::PhaseTimings phases;
    const auto start = std::chrono::steady_clock::now();
    for (const std::string &name : names) {
        const auto factory = registry.Find(name);
        const proto::ProtocolBundle bundle = factory->Make();
        const RunResult r = RunOne(bundle, workers);
        FamilyAgg &agg = by_family[bundle.info.family];
        agg.protocols += 1;
        agg.trojans += r.trojans;
        agg.queries += r.queries;
        total_trojans += r.trojans;
        total_queries += r.queries;
        phases.client_extraction += r.timings.client_extraction;
        phases.preprocessing += r.timings.preprocessing;
        phases.server_analysis += r.timings.server_analysis;
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    bench::Section("per-family aggregates");
    std::printf("  %-28s %6s %8s %10s %9s\n", "family", "protos",
                "trojans", "yield", "q/proto");
    for (const auto &[family, agg] : by_family) {
        const double yield = static_cast<double>(agg.trojans) /
                             static_cast<double>(agg.protocols);
        const double qpp = static_cast<double>(agg.queries) /
                           static_cast<double>(agg.protocols);
        std::printf("  %-28s %6zu %8zu %10.2f %9.1f\n", family.c_str(),
                    agg.protocols, agg.trojans, yield, qpp);
        bench::JsonRecorder::Instance().Record(
            "corpus.trojan_yield" + MetricSuffix(family), yield);
        bench::JsonRecorder::Instance().Record(
            "corpus.queries_per_protocol" + MetricSuffix(family), qpp);
        bench::JsonRecorder::Instance().Record(
            "corpus.protocols" + MetricSuffix(family),
            static_cast<double>(agg.protocols));
    }

    bench::Section("totals");
    const double overall_yield = static_cast<double>(total_trojans) /
                                 static_cast<double>(names.size());
    const double overall_qpp = static_cast<double>(total_queries) /
                               static_cast<double>(names.size());
    bench::Metric("corpus.protocols", static_cast<double>(names.size()));
    bench::Metric("corpus.trojan_yield", overall_yield);
    bench::Metric("corpus.queries_per_protocol", overall_qpp);
    bench::Metric("corpus.seconds_total", seconds, "s");
    const double total_phase = phases.Total();
    if (total_phase > 0) {
        bench::Metric("corpus.phase_pct.client_extraction",
                      100.0 * phases.client_extraction / total_phase, "%");
        bench::Metric("corpus.phase_pct.preprocessing",
                      100.0 * phases.preprocessing / total_phase, "%");
        bench::Metric("corpus.phase_pct.server_analysis",
                      100.0 * phases.server_analysis / total_phase, "%");
    }

    // Knob-direction self-gate: within the sampled slice, high-coupling
    // cells must out-yield their low-coupling counterparts on average
    // (an unvalidated CRC tag is a guaranteed Trojan source), and yield
    // must be nonzero overall.
    double coupled_yield = 0, uncoupled_yield = 0;
    size_t coupled_protos = 0, uncoupled_protos = 0;
    for (const auto &[family, agg] : by_family) {
        if (family.rfind("synth/", 0) != 0)
            continue;
        if (family.find(".c75.") != std::string::npos) {
            coupled_yield += static_cast<double>(agg.trojans);
            coupled_protos += agg.protocols;
        } else if (family.find(".c0.") != std::string::npos) {
            uncoupled_yield += static_cast<double>(agg.trojans);
            uncoupled_protos += agg.protocols;
        }
    }
    bool knob_direction_ok = true;
    if (coupled_protos > 0 && uncoupled_protos > 0) {
        knob_direction_ok = coupled_yield / coupled_protos >
                            uncoupled_yield / uncoupled_protos;
        bench::Metric("corpus.coupling_yield_ordering_ok",
                      knob_direction_ok ? 1 : 0);
    }
    const bool ok = total_trojans > 0 && knob_direction_ok;

    bench::Note("yield rises with field coupling (unchecked CRC tags) "
                "and falls with validation density; spec protocols "
                "carry their declared validation gaps");
    std::printf("\nRESULT: %s (%zu protocols, %zu Trojans, %.1fs)\n",
                ok ? "PASS" : "MISMATCH", names.size(), total_trojans,
                seconds);
    bench::JsonRecorder::Instance().Flush();
    return ok ? 0 : 1;
}
