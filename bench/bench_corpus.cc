// Achilles reproduction -- protocol-corpus sweep.
//
// Runs the full pipeline over the registry's seeded synthetic corpus
// (src/proto/synth/) plus any wire-format specs loaded with
// `--specs <dir>`, and reports per-family aggregates:
//
//   corpus.trojan_yield[/family]          Trojans found per protocol
//   corpus.queries_per_protocol[/family]  solver queries per protocol
//   corpus.protocols[/family]             protocols run
//   corpus.phase_pct.*                    pipeline phase breakdown
//
// The sampled families are built so yield moves with the knobs (rises
// with field coupling, falls with validation density); the bench
// self-gates on that ordering plus a nonzero overall yield, and the CI
// trend gate watches the emitted metrics across PRs.
//
// Flags: --limit N     cap on synth protocols (default 40, 0 = all)
//        --workers N   explorer worker count (default 1)
//        --specs DIR   load every *.spec file in DIR and run those too
//        --portfolio   exclusive mode: off/on solver-portfolio grid at
//                      1/2/4/8 workers, self-gating on bitwise witness
//                      identity per cell and overall wall-clock win
//        --json PATH   machine-readable metrics (bench_util.h)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/achilles.h"
#include "proto/registry.h"
#include "proto/spec/lower.h"

using namespace achilles;

namespace {

struct RunResult
{
    size_t trojans = 0;
    int64_t queries = 0;
    core::PhaseTimings timings;
    /** FNV-1a over the ordered witness set (identity gate currency). */
    uint64_t witness_digest = 1469598103934665603ull;
    /** Portfolio per-class counters, merged over home + worker
     *  solvers: [class] -> {queries, decided}. */
    int64_t class_queries[smt::kNumQueryClasses] = {0, 0, 0, 0};
    int64_t class_decided[smt::kNumQueryClasses] = {0, 0, 0, 0};
};

void
DigestBytes(uint64_t *h, const void *data, size_t n)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        *h ^= p[i];
        *h *= 1099511628211ull;
    }
}

const char *const kClassNames[smt::kNumQueryClasses] = {
    "trivial", "shallow", "deep", "straggler"};

RunResult
RunOne(const proto::ProtocolBundle &bundle, size_t workers,
       bool portfolio)
{
    smt::ExprContext ctx;
    smt::SolverConfig solver_config;
    solver_config.portfolio = portfolio;
    smt::Solver solver(&ctx, solver_config);
    core::AchillesConfig config;
    config.layout = bundle.layout;
    const auto clients = bundle.ClientPtrs();
    config.clients = clients;
    config.server = &bundle.server;
    config.server_config.engine.num_workers = workers;
    const core::AchillesResult result =
        core::RunAchilles(&ctx, &solver, config);

    RunResult out;
    out.trojans = result.server.trojans.size();
    out.queries = result.server.stats.Get("explorer.match_queries") +
                  result.server.stats.Get("explorer.trojan_queries");
    out.timings = result.timings;
    // Witness identity digest: every field a consumer could observe.
    // Per-witness digests are sorted before chaining so the digest
    // names the witness SET -- the determinism claim under test --
    // independent of result order.
    std::vector<uint64_t> per_witness;
    per_witness.reserve(result.server.trojans.size());
    for (const core::TrojanWitness &t : result.server.trojans) {
        uint64_t h = 1469598103934665603ull;
        DigestBytes(&h, &t.server_path_id, sizeof(t.server_path_id));
        DigestBytes(&h, t.accept_label.data(), t.accept_label.size());
        DigestBytes(&h, t.concrete.data(), t.concrete.size());
        const uint64_t def_size = t.definition.size();
        DigestBytes(&h, &def_size, sizeof(def_size));
        DigestBytes(&h, t.message_vars.data(),
                    t.message_vars.size() * sizeof(uint32_t));
        per_witness.push_back(h);
    }
    std::sort(per_witness.begin(), per_witness.end());
    for (uint64_t h : per_witness)
        DigestBytes(&out.witness_digest, &h, sizeof(h));
    // Per-class counters: the home solver holds the serial explorer's
    // stream; the server stats hold the parallel workers' (merged by
    // ParallelEngine). The two never overlap.
    for (int c = 0; c < smt::kNumQueryClasses; ++c) {
        const std::string suffix = std::string("/") + kClassNames[c];
        out.class_queries[c] =
            solver.stats().Get("solver.class_queries" + suffix) +
            result.server.stats.Get("solver.class_queries" + suffix);
        out.class_decided[c] =
            solver.stats().Get("solver.class_decided" + suffix) +
            result.server.stats.Get("solver.class_decided" + suffix);
    }
    return out;
}

struct FamilyAgg
{
    size_t protocols = 0;
    size_t trojans = 0;
    int64_t queries = 0;
};

/** "/"-free metric key for a family ("synth/d1.f1.c0.v25" keeps its
 *  inner dots; only the leading "synth/" varies per cell). */
std::string
MetricSuffix(const std::string &family)
{
    return "/" + family;
}

}  // namespace

int
main(int argc, char **argv)
{
    bench::ParseBenchArgs(argc, argv);
    size_t limit = 40;
    size_t workers = 1;
    bool portfolio_grid = false;
    std::string specs_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--limit") == 0 && i + 1 < argc)
            limit = static_cast<size_t>(std::atoll(argv[i + 1]));
        else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc)
            workers = static_cast<size_t>(std::atoi(argv[i + 1]));
        else if (std::strcmp(argv[i], "--specs") == 0 && i + 1 < argc)
            specs_dir = argv[i + 1];
        else if (std::strcmp(argv[i], "--portfolio") == 0)
            portfolio_grid = true;
    }

    bench::Header("Protocol corpus -- per-family Trojan yield over the "
                  "seeded synthetic families + wire-format specs");

    proto::ProtocolRegistry &registry = proto::ProtocolRegistry::Global();

    // Wire-format specs join the run (and the registry) at load time.
    std::vector<std::string> spec_names;
    if (!specs_dir.empty()) {
        std::vector<std::string> files;
        for (const auto &entry :
             std::filesystem::directory_iterator(specs_dir)) {
            if (entry.path().extension() == ".spec")
                files.push_back(entry.path().string());
        }
        std::sort(files.begin(), files.end());
        for (const std::string &file : files) {
            std::string name, error;
            if (!spec::RegisterSpecFile(file, &registry, &name, &error)) {
                std::fprintf(stderr, "bench_corpus: %s\n", error.c_str());
                return 1;
            }
            spec_names.push_back(name);
        }
    }

    // The run list: the synth corpus (name-sorted, so --limit slices a
    // deterministic prefix) plus every loaded spec.
    std::vector<std::string> names;
    for (const std::string &name : registry.Names()) {
        if (name.rfind("synth/", 0) == 0)
            names.push_back(name);
    }
    if (limit != 0 && names.size() > limit) {
        if (portfolio_grid) {
            // The portfolio grid wants a stratified slice, not a
            // prefix: the name-sorted corpus starts with the
            // shallowest-dispatch families, where every query is
            // trivial and dispatch has nothing to win. Striding the
            // sorted list keeps the slice deterministic while
            // representing every depth/fanout/coupling cell.
            std::vector<std::string> strided;
            const size_t step = names.size() / limit;
            for (size_t i = 0;
                 i < names.size() && strided.size() < limit; i += step)
                strided.push_back(names[i]);
            names = std::move(strided);
        } else {
            names.resize(limit);
        }
    }
    names.insert(names.end(), spec_names.begin(), spec_names.end());
    if (names.empty()) {
        std::fprintf(stderr, "bench_corpus: nothing to run\n");
        return 1;
    }

    if (portfolio_grid) {
        // Exclusive grid mode: portfolio {off, on} x workers {1,2,4,8}.
        // Gate 1 (hard): bitwise-identical witness digests in every
        // cell, and across repetitions of the same cell. Gate 2: a
        // wall-clock win at workers=1. The strategy dispatch is a
        // per-worker solver property, so the serial cell is where its
        // effect is measurable; the multi-worker cells exist to prove
        // witness determinism under the portfolio (their timings are
        // dominated by thread scheduling on small slices and are
        // reported informationally, not gated or trend-watched).
        bench::Section("portfolio grid (workers x portfolio)");
        std::printf("  %-9s %10s %10s %8s %9s\n", "workers", "off(s)",
                    "on(s)", "speedup", "witness");

        // Warm-up pass: fault in every bundle and code path once so
        // the first timed cell is not paying one-time costs.
        for (const std::string &name : names) {
            const proto::ProtocolBundle bundle =
                registry.Find(name)->Make();
            RunOne(bundle, 1, false);
        }

        bool identical = true;
        int64_t class_queries[smt::kNumQueryClasses] = {0, 0, 0, 0};
        int64_t class_decided[smt::kNumQueryClasses] = {0, 0, 0, 0};
        int64_t arm_queries[2] = {0, 0};
        // One timed sweep of the slice; digests chain over protocols.
        const auto run_arm = [&](size_t w, bool on, bool collect,
                                 uint64_t *digest) {
            const auto start = std::chrono::steady_clock::now();
            *digest = 1469598103934665603ull;
            for (const std::string &name : names) {
                const proto::ProtocolBundle bundle =
                    registry.Find(name)->Make();
                const RunResult r = RunOne(bundle, w, on);
                DigestBytes(digest, &r.witness_digest,
                            sizeof(r.witness_digest));
                if (collect) {
                    for (int c = 0; c < smt::kNumQueryClasses; ++c) {
                        class_queries[c] += r.class_queries[c];
                        class_decided[c] += r.class_decided[c];
                    }
                }
                if (w == 1)
                    arm_queries[on ? 1 : 0] = r.queries +
                                              arm_queries[on ? 1 : 0];
            }
            return std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                .count();
        };

        double serial_speedup = 1.0;
        for (size_t w : {1, 2, 4, 8}) {
            // The gated serial cell interleaves off/on repetitions
            // (drift hits both arms alike) and takes the min per arm:
            // the workload is deterministic, so min-of-N converges to
            // the true time on both arms and the ratio to the true
            // speedup. The determinism-only multi-worker cells run one
            // repetition per arm.
            const int reps = w == 1 ? 9 : 1;
            double cell_seconds[2] = {0.0, 0.0};
            uint64_t cell_digest[2] = {0, 0};
            for (int rep = 0; rep < reps; ++rep) {
                for (int p = 0; p < 2; ++p) {
                    uint64_t digest = 0;
                    const double seconds =
                        run_arm(w, p == 1, p == 1 && rep == 0, &digest);
                    if (rep == 0) {
                        cell_seconds[p] = seconds;
                        cell_digest[p] = digest;
                    } else {
                        cell_seconds[p] =
                            std::min(cell_seconds[p], seconds);
                        if (digest != cell_digest[p]) {
                            identical = false;
                            std::printf("  REP DIVERGENCE: workers=%zu "
                                        "portfolio=%s rep=%d digest "
                                        "%016llx != %016llx\n",
                                        w, p == 1 ? "on" : "off", rep,
                                        static_cast<unsigned long long>(
                                            digest),
                                        static_cast<unsigned long long>(
                                            cell_digest[p]));
                        }
                    }
                }
            }
            const bool same = cell_digest[0] == cell_digest[1];
            identical = identical && same;
            const double speedup =
                cell_seconds[1] > 0 ? cell_seconds[0] / cell_seconds[1]
                                    : 1.0;
            if (w == 1)
                serial_speedup = speedup;
            std::printf("  %-9zu %10.2f %10.2f %8.2fx %9s\n", w,
                        cell_seconds[0], cell_seconds[1], speedup,
                        same ? "same" : "DIFFER");
        }

        bench::Section("totals");
        std::printf("  explorer queries at workers=1: off=%lld on=%lld\n",
                    static_cast<long long>(arm_queries[0]),
                    static_cast<long long>(arm_queries[1]));
        bench::Metric("corpus.portfolio_speedup", serial_speedup, "x");
        bench::Metric("corpus.portfolio_witness_identical",
                      identical ? 1 : 0);
        for (int c = 0; c < smt::kNumQueryClasses; ++c) {
            if (class_queries[c] == 0)
                continue;
            bench::Metric(
                std::string("corpus.portfolio_win_rate/") +
                    kClassNames[c],
                static_cast<double>(class_decided[c]) /
                    static_cast<double>(class_queries[c]));
        }

        // Gate 1 is exact; gate 2 bounds the dispatch overhead rather
        // than demanding a win per run -- the corpus effect (skipped
        // core-minimization probes on the high-volume classes) is a
        // few percent of end-to-end pipeline time, under the run-to-
        // run noise of a shared CI box, so the win is asserted where
        // it is measurable: the trend gate watches the recorded
        // corpus.portfolio_speedup across commits (quiet-machine runs
        // land above 1.0), and bench_smt --portfolio measures the
        // solver-only stream where the effect is not diluted by the
        // rest of the pipeline. A real dispatch regression (e.g. a
        // preset that forfeits the interval pre-check) measures well
        // below the floor.
        const bool ok = identical && serial_speedup > 0.90;
        bench::Note("witness digests must match bitwise in every grid "
                    "cell and repetition; the wall-clock bound is the "
                    "interleaved min-of-reps workers=1 cell");
        std::printf("\nRESULT: %s (%zu protocols, %.2fx at workers=1, "
                    "witnesses %s)\n",
                    ok ? "PASS" : "MISMATCH", names.size(),
                    serial_speedup,
                    identical ? "identical" : "DIVERGED");
        bench::JsonRecorder::Instance().Flush();
        return ok ? 0 : 1;
    }

    std::map<std::string, FamilyAgg> by_family;
    size_t total_trojans = 0;
    int64_t total_queries = 0;
    core::PhaseTimings phases;
    const auto start = std::chrono::steady_clock::now();
    for (const std::string &name : names) {
        const auto factory = registry.Find(name);
        const proto::ProtocolBundle bundle = factory->Make();
        const RunResult r = RunOne(bundle, workers, false);
        FamilyAgg &agg = by_family[bundle.info.family];
        agg.protocols += 1;
        agg.trojans += r.trojans;
        agg.queries += r.queries;
        total_trojans += r.trojans;
        total_queries += r.queries;
        phases.client_extraction += r.timings.client_extraction;
        phases.preprocessing += r.timings.preprocessing;
        phases.server_analysis += r.timings.server_analysis;
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    bench::Section("per-family aggregates");
    std::printf("  %-28s %6s %8s %10s %9s\n", "family", "protos",
                "trojans", "yield", "q/proto");
    for (const auto &[family, agg] : by_family) {
        const double yield = static_cast<double>(agg.trojans) /
                             static_cast<double>(agg.protocols);
        const double qpp = static_cast<double>(agg.queries) /
                           static_cast<double>(agg.protocols);
        std::printf("  %-28s %6zu %8zu %10.2f %9.1f\n", family.c_str(),
                    agg.protocols, agg.trojans, yield, qpp);
        bench::JsonRecorder::Instance().Record(
            "corpus.trojan_yield" + MetricSuffix(family), yield);
        bench::JsonRecorder::Instance().Record(
            "corpus.queries_per_protocol" + MetricSuffix(family), qpp);
        bench::JsonRecorder::Instance().Record(
            "corpus.protocols" + MetricSuffix(family),
            static_cast<double>(agg.protocols));
    }

    bench::Section("totals");
    const double overall_yield = static_cast<double>(total_trojans) /
                                 static_cast<double>(names.size());
    const double overall_qpp = static_cast<double>(total_queries) /
                               static_cast<double>(names.size());
    bench::Metric("corpus.protocols", static_cast<double>(names.size()));
    bench::Metric("corpus.trojan_yield", overall_yield);
    bench::Metric("corpus.queries_per_protocol", overall_qpp);
    bench::Metric("corpus.seconds_total", seconds, "s");
    const double total_phase = phases.Total();
    if (total_phase > 0) {
        bench::Metric("corpus.phase_pct.client_extraction",
                      100.0 * phases.client_extraction / total_phase, "%");
        bench::Metric("corpus.phase_pct.preprocessing",
                      100.0 * phases.preprocessing / total_phase, "%");
        bench::Metric("corpus.phase_pct.server_analysis",
                      100.0 * phases.server_analysis / total_phase, "%");
    }

    // Knob-direction self-gate: within the sampled slice, high-coupling
    // cells must out-yield their low-coupling counterparts on average
    // (an unvalidated CRC tag is a guaranteed Trojan source), and yield
    // must be nonzero overall.
    double coupled_yield = 0, uncoupled_yield = 0;
    size_t coupled_protos = 0, uncoupled_protos = 0;
    for (const auto &[family, agg] : by_family) {
        if (family.rfind("synth/", 0) != 0)
            continue;
        if (family.find(".c75.") != std::string::npos) {
            coupled_yield += static_cast<double>(agg.trojans);
            coupled_protos += agg.protocols;
        } else if (family.find(".c0.") != std::string::npos) {
            uncoupled_yield += static_cast<double>(agg.trojans);
            uncoupled_protos += agg.protocols;
        }
    }
    bool knob_direction_ok = true;
    if (coupled_protos > 0 && uncoupled_protos > 0) {
        knob_direction_ok = coupled_yield / coupled_protos >
                            uncoupled_yield / uncoupled_protos;
        bench::Metric("corpus.coupling_yield_ordering_ok",
                      knob_direction_ok ? 1 : 0);
    }
    const bool ok = total_trojans > 0 && knob_direction_ok;

    bench::Note("yield rises with field coupling (unchecked CRC tags) "
                "and falls with validation density; spec protocols "
                "carry their declared validation gaps");
    std::printf("\nRESULT: %s (%zu protocols, %zu Trojans, %.1fs)\n",
                ok ? "PASS" : "MISMATCH", names.size(), total_trojans,
                seconds);
    bench::JsonRecorder::Instance().Flush();
    return ok ? 0 : 1;
}
