// Achilles reproduction -- Section 6.4: handling large client
// predicates (optimization ablation).
//
// The paper compares Achilles (incremental predicate dropping +
// differentFrom + state pruning) against a non-optimized implementation
// that runs plain symbolic execution and computes Trojan messages a
// posteriori: 1h03 vs 2h15 on FSP (~2.1x).
//
// Two workloads here:
//   * FSP at the paper's bound (32 client path predicates) -- all four
//     configurations, wall-clock + solver-work counters;
//   * the synthetic scaled protocol (one predicate per subcommand) at
//     growing N, where the incremental-vs-a-posteriori gap opens the
//     way the paper describes (live sets collapse to 1; a-posteriori
//     queries carry all N negations).

#include <cstdio>

#include "bench/bench_util.h"
#include "proto/synth/synth_family.h"
#include "core/achilles.h"
#include "proto/fsp/fsp_protocol.h"
#include "support/timer.h"

using namespace achilles;

namespace {

struct RunOutcome
{
    double seconds = 0.0;
    size_t trojans = 0;
    long long match_queries = 0;
    long long trojan_queries = 0;
    long long difffrom_drops = 0;
};

RunOutcome
RunConfig(core::AchillesConfig config)
{
    // A fresh context per configuration keeps solver caches from
    // leaking work across runs.
    smt::ExprContext ctx;
    smt::Solver solver(&ctx);
    Timer timer;
    const core::AchillesResult result =
        core::RunAchilles(&ctx, &solver, config);
    RunOutcome out;
    out.seconds = timer.Seconds();
    out.trojans = result.server.trojans.size();
    out.match_queries =
        result.server.stats.Get("explorer.match_queries");
    out.trojan_queries =
        result.server.stats.Get("explorer.trojan_queries");
    out.difffrom_drops =
        result.server.stats.Get("explorer.difffrom_drops");
    return out;
}

}  // namespace

int
main()
{
    bench::Header("Section 6.4 -- optimization ablation");

    // ----- FSP at the paper's bound -----
    const std::vector<symexec::Program> clients = fsp::MakeAllClients();
    const symexec::Program server = fsp::MakeServer();
    core::AchillesConfig base;
    base.layout = fsp::MakeLayout();
    for (const symexec::Program &c : clients)
        base.clients.push_back(&c);
    base.server = &server;

    bench::Section("FSP (32 client path predicates)");
    std::printf("%-34s %9s %9s %9s %9s\n", "configuration", "time(s)",
                "trojans", "matchQ", "trojanQ");

    auto full = base;
    const RunOutcome r_full = RunConfig(full);
    std::printf("%-34s %9.3f %9zu %9lld %9lld\n",
                "Achilles (all optimizations)", r_full.seconds,
                r_full.trojans, r_full.match_queries,
                r_full.trojan_queries);

    auto no_dff = base;
    no_dff.server_config.use_different_from = false;
    const RunOutcome r_nodff = RunConfig(no_dff);
    std::printf("%-34s %9.3f %9zu %9lld %9lld\n", "  - differentFrom",
                r_nodff.seconds, r_nodff.trojans, r_nodff.match_queries,
                r_nodff.trojan_queries);

    auto no_drop = base;
    no_drop.server_config.drop_client_predicates = false;
    const RunOutcome r_nodrop = RunConfig(no_drop);
    std::printf("%-34s %9.3f %9zu %9lld %9lld\n",
                "  - predicate dropping", r_nodrop.seconds,
                r_nodrop.trojans, r_nodrop.match_queries,
                r_nodrop.trojan_queries);

    auto apost = base;
    apost.server_config.mode = core::SearchMode::kAPosteriori;
    const RunOutcome r_apost = RunConfig(apost);
    std::printf("%-34s %9.3f %9zu %9lld %9lld\n",
                "a-posteriori differencing", r_apost.seconds,
                r_apost.trojans, r_apost.match_queries,
                r_apost.trojan_queries);
    bench::Note("with only 32 predicates the per-branch bookkeeping "
                "can rival a-posteriori cost; the paper's gap appears "
                "at scale (below)");

    // ----- Synthetic scaled protocol -----
    bench::Section("synthetic protocol, growing client predicate count");
    std::printf("%6s %14s %16s %9s\n", "N", "Achilles (s)",
                "a-posteriori (s)", "speedup");
    bool gap_at_scale = false;
    double last_speedup = 0.0;
    for (uint32_t n : {16u, 32u, 64u}) {
        const symexec::Program sclient = synth::MakeClient(n);
        const symexec::Program sserver = synth::MakeServer(n);
        core::AchillesConfig sconfig;
        sconfig.layout = synth::MakeLayout();
        sconfig.clients = {&sclient};
        sconfig.server = &sserver;

        const RunOutcome inc = RunConfig(sconfig);

        auto sapost = sconfig;
        sapost.server_config.mode = core::SearchMode::kAPosteriori;
        const RunOutcome ap = RunConfig(sapost);

        last_speedup = ap.seconds / inc.seconds;
        std::printf("%6u %14.3f %16.3f %8.2fx\n", n, inc.seconds,
                    ap.seconds, last_speedup);
        if (inc.trojans == 0 || ap.trojans == 0)
            std::printf("    WARNING: missing trojans (inc=%zu ap=%zu)\n",
                        inc.trojans, ap.trojans);
        gap_at_scale = last_speedup > 1.0;
    }
    bench::Note("paper: Achilles 1h03 vs non-optimized 2h15 on FSP "
                "(2.1x) with thousands of client path predicates");

    const bool ok = r_full.trojans > 0 && r_apost.trojans > 0 &&
                    gap_at_scale;
    std::printf("\nRESULT: %s (speedup at N=64: %.2fx)\n",
                ok ? "PASS (shape reproduced)" : "MISMATCH",
                last_speedup);
    return ok ? 0 : 1;
}
