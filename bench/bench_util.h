// Achilles reproduction -- benchmark harness helpers.
//
// Shared formatting for the per-table/per-figure reproduction binaries.
// Each binary prints the paper's reference numbers next to the measured
// ones so the "shape" comparison (who wins, by what factor) is direct.
//
// Machine-readable output: call ParseBenchArgs(argc, argv) in main and
// record numbers through Metric(); with `--json <path>` on the command
// line every metric is also written to <path> as a JSON array of
// {"metric": ..., "value": ...} records, so successive PRs can track the
// perf trajectory (BENCH_*.json) without scraping stdout. A run's
// observability summary (obs::RunReport) travels as one nested record,
// {"metric": "metrics", "nested": {...}} -- the trend script flattens
// its entries to "metrics.<name>", so flat lookups keep working.

#ifndef ACHILLES_BENCH_BENCH_UTIL_H_
#define ACHILLES_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/log.h"
#include "obs/run_report.h"

namespace achilles {
namespace bench {

/** Collects {metric, value} records and writes them on Flush(). */
class JsonRecorder
{
  public:
    static JsonRecorder &
    Instance()
    {
        static JsonRecorder recorder;
        return recorder;
    }

    void Open(std::string path) { path_ = std::move(path); }
    bool enabled() const { return !path_.empty(); }

    void
    Record(const std::string &metric, double value)
    {
        if (enabled())
            records_.emplace_back(metric, value);
    }

    /**
     * Record one nested object, emitted as
     * {"metric": <metric>, "nested": {name: value, ...}}. Used for the
     * run's observability summary so dozens of obs counters do not
     * crowd the flat record list.
     */
    void
    RecordNested(const std::string &metric,
                 std::vector<std::pair<std::string, double>> entries)
    {
        if (enabled())
            nested_.emplace_back(metric, std::move(entries));
    }

    /** Write all records; called automatically at program exit. */
    void
    Flush()
    {
        if (!enabled() || (records_.empty() && nested_.empty()))
            return;
        std::FILE *f = std::fopen(path_.c_str(), "w");
        if (f == nullptr) {
            obs::LogError("bench: cannot write " + path_);
            return;
        }
        const size_t total = records_.size() + nested_.size();
        size_t written = 0;
        std::fprintf(f, "[\n");
        for (size_t i = 0; i < records_.size(); ++i) {
            ++written;
            std::fprintf(f, "  {\"metric\": \"%s\", \"value\": %.9g}%s\n",
                         records_[i].first.c_str(), records_[i].second,
                         written < total ? "," : "");
        }
        for (size_t i = 0; i < nested_.size(); ++i) {
            ++written;
            std::fprintf(f, "  {\"metric\": \"%s\", \"nested\": {",
                         nested_[i].first.c_str());
            const auto &entries = nested_[i].second;
            for (size_t j = 0; j < entries.size(); ++j) {
                std::fprintf(f, "%s\"%s\": %.9g", j > 0 ? ", " : "",
                             entries[j].first.c_str(),
                             entries[j].second);
            }
            std::fprintf(f, "}}%s\n", written < total ? "," : "");
        }
        std::fprintf(f, "]\n");
        std::fclose(f);
        records_.clear();
        nested_.clear();
    }

    ~JsonRecorder() { Flush(); }

  private:
    JsonRecorder() = default;
    std::string path_;
    std::vector<std::pair<std::string, double>> records_;
    std::vector<std::pair<std::string,
                          std::vector<std::pair<std::string, double>>>>
        nested_;
};

/** Handle shared harness flags; currently `--json <path>`. */
inline void
ParseBenchArgs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--json")
            JsonRecorder::Instance().Open(argv[i + 1]);
    }
}

inline void
Header(const std::string &title)
{
    std::printf("\n==============================================="
                "=====================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================"
                "====================\n");
}

inline void
Section(const std::string &name)
{
    std::printf("\n--- %s ---\n", name.c_str());
}

inline void
Note(const std::string &text)
{
    std::printf("  # %s\n", text.c_str());
}

/** Print a named number and record it for `--json` output. */
inline void
Metric(const std::string &name, double value,
       const std::string &unit = "")
{
    std::printf("  %-40s %12.4f%s%s\n", name.c_str(), value,
                unit.empty() ? "" : " ", unit.c_str());
    JsonRecorder::Instance().Record(name, value);
}

/**
 * Fold a run's observability summary into the `--json` artifact as the
 * nested "metrics" record. No-op when the report is empty (obs off) or
 * `--json` was not given.
 */
inline void
RecordRunMetrics(const obs::RunReport &report)
{
    if (!report.empty())
        JsonRecorder::Instance().RecordNested("metrics",
                                              report.metrics());
}

}  // namespace bench
}  // namespace achilles

#endif  // ACHILLES_BENCH_BENCH_UTIL_H_
