// Achilles reproduction -- benchmark harness helpers.
//
// Shared formatting for the per-table/per-figure reproduction binaries.
// Each binary prints the paper's reference numbers next to the measured
// ones so the "shape" comparison (who wins, by what factor) is direct.
//
// Machine-readable output: call ParseBenchArgs(argc, argv) in main and
// record numbers through Metric(); with `--json <path>` on the command
// line every metric is also written to <path> as a JSON array of
// {"metric": ..., "value": ...} records, so successive PRs can track the
// perf trajectory (BENCH_*.json) without scraping stdout.

#ifndef ACHILLES_BENCH_BENCH_UTIL_H_
#define ACHILLES_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace achilles {
namespace bench {

/** Collects {metric, value} records and writes them on Flush(). */
class JsonRecorder
{
  public:
    static JsonRecorder &
    Instance()
    {
        static JsonRecorder recorder;
        return recorder;
    }

    void Open(std::string path) { path_ = std::move(path); }
    bool enabled() const { return !path_.empty(); }

    void
    Record(const std::string &metric, double value)
    {
        if (enabled())
            records_.emplace_back(metric, value);
    }

    /** Write all records; called automatically at program exit. */
    void
    Flush()
    {
        if (!enabled() || records_.empty())
            return;
        std::FILE *f = std::fopen(path_.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "bench: cannot write %s\n",
                         path_.c_str());
            return;
        }
        std::fprintf(f, "[\n");
        for (size_t i = 0; i < records_.size(); ++i) {
            std::fprintf(f, "  {\"metric\": \"%s\", \"value\": %.9g}%s\n",
                         records_[i].first.c_str(), records_[i].second,
                         i + 1 < records_.size() ? "," : "");
        }
        std::fprintf(f, "]\n");
        std::fclose(f);
        records_.clear();
    }

    ~JsonRecorder() { Flush(); }

  private:
    JsonRecorder() = default;
    std::string path_;
    std::vector<std::pair<std::string, double>> records_;
};

/** Handle shared harness flags; currently `--json <path>`. */
inline void
ParseBenchArgs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--json")
            JsonRecorder::Instance().Open(argv[i + 1]);
    }
}

inline void
Header(const std::string &title)
{
    std::printf("\n==============================================="
                "=====================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================"
                "====================\n");
}

inline void
Section(const std::string &name)
{
    std::printf("\n--- %s ---\n", name.c_str());
}

inline void
Note(const std::string &text)
{
    std::printf("  # %s\n", text.c_str());
}

/** Print a named number and record it for `--json` output. */
inline void
Metric(const std::string &name, double value,
       const std::string &unit = "")
{
    std::printf("  %-40s %12.4f%s%s\n", name.c_str(), value,
                unit.empty() ? "" : " ", unit.c_str());
    JsonRecorder::Instance().Record(name, value);
}

}  // namespace bench
}  // namespace achilles

#endif  // ACHILLES_BENCH_BENCH_UTIL_H_
