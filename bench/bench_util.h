// Achilles reproduction -- benchmark harness helpers.
//
// Shared formatting for the per-table/per-figure reproduction binaries.
// Each binary prints the paper's reference numbers next to the measured
// ones so the "shape" comparison (who wins, by what factor) is direct.

#ifndef ACHILLES_BENCH_BENCH_UTIL_H_
#define ACHILLES_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace achilles {
namespace bench {

inline void
Header(const std::string &title)
{
    std::printf("\n==============================================="
                "=====================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================"
                "====================\n");
}

inline void
Section(const std::string &name)
{
    std::printf("\n--- %s ---\n", name.c_str());
}

inline void
Note(const std::string &text)
{
    std::printf("  # %s\n", text.c_str());
}

}  // namespace bench
}  // namespace achilles

#endif  // ACHILLES_BENCH_BENCH_UTIL_H_
