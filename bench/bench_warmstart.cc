// Achilles reproduction -- warm-start knowledge persistence bench.
//
// Measures what a prior run's knowledge snapshot (src/persist) is worth
// to the next run: cold vs warm wall-clock and solver-visible query
// counts on FSP, the guarded synthetic protocol, and a stratified slice
// of the seeded corpus.
//
// Self-gates (hard, exit nonzero on failure):
//   1. Witness identity: warm runs produce bitwise-identical witness
//      sets to cold runs at 1/2/4/8 workers (restored knowledge only
//      ever skips queries whose answers it already is).
//   2. Query reduction: at workers=1 (deterministic query stream) the
//      warm run issues strictly fewer explorer queries than the cold
//      run on FSP and the guarded protocol, and never more at any
//      worker count or on any corpus protocol.
//   3. Degradation: truncated, bit-flipped, version-mismatched and
//      fingerprint-mismatched snapshots all fail the load cleanly and
//      the subsequent run is an ordinary cold start -- same witnesses,
//      no crash.
//
// Emitted metrics (watched by scripts/check_bench_trend.py):
//   warmstart.speedup[/<tag>/workers=N]              cold s / warm s
//   warmstart.query_reduction_pct[/<tag>/workers=N]  100*(1 - warm/cold)
//
// Flags: --json PATH          machine-readable metrics (bench_util.h)
//        --snapshot-out PATH  where to write the FSP sample snapshot
//                             (default warmstart_sample.snap; uploaded
//                             as a CI artifact)
//        --limit N            corpus slice size (default 6, 0 = skip)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/achilles.h"
#include "persist/fingerprint.h"
#include "persist/snapshot.h"
#include "proto/registry.h"
#include "proto/synth/synth_family.h"

using namespace achilles;

namespace {

struct RunOutcome
{
    size_t trojans = 0;
    int64_t queries = 0;
    double seconds = 0.0;
    /** FNV-1a over the sorted per-witness digests (identity gate). */
    uint64_t witness_digest = 1469598103934665603ull;
};

void
DigestBytes(uint64_t *h, const void *data, size_t n)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        *h ^= p[i];
        *h *= 1099511628211ull;
    }
}

/** One full pipeline run, optionally warm-started and/or captured. */
RunOutcome
RunOne(const proto::ProtocolBundle &bundle, size_t workers,
       const persist::KnowledgeSnapshot *knowledge_in,
       persist::KnowledgeSnapshot *knowledge_out)
{
    smt::ExprContext ctx;
    smt::Solver solver(&ctx);
    core::AchillesConfig config;
    config.layout = bundle.layout;
    const auto clients = bundle.ClientPtrs();
    config.clients = clients;
    config.server = &bundle.server;
    config.server_config.engine.num_workers = workers;
    config.knowledge_in = knowledge_in;
    config.knowledge_out = knowledge_out;

    const auto start = std::chrono::steady_clock::now();
    const core::AchillesResult result =
        core::RunAchilles(&ctx, &solver, config);
    RunOutcome out;
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    out.trojans = result.server.trojans.size();
    out.queries = result.server.stats.Get("explorer.match_queries") +
                  result.server.stats.Get("explorer.trojan_queries");
    std::vector<uint64_t> per_witness;
    per_witness.reserve(result.server.trojans.size());
    for (const core::TrojanWitness &t : result.server.trojans) {
        uint64_t h = 1469598103934665603ull;
        DigestBytes(&h, &t.server_path_id, sizeof(t.server_path_id));
        DigestBytes(&h, t.accept_label.data(), t.accept_label.size());
        DigestBytes(&h, t.concrete.data(), t.concrete.size());
        const uint64_t def_size = t.definition.size();
        DigestBytes(&h, &def_size, sizeof(def_size));
        DigestBytes(&h, t.message_vars.data(),
                    t.message_vars.size() * sizeof(uint32_t));
        per_witness.push_back(h);
    }
    std::sort(per_witness.begin(), per_witness.end());
    for (uint64_t h : per_witness)
        DigestBytes(&out.witness_digest, &h, sizeof(h));
    return out;
}

proto::ProtocolBundle
MakeGuardedBundle()
{
    proto::ProtocolBundle bundle;
    bundle.info.name = "guarded[k=2,r=8]";
    bundle.info.family = "synthetic";
    bundle.layout = synth::MakeGuardedLayout();
    bundle.server = synth::MakeGuardedServer(2, 8);
    bundle.clients.push_back(synth::MakeGuardedClient(2));
    return bundle;
}

bool
WriteBytes(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return false;
    const size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
    return std::fclose(f) == 0 && n == bytes.size();
}

std::vector<uint8_t>
ReadBytes(const std::string &path)
{
    std::vector<uint8_t> out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return out;
    uint8_t chunk[4096];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        out.insert(out.end(), chunk, chunk + n);
    std::fclose(f);
    return out;
}

}  // namespace

int
main(int argc, char **argv)
{
    bench::ParseBenchArgs(argc, argv);
    std::string snapshot_out = "warmstart_sample.snap";
    size_t corpus_limit = 6;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--snapshot-out") == 0 && i + 1 < argc)
            snapshot_out = argv[++i];
        else if (std::strcmp(argv[i], "--limit") == 0 && i + 1 < argc)
            corpus_limit = static_cast<size_t>(std::atoi(argv[++i]));
    }

    bench::Header("Warm-start knowledge persistence (cold vs warm runs)");
    bench::Note("snapshot = prune index + lemma pool + query cache; "
                "restored facts only skip queries they already answer");

    const size_t worker_counts[] = {1, 2, 4, 8};
    bool witnesses_identical = true;
    bool never_more_queries = true;
    bool serial_strictly_fewer = true;

    struct Scenario
    {
        const char *tag;
        proto::ProtocolBundle bundle;
    };
    std::vector<Scenario> scenarios;
    {
        const auto factory =
            proto::ProtocolRegistry::Global().Find("fsp");
        if (factory == nullptr) {
            std::fprintf(stderr, "bench_warmstart: no fsp protocol\n");
            return 1;
        }
        scenarios.push_back({"fsp", factory->Make()});
    }
    scenarios.push_back({"guarded", MakeGuardedBundle()});

    double fsp_speedup = 1.0;
    double fsp_reduction = 0.0;

    for (const Scenario &scenario : scenarios) {
        bench::Section(std::string(scenario.tag) +
                       ": cold vs warm at 1/2/4/8 workers");
        const uint64_t fp = persist::ProtocolFingerprint(scenario.bundle);

        // The snapshot under test comes from a serial cold run, through
        // an actual save/load round trip on disk (the FSP one is kept
        // as the CI sample artifact).
        persist::KnowledgeSnapshot captured;
        captured.protocol_fingerprint = fp;
        RunOne(scenario.bundle, 1, nullptr, &captured);
        const std::string snap_path =
            std::strcmp(scenario.tag, "fsp") == 0
                ? snapshot_out
                : snapshot_out + "." + scenario.tag;
        std::string error;
        if (!persist::SaveSnapshot(captured, snap_path, &error)) {
            std::fprintf(stderr, "bench_warmstart: save failed: %s\n",
                         error.c_str());
            return 1;
        }
        persist::KnowledgeSnapshot warm;
        if (!persist::LoadSnapshot(snap_path, fp, &warm, &error)) {
            std::fprintf(stderr, "bench_warmstart: load failed: %s\n",
                         error.c_str());
            return 1;
        }
        std::printf("  snapshot: %zu entries (%zu cores, %zu overlay, "
                    "%zu query cores, %zu lemmas, %zu queries)\n",
                    warm.TotalEntries(), warm.cores.size(),
                    warm.overlay.size(), warm.query_cores.size(),
                    warm.lemmas.size(), warm.queries.size());

        std::printf("  %-9s %10s %10s %10s %10s %8s\n", "workers",
                    "cold(s)", "warm(s)", "cold(q)", "warm(q)",
                    "witness");
        for (size_t w : worker_counts) {
            const RunOutcome cold = RunOne(scenario.bundle, w, nullptr,
                                           nullptr);
            const RunOutcome hot = RunOne(scenario.bundle, w, &warm,
                                          nullptr);
            const bool same = cold.witness_digest == hot.witness_digest &&
                              cold.trojans == hot.trojans;
            witnesses_identical = witnesses_identical && same;
            never_more_queries =
                never_more_queries && hot.queries <= cold.queries;
            if (w == 1) {
                // The serial query stream is fully deterministic, so
                // strict reduction is gateable; parallel counts wobble
                // with the steal schedule and are only gated to never
                // exceed cold.
                serial_strictly_fewer =
                    serial_strictly_fewer && hot.queries < cold.queries;
            }
            std::printf("  %-9zu %10.3f %10.3f %10lld %10lld %8s\n", w,
                        cold.seconds, hot.seconds,
                        static_cast<long long>(cold.queries),
                        static_cast<long long>(hot.queries),
                        same ? "same" : "DIFF");
            const std::string suffix = std::string("/") + scenario.tag +
                                       "/workers=" + std::to_string(w);
            const double speedup =
                hot.seconds > 0 ? cold.seconds / hot.seconds : 1.0;
            const double reduction =
                cold.queries > 0
                    ? 100.0 * (1.0 - static_cast<double>(hot.queries) /
                                         static_cast<double>(cold.queries))
                    : 0.0;
            bench::Metric("warmstart.speedup" + suffix, speedup, "x");
            bench::Metric("warmstart.query_reduction_pct" + suffix,
                          reduction, "%");
            if (w == 1 && std::strcmp(scenario.tag, "fsp") == 0) {
                fsp_speedup = speedup;
                fsp_reduction = reduction;
            }
        }
    }

    // ------------------------------------------------------------------
    // Degradation gates: every damaged snapshot must fail the load and
    // leave the run an ordinary cold start.
    // ------------------------------------------------------------------
    bench::Section("corrupted/mismatched snapshots degrade to cold start");
    bool degrade_ok = true;
    {
        const Scenario &fsp = scenarios[0];
        const uint64_t fp = persist::ProtocolFingerprint(fsp.bundle);
        const RunOutcome cold = RunOne(fsp.bundle, 1, nullptr, nullptr);
        const std::vector<uint8_t> good = ReadBytes(snapshot_out);
        if (good.size() < 32) {
            std::fprintf(stderr, "bench_warmstart: sample too small\n");
            return 1;
        }

        struct Damage
        {
            const char *what;
            std::vector<uint8_t> bytes;
            uint64_t expected_fp;
        };
        std::vector<Damage> damages;
        damages.push_back(
            {"truncated",
             std::vector<uint8_t>(good.begin(),
                                  good.begin() + good.size() / 2),
             fp});
        {
            std::vector<uint8_t> flipped = good;
            flipped[flipped.size() - 5] ^= 0x40;  // payload bit flip
            damages.push_back({"bit-flipped", std::move(flipped), fp});
        }
        {
            std::vector<uint8_t> versioned = good;
            versioned[8] ^= 0xFF;  // format version field
            damages.push_back(
                {"version-mismatched", std::move(versioned), fp});
        }
        damages.push_back({"fingerprint-mismatched", good, fp ^ 1});

        for (const Damage &damage : damages) {
            const std::string path =
                snapshot_out + ".damaged." + damage.what;
            if (!WriteBytes(path, damage.bytes)) {
                std::fprintf(stderr, "bench_warmstart: cannot write %s\n",
                             path.c_str());
                return 1;
            }
            persist::KnowledgeSnapshot snap;
            std::string error;
            const bool loaded = persist::LoadSnapshot(
                path, damage.expected_fp, &snap, &error);
            // Must reject, must leave the snapshot empty, and a run
            // "warmed" with the empty result must match cold bitwise.
            const RunOutcome after =
                RunOne(fsp.bundle, 1, &snap, nullptr);
            const bool ok = !loaded && snap.Empty() &&
                            after.witness_digest == cold.witness_digest &&
                            after.queries == cold.queries;
            degrade_ok = degrade_ok && ok;
            std::printf("  %-24s load=%-8s -> %s (%s)\n", damage.what,
                        loaded ? "ACCEPTED" : "rejected",
                        ok ? "clean cold start" : "GATE FAILED",
                        error.c_str());
            std::remove(path.c_str());
        }
    }

    // ------------------------------------------------------------------
    // Stratified corpus slice: same gates, minus strict reduction (some
    // tiny cells have nothing left to skip).
    // ------------------------------------------------------------------
    bool corpus_ok = true;
    if (corpus_limit > 0) {
        bench::Section("stratified corpus slice (workers=1)");
        std::vector<std::string> names;
        for (const std::string &name :
             proto::ProtocolRegistry::Global().Names()) {
            if (name.rfind("synth/", 0) == 0)
                names.push_back(name);
        }
        if (names.size() > corpus_limit) {
            std::vector<std::string> strided;
            const size_t step = names.size() / corpus_limit;
            for (size_t i = 0;
                 i < names.size() && strided.size() < corpus_limit;
                 i += step)
                strided.push_back(names[i]);
            names = std::move(strided);
        }
        double cold_total = 0.0, warm_total = 0.0;
        int64_t cold_queries = 0, warm_queries = 0;
        for (const std::string &name : names) {
            const proto::ProtocolBundle bundle =
                proto::ProtocolRegistry::Global().Find(name)->Make();
            persist::KnowledgeSnapshot snap;
            snap.protocol_fingerprint =
                persist::ProtocolFingerprint(bundle);
            const RunOutcome cold = RunOne(bundle, 1, nullptr, &snap);
            const RunOutcome hot = RunOne(bundle, 1, &snap, nullptr);
            const bool same =
                cold.witness_digest == hot.witness_digest &&
                hot.queries <= cold.queries;
            corpus_ok = corpus_ok && same;
            cold_total += cold.seconds;
            warm_total += hot.seconds;
            cold_queries += cold.queries;
            warm_queries += hot.queries;
            std::printf("  %-32s cold %6lld q, warm %6lld q, %s\n",
                        name.c_str(),
                        static_cast<long long>(cold.queries),
                        static_cast<long long>(hot.queries),
                        same ? "same witnesses" : "GATE FAILED");
        }
        bench::Metric("warmstart.corpus_speedup",
                      warm_total > 0 ? cold_total / warm_total : 1.0,
                      "x");
        bench::Metric(
            "warmstart.corpus_query_reduction_pct",
            cold_queries > 0
                ? 100.0 * (1.0 - static_cast<double>(warm_queries) /
                                     static_cast<double>(cold_queries))
                : 0.0,
            "%");
    }

    bench::Section("gates");
    bench::Metric("warmstart.speedup", fsp_speedup, "x");
    bench::Metric("warmstart.query_reduction_pct", fsp_reduction, "%");
    bench::Metric("warmstart.witness_sets_identical",
                  witnesses_identical ? 1 : 0);
    bench::Metric("warmstart.never_more_queries",
                  never_more_queries ? 1 : 0);
    bench::Metric("warmstart.serial_strictly_fewer",
                  serial_strictly_fewer ? 1 : 0);
    bench::Metric("warmstart.degradation_clean", degrade_ok ? 1 : 0);
    bench::Metric("warmstart.corpus_identical", corpus_ok ? 1 : 0);

    const bool ok = witnesses_identical && never_more_queries &&
                    serial_strictly_fewer && degrade_ok && corpus_ok;
    if (!ok)
        std::printf("\nGATE FAILURE: see rows marked DIFF/GATE FAILED\n");
    else
        std::printf("\nall gates passed; sample snapshot at %s\n",
                    snapshot_out.c_str());
    bench::JsonRecorder::Instance().Flush();
    return ok ? 0 : 1;
}
