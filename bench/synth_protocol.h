// Achilles reproduction -- back-compat shim.
//
// The synthetic protocols moved to src/proto/synth/synth_family.h
// (same achilles::synth namespace, identical semantics) so they can be
// sampled into the protocol registry. Include that header directly;
// this forwarder exists for one PR and then goes away.

#ifndef ACHILLES_BENCH_SYNTH_PROTOCOL_H_
#define ACHILLES_BENCH_SYNTH_PROTOCOL_H_

#include "proto/synth/synth_family.h"

#endif  // ACHILLES_BENCH_SYNTH_PROTOCOL_H_
