// Achilles reproduction -- synthetic scaled protocol for the Section
// 6.4 optimization study.
//
// The paper's FSP client predicate had thousands of path predicates; at
// our path bound FSP yields 32. To exercise the optimizations at
// paper-like scale this header generates a protocol with one client
// path predicate per subcommand, shaped so the two implementations
// differ the way the paper describes:
//
//   message: cmd(1) | arg(1) | tag(1)
//   client, subcommand i: cmd = i, arg = λ ∈ [lo_i, lo_i+40],
//                         tag = (13·λ + 7·i) mod 256   (CRC-like)
//   server: binary dispatch on the cmd bits (a parser's nested
//           switch), then arg ∈ [lo_i, lo_i+50] (wider: Trojan band),
//           then two accepting handlers split on arg's parity; the tag
//           is never validated (second Trojan source).
//
// Because the tag is an (invertible) arithmetic function of a
// constrained variable, its negation keeps the functional form with
// fresh copies (Section 3.2) -- each negated predicate carries a
// multiplication. A-posteriori differencing must conjoin all N of them
// on every accepting path; the incremental search drops half the live
// predicates at each dispatch bit, so its Trojan queries stay small.

#ifndef ACHILLES_BENCH_SYNTH_PROTOCOL_H_
#define ACHILLES_BENCH_SYNTH_PROTOCOL_H_

#include <functional>
#include <string>

#include "core/message.h"
#include "symexec/program.h"

namespace achilles {
namespace synth {

inline constexpr uint32_t kMessageLength = 3;

inline core::MessageLayout
MakeLayout()
{
    core::MessageLayout layout(kMessageLength);
    layout.AddField("cmd", 0, 1).AddField("arg", 1, 1).AddField("tag", 2,
                                                                 1);
    return layout;
}

inline uint64_t ClientLo(uint32_t i) { return (i * 3) % 120; }
inline uint64_t ClientHi(uint32_t i) { return ClientLo(i) + 40; }
inline uint64_t ServerHi(uint32_t i) { return ClientLo(i) + 50; }

inline symexec::Program
MakeClient(uint32_t num_subcommands)
{
    using symexec::ProgramBuilder;
    using symexec::Val;
    ProgramBuilder b("synth-client");
    b.Function("main", {}, 0, [&] {
        Val which = b.ReadInput("which", 8);
        Val arg = b.ReadInput("arg", 8);
        b.Array("msg", 8, kMessageLength);
        for (uint32_t i = 0; i < num_subcommands; ++i) {
            b.If(which == i, [&] {
                b.If(arg < ClientLo(i), [&] { b.Halt(); });
                b.If(arg > ClientHi(i), [&] { b.Halt(); });
                b.Store("msg", Val::Const(8, 0), Val::Const(8, i));
                b.Store("msg", Val::Const(8, 1), arg);
                // CRC-like integrity tag over the argument.
                Val tag = arg * Val::Const(8, 13) +
                          Val::Const(8, (7 * i) & 0xff);
                b.Store("msg", Val::Const(8, 2), tag);
                b.SendMessage("msg");
            });
        }
    });
    return b.Build();
}

inline symexec::Program
MakeServer(uint32_t num_subcommands)
{
    using symexec::ProgramBuilder;
    using symexec::Val;
    ACHILLES_CHECK((num_subcommands & (num_subcommands - 1)) == 0,
                   "num_subcommands must be a power of two");
    uint32_t bits = 0;
    while ((1u << bits) < num_subcommands)
        ++bits;

    ProgramBuilder b("synth-server");
    b.Function("main", {}, 0, [&] {
        b.ReceiveMessage("msg", kMessageLength);
        Val cmd = b.Local(
            "cmd", 8, ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, 0)));
        Val arg = b.Local(
            "arg", 8, ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, 1)));
        // Unknown high bits -> discard.
        b.If(cmd >= num_subcommands, [&] { b.MarkReject(); });

        // Binary dispatch on the cmd bits, like a nested switch: each
        // level halves the set of client predicates that still match.
        std::function<void(uint32_t, uint32_t)> dispatch =
            [&](uint32_t bit, uint32_t prefix) {
                if (bit == 0) {
                    const uint32_t i = prefix;
                    b.If(arg < ClientLo(i), [&] { b.MarkReject(); });
                    b.If(arg > ServerHi(i), [&] { b.MarkReject(); });
                    // Two accepting handlers (parity split); the tag is
                    // never validated.
                    b.If((arg & 1) == Val::Const(8, 1),
                         [&] { b.MarkAccept("odd"); },
                         [&] { b.MarkAccept("even"); });
                    return;
                }
                const uint32_t mask = 1u << (bit - 1);
                b.If((cmd & mask) == Val::Const(8, 0),
                     [&] { dispatch(bit - 1, prefix); },
                     [&] { dispatch(bit - 1, prefix | mask); });
            };
        dispatch(bits, 0);
    });
    return b.Build();
}

// ---------------------------------------------------------------------
// Guarded variant: a fully validated protocol (the server checks every
// analyzed field, so no state has a Trojan) whose server re-derives the
// same dead-end constraints in many sibling regions, selected by a pad
// byte that belongs to no layout field. Each region's validation chain
// ends in a state provably free of Trojans; the first such refutation's
// core -- {cmd == i, arg < bound, ¬pathC_i} -- transfers verbatim to
// every other region's chain (their extra pad constraints are not
// implicated), which is exactly the workload the cross-state Trojan-core
// index prunes: one worker's dead state subsumes the descendants of
// every sibling region, including regions explored by other workers.
// ---------------------------------------------------------------------

inline constexpr uint64_t kGuardedArgBound = 10;

inline core::MessageLayout
MakeGuardedLayout()
{
    // Byte 2 ("pad") intentionally belongs to no field: the server's
    // region dispatch on it forks states without entering the
    // predicate-match logic.
    core::MessageLayout out(kMessageLength);
    out.AddField("cmd", 0, 1).AddField("arg", 1, 1);
    return out;
}

inline symexec::Program
MakeGuardedClient(uint32_t num_cmds)
{
    using symexec::ProgramBuilder;
    using symexec::Val;
    ProgramBuilder b("guarded-client");
    b.Function("main", {}, 0, [&] {
        Val which = b.ReadInput("which", 8);
        Val arg = b.ReadInput("arg", 8);
        b.Array("msg", 8, kMessageLength);
        for (uint32_t i = 0; i < num_cmds; ++i) {
            b.If(which == i, [&] {
                b.If(arg >= kGuardedArgBound, [&] { b.Halt(); });
                b.Store("msg", Val::Const(8, 0), Val::Const(8, i));
                b.Store("msg", Val::Const(8, 1), arg);
                b.Store("msg", Val::Const(8, 2), Val::Const(8, 0));
                b.SendMessage("msg");
            });
        }
    });
    return b.Build();
}

inline symexec::Program
MakeGuardedServer(uint32_t num_cmds, uint32_t regions)
{
    using symexec::ProgramBuilder;
    using symexec::Val;
    ProgramBuilder b("guarded-server");
    b.Function("main", {}, 0, [&] {
        b.ReceiveMessage("msg", kMessageLength);
        Val cmd = b.Local(
            "cmd", 8, ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, 0)));
        Val arg = b.Local(
            "arg", 8, ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, 1)));
        Val pad = b.Local(
            "pad", 8, ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, 2)));
        for (uint32_t r = 0; r < regions; ++r) {
            b.If(pad == r, [&] {
                for (uint32_t i = 0; i < num_cmds; ++i) {
                    b.If(cmd == i, [&] {
                        b.If(arg < kGuardedArgBound, [&] {
                            b.MarkAccept("h" + std::to_string(i));
                        });
                    });
                }
            });
        }
        b.MarkReject("bad");
    });
    return b.Build();
}

}  // namespace synth
}  // namespace achilles

#endif  // ACHILLES_BENCH_SYNTH_PROTOCOL_H_
