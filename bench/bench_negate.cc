// Achilles reproduction -- negate-operator micro-benchmarks (ablation).
//
// Measures the preprocessing phase building blocks: negation of the
// real FSP client predicates (exact fast path), the fresh-copy encoding
// with its solver-backed overlap check, and the differentFrom
// precomputation with and without value-class grouping.

#include <benchmark/benchmark.h>

#include "core/client_extractor.h"
#include "core/different_from.h"
#include "core/negate.h"
#include "proto/fsp/fsp_protocol.h"

using namespace achilles;
using namespace achilles::core;

namespace {

struct FspPreds
{
    smt::ExprContext ctx;
    smt::Solver solver{&ctx};
    MessageLayout layout = fsp::MakeLayout();
    std::vector<symexec::Program> clients = fsp::MakeAllClients();
    ClientPredicate pc;
    std::vector<smt::ExprRef> message;

    FspPreds()
    {
        std::vector<const symexec::Program *> ptrs;
        for (const auto &c : clients)
            ptrs.push_back(&c);
        pc = ExtractClientPredicate(&ctx, &solver, ptrs, layout);
        for (uint32_t i = 0; i < layout.length(); ++i)
            message.push_back(ctx.FreshVar("msg", 8));
    }
};

void
BM_NegateFspPredicates(benchmark::State &state)
{
    FspPreds fixture;
    for (auto _ : state) {
        NegateOperator op(&fixture.ctx, &fixture.solver, &fixture.layout,
                          fixture.message);
        size_t usable = 0;
        for (const ClientPathPredicate &pred : fixture.pc.paths)
            usable += op.Negate(pred).Usable() ? 1 : 0;
        benchmark::DoNotOptimize(usable);
    }
    state.counters["predicates"] =
        static_cast<double>(fixture.pc.paths.size());
}
BENCHMARK(BM_NegateFspPredicates);

void
BM_DifferentFromPrecompute(benchmark::State &state)
{
    FspPreds fixture;
    for (auto _ : state) {
        NegateOperator op(&fixture.ctx, &fixture.solver, &fixture.layout,
                          fixture.message);
        DifferentFromMatrix matrix(&fixture.ctx, &fixture.solver,
                                   &fixture.layout);
        matrix.Compute(fixture.pc.paths, &op);
        benchmark::DoNotOptimize(
            matrix.IsIndependentField("cmd"));
    }
}
BENCHMARK(BM_DifferentFromPrecompute);

void
BM_OverlapCheckComplexExpr(benchmark::State &state)
{
    smt::ExprContext ctx;
    smt::Solver solver(&ctx);
    MessageLayout layout(2);
    layout.AddField("a", 0, 1).AddField("crc", 1, 1);
    std::vector<smt::ExprRef> msg{ctx.FreshVar("m", 8),
                                  ctx.FreshVar("m", 8)};
    smt::ExprRef lam = ctx.FreshVar("lam", 8);
    ClientPathPredicate pred;
    pred.bytes = {lam, ctx.MakeXor(ctx.MakeMul(lam, ctx.MakeConst(8, 13)),
                                   ctx.MakeConst(8, 0x5a))};
    pred.constraints = {ctx.MakeUlt(lam, ctx.MakeConst(8, 100))};
    for (auto _ : state) {
        NegateOperator op(&ctx, &solver, &layout, msg);
        benchmark::DoNotOptimize(op.Negate(pred).fields.size());
    }
}
BENCHMARK(BM_OverlapCheckComplexExpr);

}  // namespace

BENCHMARK_MAIN();
