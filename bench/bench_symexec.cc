// Achilles reproduction -- symbolic execution engine micro-benchmarks.
//
// Measures engine throughput: state forking on branchy programs,
// straight-line interpretation, and symbolic-index array access (the
// ITE-chain encoding choice called out in DESIGN.md).

#include <benchmark/benchmark.h>

#include "smt/solver.h"
#include "symexec/engine.h"
#include "symexec/program.h"

using namespace achilles;
using namespace achilles::symexec;

namespace {

/** 2^depth paths from `depth` independent symbolic branches. */
void
BM_ForkingExploration(benchmark::State &state)
{
    const uint32_t depth = static_cast<uint32_t>(state.range(0));
    ProgramBuilder b("forky");
    b.Function("main", {}, 0, [&] {
        for (uint32_t i = 0; i < depth; ++i) {
            Val x = b.ReadInput("x" + std::to_string(i), 8);
            b.If(x < 128, [&] {}, [&] {});
        }
        b.Halt();
    });
    const Program p = b.Build();
    for (auto _ : state) {
        smt::ExprContext ctx;
        smt::Solver solver(&ctx);
        Engine engine(&ctx, &solver, &p, Mode::kClient);
        auto results = engine.Run();
        benchmark::DoNotOptimize(results.size());
    }
    state.counters["paths"] = static_cast<double>(1u << depth);
}
BENCHMARK(BM_ForkingExploration)->Arg(4)->Arg(8);

/** Straight-line interpretation (no solver involvement). */
void
BM_StraightLine(benchmark::State &state)
{
    ProgramBuilder b("straight");
    b.Function("main", {}, 0, [&] {
        Val acc = b.Local("acc", 32, Val::Const(32, 1));
        for (int i = 0; i < 200; ++i)
            b.Assign(acc, acc + Val::Const(32, i));
        b.Halt();
    });
    const Program p = b.Build();
    for (auto _ : state) {
        smt::ExprContext ctx;
        smt::Solver solver(&ctx);
        Engine engine(&ctx, &solver, &p, Mode::kClient);
        benchmark::DoNotOptimize(engine.Run().size());
    }
}
BENCHMARK(BM_StraightLine);

/** Symbolic-index array read: ITE chain over `size` cells. */
void
BM_SymbolicIndexRead(benchmark::State &state)
{
    const uint32_t size = static_cast<uint32_t>(state.range(0));
    ProgramBuilder b("array");
    b.Function("main", {}, 0, [&] {
        b.Array("data", 8, size);
        Val idx = b.ReadInput("idx", 8);
        b.Assume(idx < size);
        Val v = b.Local("v", 8, ProgramBuilder::ArrayAt("data", 8, idx));
        b.If(v == 0, [&] { b.MarkAccept(); }, [&] { b.MarkReject(); });
    });
    const Program p = b.Build();
    for (auto _ : state) {
        smt::ExprContext ctx;
        smt::Solver solver(&ctx);
        Engine engine(&ctx, &solver, &p, Mode::kServer);
        engine.SetIncomingMessage({ctx.FreshVar("m", 8)});
        benchmark::DoNotOptimize(engine.Run().size());
    }
}
BENCHMARK(BM_SymbolicIndexRead)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
