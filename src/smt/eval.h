// Achilles reproduction -- SMT library.
//
// Concrete evaluation of expressions under a variable assignment, and the
// Model type returned by the solver. The evaluator is also used by the
// test suite to validate SAT models (every model the solver returns is
// checked against the original constraints) and by the ground-truth
// oracles in the experiment harnesses.

#ifndef ACHILLES_SMT_EVAL_H_
#define ACHILLES_SMT_EVAL_H_

#include <cstdint>
#include <unordered_map>

#include "smt/expr.h"

namespace achilles {
namespace smt {

/**
 * A concrete assignment of symbolic variables.
 *
 * Variables absent from the map default to zero, matching the solver's
 * treatment of don't-care bits.
 */
class Model
{
  public:
    /** Assign a value to a variable (masked to the variable's width). */
    void Set(uint32_t var_id, uint64_t value) { values_[var_id] = value; }

    /** Value of a variable (zero if unassigned). */
    uint64_t
    Get(uint32_t var_id) const
    {
        auto it = values_.find(var_id);
        return it == values_.end() ? 0 : it->second;
    }

    bool Has(uint32_t var_id) const { return values_.count(var_id) != 0; }

    const std::unordered_map<uint32_t, uint64_t> &values() const
    {
        return values_;
    }

  private:
    std::unordered_map<uint32_t, uint64_t> values_;
};

/**
 * Evaluate `e` under `model`, returning the value masked to e->width().
 * Memoizes across the DAG, so repeated shared sub-expressions (CRC
 * chains) evaluate in linear time.
 */
uint64_t Evaluate(ExprRef e, const Model &model);

/** Evaluate a width-1 expression as a boolean. */
inline bool
EvaluateBool(ExprRef e, const Model &model)
{
    ACHILLES_CHECK(e->width() == 1);
    return Evaluate(e, model) != 0;
}

}  // namespace smt
}  // namespace achilles

#endif  // ACHILLES_SMT_EVAL_H_
