// Achilles reproduction -- SMT library.
//
// CDCL SAT solver in the MiniSat lineage: two-watched-literal propagation,
// first-UIP conflict analysis, VSIDS-style activity, phase saving and
// geometric restarts. This is the decision procedure underneath the
// bitvector solver, standing in for the SAT cores of STP/Z3.

#ifndef ACHILLES_SMT_SAT_H_
#define ACHILLES_SMT_SAT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "support/logging.h"
#include "support/stats.h"

namespace achilles {
namespace smt {

/** A literal: variable index with sign, encoded MiniSat-style (2v+sign). */
class Lit
{
  public:
    Lit() : code_(0) {}
    Lit(uint32_t var, bool negated) : code_(2 * var + (negated ? 1 : 0)) {}

    uint32_t var() const { return code_ >> 1; }
    bool negated() const { return code_ & 1; }
    Lit operator~() const { return FromCode(code_ ^ 1); }
    uint32_t code() const { return code_; }
    bool operator==(const Lit &o) const { return code_ == o.code_; }
    bool operator!=(const Lit &o) const { return code_ != o.code_; }

    static Lit
    FromCode(uint32_t code)
    {
        Lit l;
        l.code_ = code;
        return l;
    }

  private:
    uint32_t code_;
};

/** Ternary logic value of a variable or literal. */
enum class LBool : uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

/** Result of a Solve() call. */
enum class SatStatus { kSat, kUnsat, kUnknown };

/** Restart schedule of the CDCL search loop. */
enum class RestartSchedule : uint8_t
{
    kGeometric,  // budget grows by restart_growth after each restart
    kLuby,       // budget = restart_base * Luby(restart number)
};

/** First-try decision polarity. */
enum class PhasePolicy : uint8_t
{
    kSaved,     // last assigned polarity (phase saving; the default)
    kNegative,  // always try false first (MiniSat's classic default)
    kPositive,  // always try true first
};

/**
 * Tunable heuristics of the CDCL core. The defaults reproduce the
 * solver's historical fixed point bit-exactly; the portfolio layer in
 * the facade swaps presets per query class. Every field only steers
 * the search order -- verdicts (and, for deterministic single-strategy
 * streams, models) are unaffected by which preset found them.
 */
struct SatParams
{
    RestartSchedule restart_schedule = RestartSchedule::kGeometric;
    /** First restart interval, in conflicts. */
    int64_t restart_base = 100;
    /** Geometric growth factor (ignored under Luby). */
    double restart_growth = 1.5;
    PhasePolicy phase_policy = PhasePolicy::kSaved;
    /** VSIDS variable-activity decay (var_inc /= var_decay). */
    double var_decay = 0.95;
    /** Learnt-clause activity decay. */
    double clause_decay = 0.999;
    /** ReduceDB auto-cap = max(learnt_floor, clauses/learnt_divisor). */
    int64_t learnt_floor = 4000;
    int64_t learnt_divisor = 3;
    /** Cap growth after each ReduceDB, in percent. */
    int64_t learnt_growth_pct = 10;
};

/**
 * CDCL SAT solver.
 *
 * Usage: NewVar() variables, AddClause() clauses, Solve(). After kSat,
 * Value(var) gives the model. The solver may be re-Solved after adding
 * more clauses and under different assumptions (clauses persist; learnt
 * clauses are retained across calls up to a MiniSat-style ReduceDB cap,
 * which is what makes the incremental assumption-based Solver backend
 * pay off across closely related queries).
 */
class SatSolver
{
  public:
    SatSolver();

    /** Create a fresh variable; returns its index. */
    uint32_t NewVar();
    uint32_t NumVars() const { return static_cast<uint32_t>(assigns_.size()); }

    /**
     * Add a clause (disjunction of literals). Returns false if the clause
     * set is already unsatisfiable (empty clause / conflicting units).
     */
    bool AddClause(std::vector<Lit> lits);
    bool AddUnit(Lit a) { return AddClause({a}); }
    bool AddBinary(Lit a, Lit b) { return AddClause({a, b}); }
    bool AddTernary(Lit a, Lit b, Lit c) { return AddClause({a, b, c}); }

    /**
     * Solve under optional assumptions. `max_conflicts` < 0 means no
     * budget limit; on budget exhaustion returns kUnknown.
     */
    SatStatus Solve(const std::vector<Lit> &assumptions = {},
                    int64_t max_conflicts = -1);

    /**
     * Batched all-sat sweep: one verdict per guard group, where
     * verdict[i] answers "are `assumptions` plus every literal of
     * `groups[i]` jointly satisfiable?" -- exactly what a separate
     * Solve(assumptions + groups[i]) call would answer -- but all
     * verdicts are enumerated from one incremental search tree instead
     * of |groups| independent calls.
     *
     * Mechanics: every multi-literal group gets a fresh definition
     * variable g with g <-> AND(members) encoded in both directions, so
     * a model with g true certifies the whole group and a refutation
     * excluding every group representative excludes every group
     * exactly; singleton groups are represented by their own literal.
     * Each round solves under the caller's assumptions plus a throwaway
     * selector forcing some pending representative true; a SAT round
     * marks every pending group the model happens to satisfy (phase
     * saving keeps earlier groups true, so rounds typically answer many
     * groups), an UNSAT round proves every remaining group kUnsat, and
     * budget exhaustion (`max_conflicts` spent across rounds) leaves
     * the rest kUnknown -- never a wrong verdict. Selectors are retired
     * with a unit after each round; all added clauses are
     * satisfiability-preserving (any model extends by setting the fresh
     * variables accordingly), so later Solve calls are unaffected.
     *
     * No unsat core is reported (a per-group refutation has no single
     * core); unsat_core() is empty after this call.
     */
    std::vector<SatStatus> SolveBatch(
        const std::vector<Lit> &assumptions,
        const std::vector<std::vector<Lit>> &groups,
        int64_t max_conflicts = -1);

    /**
     * The assumption subset responsible for the last kUnsat answer (the
     * unsat core over assumptions): an analyze-final pass over the
     * implication graph from the final conflict, ordered like the
     * caller's assumption vector. Valid until the next Solve. An empty
     * core on kUnsat means the clause set is unsatisfiable regardless
     * of assumptions. With SetMinimizeCore(true), unbudgeted kUnsat
     * answers with more than two core members additionally run a
     * deletion-based minimization loop: each member is dropped in turn
     * and the remainder re-probed (refute-only, so a probe is one
     * propagation pass), rescanning until a fixpoint. One- and
     * two-member cores skip the loop -- a conflicting pair is already
     * minimal unless a member is individually refutable, and the
     * probes' root backtracking would churn the assumption trail the
     * next query reuses. The result is conservative (never too small)
     * in general.
     */
    const std::vector<Lit> &unsat_core() const { return core_; }
    void SetMinimizeCore(bool on) { minimize_core_ = on; }

    /**
     * Assumption-prefix trail reuse (on by default). Consecutive Solve
     * calls keep the trail segment of the longest common assumption
     * prefix -- MiniSat-style scoped assumption levels -- instead of
     * backtracking to the root and re-propagating every assumption from
     * scratch. Shaves the per-query linear re-establishment term for
     * deep-prefix query streams; never changes verdicts (the kept
     * segment is exactly the propagation closure the fresh
     * re-establishment would recompute).
     */
    void SetTrailReuse(bool on) { trail_reuse_ = on; }

    /** Conflicts spent by the most recent Solve call, including any
     *  core-minimization probes (per-Solve accounting; stream-level
     *  conflict budgets settle their carry-forward against this). */
    int64_t last_solve_conflicts() const { return last_solve_conflicts_; }

    // -- Learned-clause exchange hooks --------------------------------
    //
    // A learnt clause whose literals are all negated assumption guards
    // is a solver-independent refutation lemma ("these guarded
    // assertions are jointly unsatisfiable"); sibling solvers over the
    // same shared-variable prefix can import it and prune their own
    // searches. The SAT layer exports such clauses through a hook and
    // leaves the guard-to-expression mapping to the facade.

    /** Maximum exported clause size: units and binaries only (larger
     *  lemmas rarely transfer and bloat the exchange). */
    static constexpr uint32_t kExportMaxLits = 2;

    /** Mark a variable as belonging to the designated shared prefix:
     *  only clauses over shared variables are ever exported. */
    void
    SetVarShared(uint32_t var, bool shared)
    {
        ACHILLES_CHECK(var < NumVars());
        var_shared_[var] = shared ? 1 : 0;
    }

    /**
     * Install the export hook: invoked with every learnt clause of at
     * most kExportMaxLits literals whose variables are all marked
     * shared, and with every final unsat core of that size over shared
     * variables (as the negated core literals -- the same implied
     * clause). The hook runs inside Solve; it must not call back into
     * this solver.
     */
    void
    SetLearntExportHook(std::function<void(const std::vector<Lit> &)> hook)
    {
        export_hook_ = std::move(hook);
    }

    /**
     * Add a clause learned by a sibling solver (an implied clause, so
     * adding it never changes verdicts). Same normalization as
     * AddClause; resets any kept assumption trail.
     */
    bool
    ImportClause(std::vector<Lit> lits)
    {
        stats_.Bump("sat.clauses_imported");
        return AddClause(std::move(lits));
    }

    /** Model value of a variable (valid after kSat). */
    bool
    Value(uint32_t var) const
    {
        ACHILLES_CHECK(var < model_.size());
        return model_[var] == LBool::kTrue;
    }

    /**
     * Set the saved decision phase of a variable (the polarity tried
     * first). The bit-blaster seeds activation literals with phase true
     * so models satisfy as many retractable assertions as possible,
     * which is what makes cross-query solution reuse hit; conflict
     * analysis re-saves phases and adapts when assertions clash.
     */
    void
    SetPhase(uint32_t var, bool value)
    {
        ACHILLES_CHECK(var < NumVars());
        saved_phase_[var] = value ? 1 : 0;
    }

    /**
     * Learnt-clause retention cap before ReduceDB evicts the
     * lowest-activity half. 0 (the default) auto-sizes from the problem
     * clause count on the next Solve; tests pin small caps to exercise
     * the eviction path.
     */
    void SetLearntCap(int64_t cap) { learnt_cap_ = cap; }
    size_t NumLearnts() const { return learnts_.size(); }

    /**
     * Swap the search-heuristic parameter set. Takes effect on the next
     * Solve; a zeroed learnt cap re-auto-sizes from the new floor.
     * Defaults reproduce the historical behavior bit-exactly.
     */
    void SetParams(const SatParams &params) { params_ = params; }
    const SatParams &params() const { return params_; }

    /** Luby restart sequence (1,1,2,1,1,2,4,...), 0-indexed. */
    static int64_t Luby(int64_t i);

    /** Solver statistics (conflicts, decisions, propagations...). */
    const StatsRegistry &stats() const { return stats_; }

  private:
    // Clauses are stored in one arena; a clause is referenced by its
    // offset. Layout: [size|learnt-flag][lit0][lit1]...; learnt clauses
    // carry one trailing word holding their float activity.
    using ClauseRef = uint32_t;
    static constexpr ClauseRef kNoClause = 0xffffffffu;
    static constexpr uint32_t kLearntFlag = 0x80000000u;

    struct Watcher
    {
        ClauseRef cref;
        Lit blocker;
    };

    LBool LitValue(Lit l) const;
    /** `refute_only`: return kUnknown (instead of branching toward a
     *  model) once every assumption is established conflict-free --
     *  the cheap probe mode deletion-minimization runs, where only a
     *  propagation-level refutation matters. */
    SatStatus Search(const std::vector<Lit> &assumptions,
                     int64_t max_conflicts, bool refute_only = false);
    void AnalyzeFinalConflict(ClauseRef conflict);
    void AnalyzeFinalLit(Lit p);
    void CollectCoreFromSeen();
    void SortCore(const std::vector<Lit> &assumptions);
    void MinimizeCore();
    bool AllVarsShared(const std::vector<Lit> &lits) const;
    void MaybeExportLearnt(const std::vector<Lit> &learnt);
    void MaybeExportCore();
    void NewDecisionLevel() { trail_lim_.push_back(trail_.size()); }
    uint32_t DecisionLevel() const
    {
        return static_cast<uint32_t>(trail_lim_.size());
    }

    void Enqueue(Lit l, ClauseRef reason);
    ClauseRef Propagate();
    void Analyze(ClauseRef conflict, std::vector<Lit> *out_learnt,
                 uint32_t *out_btlevel);
    void BacktrackTo(uint32_t level);
    Lit PickBranchLit();
    ClauseRef AllocClause(const std::vector<Lit> &lits, bool learnt);
    void AttachClause(ClauseRef cref);
    void BumpVar(uint32_t var);
    void DecayVarActivity() { var_inc_ /= params_.var_decay; }
    void RescaleActivities();

    // Activity order-heap (max-heap on activity, var index tie-break):
    // PickBranchLit pops candidates in O(log V) instead of scanning all
    // variables per decision.
    bool HeapBefore(uint32_t a, uint32_t b) const
    {
        return activity_[a] > activity_[b] ||
               (activity_[a] == activity_[b] && a < b);
    }
    void HeapSiftUp(size_t i);
    void HeapSiftDown(size_t i);
    void HeapInsert(uint32_t var);
    uint32_t HeapPop();

    // Learnt-clause bookkeeping.
    float ClauseActivity(ClauseRef cref) const;
    void SetClauseActivity(ClauseRef cref, float activity);
    void BumpClause(ClauseRef cref);
    void DecayClauseActivity() { cla_inc_ /= params_.clause_decay; }
    void ReduceDB();
    void GarbageCollect();

    uint32_t ClauseSize(ClauseRef cref) const
    {
        return arena_[cref] & ~kLearntFlag;
    }
    bool ClauseLearnt(ClauseRef cref) const
    {
        return (arena_[cref] & kLearntFlag) != 0;
    }
    Lit ClauseLit(ClauseRef cref, uint32_t i) const
    {
        return Lit::FromCode(arena_[cref + 1 + i]);
    }

    SatParams params_;

    std::vector<uint32_t> arena_;
    std::vector<ClauseRef> clauses_;
    std::vector<ClauseRef> learnts_;
    std::vector<std::vector<Watcher>> watches_;  // indexed by lit code
    std::vector<LBool> assigns_;
    std::vector<LBool> model_;
    std::vector<uint8_t> saved_phase_;
    std::vector<double> activity_;
    std::vector<uint32_t> level_;
    std::vector<ClauseRef> reason_;
    std::vector<Lit> trail_;
    std::vector<size_t> trail_lim_;
    std::vector<uint32_t> heap_;     // var order-heap
    std::vector<int32_t> heap_pos_;  // var -> heap index, -1 if absent
    size_t qhead_ = 0;
    double var_inc_ = 1.0;
    double cla_inc_ = 1.0;
    int64_t learnt_cap_ = 0;  // 0 = auto-size on next Solve
    bool ok_ = true;
    bool minimize_core_ = false;
    bool trail_reuse_ = true;
    int64_t last_solve_conflicts_ = 0;
    std::vector<Lit> core_;
    /** The assumption literal established at each standing decision
     *  level (levels beyond its size are search decisions). The next
     *  Search keeps the longest prefix matching its own assumptions. */
    std::vector<Lit> assumption_trail_;
    std::vector<uint8_t> var_shared_;
    std::function<void(const std::vector<Lit> &)> export_hook_;

    // Conflict analysis scratch.
    std::vector<uint8_t> seen_;

    StatsRegistry stats_;
};

}  // namespace smt
}  // namespace achilles

#endif  // ACHILLES_SMT_SAT_H_
