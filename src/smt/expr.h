// Achilles reproduction -- SMT library.
//
// Hash-consed bitvector expression DAG. This is the reproduction's
// substitute for the expression layer of STP/Z3 that the paper relies on:
// path constraints, symbolic message buffers, client/server predicates and
// Trojan queries are all built from these nodes.
//
// Design notes (see DESIGN.md "Key design decisions"):
//  * Expressions are immutable and interned in an ExprContext, so
//    structural equality is pointer equality and sub-DAGs are shared
//    across path predicates (essential: thousands of client path
//    predicates share most of their structure).
//  * Booleans are width-1 bitvectors; kAnd/kOr/kNot on width 1 double as
//    the logical connectives.
//  * Widths are limited to 64 bits. Messages are modelled as arrays of
//    8-bit expressions rather than one wide bitvector, so the limit is
//    never binding in practice.

#ifndef ACHILLES_SMT_EXPR_H_
#define ACHILLES_SMT_EXPR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "support/logging.h"

namespace achilles {
namespace smt {

/** Operation performed by an expression node. */
enum class Kind : uint8_t {
    kConst,    ///< Literal bitvector value.
    kVar,      ///< Free symbolic variable.

    // Arithmetic (operands and result share a width).
    kAdd,
    kSub,
    kMul,
    kUDiv,     ///< Unsigned division; x/0 == all-ones (SMT-LIB).
    kURem,     ///< Unsigned remainder; x%0 == x (SMT-LIB).

    // Bitwise (width 1 doubles as the logical connectives).
    kAnd,
    kOr,
    kXor,
    kNot,

    // Shifts (shift amount is the second operand, same width).
    kShl,
    kLShr,
    kAShr,

    // Structural.
    kConcat,   ///< kids[0] is the high part, kids[1] the low part.
    kExtract,  ///< bits [offset, offset+width) of kids[0]; offset in aux.
    kZExt,     ///< zero-extend kids[0] to this node's width.
    kSExt,     ///< sign-extend kids[0] to this node's width.

    // Predicates (result width 1).
    kEq,
    kUlt,
    kUle,
    kSlt,
    kSle,

    kIte,      ///< kids[0] width-1 condition, kids[1]/kids[2] branches.
};

/** Human-readable mnemonic for a Kind. */
const char *KindName(Kind kind);

class Expr;
/** Expressions are interned; clients pass bare pointers owned by the
 *  ExprContext that created them. */
using ExprRef = const Expr *;

/**
 * One immutable node in the expression DAG.
 *
 * Nodes are created only through ExprContext factory methods, which
 * canonicalize, constant-fold and intern them.
 */
class Expr
{
  public:
    Kind kind() const { return kind_; }
    /** Result width in bits (1..64). */
    uint32_t width() const { return width_; }
    /** Constant value (kConst), variable id (kVar) or extract offset. */
    uint64_t aux() const { return aux_; }
    const std::vector<ExprRef> &kids() const { return kids_; }
    ExprRef kid(size_t i) const { return kids_[i]; }
    size_t hash() const { return hash_; }

    /**
     * Context-independent structural fingerprint: a function of kind,
     * width, aux (constant value / variable id / extract offset) and the
     * kids' fingerprints only -- never of pointer values. Two nodes built
     * in different ExprContexts from id-aligned variables get the same
     * fingerprint, which is what lets the parallel exploration subsystem
     * canonicalize operand order, sort solver assertions and key the
     * shared query cache identically on every worker.
     */
    uint64_t struct_hash() const { return struct_hash_; }
    /** Second, independent fingerprint (128-bit keys pair the two). */
    uint64_t struct_hash2() const { return struct_hash2_; }
    /** Max variable id occurring in this DAG, plus 1 (0 = no vars). */
    uint32_t max_var_bound() const { return max_var_bound_; }

    bool IsConst() const { return kind_ == Kind::kConst; }
    bool IsVar() const { return kind_ == Kind::kVar; }
    /** True iff this is the width-1 constant 1. */
    bool IsTrue() const { return IsConst() && width_ == 1 && aux_ == 1; }
    /** True iff this is the width-1 constant 0. */
    bool IsFalse() const { return IsConst() && width_ == 1 && aux_ == 0; }
    bool IsBool() const { return width_ == 1; }

    /** Constant value; only valid for kConst nodes. */
    uint64_t
    ConstValue() const
    {
        ACHILLES_CHECK(IsConst());
        return aux_;
    }

    /** Variable id; only valid for kVar nodes. */
    uint32_t
    VarId() const
    {
        ACHILLES_CHECK(IsVar());
        return static_cast<uint32_t>(aux_);
    }

  private:
    friend class ExprContext;

    Expr(Kind kind, uint32_t width, uint64_t aux, std::vector<ExprRef> kids);

    Kind kind_;
    uint32_t width_;
    uint64_t aux_;
    std::vector<ExprRef> kids_;
    size_t hash_;
    uint64_t struct_hash_;
    uint64_t struct_hash2_;
    uint32_t max_var_bound_;
};

/**
 * Deterministic, context-independent total order on expressions:
 * fingerprint order with a full structural walk as tie-break. Returns
 * <0, 0, >0. Used to canonicalize commutative operands and to order
 * solver assertions identically on every worker context.
 */
int StructuralCompare(ExprRef a, ExprRef b);

/**
 * True iff every element of `needles` occurs in `haystack`. Pointer
 * identity -- interning makes that structural identity within one
 * context. This is the subset probe behind every unsat-core consumer
 * (core-guided predicate drops, Trojan-core subsumption, refinement
 * core reuse): a refutation's core transfers to any assertion set
 * containing it.
 */
inline bool
ContainsAllExprs(const std::vector<ExprRef> &haystack,
                 const std::vector<ExprRef> &needles)
{
    for (ExprRef e : needles) {
        bool found = false;
        for (ExprRef h : haystack) {
            if (h == e) {
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    return true;
}

/** Metadata for one symbolic variable. */
struct VarInfo
{
    std::string name;
    uint32_t width = 0;
};

/** All-ones mask for a width in [1, 64]. */
inline uint64_t
WidthMask(uint32_t width)
{
    return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

/** Sign-extend a width-bit value to 64 bits. */
inline int64_t
SignExtendTo64(uint64_t value, uint32_t width)
{
    const uint64_t masked = value & WidthMask(width);
    if (width >= 64 || !(masked >> (width - 1)))
        return static_cast<int64_t>(masked);
    return static_cast<int64_t>(masked | ~WidthMask(width));
}

/**
 * Factory and interning arena for expressions.
 *
 * The context owns every node it creates; node lifetime is the context
 * lifetime. A single context backs one Achilles analysis run (client
 * extraction, preprocessing and server exploration share nodes).
 */
class ExprContext
{
  public:
    ExprContext();
    ExprContext(const ExprContext &) = delete;
    ExprContext &operator=(const ExprContext &) = delete;

    // -- Leaves ------------------------------------------------------

    /** Bitvector constant of the given width. */
    ExprRef MakeConst(uint32_t width, uint64_t value);
    /** Width-1 constant from a bool. */
    ExprRef MakeBool(bool value) { return MakeConst(1, value ? 1 : 0); }
    ExprRef True() { return true_; }
    ExprRef False() { return false_; }

    /**
     * Create a fresh symbolic variable. Each call returns a distinct
     * variable; `base` is only a label (the final name is unique).
     */
    ExprRef FreshVar(const std::string &base, uint32_t width);
    /** Look up an existing variable node by id. */
    ExprRef VarById(uint32_t id) const;
    const VarInfo &InfoOf(uint32_t var_id) const;
    uint32_t NumVars() const { return static_cast<uint32_t>(vars_.size()); }

    // -- Arithmetic ---------------------------------------------------

    ExprRef MakeAdd(ExprRef a, ExprRef b);
    ExprRef MakeSub(ExprRef a, ExprRef b);
    ExprRef MakeMul(ExprRef a, ExprRef b);
    ExprRef MakeUDiv(ExprRef a, ExprRef b);
    ExprRef MakeURem(ExprRef a, ExprRef b);
    /** Two's-complement negation (0 - a). */
    ExprRef MakeNeg(ExprRef a);

    // -- Bitwise ------------------------------------------------------

    ExprRef MakeAnd(ExprRef a, ExprRef b);
    ExprRef MakeOr(ExprRef a, ExprRef b);
    ExprRef MakeXor(ExprRef a, ExprRef b);
    ExprRef MakeNot(ExprRef a);

    ExprRef MakeShl(ExprRef a, ExprRef amount);
    ExprRef MakeLShr(ExprRef a, ExprRef amount);
    ExprRef MakeAShr(ExprRef a, ExprRef amount);

    // -- Structural ---------------------------------------------------

    /** Concatenate: `high` occupies the most significant bits. */
    ExprRef MakeConcat(ExprRef high, ExprRef low);
    /** Extract bits [offset, offset+width) of a. */
    ExprRef MakeExtract(ExprRef a, uint32_t offset, uint32_t width);
    ExprRef MakeZExt(ExprRef a, uint32_t width);
    ExprRef MakeSExt(ExprRef a, uint32_t width);

    // -- Predicates (width-1 results) ----------------------------------

    ExprRef MakeEq(ExprRef a, ExprRef b);
    ExprRef MakeNe(ExprRef a, ExprRef b) { return MakeNot(MakeEq(a, b)); }
    ExprRef MakeUlt(ExprRef a, ExprRef b);
    ExprRef MakeUle(ExprRef a, ExprRef b);
    ExprRef MakeUgt(ExprRef a, ExprRef b) { return MakeUlt(b, a); }
    ExprRef MakeUge(ExprRef a, ExprRef b) { return MakeUle(b, a); }
    ExprRef MakeSlt(ExprRef a, ExprRef b);
    ExprRef MakeSle(ExprRef a, ExprRef b);
    ExprRef MakeSgt(ExprRef a, ExprRef b) { return MakeSlt(b, a); }
    ExprRef MakeSge(ExprRef a, ExprRef b) { return MakeSle(b, a); }

    ExprRef MakeIte(ExprRef cond, ExprRef then_e, ExprRef else_e);

    /** Conjoin a list of width-1 expressions (True for an empty list). */
    ExprRef MakeAndList(const std::vector<ExprRef> &conjuncts);
    /** Disjoin a list of width-1 expressions (False for an empty list). */
    ExprRef MakeOrList(const std::vector<ExprRef> &disjuncts);

    /** Number of distinct live nodes (for stats / tests). */
    size_t NumNodes() const { return arena_.size(); }

    /** Collect the set of variable ids appearing in `e`. */
    void CollectVars(ExprRef e, std::unordered_set<uint32_t> *out) const;

    /**
     * Substitute variables in `e` according to `map` (var id -> expr).
     * Unmapped variables are left untouched. Used by the negate
     * operator's exact fast path and by predicate renaming.
     */
    ExprRef Substitute(ExprRef e,
                       const std::unordered_map<uint32_t, ExprRef> &map);

    /** Render an expression as a compact s-expression string. */
    std::string ToString(ExprRef e) const;

  private:
    ExprRef Intern(Kind kind, uint32_t width, uint64_t aux,
                   std::vector<ExprRef> kids);
    ExprRef MakeBinary(Kind kind, ExprRef a, ExprRef b);

    struct NodeHash
    {
        size_t operator()(const Expr *e) const { return e->hash(); }
    };
    struct NodeEq
    {
        bool operator()(const Expr *a, const Expr *b) const;
    };

    std::deque<std::unique_ptr<Expr>> arena_;
    std::unordered_set<const Expr *, NodeHash, NodeEq> interned_;
    std::vector<VarInfo> vars_;
    std::vector<ExprRef> var_nodes_;
    ExprRef true_ = nullptr;
    ExprRef false_ = nullptr;
};

}  // namespace smt
}  // namespace achilles

#endif  // ACHILLES_SMT_EXPR_H_
