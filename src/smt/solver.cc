// Achilles reproduction -- SMT library.

#include "smt/solver.h"

#include <algorithm>

#include "smt/bitblast.h"
#include "smt/interval.h"
#include "smt/sat.h"

namespace achilles {
namespace smt {

const char *
CheckResultName(CheckResult r)
{
    switch (r) {
      case CheckResult::kSat: return "sat";
      case CheckResult::kUnsat: return "unsat";
      case CheckResult::kUnknown: return "unknown";
    }
    ACHILLES_UNREACHABLE("bad CheckResult");
}

/**
 * The persistent solving stack behind model-less queries: one SAT
 * instance accumulating the CNF of every expression node ever asserted,
 * one activation literal per assertion, learned clauses retained across
 * queries (ReduceDB-capped inside SatSolver).
 */
struct Solver::IncrementalBackend
{
    SatSolver sat;
    BitBlaster blaster;

    IncrementalBackend() : blaster(&sat) {}
};

Solver::Solver(ExprContext *ctx, SolverConfig config)
    : ctx_(ctx), config_(config)
{
}

Solver::~Solver() = default;

size_t
Solver::AssertionsHash::operator()(
    const std::vector<ExprRef> &assertions) const
{
    // Order-insensitive accumulation over node pointers (interning makes
    // pointer identity equal structural identity). Collisions are
    // harmless: the map compares the full vectors on lookup.
    uint64_t key = 0x51ed270b9f9f2b4dull;
    for (ExprRef e : assertions) {
        uint64_t h = reinterpret_cast<uint64_t>(e);
        h *= 0x9e3779b97f4a7c15ull;
        h ^= h >> 29;
        key += h;
    }
    return static_cast<size_t>(key);
}

CheckResult
Solver::CheckSatExpr(ExprRef e, Model *model)
{
    std::vector<ExprRef> conjuncts;
    FlattenConjunction(e, &conjuncts);
    return CheckSat(conjuncts, model);
}

CheckResult
Solver::CheckSat(const std::vector<ExprRef> &assertions, Model *model)
{
    return CheckSatSets(assertions, nullptr, model);
}

CheckResult
Solver::CheckSatAssuming(const std::vector<ExprRef> &base,
                         const std::vector<ExprRef> &extras, Model *model)
{
    return CheckSatSets(base, &extras, model);
}

bool
Solver::Canonicalize(const std::vector<ExprRef> &base,
                     const std::vector<ExprRef> *extras,
                     std::vector<ExprRef> *live) const
{
    live->reserve(base.size() + (extras ? extras->size() : 0));
    for (size_t part = 0; part < 2; ++part) {
        const std::vector<ExprRef> *assertions =
            part == 0 ? &base : extras;
        if (assertions == nullptr)
            continue;
        for (ExprRef e : *assertions) {
            ACHILLES_CHECK(e->width() == 1, "non-boolean assertion");
            if (e->IsTrue())
                continue;
            if (e->IsFalse())
                return false;
            live->push_back(e);
        }
    }
    // Deduplicate and order structurally. The order fixes the CNF
    // variable numbering of the fresh-instance path, so it must not
    // depend on pointer values: structural order makes the SAT instance
    // -- and therefore the model returned for satisfiable queries --
    // identical across runs and across the id-aligned worker contexts
    // of the parallel explorer. The incremental backend reuses it as a
    // deterministic assumption order.
    std::sort(live->begin(), live->end(), [](ExprRef a, ExprRef b) {
        return StructuralCompare(a, b) < 0;
    });
    live->erase(std::unique(live->begin(), live->end()), live->end());
    return true;
}

CheckResult
Solver::CheckSatSets(const std::vector<ExprRef> &base,
                     const std::vector<ExprRef> *extras, Model *model)
{
    stats_.Bump("solver.queries");

    std::vector<ExprRef> live;
    if (!Canonicalize(base, extras, &live)) {
        stats_.Bump("solver.trivial_unsat");
        if (model)
            *model = Model();
        return CheckResult::kUnsat;
    }
    if (live.empty()) {
        stats_.Bump("solver.trivial_sat");
        if (model)
            *model = Model();
        return CheckResult::kSat;
    }

    CacheEntry *upgrade_entry = nullptr;
    if (config_.enable_cache) {
        auto it = cache_.find(live);
        if (it != cache_.end()) {
            CacheEntry &entry = it->second;
            if (model == nullptr || entry.has_model) {
                stats_.Bump("solver.cache_hits");
                if (model)
                    *model = entry.model;
                return entry.result;
            }
            // kSat cached off the model-less incremental path but the
            // caller wants a witness: fall through to the fresh solve
            // and fill the entry in place.
            stats_.Bump("solver.cache_model_upgrades");
            upgrade_entry = &entry;
        }
    }

    if (config_.use_interval_check && upgrade_entry == nullptr) {
        IntervalChecker checker(ctx_);
        if (checker.DefinitelyUnsat(live)) {
            stats_.Bump("solver.interval_unsat");
            if (config_.enable_cache) {
                cache_.emplace(live, CacheEntry{CheckResult::kUnsat,
                                                /*has_model=*/true,
                                                Model()});
            }
            if (model)
                *model = Model();
            return CheckResult::kUnsat;
        }
    }

    CheckResult result;
    Model out_model;
    // The incremental path serves model-less, unlimited-budget queries
    // only. Model-producing queries need the fresh instance for
    // deterministic witness bytes; budgeted queries need it because a
    // conflict budget spent against history-dependent learned clauses
    // would make the kUnsat/kUnknown boundary depend on the query
    // stream, not the query.
    if (model == nullptr && config_.enable_incremental &&
        config_.max_conflicts < 0) {
        result = SolveIncremental(live);
    } else {
        result = SolveFresh(live, &out_model);
    }

    if (config_.enable_cache && result != CheckResult::kUnknown) {
        // has_model: kSat entries carry a model only when one was
        // computed; kUnsat/kUnknown answers have the empty model by
        // definition, so those entries can always serve model callers.
        const bool has_model =
            result != CheckResult::kSat || model != nullptr;
        if (upgrade_entry != nullptr) {
            if (result == CheckResult::kSat) {
                upgrade_entry->model = out_model;
                upgrade_entry->has_model = true;
            }
        } else {
            cache_.emplace(live,
                           CacheEntry{result, has_model, out_model});
        }
    }
    if (model)
        *model = out_model;
    return result;
}

CheckResult
Solver::SolveFresh(const std::vector<ExprRef> &live, Model *out_model)
{
    stats_.Bump("solver.sat_calls");
    SatSolver sat;
    BitBlaster blaster(&sat);
    for (ExprRef e : live)
        blaster.AssertTrue(e);
    const SatStatus status = sat.Solve({}, config_.max_conflicts);
    stats_.Bump("solver.sat_conflicts", sat.stats().Get("sat.conflicts"));
    stats_.Bump("solver.sat_decisions", sat.stats().Get("sat.decisions"));

    switch (status) {
      case SatStatus::kUnsat:
        return CheckResult::kUnsat;
      case SatStatus::kUnknown:
        return CheckResult::kUnknown;
      case SatStatus::kSat: {
        std::unordered_set<uint32_t> vars;
        for (ExprRef e : live)
            ctx_->CollectVars(e, &vars);
        for (uint32_t id : vars)
            out_model->Set(id, blaster.VarValueFromModel(id));
        if (config_.validate_models) {
            for (ExprRef e : live) {
                ACHILLES_CHECK(EvaluateBool(e, *out_model),
                               "model validation failed for: ",
                               ctx_->ToString(e));
            }
        }
        return CheckResult::kSat;
      }
    }
    ACHILLES_UNREACHABLE("bad SatStatus");
}

CheckResult
Solver::SolveIncremental(const std::vector<ExprRef> &live)
{
    if (inc_ && inc_->sat.NumVars() > config_.incremental_max_vars) {
        stats_.Bump("solver.incremental_resets");
        inc_.reset();
        inc_conflicts_seen_ = 0;
        inc_decisions_seen_ = 0;
    }
    if (!inc_)
        inc_ = std::make_unique<IncrementalBackend>();
    stats_.Bump("solver.incremental_sat_calls");

    std::vector<Lit> assumptions;
    assumptions.reserve(live.size());
    for (ExprRef e : live)
        assumptions.push_back(inc_->blaster.ActivationLit(e));
    const SatStatus status =
        inc_->sat.Solve(assumptions, config_.max_conflicts);

    const int64_t conflicts = inc_->sat.stats().Get("sat.conflicts");
    const int64_t decisions = inc_->sat.stats().Get("sat.decisions");
    stats_.Bump("solver.sat_conflicts", conflicts - inc_conflicts_seen_);
    stats_.Bump("solver.sat_decisions", decisions - inc_decisions_seen_);
    inc_conflicts_seen_ = conflicts;
    inc_decisions_seen_ = decisions;

    switch (status) {
      case SatStatus::kUnsat: return CheckResult::kUnsat;
      case SatStatus::kUnknown: return CheckResult::kUnknown;
      case SatStatus::kSat: return CheckResult::kSat;
    }
    ACHILLES_UNREACHABLE("bad SatStatus");
}

}  // namespace smt
}  // namespace achilles
