// Achilles reproduction -- SMT library.

#include "smt/solver.h"

#include <algorithm>

#include "smt/bitblast.h"
#include "smt/interval.h"
#include "smt/sat.h"

namespace achilles {
namespace smt {

const char *
CheckResultName(CheckStatus s)
{
    switch (s) {
      case CheckStatus::kSat: return "sat";
      case CheckStatus::kUnsat: return "unsat";
      case CheckStatus::kUnknown: return "unknown";
    }
    ACHILLES_UNREACHABLE("bad CheckStatus");
}

const char *
QueryClassName(QueryClass c)
{
    switch (c) {
      case QueryClass::kTrivial: return "trivial";
      case QueryClass::kShallow: return "shallow";
      case QueryClass::kDeep: return "deep";
      case QueryClass::kStraggler: return "straggler";
    }
    ACHILLES_UNREACHABLE("bad QueryClass");
}

namespace {

// Pre-joined stat keys so the per-query dispatch never allocates.
const char *const kClassQueriesKey[kNumQueryClasses] = {
    "solver.class_queries/trivial", "solver.class_queries/shallow",
    "solver.class_queries/deep", "solver.class_queries/straggler"};
const char *const kClassDecidedKey[kNumQueryClasses] = {
    "solver.class_decided/trivial", "solver.class_decided/shallow",
    "solver.class_decided/deep", "solver.class_decided/straggler"};
const char *const kClassUnknownKey[kNumQueryClasses] = {
    "solver.class_unknown/trivial", "solver.class_unknown/shallow",
    "solver.class_unknown/deep", "solver.class_unknown/straggler"};

}  // namespace

uint32_t
Solver::RootDepth(ExprRef root, DepthMemo *memo)
{
    if (memo != nullptr) {
        auto it = memo->find(root);
        if (it != memo->end())
            return it->second;
    }
    // Bounded iterative DFS for the term depth: structure-only (no
    // pointer values, no context state), saturating, and capped at
    // kDepthVisitCap visited nodes so a huge shared DAG costs O(1).
    // The scratch stack is thread_local so the walk is allocation-free
    // in steady state (observably still pure: the buffer is cleared on
    // entry and carries no data between calls).
    uint32_t depth = 0;
    uint32_t visits = 0;
    thread_local std::vector<std::pair<ExprRef, uint32_t>> stack;
    stack.clear();
    stack.emplace_back(root, 1);
    while (!stack.empty() && visits < QueryFeatures::kDepthVisitCap &&
           depth < QueryFeatures::kDepthSaturation) {
        const auto [e, d] = stack.back();
        stack.pop_back();
        ++visits;
        if (d > depth)
            depth = d;
        if (d < QueryFeatures::kDepthSaturation)
            for (ExprRef kid : e->kids())
                stack.emplace_back(kid, d + 1);
    }
    // Ran into the visit cap with nodes outstanding: the term is big;
    // treat it as saturated-depth rather than pretending it is shallow.
    if (!stack.empty() && visits >= QueryFeatures::kDepthVisitCap)
        depth = QueryFeatures::kDepthSaturation;
    if (memo != nullptr)
        memo->emplace(root, depth);
    return depth;
}

QueryFeatures
Solver::ExtractFeatures(const std::vector<ExprRef> &live,
                        bool prune_near_miss, double unknown_rate,
                        double conflict_rate, DepthMemo *depth_memo)
{
    QueryFeatures f;
    f.live_count = static_cast<uint32_t>(live.size());
    f.prune_near_miss = prune_near_miss;
    f.unknown_rate = unknown_rate;
    f.conflict_rate = conflict_rate;
    // A very wide live set is heavyweight regardless of per-term
    // shape: saturate immediately, as the pre-memoization DFS did
    // through its global visit cap.
    if (f.live_count >= QueryFeatures::kDepthVisitCap) {
        f.depth = QueryFeatures::kDepthSaturation;
        return f;
    }
    // Max depth over the live roots; each root's walk is independent
    // (and therefore memoizable -- depth is a property of the term,
    // not of the set it appears in).
    for (ExprRef root : live) {
        const uint32_t d = RootDepth(root, depth_memo);
        if (d > f.depth)
            f.depth = d;
        if (f.depth >= QueryFeatures::kDepthSaturation)
            break;
    }
    return f;
}

void
Solver::FlushClassCounters() const
{
    // Writeback of the plain per-class tallies into the string-keyed
    // registry; runs on stats() reads, never on the query path.
    for (int c = 0; c < kNumQueryClasses; ++c) {
        if (class_queries_ct_[c] != 0) {
            stats_.Bump(kClassQueriesKey[c], class_queries_ct_[c]);
            class_queries_ct_[c] = 0;
        }
        if (class_decided_ct_[c] != 0) {
            stats_.Bump(kClassDecidedKey[c], class_decided_ct_[c]);
            class_decided_ct_[c] = 0;
        }
        if (class_unknown_ct_[c] != 0) {
            stats_.Bump(kClassUnknownKey[c], class_unknown_ct_[c]);
            class_unknown_ct_[c] = 0;
        }
    }
}

QueryClass
Solver::Classify(const QueryFeatures &f)
{
    // A stream burning budget reroutes everything to the racing class;
    // otherwise bucket on term shape, with a PruneIndex near-miss
    // promoting the query one class harder (it resembles a stored
    // refutation the index could not quite discharge).
    if (f.unknown_rate > 0.25)
        return QueryClass::kStraggler;
    QueryClass c;
    if (f.live_count <= 2 && f.depth <= 4)
        c = QueryClass::kTrivial;
    else if (f.depth <= 8)
        c = QueryClass::kShallow;
    else
        c = QueryClass::kDeep;
    if (f.prune_near_miss && c != QueryClass::kDeep) {
        c = static_cast<QueryClass>(static_cast<uint8_t>(c) + 1);
    }
    return c;
}

QueryStrategy
Solver::StrategyFor(QueryClass c, const SatParams &base)
{
    QueryStrategy s;
    s.sat = base;
    s.race_sat = base;
    switch (c) {
      case QueryClass::kTrivial:
        // Interval alone usually decides these; a minimal core is not
        // worth deletion probes on queries this small.
        s.minimize_core = false;
        break;
      case QueryClass::kShallow:
        // Interval-first stays, minimization off: shallow refutations
        // already produce near-minimal analyze-final cores.
        s.minimize_core = false;
        break;
      case QueryClass::kDeep:
        // Deep terms: the interval pre-check stays (bounds walks
        // refute a third of the deep corpus streams for free, and a
        // hit also skips bit-blasting the term); Luby restarts are
        // the robust schedule once searches run long, and a minimal
        // core pays for itself in downstream predicate drops.
        s.minimize_core = true;
        s.sat.restart_schedule = RestartSchedule::kLuby;
        break;
      case QueryClass::kStraggler:
        // Keep the default arm first (so unbudgeted behavior matches
        // the non-portfolio path), then race a diversified arm: Luby
        // restarts + negative-first phase explores a very different
        // search order, the classic portfolio complement.
        s.race = true;
        s.race_sat.restart_schedule = RestartSchedule::kLuby;
        s.race_sat.phase_policy = PhasePolicy::kNegative;
        s.race_sat.var_decay = 0.90;
        break;
    }
    return s;
}

/**
 * The persistent solving stack behind model-less queries: one SAT
 * instance accumulating the CNF of every expression node ever asserted,
 * one activation literal per assertion, learned clauses retained across
 * queries (ReduceDB-capped inside SatSolver), plus the guard registries
 * the cross-solver lemma exchange anchors on (fingerprint -> guarded
 * expression for imports, activation variable -> expression for
 * exports).
 */
struct Solver::IncrementalBackend
{
    struct FpHash
    {
        size_t
        operator()(const LemmaFingerprint &fp) const
        {
            return static_cast<size_t>(
                fp.first ^ (fp.second * 0x9e3779b97f4a7c15ull));
        }
    };

    SatSolver sat;
    BitBlaster blaster;
    /** Every expression that ever got an activation literal here. */
    std::unordered_set<ExprRef> guarded;
    /** Import anchor: fingerprint -> guarded expression (first wins on
     *  the astronomically unlikely 128-bit collision). */
    std::unordered_map<LemmaFingerprint, ExprRef, FpHash> guarded_by_fp;
    /** Export anchor: activation variable -> guarded expression. */
    std::unordered_map<uint32_t, ExprRef> expr_by_guard_var;

    IncrementalBackend() : blaster(&sat) {}
};

Solver::Solver(ExprContext *ctx, SolverConfig config)
    : ctx_(ctx), config_(config),
      stream_base_(static_cast<double>(config.stream_budget.base))
{
    if (config_.obs.metrics_on()) {
        obs_queries_ = config_.obs.CounterFor("solver.queries");
        obs_unknowns_ = config_.obs.CounterFor("solver.unknowns");
        obs_memo_hits_ = config_.obs.CounterFor("solver.memo_hits");
        obs_batch_sweeps_ = config_.obs.CounterFor("solver.batch_sweeps");
        obs_batch_guards_ = config_.obs.CounterFor("solver.batch_guards");
        obs_conflicts_ = config_.obs.DistributionFor("solver.conflicts");
        obs_core_size_ = config_.obs.DistributionFor("solver.core_size");
        obs_batch_rounds_ = config_.obs.DistributionFor("solver.batch_rounds");
        if (config_.portfolio) {
            for (int c = 0; c < kNumQueryClasses; ++c) {
                obs_class_queries_[c] =
                    config_.obs.CounterFor(kClassQueriesKey[c]);
                obs_class_decided_[c] =
                    config_.obs.CounterFor(kClassDecidedKey[c]);
            }
        }
    }
}

Solver::~Solver() = default;

size_t
Solver::AssertionsHash::operator()(
    const std::vector<ExprRef> &assertions) const
{
    // Order-insensitive accumulation over node pointers (interning makes
    // pointer identity equal structural identity). Collisions are
    // harmless: the map compares the full vectors on lookup.
    uint64_t key = 0x51ed270b9f9f2b4dull;
    for (ExprRef e : assertions) {
        uint64_t h = reinterpret_cast<uint64_t>(e);
        h *= 0x9e3779b97f4a7c15ull;
        h ^= h >> 29;
        key += h;
    }
    return static_cast<size_t>(key);
}

CheckResult
Solver::CheckSatExpr(ExprRef e, Model *model)
{
    std::vector<ExprRef> conjuncts;
    FlattenConjunction(e, &conjuncts);
    return CheckSat(conjuncts, model);
}

CheckResult
Solver::CheckSat(const std::vector<ExprRef> &assertions, Model *model)
{
    return CheckSatSets(assertions, nullptr, model);
}

CheckResult
Solver::CheckSatAssuming(const std::vector<ExprRef> &base,
                         const std::vector<ExprRef> &extras, Model *model)
{
    return CheckSatSets(base, &extras, model);
}

bool
Solver::Canonicalize(const std::vector<ExprRef> &base,
                     const std::vector<ExprRef> *extras,
                     std::vector<ExprRef> *live,
                     std::vector<uint32_t> *caller_index,
                     uint32_t *false_index) const
{
    // Collect live assertions tagged with their caller position (base
    // first, then extras) so unsat cores can be mapped back.
    std::vector<std::pair<ExprRef, uint32_t>> entries;
    entries.reserve(base.size() + (extras ? extras->size() : 0));
    uint32_t idx = 0;
    for (size_t part = 0; part < 2; ++part) {
        const std::vector<ExprRef> *assertions =
            part == 0 ? &base : extras;
        if (assertions == nullptr)
            continue;
        for (ExprRef e : *assertions) {
            ACHILLES_CHECK(e->width() == 1, "non-boolean assertion");
            if (e->IsFalse()) {
                *false_index = idx;
                return false;
            }
            if (!e->IsTrue())
                entries.emplace_back(e, idx);
            ++idx;
        }
    }
    // Deduplicate and order structurally. The order fixes the CNF
    // variable numbering of the fresh-instance path, so it must not
    // depend on pointer values: structural order makes the SAT instance
    // -- and therefore the model returned for satisfiable queries --
    // identical across runs and across the id-aligned worker contexts
    // of the parallel explorer. The incremental backend reuses it as a
    // deterministic assumption order. Ties break on caller position so
    // duplicates collapse onto their first occurrence.
    std::sort(entries.begin(), entries.end(),
              [](const std::pair<ExprRef, uint32_t> &a,
                 const std::pair<ExprRef, uint32_t> &b) {
                  const int c = StructuralCompare(a.first, b.first);
                  return c != 0 ? c < 0 : a.second < b.second;
              });
    live->reserve(entries.size());
    caller_index->reserve(entries.size());
    for (const auto &[e, pos] : entries) {
        if (!live->empty() && live->back() == e)
            continue;
        live->push_back(e);
        caller_index->push_back(pos);
    }
    return true;
}

CheckResult
Solver::CheckSatSets(const std::vector<ExprRef> &base,
                     const std::vector<ExprRef> *extras, Model *model)
{
    stats_.Bump("solver.queries");

    // The PruneIndex near-miss hint describes this query however it is
    // answered; consume it up front so it cannot leak to a later one.
    const bool near_miss = prune_near_miss_;
    prune_near_miss_ = false;
    // Portfolio dispatch state, filled in after canonicalization (the
    // classifier wants the canonical live set); declared here so the
    // `finish` lambda below can settle the per-class win/loss counters
    // and the rolling stream rates on every return path.
    QueryStrategy strategy_storage;
    const QueryStrategy *strategy = nullptr;
    int qclass = 0;
    int64_t class_conflicts_before = 0;

    // Observability: one span per query on this solver's lane, finalized
    // with verdict/conflicts/core/budget by `finish` below on every
    // return path. All of it is behind null-check branches -- with
    // config_.obs unset the query runs exactly as before.
    obs::ScopedSpan span(config_.obs.tracer, config_.obs.lane,
                         "solver.query", "solver");
    const bool obs_on = config_.obs.enabled();
    const int64_t obs_conflicts_before =
        obs_on ? stats_.Get("solver.sat_conflicts") : 0;
    const int64_t obs_budget_before =
        obs_on ? stats_.Get("solver.stream_conflicts_spent") : 0;
    const auto finish = [&](CheckResult result) -> CheckResult {
        if (strategy != nullptr) {
            // Dispatched query: settle the class's win/loss counters
            // and the rolling rates the next classification reads.
            ++stream_queries_;
            stream_conflict_sum_ +=
                sat_conflicts_total_ - class_conflicts_before;
            if (result.status == CheckStatus::kUnknown) {
                ++stream_unknowns_;
                ++class_unknown_ct_[qclass];
            } else {
                ++class_decided_ct_[qclass];
                obs_class_decided_[qclass].Bump();
            }
        }
        obs_queries_.Bump();
        if (result.status == CheckStatus::kUnknown)
            obs_unknowns_.Bump();
        if (obs_on) {
            const int64_t conflicts =
                stats_.Get("solver.sat_conflicts") - obs_conflicts_before;
            obs_conflicts_.Record(conflicts);
            span.AddArg("conflicts", conflicts);
            span.AddArg("assertions",
                        static_cast<int64_t>(
                            base.size() +
                            (extras != nullptr ? extras->size() : 0)));
            if (result.has_core) {
                obs_core_size_.Record(
                    static_cast<int64_t>(result.core.size()));
                span.AddArg("core", static_cast<int64_t>(result.core.size()));
            }
            const int64_t budget_spent =
                stats_.Get("solver.stream_conflicts_spent") -
                obs_budget_before;
            if (budget_spent > 0)
                span.AddArg("budget_spent", budget_spent);
            span.SetStrArg("verdict", CheckResultName(result));
        }
        return result;
    };

    // Cores only accompany answers the model-less, unbudgeted
    // incremental path could have produced -- including the trivial
    // ones, so has_core remains a reliable proxy for "decided on the
    // core-producing path" (budgeted -- flat or stream -- and
    // model-producing queries are always core-less, per the
    // CheckResult contract).
    const bool incremental_path = model == nullptr &&
                                  config_.enable_incremental &&
                                  config_.unbudgeted();
    const bool core_path = incremental_path && config_.enable_cores;

    std::vector<ExprRef> live;
    std::vector<uint32_t> caller_index;
    uint32_t false_index = 0;
    if (!Canonicalize(base, extras, &live, &caller_index, &false_index)) {
        stats_.Bump("solver.trivial_unsat");
        if (model)
            *model = Model();
        CheckResult result(CheckStatus::kUnsat);
        if (core_path) {
            result.has_core = true;
            result.core.push_back(false_index);
        }
        return finish(result);
    }
    if (live.empty()) {
        stats_.Bump("solver.trivial_sat");
        if (model)
            *model = Model();
        return finish(CheckStatus::kSat);
    }

    // Cores travel through both caches in canonical (live-vector)
    // indices; per-call they are mapped to the caller's positions.
    const auto core_to_caller = [&](const std::vector<uint32_t> &live_core) {
        std::vector<uint32_t> out;
        out.reserve(live_core.size());
        for (uint32_t k : live_core)
            out.push_back(caller_index[k]);
        std::sort(out.begin(), out.end());
        return out;
    };

    CacheEntry *upgrade_entry = nullptr;
    if (config_.enable_cache) {
        auto it = cache_.find(live);
        if (it != cache_.end()) {
            CacheEntry &entry = it->second;
            if (model == nullptr || entry.has_model) {
                stats_.Bump("solver.cache_hits");
                obs_memo_hits_.Bump();
                if (model)
                    *model = entry.model;
                CheckResult result(entry.status);
                if (entry.has_core && core_path) {
                    result.has_core = true;
                    result.core = core_to_caller(entry.core);
                }
                return finish(result);
            }
            // kSat cached off the model-less incremental path but the
            // caller wants a witness: fall through to the fresh solve
            // and fill the entry in place.
            stats_.Bump("solver.cache_model_upgrades");
            upgrade_entry = &entry;
        }
    }

    // Portfolio dispatch: classify the canonical live set and pick the
    // class strategy. Model-less queries only -- model-producing solves
    // keep the default fresh path so witness bytes stay a pure function
    // of the canonical query, portfolio on or off.
    if (config_.portfolio && model == nullptr) {
        const QueryFeatures features = ExtractFeatures(
            live, near_miss,
            stream_queries_ > 0
                ? static_cast<double>(stream_unknowns_) / stream_queries_
                : 0.0,
            stream_queries_ > 0
                ? static_cast<double>(stream_conflict_sum_) / stream_queries_
                : 0.0,
            &depth_memo_);
        qclass = static_cast<int>(Classify(features));
        strategy_storage =
            StrategyFor(static_cast<QueryClass>(qclass), config_.sat_params);
        strategy = &strategy_storage;
        class_conflicts_before = sat_conflicts_total_;
        ++class_queries_ct_[qclass];
        obs_class_queries_[qclass].Bump();
    }

    // Interval pre-check. On the core-producing path it runs in
    // attribution mode: the checker names the assertions that narrowed
    // the refuting interval (seed atoms map 1:1 to assertions), so
    // interval-refutable queries keep both the fast path and the core
    // every consumer downstream drops predicates with. (PR 3 used to
    // skip the pre-check here because the checker could prove but not
    // explain.) A strategy may opt out via interval_first=false; no
    // current preset does -- on the corpus streams the bounds walk
    // refutes even deep queries often enough to beat re-running the
    // SAT backend, and a hit also skips bit-blasting the term.
    if (config_.use_interval_check && upgrade_entry == nullptr &&
        (strategy == nullptr || strategy->interval_first)) {
        IntervalChecker checker(ctx_);
        if (core_path) {
            std::vector<uint32_t> interval_core;
            if (checker.DefinitelyUnsatWithCore(live, &interval_core)) {
                stats_.Bump("solver.interval_unsat");
                stats_.Bump("solver.interval_cores");
                if (config_.enable_cache) {
                    cache_.emplace(
                        live, CacheEntry{CheckStatus::kUnsat,
                                         /*has_model=*/true, Model(),
                                         /*has_core=*/true,
                                         interval_core});
                }
                CheckResult result(CheckStatus::kUnsat);
                result.has_core = true;
                result.core = core_to_caller(interval_core);
                return finish(result);
            }
        } else if (checker.DefinitelyUnsat(live)) {
            stats_.Bump("solver.interval_unsat");
            if (config_.enable_cache) {
                cache_.emplace(live,
                               CacheEntry{CheckStatus::kUnsat,
                                          /*has_model=*/true, Model(),
                                          /*has_core=*/false, {}});
            }
            if (model)
                *model = Model();
            // Proof without attribution: no core on this arm.
            return finish(CheckStatus::kUnsat);
        }
    }

    CheckStatus status;
    bool got_core = false;
    std::vector<uint32_t> live_core;
    Model out_model;
    // The incremental path serves model-less, unlimited-budget queries
    // only. Model-producing queries need the fresh instance for
    // deterministic witness bytes; budgeted queries need it because a
    // conflict budget spent against history-dependent learned clauses
    // would make the kUnsat/kUnknown boundary depend on the query
    // stream, not the query.
    if (incremental_path) {
        status = SolveIncremental(live, &got_core, &live_core, strategy);
    } else {
        status = SolveFresh(live, &out_model, strategy);
    }

    if (config_.retain_models && status == CheckStatus::kSat) {
        if (incremental_path) {
            // The assignment is standing in the persistent instance;
            // extraction is deferred to the next StandingModel() read.
            standing_live_ = live;
        } else {
            for (const auto &[id, value] : out_model.values())
                standing_model_.Set(id, value);
            has_standing_model_ = true;
            standing_live_.clear();  // the fresh values are newer
        }
    }

    if (config_.enable_cache && status != CheckStatus::kUnknown) {
        // has_model: kSat entries carry a model only when one was
        // computed; kUnsat/kUnknown answers have the empty model by
        // definition, so those entries can always serve model callers.
        const bool has_model =
            status != CheckStatus::kSat || model != nullptr;
        if (upgrade_entry != nullptr) {
            if (status == CheckStatus::kSat) {
                upgrade_entry->model = out_model;
                upgrade_entry->has_model = true;
            }
        } else {
            cache_.emplace(live, CacheEntry{status, has_model, out_model,
                                            got_core, live_core});
        }
    }
    CheckResult result(status);
    if (got_core) {
        result.has_core = true;
        result.core = core_to_caller(live_core);
    }
    if (model)
        *model = out_model;
    return finish(result);
}

int64_t
Solver::NextConflictBudget() const
{
    const StreamBudget &sb = config_.stream_budget;
    if (!sb.enabled())
        return config_.max_conflicts;
    const int64_t base =
        std::max(sb.floor, static_cast<int64_t>(stream_base_));
    return base + stream_carry_;
}

void
Solver::SettleStreamBudget(int64_t budget, int64_t spent, bool decided)
{
    const StreamBudget &sb = config_.stream_budget;
    stats_.Bump("solver.stream_budgeted_solves");
    stats_.Bump("solver.stream_conflicts_spent", spent);
    // Decided queries roll a fraction of their unspent conflicts into
    // the next query's allowance; exhausted (kUnknown) queries forfeit
    // theirs, so a pathological query cannot inflate the stream.
    int64_t carried = 0;
    if (decided && spent < budget) {
        carried = static_cast<int64_t>(
            static_cast<double>(budget - spent) * sb.carry);
    }
    if (sb.carry_cap >= 0)
        carried = std::min(carried, sb.carry_cap);
    stream_carry_ = carried;
    stream_base_ = std::max(static_cast<double>(sb.floor),
                            stream_base_ * sb.decay);
}

CheckStatus
Solver::SolveFresh(const std::vector<ExprRef> &live, Model *out_model,
                   const QueryStrategy *strategy)
{
    stats_.Bump("solver.sat_calls");
    SatSolver sat;
    sat.SetParams(strategy != nullptr ? strategy->sat : config_.sat_params);
    BitBlaster blaster(&sat);
    for (ExprRef e : live)
        blaster.AssertTrue(e);
    const int64_t budget = NextConflictBudget();
    SatStatus status = sat.Solve({}, budget);
    const bool arm_a_decided = status != SatStatus::kUnknown;
    int64_t spent = sat.last_solve_conflicts();

    // Sequential-deterministic strategy racing: when the class arm
    // exhausted its budget, re-run the query once on a fresh instance
    // under the diversified arm with the same budget. Fixed arm order
    // and "first decided verdict wins" keep the outcome a pure function
    // of the query and the budget -- no wall-clock in sight -- and a
    // race can only upgrade a kUnknown to the verdict the query truly
    // has, so kUnknown conservatism is untouched.
    SatSolver sat_b;
    std::unique_ptr<BitBlaster> blaster_b;
    BitBlaster *winner_blaster = &blaster;
    if (strategy != nullptr && strategy->race && budget >= 0 &&
        status == SatStatus::kUnknown) {
        stats_.Bump("solver.race_attempts");
        sat_b.SetParams(strategy->race_sat);
        blaster_b = std::make_unique<BitBlaster>(&sat_b);
        for (ExprRef e : live)
            blaster_b->AssertTrue(e);
        const SatStatus status_b = sat_b.Solve({}, budget);
        spent += sat_b.last_solve_conflicts();
        if (status_b != SatStatus::kUnknown) {
            stats_.Bump("solver.race_wins");
            status = status_b;
            winner_blaster = blaster_b.get();
        }
    }
    if (config_.stream_budget.enabled()) {
        // Raced queries settle as undecided whatever the race returned
        // (the first arm exhausted the allowance, exactly like an
        // unraced kUnknown), so the stream's budget trajectory -- and
        // with it every later query's allowance -- is bitwise identical
        // portfolio on or off.
        SettleStreamBudget(budget, spent, arm_a_decided);
    }
    const int64_t fresh_conflicts = sat.stats().Get("sat.conflicts") +
                                    sat_b.stats().Get("sat.conflicts");
    stats_.Bump("solver.sat_conflicts", fresh_conflicts);
    sat_conflicts_total_ += fresh_conflicts;
    stats_.Bump("solver.sat_decisions",
                sat.stats().Get("sat.decisions") +
                    sat_b.stats().Get("sat.decisions"));

    switch (status) {
      case SatStatus::kUnsat:
        return CheckStatus::kUnsat;
      case SatStatus::kUnknown:
        return CheckStatus::kUnknown;
      case SatStatus::kSat: {
        std::unordered_set<uint32_t> vars;
        for (ExprRef e : live)
            ctx_->CollectVars(e, &vars);
        for (uint32_t id : vars)
            out_model->Set(id, winner_blaster->VarValueFromModel(id));
        if (config_.validate_models) {
            for (ExprRef e : live) {
                ACHILLES_CHECK(EvaluateBool(e, *out_model),
                               "model validation failed for: ",
                               ctx_->ToString(e));
            }
        }
        return CheckStatus::kSat;
      }
    }
    ACHILLES_UNREACHABLE("bad SatStatus");
}

void
Solver::InstallExportHook()
{
    // Translate an all-guard clause back to the expressions it
    // implicates and hand the sorted fingerprints to the sink. The SAT
    // layer only exports clauses over variables marked shared, which
    // this facade marks for exactly the guards registered in
    // expr_by_guard_var, so the lookups cannot miss; the polarity
    // filter is the real semantic gate (only negated guards spell
    // "these assertions are jointly unsat").
    inc_->sat.SetLearntExportHook([this](const std::vector<Lit> &lits) {
        std::vector<LemmaFingerprint> fps;
        fps.reserve(lits.size());
        for (Lit l : lits) {
            if (!l.negated())
                return;
            auto it = inc_->expr_by_guard_var.find(l.var());
            if (it == inc_->expr_by_guard_var.end())
                return;
            fps.emplace_back(it->second->struct_hash(),
                             it->second->struct_hash2());
        }
        std::sort(fps.begin(), fps.end());
        fps.erase(std::unique(fps.begin(), fps.end()), fps.end());
        stats_.Bump("solver.lemmas_published");
        config_.clause_sink->PublishLemma(fps);
    });
}

void
Solver::InstallFetchedLemmas()
{
    for (FetchedLemma &lemma : fetched_lemmas_) {
        if (lemma.installed)
            continue;
        std::vector<Lit> clause;
        clause.reserve(lemma.fps.size());
        bool anchored = true;
        for (const LemmaFingerprint &fp : lemma.fps) {
            auto it = inc_->guarded_by_fp.find(fp);
            if (it == inc_->guarded_by_fp.end()) {
                anchored = false;
                break;
            }
            clause.push_back(~inc_->blaster.ActivationLit(it->second));
        }
        if (!anchored)
            continue;  // implicated assertions not asserted here (yet)
        lemma.installed = true;
        stats_.Bump("solver.lemmas_installed");
        inc_->sat.ImportClause(std::move(clause));
    }
}

void
Solver::EnsureIncrementalBackend()
{
    if (inc_ && inc_->sat.NumVars() > config_.incremental_max_vars) {
        stats_.Bump("solver.incremental_resets");
        // A deferred standing assignment lives in the instance about to
        // die; pull it into the rolling model first.
        RefreshStandingModel();
        inc_.reset();
        inc_conflicts_seen_ = 0;
        inc_decisions_seen_ = 0;
        inc_trail_reuses_seen_ = 0;
        // The imported clauses died with the instance; replay the
        // archive into the rebuilt one as its assertions reappear.
        for (FetchedLemma &lemma : fetched_lemmas_)
            lemma.installed = false;
    }
    if (!inc_) {
        inc_ = std::make_unique<IncrementalBackend>();
        if (config_.clause_sink != nullptr)
            InstallExportHook();
    }
}

bool
Solver::GuardAssertions(const std::vector<ExprRef> &live,
                        std::vector<Lit> *assumptions)
{
    const bool exchange = config_.clause_sink != nullptr ||
                          config_.clause_source != nullptr;
    bool new_guards = false;
    assumptions->reserve(assumptions->size() + live.size());
    for (ExprRef e : live) {
        const Lit guard = inc_->blaster.ActivationLit(e);
        if (exchange && inc_->guarded.insert(e).second) {
            new_guards = true;
            inc_->expr_by_guard_var.emplace(guard.var(), e);
            inc_->guarded_by_fp.emplace(
                LemmaFingerprint{e->struct_hash(), e->struct_hash2()}, e);
            // Only assertions over the id-aligned shared prefix may
            // leave this solver: sibling contexts agree on what those
            // fingerprints mean (the query-cache rule).
            if (e->max_var_bound() <= config_.clause_share_var_limit)
                inc_->sat.SetVarShared(guard.var(), true);
        }
        assumptions->push_back(guard);
    }
    return new_guards;
}

void
Solver::SyncLemmaExchange(bool new_guards)
{
    if (config_.clause_source == nullptr)
        return;
    const size_t before = fetched_lemmas_.size();
    std::vector<std::vector<LemmaFingerprint>> fresh;
    config_.clause_source->FetchLemmas(&fresh);
    for (std::vector<LemmaFingerprint> &fps : fresh)
        fetched_lemmas_.push_back(FetchedLemma{std::move(fps), false});
    if (fetched_lemmas_.size() > before) {
        stats_.Bump("solver.lemmas_fetched",
                    static_cast<int64_t>(fetched_lemmas_.size() - before));
    }
    // Resolution can only change when a new lemma or a new guard
    // arrived; skipping the scan otherwise keeps the per-query cost
    // at two branch tests.
    if (new_guards || fetched_lemmas_.size() > before)
        InstallFetchedLemmas();
}

void
Solver::DrainIncrementalStats()
{
    const int64_t conflicts = inc_->sat.stats().Get("sat.conflicts");
    const int64_t decisions = inc_->sat.stats().Get("sat.decisions");
    const int64_t reuses = inc_->sat.stats().Get("sat.trail_reuses");
    stats_.Bump("solver.sat_conflicts", conflicts - inc_conflicts_seen_);
    sat_conflicts_total_ += conflicts - inc_conflicts_seen_;
    stats_.Bump("solver.sat_decisions", decisions - inc_decisions_seen_);
    stats_.Bump("solver.trail_reuses", reuses - inc_trail_reuses_seen_);
    inc_conflicts_seen_ = conflicts;
    inc_decisions_seen_ = decisions;
    inc_trail_reuses_seen_ = reuses;
}

CheckStatus
Solver::SolveIncremental(const std::vector<ExprRef> &live, bool *has_core,
                         std::vector<uint32_t> *core,
                         const QueryStrategy *strategy)
{
    *has_core = false;
    core->clear();
    EnsureIncrementalBackend();
    stats_.Bump("solver.incremental_sat_calls");
    inc_->sat.SetParams(strategy != nullptr ? strategy->sat
                                            : config_.sat_params);
    inc_->sat.SetMinimizeCore(
        config_.enable_cores && config_.minimize_cores &&
        (strategy == nullptr || strategy->minimize_core));
    inc_->sat.SetTrailReuse(config_.enable_trail_reuse);

    std::vector<Lit> assumptions;
    const bool new_guards = GuardAssertions(live, &assumptions);
    SyncLemmaExchange(new_guards);
    const SatStatus status =
        inc_->sat.Solve(assumptions, config_.max_conflicts);
    DrainIncrementalStats();

    switch (status) {
      case SatStatus::kUnsat:
        if (config_.enable_cores) {
            // Map core activation literals back to positions in `live`.
            // Both sequences are in assumption order, so a single merge
            // pass suffices and the indices come out ascending.
            const std::vector<Lit> &sat_core = inc_->sat.unsat_core();
            *has_core = true;
            core->reserve(sat_core.size());
            uint32_t k = 0;
            for (Lit l : sat_core) {
                while (k < assumptions.size() && assumptions[k] != l)
                    ++k;
                if (k == assumptions.size())
                    break;
                core->push_back(k++);
            }
            stats_.Bump("solver.cores_extracted");
            stats_.Bump("solver.core_literals",
                        static_cast<int64_t>(core->size()));
        }
        return CheckStatus::kUnsat;
      case SatStatus::kUnknown: return CheckStatus::kUnknown;
      case SatStatus::kSat: return CheckStatus::kSat;
    }
    ACHILLES_UNREACHABLE("bad SatStatus");
}

BatchOutcome
Solver::CheckSatBatch(const std::vector<ExprRef> &base,
                      const std::vector<const std::vector<ExprRef> *> &groups)
{
    BatchOutcome out;
    out.verdicts.resize(groups.size());
    if (groups.empty())
        return out;
    stats_.Bump("solver.batch_sweeps");
    stats_.Bump("solver.batch_guards", static_cast<int64_t>(groups.size()));
    obs_batch_sweeps_.Bump();
    obs_batch_guards_.Bump(static_cast<int64_t>(groups.size()));
    obs::ScopedSpan span(config_.obs.tracer, config_.obs.lane,
                         "solver.batch", "solver");

    if (!(config_.enable_incremental && config_.unbudgeted())) {
        // Budgeted or incremental-off configurations fall back to the
        // per-group loop (virtual, so a decorator's shared cache is
        // still consulted). kUnknown keeps its conservative meaning per
        // group, and these configurations never produce cores, so the
        // batch core-less contract holds for free.
        stats_.Bump("solver.batch_fallbacks");
        for (size_t i = 0; i < groups.size(); ++i)
            out.verdicts[i] = CheckSatAssuming(base, *groups[i]);
        out.rounds = static_cast<int64_t>(groups.size());
        obs_batch_rounds_.Record(out.rounds);
        return out;
    }

    // Answer what the memo cache and trivial canonicalization already
    // know; only the residue is swept.
    struct Residue
    {
        size_t index;
        std::vector<ExprRef> live;  // canonical base ∥ group assertion set
    };
    std::vector<Residue> residue;
    residue.reserve(groups.size());
    int64_t cache_hits = 0;
    for (size_t i = 0; i < groups.size(); ++i) {
        std::vector<ExprRef> live;
        std::vector<uint32_t> caller_index;
        uint32_t false_index = 0;
        if (!Canonicalize(base, groups[i], &live, &caller_index,
                          &false_index)) {
            stats_.Bump("solver.trivial_unsat");
            out.verdicts[i] = CheckStatus::kUnsat;
            continue;
        }
        if (live.empty()) {
            stats_.Bump("solver.trivial_sat");
            out.verdicts[i] = CheckStatus::kSat;
            continue;
        }
        if (config_.enable_cache) {
            auto it = cache_.find(live);
            if (it != cache_.end()) {
                // Status-only read: batch verdicts carry neither models
                // nor cores, so any entry can serve.
                stats_.Bump("solver.cache_hits");
                obs_memo_hits_.Bump();
                ++cache_hits;
                out.verdicts[i] = it->second.status;
                continue;
            }
        }
        residue.push_back(Residue{i, std::move(live)});
    }

    if (!residue.empty()) {
        EnsureIncrementalBackend();
        stats_.Bump("solver.incremental_sat_calls");
        // A sweep reports no cores, so minimization probes would be
        // wasted work; the next point query re-arms the flag.
        inc_->sat.SetParams(config_.sat_params);
        inc_->sat.SetMinimizeCore(false);
        inc_->sat.SetTrailReuse(config_.enable_trail_reuse);

        std::vector<ExprRef> base_live;
        std::vector<Lit> assumptions;
        {
            std::vector<uint32_t> caller_index;
            uint32_t false_index = 0;
            // A trivially-false base would have answered every group
            // kUnsat in the loop above; here the base canonicalizes.
            const bool base_ok = Canonicalize(base, nullptr, &base_live,
                                              &caller_index, &false_index);
            ACHILLES_CHECK(base_ok);
        }
        bool new_guards = GuardAssertions(base_live, &assumptions);
        std::vector<std::vector<Lit>> member_lits(residue.size());
        std::vector<ExprRef> scratch;
        for (size_t k = 0; k < residue.size(); ++k) {
            scratch.clear();
            for (ExprRef e : *groups[residue[k].index]) {
                if (!e->IsTrue())  // IsFalse was answered above
                    scratch.push_back(e);
            }
            new_guards |= GuardAssertions(scratch, &member_lits[k]);
        }
        SyncLemmaExchange(new_guards);
        const int64_t rounds_before =
            inc_->sat.stats().Get("sat.batch_rounds");
        const std::vector<SatStatus> sat_verdicts =
            inc_->sat.SolveBatch(assumptions, member_lits);
        out.rounds =
            inc_->sat.stats().Get("sat.batch_rounds") - rounds_before;
        DrainIncrementalStats();

        bool any_sat = false;
        for (size_t k = 0; k < residue.size(); ++k) {
            CheckStatus status = CheckStatus::kUnknown;
            switch (sat_verdicts[k]) {
              case SatStatus::kSat: status = CheckStatus::kSat; break;
              case SatStatus::kUnsat: status = CheckStatus::kUnsat; break;
              case SatStatus::kUnknown: break;
            }
            out.verdicts[residue[k].index] = status;
            if (status == CheckStatus::kSat)
                any_sat = true;
            if (config_.enable_cache && status != CheckStatus::kUnknown) {
                // kSat entries are model-less (upgraded in place by a
                // later fresh-instance solve on first model demand);
                // kUnsat entries are core-less per the batch contract.
                cache_.emplace(residue[k].live,
                               CacheEntry{status,
                                          status != CheckStatus::kSat,
                                          Model(), /*has_core=*/false,
                                          {}});
            }
        }
        if (config_.retain_models && any_sat) {
            // The sweep's last SAT round left a full assignment
            // standing in the persistent instance; defer extraction to
            // the next StandingModel() read, like any incremental kSat.
            standing_live_ = base_live;
            for (size_t k = 0; k < residue.size(); ++k) {
                if (out.verdicts[residue[k].index] == CheckStatus::kSat) {
                    for (ExprRef e : *groups[residue[k].index])
                        standing_live_.push_back(e);
                }
            }
        }
    }
    obs_batch_rounds_.Record(out.rounds);
    if (config_.obs.enabled()) {
        span.AddArg("groups", static_cast<int64_t>(groups.size()));
        span.AddArg("cache_hits", cache_hits);
        span.AddArg("swept", static_cast<int64_t>(residue.size()));
        span.AddArg("rounds", out.rounds);
    }
    return out;
}

void
Solver::RefreshStandingModel()
{
    if (standing_live_.empty())
        return;
    if (inc_) {
        // Every variable of the pending assertions was blasted before
        // the kSat that deferred them, so the instance's standing
        // assignment covers them all.
        std::unordered_set<uint32_t> vars;
        for (ExprRef e : standing_live_)
            ctx_->CollectVars(e, &vars);
        for (uint32_t id : vars)
            standing_model_.Set(id, inc_->blaster.VarValueFromModel(id));
        has_standing_model_ = true;
    }
    standing_live_.clear();
}

const Model *
Solver::StandingModel()
{
    if (!config_.retain_models)
        return nullptr;
    RefreshStandingModel();
    return has_standing_model_ ? &standing_model_ : nullptr;
}

}  // namespace smt
}  // namespace achilles
