// Achilles reproduction -- SMT library.

#include "smt/solver.h"

#include <algorithm>

#include "smt/bitblast.h"
#include "smt/interval.h"
#include "smt/sat.h"

namespace achilles {
namespace smt {

const char *
CheckResultName(CheckResult r)
{
    switch (r) {
      case CheckResult::kSat: return "sat";
      case CheckResult::kUnsat: return "unsat";
      case CheckResult::kUnknown: return "unknown";
    }
    ACHILLES_UNREACHABLE("bad CheckResult");
}

Solver::Solver(ExprContext *ctx, SolverConfig config)
    : ctx_(ctx), config_(config)
{
}

uint64_t
Solver::QueryKey(const std::vector<ExprRef> &assertions) const
{
    // Order-insensitive hash over node pointers: interning makes pointer
    // identity equal structural identity, and commutativity of
    // conjunction makes order irrelevant.
    uint64_t key = 0x51ed270b9f9f2b4dull;
    for (ExprRef e : assertions) {
        uint64_t h = reinterpret_cast<uint64_t>(e);
        h *= 0x9e3779b97f4a7c15ull;
        h ^= h >> 29;
        key += h;
    }
    return key;
}

CheckResult
Solver::CheckSatExpr(ExprRef e, Model *model)
{
    std::vector<ExprRef> conjuncts;
    FlattenConjunction(e, &conjuncts);
    return CheckSat(conjuncts, model);
}

CheckResult
Solver::CheckSat(const std::vector<ExprRef> &assertions, Model *model)
{
    stats_.Bump("solver.queries");

    // Trivial cases first.
    std::vector<ExprRef> live;
    live.reserve(assertions.size());
    for (ExprRef e : assertions) {
        ACHILLES_CHECK(e->width() == 1, "non-boolean assertion");
        if (e->IsTrue())
            continue;
        if (e->IsFalse()) {
            stats_.Bump("solver.trivial_unsat");
            return CheckResult::kUnsat;
        }
        live.push_back(e);
    }
    if (live.empty()) {
        stats_.Bump("solver.trivial_sat");
        if (model)
            *model = Model();
        return CheckResult::kSat;
    }

    // Deduplicate and order structurally. The order fixes the CNF
    // variable numbering, so it must not depend on pointer values:
    // structural order makes the SAT instance -- and therefore the model
    // returned for satisfiable queries -- identical across runs and
    // across the id-aligned worker contexts of the parallel explorer.
    std::sort(live.begin(), live.end(), [](ExprRef a, ExprRef b) {
        return StructuralCompare(a, b) < 0;
    });
    live.erase(std::unique(live.begin(), live.end()), live.end());

    uint64_t key = 0;
    if (config_.enable_cache) {
        key = QueryKey(live);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
            stats_.Bump("solver.cache_hits");
            if (model)
                *model = it->second.model;
            return it->second.result;
        }
    }

    CheckResult result = CheckResult::kUnknown;
    Model out_model;

    if (config_.use_interval_check) {
        IntervalChecker checker(ctx_);
        if (checker.DefinitelyUnsat(live)) {
            stats_.Bump("solver.interval_unsat");
            result = CheckResult::kUnsat;
            if (config_.enable_cache)
                cache_.emplace(key, CacheEntry{result, Model()});
            return result;
        }
    }

    // Bit-blast and solve.
    stats_.Bump("solver.sat_calls");
    SatSolver sat;
    BitBlaster blaster(&sat);
    for (ExprRef e : live)
        blaster.AssertTrue(e);
    const SatStatus status = sat.Solve({}, config_.max_conflicts);
    stats_.Bump("solver.sat_conflicts", sat.stats().Get("sat.conflicts"));
    stats_.Bump("solver.sat_decisions", sat.stats().Get("sat.decisions"));

    switch (status) {
      case SatStatus::kUnsat:
        result = CheckResult::kUnsat;
        break;
      case SatStatus::kUnknown:
        result = CheckResult::kUnknown;
        break;
      case SatStatus::kSat: {
        result = CheckResult::kSat;
        std::unordered_set<uint32_t> vars;
        for (ExprRef e : live)
            ctx_->CollectVars(e, &vars);
        for (uint32_t id : vars)
            out_model.Set(id, blaster.VarValueFromModel(id));
        if (config_.validate_models) {
            for (ExprRef e : live) {
                ACHILLES_CHECK(EvaluateBool(e, out_model),
                               "model validation failed for: ",
                               ctx_->ToString(e));
            }
        }
        break;
      }
    }

    if (config_.enable_cache && result != CheckResult::kUnknown)
        cache_.emplace(key, CacheEntry{result, out_model});
    if (model)
        *model = out_model;
    return result;
}

}  // namespace smt
}  // namespace achilles
