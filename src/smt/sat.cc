// Achilles reproduction -- SMT library.
//
// CDCL SAT solver implementation. The structure follows MiniSat 2.2:
// watched literals with blockers, first-UIP learning, activity-ordered
// decisions with phase saving, geometric restarts.

#include "smt/sat.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

namespace achilles {
namespace smt {

SatSolver::SatSolver() = default;

uint32_t
SatSolver::NewVar()
{
    const uint32_t v = static_cast<uint32_t>(assigns_.size());
    assigns_.push_back(LBool::kUndef);
    model_.push_back(LBool::kUndef);
    saved_phase_.push_back(0);
    activity_.push_back(0.0);
    level_.push_back(0);
    reason_.push_back(kNoClause);
    seen_.push_back(0);
    var_shared_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    heap_pos_.push_back(-1);
    HeapInsert(v);
    return v;
}

void
SatSolver::HeapSiftUp(size_t i)
{
    const uint32_t v = heap_[i];
    while (i > 0) {
        const size_t parent = (i - 1) / 2;
        if (!HeapBefore(v, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        heap_pos_[heap_[i]] = static_cast<int32_t>(i);
        i = parent;
    }
    heap_[i] = v;
    heap_pos_[v] = static_cast<int32_t>(i);
}

void
SatSolver::HeapSiftDown(size_t i)
{
    const uint32_t v = heap_[i];
    const size_t n = heap_.size();
    while (true) {
        size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && HeapBefore(heap_[child + 1], heap_[child]))
            ++child;
        if (!HeapBefore(heap_[child], v))
            break;
        heap_[i] = heap_[child];
        heap_pos_[heap_[i]] = static_cast<int32_t>(i);
        i = child;
    }
    heap_[i] = v;
    heap_pos_[v] = static_cast<int32_t>(i);
}

void
SatSolver::HeapInsert(uint32_t var)
{
    if (heap_pos_[var] >= 0)
        return;
    heap_.push_back(var);
    heap_pos_[var] = static_cast<int32_t>(heap_.size() - 1);
    HeapSiftUp(heap_.size() - 1);
}

uint32_t
SatSolver::HeapPop()
{
    const uint32_t top = heap_[0];
    heap_pos_[top] = -1;
    const uint32_t last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_[0] = last;
        heap_pos_[last] = 0;
        HeapSiftDown(0);
    }
    return top;
}

LBool
SatSolver::LitValue(Lit l) const
{
    const LBool v = assigns_[l.var()];
    if (v == LBool::kUndef)
        return LBool::kUndef;
    const bool b = (v == LBool::kTrue) != l.negated();
    return b ? LBool::kTrue : LBool::kFalse;
}

bool
SatSolver::AddClause(std::vector<Lit> lits)
{
    if (!ok_)
        return false;
    BacktrackTo(0);

    // Normalize: sort, dedupe, drop level-0-false literals, detect
    // tautologies and level-0-true literals.
    std::sort(lits.begin(), lits.end(),
              [](Lit a, Lit b) { return a.code() < b.code(); });
    std::vector<Lit> out;
    Lit prev = Lit::FromCode(0xffffffffu);
    for (Lit l : lits) {
        ACHILLES_CHECK(l.var() < NumVars(), "literal for unknown var");
        if (l == prev)
            continue;
        if (prev.code() != 0xffffffffu && l == ~prev)
            return true;  // tautology
        const LBool v = LitValue(l);
        if (v == LBool::kTrue)
            return true;  // already satisfied at level 0
        if (v == LBool::kFalse)
            continue;  // can never help
        out.push_back(l);
        prev = l;
    }

    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        Enqueue(out[0], kNoClause);
        if (Propagate() != kNoClause)
            ok_ = false;
        return ok_;
    }
    const ClauseRef cref = AllocClause(out, /*learnt=*/false);
    clauses_.push_back(cref);
    AttachClause(cref);
    return true;
}

SatSolver::ClauseRef
SatSolver::AllocClause(const std::vector<Lit> &lits, bool learnt)
{
    const ClauseRef cref = static_cast<ClauseRef>(arena_.size());
    arena_.push_back(static_cast<uint32_t>(lits.size()) |
                     (learnt ? kLearntFlag : 0));
    for (Lit l : lits)
        arena_.push_back(l.code());
    if (learnt) {
        arena_.push_back(0);
        SetClauseActivity(cref, 0.0f);
        stats_.Bump("sat.learnt_clauses");
    }
    return cref;
}

float
SatSolver::ClauseActivity(ClauseRef cref) const
{
    float activity;
    std::memcpy(&activity, &arena_[cref + 1 + ClauseSize(cref)],
                sizeof(activity));
    return activity;
}

void
SatSolver::SetClauseActivity(ClauseRef cref, float activity)
{
    std::memcpy(&arena_[cref + 1 + ClauseSize(cref)], &activity,
                sizeof(activity));
}

void
SatSolver::BumpClause(ClauseRef cref)
{
    const float bumped =
        ClauseActivity(cref) + static_cast<float>(cla_inc_);
    SetClauseActivity(cref, bumped);
    if (bumped > 1e20f) {
        for (ClauseRef c : learnts_)
            SetClauseActivity(c, ClauseActivity(c) * 1e-20f);
        cla_inc_ *= 1e-20;
    }
}

void
SatSolver::AttachClause(ClauseRef cref)
{
    ACHILLES_CHECK(ClauseSize(cref) >= 2);
    const Lit c0 = ClauseLit(cref, 0);
    const Lit c1 = ClauseLit(cref, 1);
    watches_[(~c0).code()].push_back(Watcher{cref, c1});
    watches_[(~c1).code()].push_back(Watcher{cref, c0});
}

void
SatSolver::Enqueue(Lit l, ClauseRef reason)
{
    ACHILLES_CHECK(LitValue(l) == LBool::kUndef, "enqueue on assigned var");
    assigns_[l.var()] = l.negated() ? LBool::kFalse : LBool::kTrue;
    level_[l.var()] = DecisionLevel();
    reason_[l.var()] = reason;
    trail_.push_back(l);
}

SatSolver::ClauseRef
SatSolver::Propagate()
{
    ClauseRef conflict = kNoClause;
    while (qhead_ < trail_.size()) {
        const Lit p = trail_[qhead_++];
        stats_.Bump("sat.propagations");
        std::vector<Watcher> &ws = watches_[p.code()];
        size_t keep = 0;
        size_t i = 0;
        for (; i < ws.size(); ++i) {
            const Watcher w = ws[i];
            // Fast path: blocker already satisfied.
            if (LitValue(w.blocker) == LBool::kTrue) {
                ws[keep++] = w;
                continue;
            }
            const ClauseRef cref = w.cref;
            const uint32_t size = ClauseSize(cref);
            // Ensure the false literal (~p) sits at position 1.
            const Lit false_lit = ~p;
            if (ClauseLit(cref, 0) == false_lit) {
                arena_[cref + 1] = arena_[cref + 2];
                arena_[cref + 2] = false_lit.code();
            }
            const Lit first = ClauseLit(cref, 0);
            if (first != w.blocker && LitValue(first) == LBool::kTrue) {
                ws[keep++] = Watcher{cref, first};
                continue;
            }
            // Look for a new literal to watch.
            bool found = false;
            for (uint32_t k = 2; k < size; ++k) {
                const Lit candidate = ClauseLit(cref, k);
                if (LitValue(candidate) != LBool::kFalse) {
                    arena_[cref + 2] = candidate.code();
                    arena_[cref + 1 + k] = false_lit.code();
                    watches_[(~candidate).code()].push_back(
                        Watcher{cref, first});
                    found = true;
                    break;
                }
            }
            if (found)
                continue;
            // Clause is unit or conflicting.
            ws[keep++] = Watcher{cref, first};
            if (LitValue(first) == LBool::kFalse) {
                conflict = cref;
                qhead_ = trail_.size();
                // Copy remaining watchers back.
                for (++i; i < ws.size(); ++i)
                    ws[keep++] = ws[i];
                break;
            }
            Enqueue(first, cref);
        }
        ws.resize(keep);
        if (conflict != kNoClause)
            break;
    }
    return conflict;
}

void
SatSolver::BumpVar(uint32_t var)
{
    activity_[var] += var_inc_;
    if (activity_[var] > 1e100)
        RescaleActivities();
    else if (heap_pos_[var] >= 0)
        HeapSiftUp(static_cast<size_t>(heap_pos_[var]));
}

void
SatSolver::RescaleActivities()
{
    for (double &a : activity_)
        a *= 1e-100;
    var_inc_ *= 1e-100;
    // Tiny activities may flush to equal values, which changes the
    // index tie-break order: re-heapify to restore the invariant.
    for (size_t i = heap_.size(); i > 0; --i)
        HeapSiftDown(i - 1);
}

void
SatSolver::Analyze(ClauseRef conflict, std::vector<Lit> *out_learnt,
                   uint32_t *out_btlevel)
{
    out_learnt->clear();
    out_learnt->push_back(Lit());  // placeholder for the asserting literal

    int path_count = 0;
    Lit p;
    bool p_valid = false;
    size_t index = trail_.size();

    ClauseRef c = conflict;
    do {
        ACHILLES_CHECK(c != kNoClause, "analyze hit a decision unexpectedly");
        if (ClauseLearnt(c))
            BumpClause(c);
        const uint32_t size = ClauseSize(c);
        for (uint32_t j = p_valid ? 1 : 0; j < size; ++j) {
            const Lit q = ClauseLit(c, j);
            const uint32_t v = q.var();
            if (!seen_[v] && level_[v] > 0) {
                seen_[v] = 1;
                BumpVar(v);
                if (level_[v] >= DecisionLevel())
                    ++path_count;
                else
                    out_learnt->push_back(q);
            }
        }
        // Select the next literal to resolve on.
        while (!seen_[trail_[index - 1].var()])
            --index;
        p = trail_[--index];
        p_valid = true;
        c = reason_[p.var()];
        seen_[p.var()] = 0;
        --path_count;
    } while (path_count > 0);
    (*out_learnt)[0] = ~p;

    // Compute the backtrack level: highest level among the other lits.
    uint32_t btlevel = 0;
    size_t max_i = 1;
    for (size_t i = 1; i < out_learnt->size(); ++i) {
        const uint32_t lvl = level_[(*out_learnt)[i].var()];
        if (lvl > btlevel) {
            btlevel = lvl;
            max_i = i;
        }
    }
    if (out_learnt->size() > 1)
        std::swap((*out_learnt)[1], (*out_learnt)[max_i]);
    *out_btlevel = out_learnt->size() == 1 ? 0 : btlevel;

    for (Lit l : *out_learnt)
        seen_[l.var()] = 0;
}

void
SatSolver::BacktrackTo(uint32_t target_level)
{
    if (DecisionLevel() <= target_level)
        return;
    const size_t bound = trail_lim_[target_level];
    for (size_t i = trail_.size(); i > bound; --i) {
        const Lit l = trail_[i - 1];
        saved_phase_[l.var()] = l.negated() ? 0 : 1;
        assigns_[l.var()] = LBool::kUndef;
        reason_[l.var()] = kNoClause;
        HeapInsert(l.var());
    }
    trail_.resize(bound);
    trail_lim_.resize(target_level);
    qhead_ = trail_.size();
    if (assumption_trail_.size() > target_level)
        assumption_trail_.resize(target_level);
}

Lit
SatSolver::PickBranchLit()
{
    // Pop the activity order-heap until an unassigned variable surfaces.
    // Every unassigned variable is in the heap (BacktrackTo re-inserts
    // what it unassigns), so an empty heap means a full assignment.
    while (!heap_.empty()) {
        const uint32_t v = HeapPop();
        if (assigns_[v] != LBool::kUndef)
            continue;
        switch (params_.phase_policy) {
        case PhasePolicy::kNegative:
            return Lit(v, /*negated=*/true);
        case PhasePolicy::kPositive:
            return Lit(v, /*negated=*/false);
        case PhasePolicy::kSaved:
            break;
        }
        return Lit(v, saved_phase_[v] == 0);
    }
    return Lit::FromCode(0xffffffffu);
}

int64_t
SatSolver::Luby(int64_t i)
{
    // The reluctant-doubling sequence: find the subsequence 2^k - 1
    // containing i and recurse into its position.
    int64_t size = 1;
    int64_t seq = 0;
    while (size < i + 1) {
        size = 2 * size + 1;
        ++seq;
    }
    while (size - 1 != i) {
        size = (size - 1) / 2;
        --seq;
        i = i % size;
    }
    return int64_t{1} << seq;
}

void
SatSolver::ReduceDB()
{
    ACHILLES_CHECK(DecisionLevel() == 0, "ReduceDB off the root level");
    stats_.Bump("sat.reduce_dbs");

    // Binary learnts are cheap and valuable; locked clauses (the current
    // reason for a root-level assignment) must survive. Everything else
    // competes on activity, lowest-activity half evicted.
    std::vector<ClauseRef> keep, candidates;
    keep.reserve(learnts_.size());
    candidates.reserve(learnts_.size());
    for (ClauseRef c : learnts_) {
        const Lit first = ClauseLit(c, 0);
        const bool locked = assigns_[first.var()] != LBool::kUndef &&
                            reason_[first.var()] == c;
        if (locked || ClauseSize(c) <= 2)
            keep.push_back(c);
        else
            candidates.push_back(c);
    }
    std::sort(candidates.begin(), candidates.end(),
              [this](ClauseRef a, ClauseRef b) {
                  const float aa = ClauseActivity(a);
                  const float ab = ClauseActivity(b);
                  return aa != ab ? aa > ab : a < b;
              });
    const size_t survivors = candidates.size() / 2;
    stats_.Bump("sat.learnts_removed",
                static_cast<int64_t>(candidates.size() - survivors));
    candidates.resize(survivors);
    keep.insert(keep.end(), candidates.begin(), candidates.end());
    learnts_ = std::move(keep);
    GarbageCollect();
}

void
SatSolver::GarbageCollect()
{
    // Rebuild the arena with only the surviving clauses, then re-derive
    // every ClauseRef-bearing structure (watches, reasons). Watched
    // literals always sit at positions 0/1, so re-attaching preserves
    // the watch invariant.
    std::vector<uint32_t> new_arena;
    new_arena.reserve(arena_.size());
    std::unordered_map<ClauseRef, ClauseRef> relocated;
    relocated.reserve(clauses_.size() + learnts_.size());
    auto move_clause = [&](ClauseRef &cref) {
        const ClauseRef moved = static_cast<ClauseRef>(new_arena.size());
        const uint32_t words =
            1 + ClauseSize(cref) + (ClauseLearnt(cref) ? 1 : 0);
        for (uint32_t i = 0; i < words; ++i)
            new_arena.push_back(arena_[cref + i]);
        relocated.emplace(cref, moved);
        cref = moved;
    };
    for (ClauseRef &c : clauses_)
        move_clause(c);
    for (ClauseRef &c : learnts_)
        move_clause(c);
    arena_ = std::move(new_arena);

    for (uint32_t v = 0; v < NumVars(); ++v) {
        if (assigns_[v] != LBool::kUndef && reason_[v] != kNoClause)
            reason_[v] = relocated.at(reason_[v]);
    }
    for (std::vector<Watcher> &ws : watches_)
        ws.clear();
    for (ClauseRef c : clauses_)
        AttachClause(c);
    for (ClauseRef c : learnts_)
        AttachClause(c);
}

void
SatSolver::CollectCoreFromSeen()
{
    // Walk the trail top-down, expanding propagated literals through
    // their reason clauses; marked decisions are assumption literals
    // (analyze-final only ever runs with the decision stack inside the
    // assumption prefix) and form the core.
    const size_t bound = trail_lim_.empty() ? trail_.size() : trail_lim_[0];
    for (size_t i = trail_.size(); i > bound; --i) {
        const Lit l = trail_[i - 1];
        const uint32_t v = l.var();
        if (!seen_[v])
            continue;
        seen_[v] = 0;
        const ClauseRef c = reason_[v];
        if (c == kNoClause) {
            core_.push_back(l);
            continue;
        }
        const uint32_t size = ClauseSize(c);
        for (uint32_t j = 0; j < size; ++j) {
            const uint32_t w = ClauseLit(c, j).var();
            if (w != v && level_[w] > 0)
                seen_[w] = 1;
        }
    }
}

void
SatSolver::AnalyzeFinalConflict(ClauseRef conflict)
{
    core_.clear();
    if (DecisionLevel() == 0)
        return;
    const uint32_t size = ClauseSize(conflict);
    for (uint32_t j = 0; j < size; ++j) {
        const uint32_t v = ClauseLit(conflict, j).var();
        if (level_[v] > 0)
            seen_[v] = 1;
    }
    CollectCoreFromSeen();
}

void
SatSolver::AnalyzeFinalLit(Lit p)
{
    // Assumption p is already falsified by the assumptions established
    // so far: the core is p plus whatever implied ~p. A level-0 ~p
    // means p is refuted by the clause set alone.
    core_.clear();
    core_.push_back(p);
    if (DecisionLevel() == 0 || level_[p.var()] == 0)
        return;
    seen_[p.var()] = 1;
    CollectCoreFromSeen();
}

void
SatSolver::SortCore(const std::vector<Lit> &assumptions)
{
    // Present the core in the caller's assumption order, making it
    // independent of trail/search history presentation.
    std::vector<Lit> ordered;
    ordered.reserve(core_.size());
    for (Lit a : assumptions) {
        if (std::find(ordered.begin(), ordered.end(), a) !=
            ordered.end()) {
            continue;  // duplicated assumption: one core entry
        }
        for (Lit c : core_) {
            if (c == a) {
                ordered.push_back(c);
                break;
            }
        }
    }
    // Every core literal is an established assumption, so the filter is
    // a permutation (duplicated assumptions collapse to one entry).
    core_ = std::move(ordered);
}

void
SatSolver::MinimizeCore()
{
    // Deletion-based minimization: drop each member in turn and
    // re-probe the remainder. Probes run refute-only -- establish the
    // candidate assumptions and propagate, never branch -- so a probe
    // costs one propagation pass, not a model search; a member whose
    // removal is not refuted by propagation is conservatively kept.
    // With the refutation's clauses already in the store, redundant
    // members fall to propagation in practice, and the recursive
    // rescan-on-shrink makes the result a fixpoint. Deterministic
    // given the query history: candidates are scanned in assumption
    // order.
    static constexpr size_t kMinimizeCap = 32;
    if (core_.size() > kMinimizeCap)
        return;
    std::vector<Lit> work = core_;
    size_t i = 0;
    while (i < work.size() && work.size() > 1) {
        std::vector<Lit> candidate;
        candidate.reserve(work.size() - 1);
        for (size_t j = 0; j < work.size(); ++j) {
            if (j != i)
                candidate.push_back(work[j]);
        }
        stats_.Bump("sat.core_minimize_probes");
        if (Search(candidate, /*max_conflicts=*/-1,
                   /*refute_only=*/true) == SatStatus::kUnsat) {
            work = core_;  // the refined core (subset of candidate)
            i = 0;
        } else {
            ++i;
        }
    }
    core_ = std::move(work);
}

bool
SatSolver::AllVarsShared(const std::vector<Lit> &lits) const
{
    for (Lit l : lits) {
        if (l.var() >= var_shared_.size() || !var_shared_[l.var()])
            return false;
    }
    return true;
}

void
SatSolver::MaybeExportLearnt(const std::vector<Lit> &learnt)
{
    if (!export_hook_ || learnt.empty() || learnt.size() > kExportMaxLits ||
        !AllVarsShared(learnt)) {
        return;
    }
    stats_.Bump("sat.clauses_exported");
    export_hook_(learnt);
}

void
SatSolver::MaybeExportCore()
{
    // A core over shared assumption guards is the same implied clause a
    // learnt all-guard clause would be: the disjunction of the negated
    // core literals. Exporting it shares exactly the "pathS ∧ ¬pathC_i"
    // refutations sibling workers re-derive from scratch.
    if (!export_hook_ || core_.empty() || core_.size() > kExportMaxLits ||
        !AllVarsShared(core_)) {
        return;
    }
    std::vector<Lit> clause;
    clause.reserve(core_.size());
    for (Lit l : core_)
        clause.push_back(~l);
    stats_.Bump("sat.cores_exported");
    export_hook_(clause);
}

SatStatus
SatSolver::Solve(const std::vector<Lit> &assumptions, int64_t max_conflicts)
{
    if (!ok_) {
        core_.clear();
        last_solve_conflicts_ = 0;
        return SatStatus::kUnsat;
    }
    stats_.Bump("sat.solve_calls");
    const int64_t conflicts_before = stats_.Get("sat.conflicts");
    const SatStatus status = Search(assumptions, max_conflicts);
    // Cores of at most two literals skip the deletion loop: a
    // conflicting pair is already minimal unless one member is
    // individually refutable, which the propagation-level probes almost
    // never exhibit -- and the probes' root backtracking would destroy
    // the assumption prefix the next query wants to reuse. The reported
    // core stays conservative (never too small), as documented.
    if (status == SatStatus::kUnsat && minimize_core_ && core_.size() > 2 &&
        max_conflicts < 0) {
        MinimizeCore();
    }
    if (status == SatStatus::kUnsat)
        MaybeExportCore();
    last_solve_conflicts_ = stats_.Get("sat.conflicts") - conflicts_before;
    return status;
}

std::vector<SatStatus>
SatSolver::SolveBatch(const std::vector<Lit> &assumptions,
                      const std::vector<std::vector<Lit>> &groups,
                      int64_t max_conflicts)
{
    std::vector<SatStatus> verdicts(groups.size(), SatStatus::kUnknown);
    if (!ok_) {
        std::fill(verdicts.begin(), verdicts.end(), SatStatus::kUnsat);
        core_.clear();
        last_solve_conflicts_ = 0;
        return verdicts;
    }
    stats_.Bump("sat.batch_solves");

    // One representative literal per group. A singleton group is its
    // own representative. A multi-literal (or empty) group gets a fresh
    // definition variable g with g <-> AND(members): the (~g, m) half
    // makes a model with g true certify every member, and the reverse
    // clause (g, ~m_1, ..., ~m_t) makes a refutation over the
    // representatives exclude exactly the groups it mentions (without
    // it, an UNSAT round could hide a satisfiable group behind g set
    // false). An empty group degenerates to the unit {g}: satisfiable
    // exactly when the assumptions are, which is the right verdict for
    // an empty conjunction.
    std::vector<Lit> reps(groups.size());
    for (size_t i = 0; i < groups.size() && ok_; ++i) {
        const std::vector<Lit> &members = groups[i];
        if (members.size() == 1) {
            reps[i] = members[0];
            continue;
        }
        const Lit g(NewVar(), false);
        std::vector<Lit> reverse;
        reverse.reserve(members.size() + 1);
        reverse.push_back(g);
        for (Lit m : members) {
            AddBinary(~g, m);
            reverse.push_back(~m);
        }
        AddClause(std::move(reverse));
        reps[i] = g;
    }
    if (!ok_) {
        // The definition clauses are satisfiability-preserving, so the
        // root-level conflict means the base store itself is UNSAT --
        // and with it every group.
        std::fill(verdicts.begin(), verdicts.end(), SatStatus::kUnsat);
        core_.clear();
        last_solve_conflicts_ = 0;
        return verdicts;
    }

    size_t pending = groups.size();
    int64_t total_conflicts = 0;
    int64_t budget_left = max_conflicts;
    std::vector<Lit> round_assumptions(assumptions);
    round_assumptions.emplace_back();  // selector slot, set per round

    while (pending > 0 && ok_) {
        if (max_conflicts >= 0 && budget_left <= 0)
            break;
        stats_.Bump("sat.batch_rounds");
        // Fresh throwaway selector steering the search toward some
        // still-pending representative; retired with a unit after the
        // round so later calls never see the steering clause active.
        const Lit s(NewVar(), false);
        std::vector<Lit> steer;
        steer.reserve(pending + 1);
        steer.push_back(~s);
        for (size_t i = 0; i < groups.size(); ++i) {
            if (verdicts[i] == SatStatus::kUnknown)
                steer.push_back(reps[i]);
        }
        if (!AddClause(std::move(steer)))
            break;  // base store UNSAT; the !ok_ sweep below finishes
        round_assumptions.back() = s;
        const SatStatus status = Solve(round_assumptions, budget_left);
        total_conflicts += last_solve_conflicts_;
        if (max_conflicts >= 0) {
            budget_left =
                std::max<int64_t>(0, max_conflicts - total_conflicts);
        }
        if (status == SatStatus::kUnknown) {
            AddUnit(~s);
            break;  // budget spent; the rest stay kUnknown
        }
        if (status == SatStatus::kUnsat) {
            // The steering clause is satisfiable through any pending
            // representative, so the refutation rules out all of them.
            for (size_t i = 0; i < groups.size(); ++i) {
                if (verdicts[i] == SatStatus::kUnknown)
                    verdicts[i] = SatStatus::kUnsat;
            }
            pending = 0;
            AddUnit(~s);
            break;
        }
        // kSat: mark every pending group the model satisfies. The
        // steering clause guarantees at least one; phase saving tends
        // to keep earlier groups' members true, so one round usually
        // answers many.
        size_t marked = 0;
        for (size_t i = 0; i < groups.size(); ++i) {
            if (verdicts[i] != SatStatus::kUnknown)
                continue;
            bool all_true = true;
            for (Lit m : groups[i]) {
                if (Value(m.var()) == m.negated()) {
                    all_true = false;
                    break;
                }
            }
            if (all_true) {
                verdicts[i] = SatStatus::kSat;
                ++marked;
                --pending;
            }
        }
        ACHILLES_CHECK(marked > 0);
        AddUnit(~s);
    }
    if (!ok_) {
        // A round (or selector retirement) surfaced a root conflict in
        // the satisfiability-preserving store: base UNSAT, all groups
        // with it.
        std::fill(verdicts.begin(), verdicts.end(), SatStatus::kUnsat);
    }
    core_.clear();  // no single core describes a per-group sweep
    last_solve_conflicts_ = total_conflicts;
    return verdicts;
}

SatStatus
SatSolver::Search(const std::vector<Lit> &assumptions, int64_t max_conflicts,
                  bool refute_only)
{
    if (!ok_) {
        // A minimization probe may have discovered instance-level
        // unsatisfiability; the empty core says so.
        core_.clear();
        return SatStatus::kUnsat;
    }
    // Solution reuse: a SAT call leaves its full assignment standing
    // (see the kSat exit below), and nothing invalidates it -- AddClause
    // either keeps it a model or flips ok_, NewVar un-fills the trail.
    // If it already satisfies the new assumptions, the answer is kSat in
    // O(|assumptions|), which is what lets a stream of closely related
    // queries skip the O(vars) re-assignment entirely.
    if (trail_.size() == NumVars()) {
        bool satisfied = true;
        for (Lit p : assumptions) {
            ACHILLES_CHECK(p.var() < NumVars());
            if (LitValue(p) != LBool::kTrue) {
                satisfied = false;
                break;
            }
        }
        if (satisfied) {
            model_ = assigns_;
            core_.clear();
            stats_.Bump("sat.solution_reuses");
            return SatStatus::kSat;
        }
    }

    // Assumption-prefix trail reuse: keep the trail segment of the
    // longest common prefix between the standing assumption levels and
    // this call's assumptions. The kept levels are fully propagated and
    // conflict-free against the unchanged clause store (every exit path
    // that leaves levels standing guarantees it; AddClause resets to
    // the root), so re-establishment starts where the streams diverge.
    uint32_t keep_level = 0;
    if (trail_reuse_) {
        const size_t limit =
            std::min(assumptions.size(), assumption_trail_.size());
        while (keep_level < limit &&
               assumption_trail_[keep_level] == assumptions[keep_level]) {
            ++keep_level;
        }
    }
    if (keep_level > 0) {
        stats_.Bump("sat.trail_reuses");
        stats_.Bump("sat.trail_levels_reused", keep_level);
    }
    BacktrackTo(keep_level);
    if (learnt_cap_ <= 0) {
        learnt_cap_ = std::max<int64_t>(
            params_.learnt_floor,
            static_cast<int64_t>(clauses_.size()) / params_.learnt_divisor);
    }
    if (static_cast<int64_t>(learnts_.size()) >= learnt_cap_) {
        BacktrackTo(0);  // ReduceDB runs off the root level
        ReduceDB();
        learnt_cap_ += learnt_cap_ * params_.learnt_growth_pct / 100;
    }

    int64_t conflicts = 0;
    int64_t restart_number = 0;
    int64_t restart_budget =
        params_.restart_schedule == RestartSchedule::kLuby
            ? params_.restart_base * Luby(restart_number)
            : params_.restart_base;
    int64_t conflicts_at_restart = 0;

    while (true) {
        const ClauseRef conflict = Propagate();
        if (conflict != kNoClause) {
            ++conflicts;
            stats_.Bump("sat.conflicts");
            if (DecisionLevel() == 0) {
                ok_ = false;
                core_.clear();
                return SatStatus::kUnsat;
            }
            if (DecisionLevel() <= assumptions.size()) {
                // Conflict depends only on assumptions: UNSAT under
                // them. Record which (analyze-final over the
                // implication graph, before the trail unwinds). The
                // conflicting level's propagation is poisoned, but the
                // levels below it are established and conflict-free:
                // keep them for the next query's prefix reuse.
                AnalyzeFinalConflict(conflict);
                SortCore(assumptions);
                BacktrackTo(trail_reuse_ ? DecisionLevel() - 1 : 0);
                return SatStatus::kUnsat;
            }
            std::vector<Lit> learnt;
            uint32_t btlevel = 0;
            Analyze(conflict, &learnt, &btlevel);
            MaybeExportLearnt(learnt);
            // Never backjump into the middle of the assumption prefix
            // without re-checking it; jumping to the assumption boundary
            // is always safe.
            BacktrackTo(btlevel);
            if (learnt.size() == 1) {
                if (DecisionLevel() == 0) {
                    Enqueue(learnt[0], kNoClause);
                } else {
                    // Asserting unit below current level: restart to
                    // apply it at level 0.
                    BacktrackTo(0);
                    Enqueue(learnt[0], kNoClause);
                }
            } else {
                const ClauseRef cref = AllocClause(learnt, /*learnt=*/true);
                learnts_.push_back(cref);
                AttachClause(cref);
                BumpClause(cref);
                Enqueue(learnt[0], cref);
            }
            DecayVarActivity();
            DecayClauseActivity();
            if (max_conflicts >= 0 && conflicts >= max_conflicts) {
                // Unwind the search decisions but keep any standing
                // assumption prefix (assumption_trail_ is trimmed by
                // every backtrack, so its size is the deepest level
                // that is still an established assumption).
                BacktrackTo(trail_reuse_
                                ? static_cast<uint32_t>(
                                      assumption_trail_.size())
                                : 0);
                core_.clear();
                stats_.Bump("sat.budget_exhausted");
                return SatStatus::kUnknown;
            }
            if (conflicts - conflicts_at_restart >= restart_budget) {
                conflicts_at_restart = conflicts;
                ++restart_number;
                restart_budget =
                    params_.restart_schedule == RestartSchedule::kLuby
                        ? params_.restart_base * Luby(restart_number)
                        : static_cast<int64_t>(restart_budget *
                                               params_.restart_growth);
                stats_.Bump("sat.restarts");
                BacktrackTo(0);
                if (static_cast<int64_t>(learnts_.size()) >= learnt_cap_) {
                    ReduceDB();
                    learnt_cap_ += learnt_cap_ * params_.learnt_growth_pct /
                                   100;
                }
            }
            continue;
        }

        // No conflict: establish the next assumption, or decide.
        if (DecisionLevel() < assumptions.size()) {
            const Lit p = assumptions[DecisionLevel()];
            ACHILLES_CHECK(p.var() < NumVars());
            const LBool v = LitValue(p);
            if (v == LBool::kTrue) {
                NewDecisionLevel();  // dummy level keeps indexing aligned
                assumption_trail_.push_back(p);
            } else if (v == LBool::kFalse) {
                AnalyzeFinalLit(p);
                SortCore(assumptions);
                // The standing levels are conflict-free (p was refuted
                // by their propagation closure, before its own level
                // existed); keep them for prefix reuse.
                if (!trail_reuse_)
                    BacktrackTo(0);
                return SatStatus::kUnsat;
            } else {
                NewDecisionLevel();
                assumption_trail_.push_back(p);
                Enqueue(p, kNoClause);
            }
            continue;
        }

        if (refute_only) {
            // Assumptions established and propagation is conflict-free:
            // a refutation by propagation is off the table, which is
            // all a minimization probe wants to know. The established
            // levels stay standing for the next probe's prefix reuse.
            if (!trail_reuse_)
                BacktrackTo(0);
            core_.clear();
            return SatStatus::kUnknown;
        }

        const Lit next = PickBranchLit();
        if (next.code() == 0xffffffffu) {
            // All variables assigned: model found. Leave the assignment
            // standing for cross-query solution reuse (the next Solve
            // backtracks before searching anyway).
            model_ = assigns_;
            core_.clear();
            return SatStatus::kSat;
        }
        stats_.Bump("sat.decisions");
        NewDecisionLevel();
        Enqueue(next, kNoClause);
    }
}

}  // namespace smt
}  // namespace achilles
