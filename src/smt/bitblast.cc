// Achilles reproduction -- SMT library.
//
// Bit-blasting implementation.

#include "smt/bitblast.h"

#include <algorithm>

namespace achilles {
namespace smt {

namespace {

/** Pack a gate cache key from a tag and two literal codes. */
uint64_t
GateKey(uint32_t tag, Lit a, Lit b)
{
    // Commutative gates are normalized by the caller.
    return (static_cast<uint64_t>(tag) << 58) |
           (static_cast<uint64_t>(a.code()) << 29) |
           static_cast<uint64_t>(b.code());
}

}  // namespace

BitBlaster::BitBlaster(SatSolver *solver) : solver_(solver)
{
    const uint32_t tvar = solver_->NewVar();
    true_lit_ = Lit(tvar, false);
    solver_->AddUnit(true_lit_);
}

Lit
BitBlaster::NewLit()
{
    return Lit(solver_->NewVar(), false);
}

Lit
BitBlaster::AndGate(Lit a, Lit b)
{
    if (IsFalseLit(a) || IsFalseLit(b))
        return ConstLit(false);
    if (IsTrueLit(a))
        return b;
    if (IsTrueLit(b))
        return a;
    if (a == b)
        return a;
    if (a == ~b)
        return ConstLit(false);
    if (b.code() < a.code())
        std::swap(a, b);
    const uint64_t key = GateKey(1, a, b);
    auto it = gate_cache_.find(key);
    if (it != gate_cache_.end())
        return it->second;
    const Lit o = NewLit();
    solver_->AddBinary(~o, a);
    solver_->AddBinary(~o, b);
    solver_->AddTernary(o, ~a, ~b);
    gate_cache_.emplace(key, o);
    return o;
}

Lit
BitBlaster::OrGate(Lit a, Lit b)
{
    return ~AndGate(~a, ~b);
}

Lit
BitBlaster::XorGate(Lit a, Lit b)
{
    if (IsFalseLit(a))
        return b;
    if (IsFalseLit(b))
        return a;
    if (IsTrueLit(a))
        return ~b;
    if (IsTrueLit(b))
        return ~a;
    if (a == b)
        return ConstLit(false);
    if (a == ~b)
        return ConstLit(true);
    // Normalize: smaller positive-form code first; fold sign into output.
    bool flip = false;
    if (a.negated()) {
        a = ~a;
        flip = !flip;
    }
    if (b.negated()) {
        b = ~b;
        flip = !flip;
    }
    if (b.code() < a.code())
        std::swap(a, b);
    const uint64_t key = GateKey(2, a, b);
    auto it = gate_cache_.find(key);
    Lit o;
    if (it != gate_cache_.end()) {
        o = it->second;
    } else {
        o = NewLit();
        solver_->AddTernary(~o, a, b);
        solver_->AddTernary(~o, ~a, ~b);
        solver_->AddTernary(o, ~a, b);
        solver_->AddTernary(o, a, ~b);
        gate_cache_.emplace(key, o);
    }
    return flip ? ~o : o;
}

Lit
BitBlaster::MuxGate(Lit sel, Lit then_l, Lit else_l)
{
    if (IsTrueLit(sel))
        return then_l;
    if (IsFalseLit(sel))
        return else_l;
    if (then_l == else_l)
        return then_l;
    if (IsTrueLit(then_l) && IsFalseLit(else_l))
        return sel;
    if (IsFalseLit(then_l) && IsTrueLit(else_l))
        return ~sel;
    const Lit o = NewLit();
    solver_->AddTernary(~sel, ~then_l, o);
    solver_->AddTernary(~sel, then_l, ~o);
    solver_->AddTernary(sel, ~else_l, o);
    solver_->AddTernary(sel, else_l, ~o);
    return o;
}

std::pair<Lit, Lit>
BitBlaster::FullAdder(Lit a, Lit b, Lit cin)
{
    const Lit axb = XorGate(a, b);
    const Lit sum = XorGate(axb, cin);
    const Lit carry = OrGate(AndGate(a, b), AndGate(axb, cin));
    return {sum, carry};
}

std::vector<Lit>
BitBlaster::AddVectors(const std::vector<Lit> &a, const std::vector<Lit> &b,
                       Lit cin)
{
    ACHILLES_CHECK(a.size() == b.size());
    std::vector<Lit> out(a.size());
    Lit carry = cin;
    for (size_t i = 0; i < a.size(); ++i) {
        auto [sum, cout] = FullAdder(a[i], b[i], carry);
        out[i] = sum;
        carry = cout;
    }
    return out;
}

Lit
BitBlaster::UltVector(const std::vector<Lit> &a, const std::vector<Lit> &b)
{
    ACHILLES_CHECK(a.size() == b.size());
    // Ripple comparison from LSB: lt' = (~a & b) | ((a == b) & lt).
    Lit lt = ConstLit(false);
    for (size_t i = 0; i < a.size(); ++i) {
        const Lit less_here = AndGate(~a[i], b[i]);
        const Lit eq_here = EqGate(a[i], b[i]);
        lt = OrGate(less_here, AndGate(eq_here, lt));
    }
    return lt;
}

std::vector<Lit>
BitBlaster::ShiftVector(Kind kind, const std::vector<Lit> &in,
                        const std::vector<Lit> &amount)
{
    const size_t w = in.size();
    const Lit fill_base =
        kind == Kind::kAShr ? in[w - 1] : ConstLit(false);
    std::vector<Lit> acc = in;
    // Barrel stages for amount bits that denote in-range distances.
    for (size_t k = 0; k < amount.size() && (1ull << k) < w; ++k) {
        const size_t dist = 1ull << k;
        std::vector<Lit> shifted(w);
        for (size_t i = 0; i < w; ++i) {
            Lit src;
            if (kind == Kind::kShl)
                src = i >= dist ? acc[i - dist] : ConstLit(false);
            else
                src = i + dist < w ? acc[i + dist] : fill_base;
            shifted[i] = MuxGate(amount[k], src, acc[i]);
        }
        acc = std::move(shifted);
    }
    // If any amount bit at or above log2(w) is set (or the low bits
    // encode a distance >= w), the result is all-fill. The barrel stages
    // above already handle distances < w; compute an "out of range" flag
    // for amount >= w.
    Lit oor = ConstLit(false);
    for (size_t k = 0; k < amount.size(); ++k) {
        if ((1ull << k) >= w)
            oor = OrGate(oor, amount[k]);
    }
    // Low-bit combinations never exceed w-1 when w is a power of two;
    // for non-power-of-two widths compare the low field against w.
    size_t covered_bits = 0;
    while ((1ull << covered_bits) < w)
        ++covered_bits;
    if ((1ull << covered_bits) != w && covered_bits <= amount.size()) {
        // amount_low >= w?
        std::vector<Lit> low(amount.begin(),
                             amount.begin() +
                                 std::min(covered_bits, amount.size()));
        std::vector<Lit> wconst;
        for (size_t i = 0; i < low.size(); ++i)
            wconst.push_back(ConstLit((w >> i) & 1));
        const Lit low_lt_w = UltVector(low, wconst);
        oor = OrGate(oor, ~low_lt_w);
    }
    std::vector<Lit> out(w);
    for (size_t i = 0; i < w; ++i)
        out[i] = MuxGate(oor, fill_base, acc[i]);
    return out;
}

void
BitBlaster::DivRem(const std::vector<Lit> &a, const std::vector<Lit> &b,
                   std::vector<Lit> *quotient, std::vector<Lit> *remainder)
{
    const size_t w = a.size();
    // Restoring division with a (w+1)-bit partial remainder.
    std::vector<Lit> rem(w + 1, ConstLit(false));
    std::vector<Lit> bext = b;
    bext.push_back(ConstLit(false));
    std::vector<Lit> q(w, ConstLit(false));
    for (size_t step = 0; step < w; ++step) {
        const size_t bit = w - 1 - step;
        // rem = (rem << 1) | a[bit], dropping the top bit (it is always
        // zero before the shift because rem < b <= 2^w - 1).
        for (size_t i = w; i > 0; --i)
            rem[i] = rem[i - 1];
        rem[0] = a[bit];
        // geq = rem >= bext
        const Lit geq = ~UltVector(rem, bext);
        // rem = geq ? rem - bext : rem
        std::vector<Lit> neg_b(w + 1);
        for (size_t i = 0; i <= w; ++i)
            neg_b[i] = ~bext[i];
        std::vector<Lit> diff = AddVectors(rem, neg_b, ConstLit(true));
        for (size_t i = 0; i <= w; ++i)
            rem[i] = MuxGate(geq, diff[i], rem[i]);
        q[bit] = geq;
    }
    quotient->assign(q.begin(), q.end());
    remainder->assign(rem.begin(), rem.begin() + w);
    // SMT-LIB semantics for division by zero (x/0 = all-ones, x%0 = x)
    // fall out of the circuit: with b == 0, geq is always true and the
    // subtraction is a no-op, so q = ~0 and rem = a.
}

const std::vector<Lit> &
BitBlaster::Blast(ExprRef e)
{
    auto it = memo_.find(e);
    if (it != memo_.end())
        return it->second;
    std::vector<Lit> bits = BlastNode(e);
    ACHILLES_CHECK(bits.size() == e->width(), "blast width mismatch");
    return memo_.emplace(e, std::move(bits)).first->second;
}

std::vector<Lit>
BitBlaster::BlastNode(ExprRef e)
{
    const uint32_t w = e->width();
    switch (e->kind()) {
      case Kind::kConst: {
        std::vector<Lit> bits(w);
        for (uint32_t i = 0; i < w; ++i)
            bits[i] = ConstLit((e->ConstValue() >> i) & 1);
        return bits;
      }
      case Kind::kVar: {
        auto vit = var_bits_.find(e->VarId());
        if (vit != var_bits_.end())
            return vit->second;
        std::vector<Lit> bits(w);
        for (uint32_t i = 0; i < w; ++i)
            bits[i] = NewLit();
        var_bits_.emplace(e->VarId(), bits);
        return bits;
      }
      case Kind::kAdd:
        return AddVectors(Blast(e->kid(0)), Blast(e->kid(1)),
                          ConstLit(false));
      case Kind::kSub: {
        std::vector<Lit> nb = Blast(e->kid(1));
        for (Lit &l : nb)
            l = ~l;
        return AddVectors(Blast(e->kid(0)), nb, ConstLit(true));
      }
      case Kind::kMul: {
        const std::vector<Lit> a = Blast(e->kid(0));
        const std::vector<Lit> b = Blast(e->kid(1));
        std::vector<Lit> acc(w, ConstLit(false));
        for (uint32_t i = 0; i < w; ++i) {
            if (IsFalseLit(b[i]))
                continue;
            // acc += (a << i) & replicate(b[i])
            std::vector<Lit> partial(w, ConstLit(false));
            for (uint32_t j = i; j < w; ++j)
                partial[j] = AndGate(a[j - i], b[i]);
            acc = AddVectors(acc, partial, ConstLit(false));
        }
        return acc;
      }
      case Kind::kUDiv: {
        std::vector<Lit> q, r;
        DivRem(Blast(e->kid(0)), Blast(e->kid(1)), &q, &r);
        return q;
      }
      case Kind::kURem: {
        std::vector<Lit> q, r;
        DivRem(Blast(e->kid(0)), Blast(e->kid(1)), &q, &r);
        return r;
      }
      case Kind::kAnd: {
        const std::vector<Lit> &a = Blast(e->kid(0));
        const std::vector<Lit> &b = Blast(e->kid(1));
        std::vector<Lit> bits(w);
        for (uint32_t i = 0; i < w; ++i)
            bits[i] = AndGate(a[i], b[i]);
        return bits;
      }
      case Kind::kOr: {
        const std::vector<Lit> &a = Blast(e->kid(0));
        const std::vector<Lit> &b = Blast(e->kid(1));
        std::vector<Lit> bits(w);
        for (uint32_t i = 0; i < w; ++i)
            bits[i] = OrGate(a[i], b[i]);
        return bits;
      }
      case Kind::kXor: {
        const std::vector<Lit> &a = Blast(e->kid(0));
        const std::vector<Lit> &b = Blast(e->kid(1));
        std::vector<Lit> bits(w);
        for (uint32_t i = 0; i < w; ++i)
            bits[i] = XorGate(a[i], b[i]);
        return bits;
      }
      case Kind::kNot: {
        std::vector<Lit> bits = Blast(e->kid(0));
        for (Lit &l : bits)
            l = ~l;
        return bits;
      }
      case Kind::kShl:
      case Kind::kLShr:
      case Kind::kAShr:
        return ShiftVector(e->kind(), Blast(e->kid(0)), Blast(e->kid(1)));
      case Kind::kConcat: {
        const std::vector<Lit> &high = Blast(e->kid(0));
        const std::vector<Lit> &low = Blast(e->kid(1));
        std::vector<Lit> bits = low;
        bits.insert(bits.end(), high.begin(), high.end());
        return bits;
      }
      case Kind::kExtract: {
        const std::vector<Lit> &in = Blast(e->kid(0));
        const uint32_t off = static_cast<uint32_t>(e->aux());
        return std::vector<Lit>(in.begin() + off, in.begin() + off + w);
      }
      case Kind::kZExt: {
        std::vector<Lit> bits = Blast(e->kid(0));
        bits.resize(w, ConstLit(false));
        return bits;
      }
      case Kind::kSExt: {
        std::vector<Lit> bits = Blast(e->kid(0));
        const Lit sign = bits.back();
        bits.resize(w, sign);
        return bits;
      }
      case Kind::kEq: {
        const std::vector<Lit> &a = Blast(e->kid(0));
        const std::vector<Lit> &b = Blast(e->kid(1));
        Lit acc = ConstLit(true);
        for (size_t i = 0; i < a.size(); ++i)
            acc = AndGate(acc, EqGate(a[i], b[i]));
        return {acc};
      }
      case Kind::kUlt:
        return {UltVector(Blast(e->kid(0)), Blast(e->kid(1)))};
      case Kind::kUle:
        return {~UltVector(Blast(e->kid(1)), Blast(e->kid(0)))};
      case Kind::kSlt: {
        std::vector<Lit> a = Blast(e->kid(0));
        std::vector<Lit> b = Blast(e->kid(1));
        a.back() = ~a.back();  // flip sign bits: signed -> unsigned order
        b.back() = ~b.back();
        return {UltVector(a, b)};
      }
      case Kind::kSle: {
        std::vector<Lit> a = Blast(e->kid(0));
        std::vector<Lit> b = Blast(e->kid(1));
        a.back() = ~a.back();
        b.back() = ~b.back();
        return {~UltVector(b, a)};
      }
      case Kind::kIte: {
        const std::vector<Lit> &cond = Blast(e->kid(0));
        const std::vector<Lit> &tv = Blast(e->kid(1));
        const std::vector<Lit> &ev = Blast(e->kid(2));
        std::vector<Lit> bits(w);
        for (uint32_t i = 0; i < w; ++i)
            bits[i] = MuxGate(cond[0], tv[i], ev[i]);
        return bits;
      }
    }
    ACHILLES_UNREACHABLE("blast: bad kind");
}

void
BitBlaster::AssertTrue(ExprRef e)
{
    ACHILLES_CHECK(e->width() == 1, "asserting non-boolean");
    const std::vector<Lit> &bits = Blast(e);
    solver_->AddUnit(bits[0]);
}

Lit
BitBlaster::ActivationLit(ExprRef e)
{
    ACHILLES_CHECK(e->width() == 1, "guarding non-boolean");
    auto it = guard_memo_.find(e);
    if (it != guard_memo_.end())
        return it->second;
    const Lit body = Blast(e)[0];
    const Lit guard = NewLit();
    // If e blasts to constant-false, AddClause reduces (¬g ∨ false) to
    // the unit ¬g, so assuming g correctly yields UNSAT; constant-true
    // bodies make the clause vacuous and g a free literal.
    solver_->AddBinary(~guard, body);
    // Guards branch to active first: models then satisfy as many
    // retractable assertions as possible, so the solver's cross-query
    // solution reuse keeps hitting as the assumption set drifts.
    solver_->SetPhase(guard.var(), true);
    guard_memo_.emplace(e, guard);
    return guard;
}

uint64_t
BitBlaster::VarValueFromModel(uint32_t var_id) const
{
    auto it = var_bits_.find(var_id);
    if (it == var_bits_.end())
        return 0;
    uint64_t value = 0;
    for (size_t i = 0; i < it->second.size(); ++i) {
        const Lit l = it->second[i];
        const bool bit = solver_->Value(l.var()) != l.negated();
        value |= static_cast<uint64_t>(bit) << i;
    }
    return value;
}

Model
BitBlaster::ExtractModel(const std::vector<uint32_t> &var_ids) const
{
    Model model;
    for (uint32_t id : var_ids)
        model.Set(id, VarValueFromModel(id));
    return model;
}

}  // namespace smt
}  // namespace achilles
