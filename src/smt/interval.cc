// Achilles reproduction -- SMT library.

#include "smt/interval.h"

#include <algorithm>

namespace achilles {
namespace smt {

void
FlattenConjunction(ExprRef e, std::vector<ExprRef> *out)
{
    ACHILLES_CHECK(e->width() == 1);
    if (e->kind() == Kind::kAnd) {
        FlattenConjunction(e->kid(0), out);
        FlattenConjunction(e->kid(1), out);
        return;
    }
    out->push_back(e);
}

namespace {

/** Strip ZExt wrappers; returns the inner expression. */
ExprRef
StripZExt(ExprRef e)
{
    while (e->kind() == Kind::kZExt)
        e = e->kid(0);
    return e;
}

}  // namespace

void
IntervalChecker::Narrow(ExprRef var_like, const Interval &interval,
                        int32_t source)
{
    ExprRef inner = StripZExt(var_like);
    if (!inner->IsVar())
        return;
    // The ZExt wrapper does not change the unsigned value, so intervals
    // transfer directly (clipped to the inner width).
    const Interval full = Interval::Full(inner->width());
    Interval clipped = interval.Meet(full);
    auto [it, inserted] = env_.emplace(inner->VarId(), clipped);
    BoundSources &src = sources_[inner->VarId()];
    if (inserted) {
        // Bounds beyond the type bound came from this atom; the type
        // bound itself needs no witness.
        if (clipped.lo > full.lo)
            src.lo = source;
        if (clipped.hi < full.hi)
            src.hi = source;
        return;
    }
    const Interval met = it->second.Meet(clipped);
    if (met.lo > it->second.lo)
        src.lo = source;
    if (met.hi < it->second.hi)
        src.hi = source;
    it->second = met;
}

void
IntervalChecker::AddBoundSources(uint32_t var_id,
                                 std::vector<uint32_t> *core) const
{
    auto it = sources_.find(var_id);
    if (it == sources_.end())
        return;
    if (it->second.lo >= 0)
        core->push_back(static_cast<uint32_t>(it->second.lo));
    if (it->second.hi >= 0)
        core->push_back(static_cast<uint32_t>(it->second.hi));
}

void
IntervalChecker::SeedFromAtom(ExprRef atom, bool positive, int32_t source)
{
    if (atom->kind() == Kind::kNot) {
        SeedFromAtom(atom->kid(0), !positive, source);
        return;
    }
    const Kind kind = atom->kind();
    if (kind != Kind::kEq && kind != Kind::kUlt && kind != Kind::kUle)
        return;
    ExprRef a = atom->kid(0);
    ExprRef b = atom->kid(1);
    const bool a_const = a->IsConst();
    const bool b_const = b->IsConst();
    if (a_const == b_const)
        return;  // need exactly one constant side
    const uint64_t c = (a_const ? a : b)->ConstValue();
    ExprRef x = a_const ? b : a;
    const uint64_t mask = WidthMask(x->width());

    if (kind == Kind::kEq) {
        if (positive)
            Narrow(x, Interval::Point(c), source);
        // Negative equality only prunes at interval endpoints; skip.
        return;
    }
    // Normalize to "x REL c" with REL in {<, <=, >, >=} (unsigned).
    // atom is (a kind b); flip when the constant is on the left.
    bool lt = kind == Kind::kUlt;
    bool x_on_left = !a_const;
    if (!positive) {
        // !(x < c) == x >= c; !(c < x) == x <= c; etc.
        x_on_left = !x_on_left;
        lt = !lt;  // Ult <-> Ule dual under negation with side flip
    }
    if (x_on_left) {
        // x < c  or  x <= c
        if (lt) {
            if (c == 0)
                Narrow(x, Interval::EmptySet(), source);
            else
                Narrow(x, Interval{0, c - 1}, source);
        } else {
            Narrow(x, Interval{0, c}, source);
        }
    } else {
        // c < x  or  c <= x
        if (lt) {
            if (c == mask)
                Narrow(x, Interval::EmptySet(), source);
            else
                Narrow(x, Interval{c + 1, mask}, source);
        } else {
            Narrow(x, Interval{c, mask}, source);
        }
    }
}

Interval
IntervalChecker::IntervalOf(ExprRef e)
{
    auto it = memo_.find(e);
    if (it != memo_.end())
        return it->second;

    const uint64_t mask = WidthMask(e->width());
    Interval result = Interval::Full(e->width());
    auto kid = [&](size_t i) { return IntervalOf(e->kid(i)); };

    switch (e->kind()) {
      case Kind::kConst:
        result = Interval::Point(e->ConstValue());
        break;
      case Kind::kVar: {
        auto vit = env_.find(e->VarId());
        if (vit != env_.end())
            result = vit->second;
        break;
      }
      case Kind::kAdd: {
        const Interval a = kid(0), b = kid(1);
        if (a.Empty() || b.Empty()) {
            result = Interval::EmptySet();
        } else if (b.hi <= mask - a.hi) {  // no wrap possible
            result = {a.lo + b.lo, a.hi + b.hi};
        }
        break;
      }
      case Kind::kSub: {
        const Interval a = kid(0), b = kid(1);
        if (a.Empty() || b.Empty())
            result = Interval::EmptySet();
        else if (a.lo >= b.hi)  // no borrow possible
            result = {a.lo - b.hi, a.hi - b.lo};
        break;
      }
      case Kind::kMul: {
        const Interval a = kid(0), b = kid(1);
        if (a.Empty() || b.Empty()) {
            result = Interval::EmptySet();
        } else if (a.hi != 0 && b.hi != 0) {
            // Safe only if the max product cannot wrap.
            const unsigned __int128 max_prod =
                static_cast<unsigned __int128>(a.hi) * b.hi;
            if (max_prod <= mask)
                result = {a.lo * b.lo, a.hi * b.hi};
        } else {
            result = Interval::Point(0);
        }
        break;
      }
      case Kind::kAnd: {
        const Interval a = kid(0), b = kid(1);
        if (a.Empty() || b.Empty())
            result = Interval::EmptySet();
        else
            result = {0, std::min(a.hi, b.hi)};
        break;
      }
      case Kind::kOr: {
        const Interval a = kid(0), b = kid(1);
        if (a.Empty() || b.Empty()) {
            result = Interval::EmptySet();
        } else {
            // max(or) < 2^ceil(log2(max(a.hi,b.hi)+1)); keep it simple:
            uint64_t bound = a.hi | b.hi;
            // Round up to a contiguous low mask (sound upper bound).
            bound |= bound >> 1;
            bound |= bound >> 2;
            bound |= bound >> 4;
            bound |= bound >> 8;
            bound |= bound >> 16;
            bound |= bound >> 32;
            result = {std::max(a.lo, b.lo), bound & mask};
        }
        break;
      }
      case Kind::kZExt:
        result = kid(0);
        break;
      case Kind::kConcat: {
        const Interval high = kid(0), low = kid(1);
        const uint32_t lw = e->kid(1)->width();
        if (high.Empty() || low.Empty()) {
            result = Interval::EmptySet();
        } else if (low.lo == 0 && low.hi == WidthMask(lw)) {
            result = {high.lo << lw, (high.hi << lw) | low.hi};
        } else {
            result = {(high.lo << lw) | low.lo, (high.hi << lw) | low.hi};
            // Only precise if high is a singleton; otherwise widen the
            // low part to keep soundness.
            if (!high.IsSingleton())
                result = {high.lo << lw, (high.hi << lw) | WidthMask(lw)};
        }
        break;
      }
      case Kind::kExtract: {
        if (e->aux() == 0) {
            const Interval a = kid(0);
            if (a.Empty())
                result = Interval::EmptySet();
            else if (a.hi <= mask)
                result = a;
        }
        break;
      }
      case Kind::kEq: {
        const Interval a = kid(0), b = kid(1);
        if (a.Empty() || b.Empty())
            result = Interval::EmptySet();
        else if (a.IsSingleton() && b.IsSingleton())
            result = Interval::Point(a.lo == b.lo ? 1 : 0);
        else if (a.Meet(b).Empty())
            result = Interval::Point(0);
        else
            result = {0, 1};
        break;
      }
      case Kind::kUlt: {
        const Interval a = kid(0), b = kid(1);
        if (a.Empty() || b.Empty())
            result = Interval::EmptySet();
        else if (a.hi < b.lo)
            result = Interval::Point(1);
        else if (a.lo >= b.hi)
            result = Interval::Point(0);
        else
            result = {0, 1};
        break;
      }
      case Kind::kUle: {
        const Interval a = kid(0), b = kid(1);
        if (a.Empty() || b.Empty())
            result = Interval::EmptySet();
        else if (a.hi <= b.lo)
            result = Interval::Point(1);
        else if (a.lo > b.hi)
            result = Interval::Point(0);
        else
            result = {0, 1};
        break;
      }
      case Kind::kNot: {
        if (e->width() == 1) {
            const Interval a = kid(0);
            if (a.Empty())
                result = Interval::EmptySet();
            else if (a.IsSingleton())
                result = Interval::Point(a.lo ? 0 : 1);
            else
                result = {0, 1};
        }
        break;
      }
      case Kind::kIte: {
        const Interval c = kid(0);
        if (c.Empty()) {
            result = Interval::EmptySet();
        } else if (c.IsSingleton()) {
            result = c.lo ? kid(1) : kid(2);
        } else {
            result = kid(1).Join(kid(2));
        }
        break;
      }
      default:
        // Unsupported operators stay at Full (sound).
        break;
    }
    memo_.emplace(e, result);
    return result;
}

bool
IntervalChecker::AnalyzeUnsat(const std::vector<ExprRef> &assertions,
                              std::vector<uint32_t> *core)
{
    env_.clear();
    sources_.clear();
    memo_.clear();

    // Seed atoms map 1:1 to assertions: flattening an And-tree keeps
    // the assertion index on every atom, so bound sources attribute to
    // the caller's granularity directly.
    std::vector<std::pair<ExprRef, uint32_t>> atoms;
    for (size_t i = 0; i < assertions.size(); ++i) {
        std::vector<ExprRef> flat;
        FlattenConjunction(assertions[i], &flat);
        for (ExprRef atom : flat)
            atoms.emplace_back(atom, static_cast<uint32_t>(i));
    }

    for (const auto &[atom, index] : atoms) {
        SeedFromAtom(atom, /*positive=*/true,
                     static_cast<int32_t>(index));
    }
    const auto finish_core = [&](std::vector<uint32_t> *out) {
        std::sort(out->begin(), out->end());
        out->erase(std::unique(out->begin(), out->end()), out->end());
    };
    // Check for variables narrowed to the empty interval. The two atoms
    // holding the final bounds each imply their half, so together they
    // are an unsat core on their own.
    for (const auto &[var, interval] : env_) {
        if (!interval.Empty())
            continue;
        if (core != nullptr) {
            AddBoundSources(var, core);
            finish_core(core);
        }
        return true;
    }
    // Evaluate each atom under the seeded environment. A refuted atom
    // is implicated together with the bound sources of every variable
    // in its support (their narrowings are what emptied it).
    for (const auto &[atom, index] : atoms) {
        const Interval v = IntervalOf(atom);
        if (!(v.Empty() || (v.IsSingleton() && v.lo == 0)))
            continue;
        if (core != nullptr) {
            core->push_back(index);
            std::unordered_set<uint32_t> vars;
            ctx_->CollectVars(atom, &vars);
            for (uint32_t var : vars)
                AddBoundSources(var, core);
            finish_core(core);
        }
        return true;
    }
    return false;
}

bool
IntervalChecker::DefinitelyUnsat(const std::vector<ExprRef> &assertions)
{
    return AnalyzeUnsat(assertions, nullptr);
}

bool
IntervalChecker::DefinitelyUnsatWithCore(
    const std::vector<ExprRef> &assertions, std::vector<uint32_t> *core)
{
    core->clear();
    return AnalyzeUnsat(assertions, core);
}

}  // namespace smt
}  // namespace achilles
