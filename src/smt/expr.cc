// Achilles reproduction -- SMT library.
//
// Expression construction, canonicalization and constant folding.

#include "smt/expr.h"

#include <algorithm>
#include <sstream>

#include "support/hash.h"

namespace achilles {
namespace smt {

const char *
KindName(Kind kind)
{
    switch (kind) {
      case Kind::kConst: return "const";
      case Kind::kVar: return "var";
      case Kind::kAdd: return "add";
      case Kind::kSub: return "sub";
      case Kind::kMul: return "mul";
      case Kind::kUDiv: return "udiv";
      case Kind::kURem: return "urem";
      case Kind::kAnd: return "and";
      case Kind::kOr: return "or";
      case Kind::kXor: return "xor";
      case Kind::kNot: return "not";
      case Kind::kShl: return "shl";
      case Kind::kLShr: return "lshr";
      case Kind::kAShr: return "ashr";
      case Kind::kConcat: return "concat";
      case Kind::kExtract: return "extract";
      case Kind::kZExt: return "zext";
      case Kind::kSExt: return "sext";
      case Kind::kEq: return "eq";
      case Kind::kUlt: return "ult";
      case Kind::kUle: return "ule";
      case Kind::kSlt: return "slt";
      case Kind::kSle: return "sle";
      case Kind::kIte: return "ite";
    }
    ACHILLES_UNREACHABLE("bad Kind");
}

namespace {

/** Combine hashes (boost::hash_combine recipe). */
size_t
HashCombine(size_t seed, size_t value)
{
    return seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

bool
IsCommutative(Kind kind)
{
    switch (kind) {
      case Kind::kAdd:
      case Kind::kMul:
      case Kind::kAnd:
      case Kind::kOr:
      case Kind::kXor:
      case Kind::kEq:
        return true;
      default:
        return false;
    }
}

}  // namespace

Expr::Expr(Kind kind, uint32_t width, uint64_t aux, std::vector<ExprRef> kids)
    : kind_(kind), width_(width), aux_(aux), kids_(std::move(kids))
{
    size_t h = HashCombine(static_cast<size_t>(kind_), width_);
    h = HashCombine(h, static_cast<size_t>(aux_));
    for (ExprRef kid : kids_)
        h = HashCombine(h, reinterpret_cast<size_t>(kid));
    hash_ = h;

    // Pointer-free fingerprints (see struct_hash()): kids contribute
    // their own, so this is O(1) per node. The second hash uses
    // different mix constants so the pair forms an effectively 128-bit
    // key for the shared query cache.
    uint64_t s = MixBits((static_cast<uint64_t>(kind_) << 32) | width_);
    s = MixBits(s + 0x9e3779b97f4a7c15ull * (aux_ + 1));
    uint64_t s2 = MixBits(0xd6e8feb86659fd93ull +
                          (static_cast<uint64_t>(kind_) << 40) +
                          (static_cast<uint64_t>(width_) << 8));
    s2 = MixBits(s2 ^ (aux_ * 0xc2b2ae3d27d4eb4full));
    max_var_bound_ =
        kind_ == Kind::kVar ? static_cast<uint32_t>(aux_) + 1 : 0;
    for (ExprRef kid : kids_) {
        s = MixBits(s + 0xff51afd7ed558ccdull * kid->struct_hash());
        s2 = MixBits(s2 + 0x9e3779b97f4a7c15ull * kid->struct_hash2());
        max_var_bound_ = std::max(max_var_bound_, kid->max_var_bound());
    }
    struct_hash_ = s;
    struct_hash2_ = s2;
}

int
StructuralCompare(ExprRef a, ExprRef b)
{
    if (a == b)
        return 0;
    if (a->struct_hash() != b->struct_hash())
        return a->struct_hash() < b->struct_hash() ? -1 : 1;
    // Fingerprint collision (vanishingly rare): full structural walk so
    // the order stays deterministic across contexts and runs.
    if (a->kind() != b->kind())
        return a->kind() < b->kind() ? -1 : 1;
    if (a->width() != b->width())
        return a->width() < b->width() ? -1 : 1;
    if (a->aux() != b->aux())
        return a->aux() < b->aux() ? -1 : 1;
    if (a->kids().size() != b->kids().size())
        return a->kids().size() < b->kids().size() ? -1 : 1;
    for (size_t i = 0; i < a->kids().size(); ++i) {
        const int c = StructuralCompare(a->kid(i), b->kid(i));
        if (c != 0)
            return c;
    }
    return 0;
}

bool
ExprContext::NodeEq::operator()(const Expr *a, const Expr *b) const
{
    return a->kind() == b->kind() && a->width() == b->width() &&
           a->aux() == b->aux() && a->kids() == b->kids();
}

ExprContext::ExprContext()
{
    true_ = MakeConst(1, 1);
    false_ = MakeConst(1, 0);
}

ExprRef
ExprContext::Intern(Kind kind, uint32_t width, uint64_t aux,
                    std::vector<ExprRef> kids)
{
    ACHILLES_CHECK(width >= 1 && width <= 64, "width=", width);
    auto node = std::make_unique<Expr>(
        Expr(kind, width, aux, std::move(kids)));
    auto it = interned_.find(node.get());
    if (it != interned_.end())
        return *it;
    ExprRef ref = node.get();
    interned_.insert(ref);
    arena_.push_back(std::move(node));
    return ref;
}

ExprRef
ExprContext::MakeConst(uint32_t width, uint64_t value)
{
    return Intern(Kind::kConst, width, value & WidthMask(width), {});
}

ExprRef
ExprContext::FreshVar(const std::string &base, uint32_t width)
{
    const uint32_t id = static_cast<uint32_t>(vars_.size());
    std::ostringstream name;
    name << base << "!" << id;
    vars_.push_back(VarInfo{name.str(), width});
    ExprRef node = Intern(Kind::kVar, width, id, {});
    var_nodes_.push_back(node);
    return node;
}

ExprRef
ExprContext::VarById(uint32_t id) const
{
    ACHILLES_CHECK(id < var_nodes_.size());
    return var_nodes_[id];
}

const VarInfo &
ExprContext::InfoOf(uint32_t var_id) const
{
    ACHILLES_CHECK(var_id < vars_.size());
    return vars_[var_id];
}

ExprRef
ExprContext::MakeBinary(Kind kind, ExprRef a, ExprRef b)
{
    // Canonical operand order for commutative operators: constants last,
    // otherwise structural order. Improves interning hit rate; using the
    // context-independent fingerprint (not pointer order) keeps the
    // canonical form identical across runs and across the per-worker
    // ExprContexts of the parallel exploration subsystem.
    if (IsCommutative(kind)) {
        if (a->IsConst() && !b->IsConst())
            std::swap(a, b);
        else if (a->IsConst() == b->IsConst() &&
                 StructuralCompare(b, a) < 0)
            std::swap(a, b);
    }
    return Intern(kind, a->width(), 0, {a, b});
}

ExprRef
ExprContext::MakeAdd(ExprRef a, ExprRef b)
{
    ACHILLES_CHECK(a->width() == b->width());
    if (a->IsConst() && b->IsConst())
        return MakeConst(a->width(), a->ConstValue() + b->ConstValue());
    if (b->IsConst() && b->ConstValue() == 0)
        return a;
    if (a->IsConst() && a->ConstValue() == 0)
        return b;
    return MakeBinary(Kind::kAdd, a, b);
}

ExprRef
ExprContext::MakeSub(ExprRef a, ExprRef b)
{
    ACHILLES_CHECK(a->width() == b->width());
    if (a->IsConst() && b->IsConst())
        return MakeConst(a->width(), a->ConstValue() - b->ConstValue());
    if (b->IsConst() && b->ConstValue() == 0)
        return a;
    if (a == b)
        return MakeConst(a->width(), 0);
    return Intern(Kind::kSub, a->width(), 0, {a, b});
}

ExprRef
ExprContext::MakeMul(ExprRef a, ExprRef b)
{
    ACHILLES_CHECK(a->width() == b->width());
    if (a->IsConst() && b->IsConst())
        return MakeConst(a->width(), a->ConstValue() * b->ConstValue());
    if (b->IsConst() && b->ConstValue() == 0)
        return b;
    if (a->IsConst() && a->ConstValue() == 0)
        return a;
    if (b->IsConst() && b->ConstValue() == 1)
        return a;
    if (a->IsConst() && a->ConstValue() == 1)
        return b;
    return MakeBinary(Kind::kMul, a, b);
}

ExprRef
ExprContext::MakeUDiv(ExprRef a, ExprRef b)
{
    ACHILLES_CHECK(a->width() == b->width());
    if (a->IsConst() && b->IsConst()) {
        // SMT-LIB: division by zero yields all-ones.
        const uint64_t d = b->ConstValue();
        return MakeConst(a->width(),
                         d == 0 ? WidthMask(a->width())
                                : a->ConstValue() / d);
    }
    if (b->IsConst() && b->ConstValue() == 1)
        return a;
    return Intern(Kind::kUDiv, a->width(), 0, {a, b});
}

ExprRef
ExprContext::MakeURem(ExprRef a, ExprRef b)
{
    ACHILLES_CHECK(a->width() == b->width());
    if (a->IsConst() && b->IsConst()) {
        // SMT-LIB: remainder by zero yields the dividend.
        const uint64_t d = b->ConstValue();
        return MakeConst(a->width(),
                         d == 0 ? a->ConstValue() : a->ConstValue() % d);
    }
    if (b->IsConst() && b->ConstValue() == 1)
        return MakeConst(a->width(), 0);
    return Intern(Kind::kURem, a->width(), 0, {a, b});
}

ExprRef
ExprContext::MakeNeg(ExprRef a)
{
    return MakeSub(MakeConst(a->width(), 0), a);
}

ExprRef
ExprContext::MakeAnd(ExprRef a, ExprRef b)
{
    ACHILLES_CHECK(a->width() == b->width());
    if (a->IsConst() && b->IsConst())
        return MakeConst(a->width(), a->ConstValue() & b->ConstValue());
    if (a == b)
        return a;
    const uint64_t mask = WidthMask(a->width());
    if (b->IsConst())
        return b->ConstValue() == 0 ? b
               : b->ConstValue() == mask ? a
               : MakeBinary(Kind::kAnd, a, b);
    if (a->IsConst())
        return a->ConstValue() == 0 ? a
               : a->ConstValue() == mask ? b
               : MakeBinary(Kind::kAnd, a, b);
    return MakeBinary(Kind::kAnd, a, b);
}

ExprRef
ExprContext::MakeOr(ExprRef a, ExprRef b)
{
    ACHILLES_CHECK(a->width() == b->width());
    if (a->IsConst() && b->IsConst())
        return MakeConst(a->width(), a->ConstValue() | b->ConstValue());
    if (a == b)
        return a;
    const uint64_t mask = WidthMask(a->width());
    if (b->IsConst())
        return b->ConstValue() == mask ? b
               : b->ConstValue() == 0 ? a
               : MakeBinary(Kind::kOr, a, b);
    if (a->IsConst())
        return a->ConstValue() == mask ? a
               : a->ConstValue() == 0 ? b
               : MakeBinary(Kind::kOr, a, b);
    return MakeBinary(Kind::kOr, a, b);
}

ExprRef
ExprContext::MakeXor(ExprRef a, ExprRef b)
{
    ACHILLES_CHECK(a->width() == b->width());
    if (a->IsConst() && b->IsConst())
        return MakeConst(a->width(), a->ConstValue() ^ b->ConstValue());
    if (a == b)
        return MakeConst(a->width(), 0);
    if (b->IsConst() && b->ConstValue() == 0)
        return a;
    if (a->IsConst() && a->ConstValue() == 0)
        return b;
    return MakeBinary(Kind::kXor, a, b);
}

ExprRef
ExprContext::MakeNot(ExprRef a)
{
    if (a->IsConst())
        return MakeConst(a->width(), ~a->ConstValue());
    if (a->kind() == Kind::kNot)
        return a->kid(0);
    return Intern(Kind::kNot, a->width(), 0, {a});
}

ExprRef
ExprContext::MakeShl(ExprRef a, ExprRef amount)
{
    ACHILLES_CHECK(a->width() == amount->width());
    if (amount->IsConst()) {
        const uint64_t s = amount->ConstValue();
        if (s == 0)
            return a;
        if (s >= a->width())
            return MakeConst(a->width(), 0);
        if (a->IsConst())
            return MakeConst(a->width(), a->ConstValue() << s);
    }
    return Intern(Kind::kShl, a->width(), 0, {a, amount});
}

ExprRef
ExprContext::MakeLShr(ExprRef a, ExprRef amount)
{
    ACHILLES_CHECK(a->width() == amount->width());
    if (amount->IsConst()) {
        const uint64_t s = amount->ConstValue();
        if (s == 0)
            return a;
        if (s >= a->width())
            return MakeConst(a->width(), 0);
        if (a->IsConst())
            return MakeConst(a->width(), a->ConstValue() >> s);
    }
    return Intern(Kind::kLShr, a->width(), 0, {a, amount});
}

ExprRef
ExprContext::MakeAShr(ExprRef a, ExprRef amount)
{
    ACHILLES_CHECK(a->width() == amount->width());
    if (amount->IsConst()) {
        const uint64_t s = amount->ConstValue();
        if (s == 0)
            return a;
        if (a->IsConst()) {
            const int64_t sv = SignExtendTo64(a->ConstValue(), a->width());
            const uint64_t shifted =
                s >= 63 ? static_cast<uint64_t>(sv < 0 ? -1 : 0)
                        : static_cast<uint64_t>(sv >> s);
            return MakeConst(a->width(), shifted);
        }
        if (s >= a->width()) {
            // Result is a sign-fill of the MSB.
            ExprRef msb = MakeExtract(a, a->width() - 1, 1);
            return MakeSExt(msb, a->width());
        }
    }
    return Intern(Kind::kAShr, a->width(), 0, {a, amount});
}

ExprRef
ExprContext::MakeConcat(ExprRef high, ExprRef low)
{
    const uint32_t width = high->width() + low->width();
    ACHILLES_CHECK(width <= 64, "concat width overflow");
    if (high->IsConst() && low->IsConst()) {
        return MakeConst(width, (high->ConstValue() << low->width()) |
                                    low->ConstValue());
    }
    if (high->IsConst() && high->ConstValue() == 0)
        return MakeZExt(low, width);
    // Reassemble adjacent extracts of the same source:
    // concat(extract[k+n:+m](x), extract[k:+n](x)) == extract[k:+n+m](x).
    if (high->kind() == Kind::kExtract && low->kind() == Kind::kExtract &&
        high->kid(0) == low->kid(0) &&
        high->aux() == low->aux() + low->width()) {
        return MakeExtract(low->kid(0), static_cast<uint32_t>(low->aux()),
                           width);
    }
    return Intern(Kind::kConcat, width, 0, {high, low});
}

ExprRef
ExprContext::MakeExtract(ExprRef a, uint32_t offset, uint32_t width)
{
    ACHILLES_CHECK(offset + width <= a->width(), "extract out of range");
    if (offset == 0 && width == a->width())
        return a;
    if (a->IsConst())
        return MakeConst(width, a->ConstValue() >> offset);
    if (a->kind() == Kind::kConcat) {
        ExprRef high = a->kid(0);
        ExprRef low = a->kid(1);
        if (offset + width <= low->width())
            return MakeExtract(low, offset, width);
        if (offset >= low->width())
            return MakeExtract(high, offset - low->width(), width);
    }
    if (a->kind() == Kind::kZExt) {
        ExprRef inner = a->kid(0);
        if (offset + width <= inner->width())
            return MakeExtract(inner, offset, width);
        if (offset >= inner->width())
            return MakeConst(width, 0);
    }
    if (a->kind() == Kind::kExtract)
        return MakeExtract(a->kid(0),
                           static_cast<uint32_t>(a->aux()) + offset, width);
    return Intern(Kind::kExtract, width, offset, {a});
}

ExprRef
ExprContext::MakeZExt(ExprRef a, uint32_t width)
{
    ACHILLES_CHECK(width >= a->width());
    if (width == a->width())
        return a;
    if (a->IsConst())
        return MakeConst(width, a->ConstValue());
    if (a->kind() == Kind::kZExt)
        return MakeZExt(a->kid(0), width);
    return Intern(Kind::kZExt, width, 0, {a});
}

ExprRef
ExprContext::MakeSExt(ExprRef a, uint32_t width)
{
    ACHILLES_CHECK(width >= a->width());
    if (width == a->width())
        return a;
    if (a->IsConst()) {
        return MakeConst(width, static_cast<uint64_t>(SignExtendTo64(
                                    a->ConstValue(), a->width())));
    }
    if (a->kind() == Kind::kSExt)
        return MakeSExt(a->kid(0), width);
    return Intern(Kind::kSExt, width, 0, {a});
}

ExprRef
ExprContext::MakeEq(ExprRef a, ExprRef b)
{
    ACHILLES_CHECK(a->width() == b->width());
    if (a == b)
        return True();
    if (a->IsConst() && b->IsConst())
        return MakeBool(a->ConstValue() == b->ConstValue());
    // Boolean special cases: (x == true) -> x, (x == false) -> !x.
    if (a->width() == 1) {
        if (b->IsConst())
            return b->ConstValue() ? a : MakeNot(a);
        if (a->IsConst())
            return a->ConstValue() ? b : MakeNot(b);
    }
    // kEq result width is 1, not the operand width, so it cannot reuse
    // MakeBinary -- but it must apply the same structural (not pointer)
    // canonical operand order.
    ExprRef lo = a, hi = b;
    if (lo->IsConst() && !hi->IsConst())
        std::swap(lo, hi);
    else if (lo->IsConst() == hi->IsConst() &&
             StructuralCompare(hi, lo) < 0)
        std::swap(lo, hi);
    return Intern(Kind::kEq, 1, 0, {lo, hi});
}

ExprRef
ExprContext::MakeUlt(ExprRef a, ExprRef b)
{
    ACHILLES_CHECK(a->width() == b->width());
    if (a == b)
        return False();
    if (a->IsConst() && b->IsConst())
        return MakeBool(a->ConstValue() < b->ConstValue());
    if (b->IsConst() && b->ConstValue() == 0)
        return False();
    if (a->IsConst() && a->ConstValue() == WidthMask(a->width()))
        return False();
    return Intern(Kind::kUlt, 1, 0, {a, b});
}

ExprRef
ExprContext::MakeUle(ExprRef a, ExprRef b)
{
    ACHILLES_CHECK(a->width() == b->width());
    if (a == b)
        return True();
    if (a->IsConst() && b->IsConst())
        return MakeBool(a->ConstValue() <= b->ConstValue());
    if (a->IsConst() && a->ConstValue() == 0)
        return True();
    if (b->IsConst() && b->ConstValue() == WidthMask(b->width()))
        return True();
    return Intern(Kind::kUle, 1, 0, {a, b});
}

ExprRef
ExprContext::MakeSlt(ExprRef a, ExprRef b)
{
    ACHILLES_CHECK(a->width() == b->width());
    if (a == b)
        return False();
    if (a->IsConst() && b->IsConst()) {
        return MakeBool(SignExtendTo64(a->ConstValue(), a->width()) <
                        SignExtendTo64(b->ConstValue(), b->width()));
    }
    return Intern(Kind::kSlt, 1, 0, {a, b});
}

ExprRef
ExprContext::MakeSle(ExprRef a, ExprRef b)
{
    ACHILLES_CHECK(a->width() == b->width());
    if (a == b)
        return True();
    if (a->IsConst() && b->IsConst()) {
        return MakeBool(SignExtendTo64(a->ConstValue(), a->width()) <=
                        SignExtendTo64(b->ConstValue(), b->width()));
    }
    return Intern(Kind::kSle, 1, 0, {a, b});
}

ExprRef
ExprContext::MakeIte(ExprRef cond, ExprRef then_e, ExprRef else_e)
{
    ACHILLES_CHECK(cond->width() == 1);
    ACHILLES_CHECK(then_e->width() == else_e->width());
    if (cond->IsConst())
        return cond->ConstValue() ? then_e : else_e;
    if (then_e == else_e)
        return then_e;
    if (then_e->width() == 1) {
        // (ite c 1 0) -> c; (ite c 0 1) -> !c.
        if (then_e->IsTrue() && else_e->IsFalse())
            return cond;
        if (then_e->IsFalse() && else_e->IsTrue())
            return MakeNot(cond);
    }
    return Intern(Kind::kIte, then_e->width(), 0, {cond, then_e, else_e});
}

ExprRef
ExprContext::MakeAndList(const std::vector<ExprRef> &conjuncts)
{
    ExprRef acc = True();
    for (ExprRef e : conjuncts) {
        ACHILLES_CHECK(e->width() == 1);
        acc = MakeAnd(acc, e);
        if (acc->IsFalse())
            return acc;
    }
    return acc;
}

ExprRef
ExprContext::MakeOrList(const std::vector<ExprRef> &disjuncts)
{
    ExprRef acc = False();
    for (ExprRef e : disjuncts) {
        ACHILLES_CHECK(e->width() == 1);
        acc = MakeOr(acc, e);
        if (acc->IsTrue())
            return acc;
    }
    return acc;
}

void
ExprContext::CollectVars(ExprRef e, std::unordered_set<uint32_t> *out) const
{
    // Iterative DFS with a visited set keyed by node pointer; the DAG can
    // be deep for CRC-style accumulation chains.
    std::vector<ExprRef> stack{e};
    std::unordered_set<const Expr *> seen;
    while (!stack.empty()) {
        ExprRef node = stack.back();
        stack.pop_back();
        if (!seen.insert(node).second)
            continue;
        if (node->IsVar())
            out->insert(node->VarId());
        for (ExprRef kid : node->kids())
            stack.push_back(kid);
    }
}

ExprRef
ExprContext::Substitute(ExprRef e,
                        const std::unordered_map<uint32_t, ExprRef> &map)
{
    std::unordered_map<const Expr *, ExprRef> memo;
    // Recursive lambda with explicit memoization.
    auto rec = [&](auto &&self, ExprRef node) -> ExprRef {
        auto it = memo.find(node);
        if (it != memo.end())
            return it->second;
        ExprRef result = node;
        if (node->IsVar()) {
            auto mit = map.find(node->VarId());
            if (mit != map.end()) {
                ACHILLES_CHECK(mit->second->width() == node->width(),
                               "substitution width mismatch");
                result = mit->second;
            }
        } else if (!node->kids().empty()) {
            std::vector<ExprRef> kids;
            kids.reserve(node->kids().size());
            bool changed = false;
            for (ExprRef kid : node->kids()) {
                ExprRef nk = self(self, kid);
                changed |= (nk != kid);
                kids.push_back(nk);
            }
            if (changed) {
                switch (node->kind()) {
                  case Kind::kAdd: result = MakeAdd(kids[0], kids[1]); break;
                  case Kind::kSub: result = MakeSub(kids[0], kids[1]); break;
                  case Kind::kMul: result = MakeMul(kids[0], kids[1]); break;
                  case Kind::kUDiv:
                    result = MakeUDiv(kids[0], kids[1]);
                    break;
                  case Kind::kURem:
                    result = MakeURem(kids[0], kids[1]);
                    break;
                  case Kind::kAnd: result = MakeAnd(kids[0], kids[1]); break;
                  case Kind::kOr: result = MakeOr(kids[0], kids[1]); break;
                  case Kind::kXor: result = MakeXor(kids[0], kids[1]); break;
                  case Kind::kNot: result = MakeNot(kids[0]); break;
                  case Kind::kShl: result = MakeShl(kids[0], kids[1]); break;
                  case Kind::kLShr:
                    result = MakeLShr(kids[0], kids[1]);
                    break;
                  case Kind::kAShr:
                    result = MakeAShr(kids[0], kids[1]);
                    break;
                  case Kind::kConcat:
                    result = MakeConcat(kids[0], kids[1]);
                    break;
                  case Kind::kExtract:
                    result = MakeExtract(kids[0],
                                         static_cast<uint32_t>(node->aux()),
                                         node->width());
                    break;
                  case Kind::kZExt:
                    result = MakeZExt(kids[0], node->width());
                    break;
                  case Kind::kSExt:
                    result = MakeSExt(kids[0], node->width());
                    break;
                  case Kind::kEq: result = MakeEq(kids[0], kids[1]); break;
                  case Kind::kUlt: result = MakeUlt(kids[0], kids[1]); break;
                  case Kind::kUle: result = MakeUle(kids[0], kids[1]); break;
                  case Kind::kSlt: result = MakeSlt(kids[0], kids[1]); break;
                  case Kind::kSle: result = MakeSle(kids[0], kids[1]); break;
                  case Kind::kIte:
                    result = MakeIte(kids[0], kids[1], kids[2]);
                    break;
                  default:
                    ACHILLES_UNREACHABLE("substitute: bad kind");
                }
            }
        }
        memo.emplace(node, result);
        return result;
    };
    return rec(rec, e);
}

std::string
ExprContext::ToString(ExprRef e) const
{
    std::ostringstream os;
    auto rec = [&](auto &&self, ExprRef node, int depth) -> void {
        if (depth > 64) {
            os << "...";
            return;
        }
        switch (node->kind()) {
          case Kind::kConst:
            os << node->ConstValue() << ":" << node->width();
            return;
          case Kind::kVar:
            os << InfoOf(node->VarId()).name;
            return;
          case Kind::kExtract:
            os << "(extract[" << node->aux() << ":+" << node->width()
               << "] ";
            self(self, node->kid(0), depth + 1);
            os << ")";
            return;
          default:
            os << "(" << KindName(node->kind());
            if (node->kind() == Kind::kZExt || node->kind() == Kind::kSExt)
                os << node->width();
            for (ExprRef kid : node->kids()) {
                os << " ";
                self(self, kid, depth + 1);
            }
            os << ")";
            return;
        }
    };
    rec(rec, e, 0);
    return os.str();
}

}  // namespace smt
}  // namespace achilles
