// Achilles reproduction -- SMT library.
//
// Bit-blasting of bitvector expressions to CNF over a SatSolver, the way
// STP lowers QF_BV queries. Each expression node maps to a little-endian
// vector of SAT literals; gates are Tseitin-encoded with structural
// hashing at both the expression level (hash-consed DAG) and the gate
// level (AND/OR/XOR gate cache).

#ifndef ACHILLES_SMT_BITBLAST_H_
#define ACHILLES_SMT_BITBLAST_H_

#include <unordered_map>
#include <vector>

#include "smt/eval.h"
#include "smt/expr.h"
#include "smt/sat.h"

namespace achilles {
namespace smt {

/**
 * Incremental bit-blaster.
 *
 * Owns the mapping from expression nodes to literal vectors. Multiple
 * assertions may be blasted into the same SatSolver; shared sub-DAGs are
 * encoded once.
 */
class BitBlaster
{
  public:
    explicit BitBlaster(SatSolver *solver);

    /** Assert a width-1 expression as a unit constraint. */
    void AssertTrue(ExprRef e);

    /**
     * Retractable assertion: return an activation literal g with the
     * guard clause (¬g ∨ e) added, so solving under assumption g
     * enforces e while leaving it inert otherwise. Memoized per node --
     * the backbone of the incremental Solver backend, which re-asserts
     * the same path-constraint prefixes across thousands of queries.
     */
    Lit ActivationLit(ExprRef e);

    /**
     * Blast an expression, returning its literals (LSB first). Public so
     * tests can inspect encodings.
     */
    const std::vector<Lit> &Blast(ExprRef e);

    /**
     * Read back a symbolic variable's value from the solver's model.
     * Returns zero for variables that never reached the solver
     * (don't-cares).
     */
    uint64_t VarValueFromModel(uint32_t var_id) const;

    /** Extract a full model for the given variables. */
    Model ExtractModel(const std::vector<uint32_t> &var_ids) const;

    /** True literal (always-satisfied). */
    Lit TrueLit() const { return true_lit_; }

  private:
    Lit NewLit();
    Lit AndGate(Lit a, Lit b);
    Lit OrGate(Lit a, Lit b);
    Lit XorGate(Lit a, Lit b);
    Lit MuxGate(Lit sel, Lit then_l, Lit else_l);
    Lit EqGate(Lit a, Lit b) { return ~XorGate(a, b); }
    /** (sum, carry) of a full adder. */
    std::pair<Lit, Lit> FullAdder(Lit a, Lit b, Lit cin);

    std::vector<Lit> BlastNode(ExprRef e);
    std::vector<Lit> AddVectors(const std::vector<Lit> &a,
                                const std::vector<Lit> &b, Lit cin);
    Lit UltVector(const std::vector<Lit> &a, const std::vector<Lit> &b);
    std::vector<Lit> ShiftVector(Kind kind, const std::vector<Lit> &in,
                                 const std::vector<Lit> &amount);
    void DivRem(const std::vector<Lit> &a, const std::vector<Lit> &b,
                std::vector<Lit> *quotient, std::vector<Lit> *remainder);

    bool IsTrueLit(Lit l) const { return l == true_lit_; }
    bool IsFalseLit(Lit l) const { return l == ~true_lit_; }
    Lit ConstLit(bool b) const { return b ? true_lit_ : ~true_lit_; }

    SatSolver *solver_;
    Lit true_lit_;
    std::unordered_map<const Expr *, std::vector<Lit>> memo_;
    std::unordered_map<const Expr *, Lit> guard_memo_;
    std::unordered_map<uint32_t, std::vector<Lit>> var_bits_;
    // Gate CSE cache: key = (kind tag, lit codes).
    std::unordered_map<uint64_t, Lit> gate_cache_;
};

}  // namespace smt
}  // namespace achilles

#endif  // ACHILLES_SMT_BITBLAST_H_
