// Achilles reproduction -- SMT library.

#include "smt/eval.h"

#include <vector>

namespace achilles {
namespace smt {

namespace {

uint64_t
EvalNode(ExprRef e, const Model &model,
         std::unordered_map<const Expr *, uint64_t> &memo)
{
    auto it = memo.find(e);
    if (it != memo.end())
        return it->second;

    const uint64_t mask = WidthMask(e->width());
    auto kid = [&](size_t i) { return EvalNode(e->kid(i), model, memo); };

    uint64_t result = 0;
    switch (e->kind()) {
      case Kind::kConst:
        result = e->ConstValue();
        break;
      case Kind::kVar:
        result = model.Get(e->VarId()) & mask;
        break;
      case Kind::kAdd:
        result = kid(0) + kid(1);
        break;
      case Kind::kSub:
        result = kid(0) - kid(1);
        break;
      case Kind::kMul:
        result = kid(0) * kid(1);
        break;
      case Kind::kUDiv: {
        const uint64_t d = kid(1);
        result = d == 0 ? mask : kid(0) / d;
        break;
      }
      case Kind::kURem: {
        const uint64_t d = kid(1);
        result = d == 0 ? kid(0) : kid(0) % d;
        break;
      }
      case Kind::kAnd:
        result = kid(0) & kid(1);
        break;
      case Kind::kOr:
        result = kid(0) | kid(1);
        break;
      case Kind::kXor:
        result = kid(0) ^ kid(1);
        break;
      case Kind::kNot:
        result = ~kid(0);
        break;
      case Kind::kShl: {
        const uint64_t s = kid(1);
        result = s >= e->width() ? 0 : kid(0) << s;
        break;
      }
      case Kind::kLShr: {
        const uint64_t s = kid(1);
        result = s >= e->width() ? 0 : (kid(0) & mask) >> s;
        break;
      }
      case Kind::kAShr: {
        const uint64_t s = kid(1);
        const int64_t sv = SignExtendTo64(kid(0), e->width());
        result = s >= 63 ? static_cast<uint64_t>(sv < 0 ? -1 : 0)
                         : static_cast<uint64_t>(sv >> s);
        break;
      }
      case Kind::kConcat:
        result = (kid(0) << e->kid(1)->width()) | (kid(1) &
                 WidthMask(e->kid(1)->width()));
        break;
      case Kind::kExtract:
        result = kid(0) >> e->aux();
        break;
      case Kind::kZExt:
        result = kid(0) & WidthMask(e->kid(0)->width());
        break;
      case Kind::kSExt:
        result = static_cast<uint64_t>(
            SignExtendTo64(kid(0), e->kid(0)->width()));
        break;
      case Kind::kEq: {
        const uint32_t kw = e->kid(0)->width();
        result = ((kid(0) & WidthMask(kw)) == (kid(1) & WidthMask(kw)))
                     ? 1 : 0;
        break;
      }
      case Kind::kUlt: {
        const uint32_t kw = e->kid(0)->width();
        result = ((kid(0) & WidthMask(kw)) < (kid(1) & WidthMask(kw)))
                     ? 1 : 0;
        break;
      }
      case Kind::kUle: {
        const uint32_t kw = e->kid(0)->width();
        result = ((kid(0) & WidthMask(kw)) <= (kid(1) & WidthMask(kw)))
                     ? 1 : 0;
        break;
      }
      case Kind::kSlt: {
        const uint32_t kw = e->kid(0)->width();
        result = (SignExtendTo64(kid(0), kw) < SignExtendTo64(kid(1), kw))
                     ? 1 : 0;
        break;
      }
      case Kind::kSle: {
        const uint32_t kw = e->kid(0)->width();
        result = (SignExtendTo64(kid(0), kw) <= SignExtendTo64(kid(1), kw))
                     ? 1 : 0;
        break;
      }
      case Kind::kIte:
        result = kid(0) ? kid(1) : kid(2);
        break;
    }
    result &= mask;
    memo.emplace(e, result);
    return result;
}

}  // namespace

uint64_t
Evaluate(ExprRef e, const Model &model)
{
    std::unordered_map<const Expr *, uint64_t> memo;
    return EvalNode(e, model, memo);
}

}  // namespace smt
}  // namespace achilles
