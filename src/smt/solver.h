// Achilles reproduction -- SMT library.
//
// Solver facade: the QF_BV decision procedure used by every other layer
// (symbolic execution feasibility checks, negate-operator overlap checks,
// differentFrom precomputation, Trojan queries). Combines a fast interval
// pre-check with bit-blasting + CDCL, plus a query cache, standing in for
// the STP/Z3 usage in the paper.

#ifndef ACHILLES_SMT_SOLVER_H_
#define ACHILLES_SMT_SOLVER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obs/obs.h"
#include "smt/eval.h"
#include "smt/expr.h"
#include "smt/sat.h"
#include "support/stats.h"

namespace achilles {
namespace smt {

/** Status of a satisfiability query. */
enum class CheckStatus : uint8_t { kSat, kUnsat, kUnknown };

/**
 * Outcome of a satisfiability query: the status plus, for kUnsat
 * answers decided by the incremental assumption-based backend, the
 * unsat core mapped back to the caller's assertion indices.
 *
 * Core indexing: CheckSat(assertions) uses positions into `assertions`;
 * CheckSatAssuming(base, extras) indexes base first, then extras offset
 * by base.size(). Duplicated assertions report their first occurrence.
 * `has_core` distinguishes "no core information" (fresh-instance or
 * interval answers, cache entries recorded without one) from a genuine
 * core; an empty core with has_core set means the query is
 * unsatisfiable regardless of the assertions (cannot arise from
 * guarded assertions, but callers must treat it as "everything is
 * implicated"). Cores never accompany kSat/kUnknown: budgeted and
 * model-producing queries bypass the incremental backend entirely, so
 * core-guided callers can never confuse an undecided answer with a
 * refutation.
 *
 * The struct is source-compatible with the old `enum CheckResult`:
 * `CheckResult::kSat` still names the status constant and comparisons
 * against a CheckStatus compare the status only.
 */
struct CheckResult
{
    CheckStatus status = CheckStatus::kUnknown;
    bool has_core = false;
    /** Caller assertion indices implicated in the refutation, ascending. */
    std::vector<uint32_t> core;

    CheckResult() = default;
    /*implicit*/ CheckResult(CheckStatus s) : status(s) {}

    static constexpr CheckStatus kSat = CheckStatus::kSat;
    static constexpr CheckStatus kUnsat = CheckStatus::kUnsat;
    static constexpr CheckStatus kUnknown = CheckStatus::kUnknown;

    friend bool operator==(const CheckResult &r, CheckStatus s)
    {
        return r.status == s;
    }
    friend bool operator==(CheckStatus s, const CheckResult &r)
    {
        return r.status == s;
    }
    friend bool operator!=(const CheckResult &r, CheckStatus s)
    {
        return r.status != s;
    }
    friend bool operator!=(CheckStatus s, const CheckResult &r)
    {
        return r.status != s;
    }
    /** Two outcomes are equal iff their statuses agree: the core is an
     *  explanation of a kUnsat verdict, not part of the verdict (the
     *  same query answers kUnsat with or without core extraction). */
    friend bool operator==(const CheckResult &a, const CheckResult &b)
    {
        return a.status == b.status;
    }
    friend bool operator!=(const CheckResult &a, const CheckResult &b)
    {
        return a.status != b.status;
    }
};

const char *CheckResultName(CheckStatus s);
inline const char *
CheckResultName(const CheckResult &r)
{
    return CheckResultName(r.status);
}

/**
 * Context-independent identity of an assertion for the cross-solver
 * lemma exchange: the expression's (struct_hash, struct_hash2) pair,
 * the same 128-bit structural fingerprint the shared query cache keys
 * on. Id-aligned worker contexts produce identical fingerprints for
 * identical assertions, which is what makes a lemma portable.
 */
using LemmaFingerprint = std::pair<uint64_t, uint64_t>;

/**
 * Receives short refutation lemmas exported by a solver's incremental
 * backend. A lemma is the sorted fingerprint set of guarded assertions
 * whose conjunction the backend proved unsatisfiable (from an all-guard
 * learnt clause or a short final unsat core); it is an implied fact
 * about the expressions themselves, so any solver over id-aligned
 * variables may import it. Implementations must be thread-safe: the
 * export fires from inside SAT search on whatever thread runs the
 * solver.
 */
class ClauseSink
{
  public:
    virtual ~ClauseSink() = default;
    virtual void PublishLemma(const std::vector<LemmaFingerprint> &lemma) = 0;
};

/**
 * Supplies lemmas published by sibling solvers. Each source instance
 * serves exactly one consumer and keeps its own cursor: FetchLemmas
 * appends only lemmas it has not handed out before.
 */
class ClauseSource
{
  public:
    virtual ~ClauseSource() = default;
    virtual void
    FetchLemmas(std::vector<std::vector<LemmaFingerprint>> *out) = 0;
};

/**
 * Stream-level conflict budgeting: a decaying per-query budget with
 * carry-forward of unspent conflicts, replacing the flat per-query
 * `max_conflicts` for bounded query streams (refinement's per-witness
 * re-checks). Early queries in a stream get generous budgets; the base
 * decays geometrically toward `floor`, and whatever a decided query
 * leaves unspent partially rolls into the next query's budget, so one
 * hard query late in the stream can still draw on the stream's savings
 * instead of being cut off by a flat cap. Undecided (kUnknown) queries
 * forfeit their budget -- carrying it would reward exhaustion.
 */
struct StreamBudget
{
    /** Initial per-query conflict budget; < 0 disables stream
     *  budgeting (the flat `max_conflicts` then applies unchanged). */
    int64_t base = -1;
    /** Geometric decay of the base after every budgeted solve. */
    double decay = 1.0;
    /** The decayed base never drops below this floor. */
    int64_t floor = 1;
    /** Fraction of a decided query's unspent conflicts carried into
     *  the next query's budget. */
    double carry = 0.5;
    /** Cap on the carried amount; < 0 means uncapped. */
    int64_t carry_cap = -1;

    bool enabled() const { return base >= 0; }
};

/**
 * Query classes of the portfolio dispatcher, ordered roughly by
 * expected hardness. Classification is a pure function of cheap,
 * structure-only features (QueryFeatures), so any two solvers seeing
 * the same query in the same stream state agree on the class.
 */
enum class QueryClass : uint8_t
{
    kTrivial,    // tiny live set, shallow terms: interval usually ends it
    kShallow,    // modest depth: interval-first, skip core minimization
    kDeep,       // deep arithmetic terms: SAT-first, Luby restarts
    kStraggler,  // stream is burning budget: race two configurations
};
constexpr int kNumQueryClasses = 4;
const char *QueryClassName(QueryClass c);

/** Cheap per-query features the classifier buckets on. */
struct QueryFeatures
{
    /** Max expression depth over the live assertions, saturated at
     *  kDepthSaturation (each root's DFS visits at most kDepthVisitCap
     *  nodes, so one walk is O(1) on huge DAGs -- and the dispatch
     *  path memoizes per-root results, so repeated roots are a hash
     *  lookup). */
    uint32_t depth = 0;
    /** Number of live (non-trivial, deduplicated) assertions. */
    uint32_t live_count = 0;
    /** The previous PruneIndex probe was a near-miss (prefix matched,
     *  no subsuming core): the query resembles known-hard territory. */
    bool prune_near_miss = false;
    /** Rolling kUnknown fraction of this solver's solved stream. */
    double unknown_rate = 0.0;
    /** Rolling mean SAT conflicts per solved query on this stream. */
    double conflict_rate = 0.0;

    /** One past the deepest threshold Classify() distinguishes (4 and
     *  8): any depth >= 9 buckets identically, so the DFS stops
     *  descending there instead of measuring depth it cannot use. */
    static constexpr uint32_t kDepthSaturation = 9;
    static constexpr uint32_t kDepthVisitCap = 256;
};

/** Per-class strategy the dispatcher applies to one query. */
struct QueryStrategy
{
    /** Run the interval UNSAT pre-check before the SAT backend. */
    bool interval_first = true;
    /** Deletion-minimize unsat cores (incremental path only). */
    bool minimize_core = true;
    /** On a budget-exhausted fresh-path kUnknown, re-run the query
     *  once under `race_sat` (sequential-deterministic racing: fixed
     *  arm order, first decided verdict wins). */
    bool race = false;
    /** CDCL parameter preset for the first (or only) arm. */
    SatParams sat;
    /** Preset for the racing arm. */
    SatParams race_sat;
};

/** Tunables for the solver facade. */
struct SolverConfig
{
    /** Run the interval UNSAT pre-check before bit-blasting. */
    bool use_interval_check = true;
    /** Conflict budget for the SAT search; < 0 means unlimited. */
    int64_t max_conflicts = -1;
    /**
     * Stream-level conflict budgets (see StreamBudget). When enabled,
     * takes precedence over the flat `max_conflicts`: every solve runs
     * on the deterministic fresh-instance path under the stream's
     * current budget, and kUnknown keeps its conservative meaning (a
     * budgeted answer never drops predicates or carries a core).
     */
    StreamBudget stream_budget;
    /** Re-evaluate every assertion under each SAT model (cheap; catches
     *  encoder bugs -- a model that fails validation is a panic). */
    bool validate_models = true;
    /**
     * Keep the last satisfying assignment standing across queries and
     * expose it through StandingModel(). The facade merges each kSat
     * answer's variable values into one rolling Model (incremental-path
     * answers lazily, on first StandingModel() read; fresh-path answers
     * eagerly, since their model is already extracted). Consumers use
     * it for concrete pre-filtering: evaluating a predicate under any
     * total concrete assignment that satisfies it is a proof of kSat
     * with zero solver work. Staleness is harmless -- a stale or merged
     * model can only fail to satisfy a satisfiable predicate (lowering
     * the hit rate), never satisfy an unsatisfiable one. Near-free when
     * unread; flip off to pin memory on huge variable spaces.
     */
    bool retain_models = true;
    /** Memoize query results keyed by the assertion set. */
    bool enable_cache = true;
    /**
     * Reuse one persistent SatSolver + BitBlaster across queries: CNF is
     * memoized per expression node, each assertion is guarded by an
     * activation literal, queries solve under assumptions, and learned
     * clauses carry over (capped by ReduceDB). Only model-less,
     * unlimited-budget queries take this path: model-producing queries
     * solve a fresh instance whose CNF numbering (and therefore model)
     * is a pure function of the structurally sorted query, and
     * budget-limited queries (flat max_conflicts >= 0 or an enabled
     * stream_budget) do too, so that the kUnsat/kUnknown boundary
     * never depends on the learned clauses of earlier queries. Together these keep results and witness bytes
     * bitwise deterministic across runs, worker counts and query
     * history.
     */
    bool enable_incremental = true;
    /**
     * Extract unsat cores over assumptions on the incremental path and
     * expose them through CheckResult. Extraction itself is one
     * analyze-final walk over the final conflict's implication graph
     * (near-free); consumers use cores to drop every assertion set a
     * refutation transitively implicates (core-guided predicate
     * dropping in the server explorer, witness-check reuse in
     * refinement).
     */
    bool enable_cores = true;
    /**
     * Additionally minimize each core by deletion (re-solving the core
     * minus each member until a fixpoint). Minimal cores transfer to
     * more sibling queries, which is what makes core-guided dropping
     * pay; the probes run on the already-learned incremental instance
     * and are cheap. Only applies when enable_cores is set.
     */
    bool minimize_cores = true;
    /**
     * Reset threshold for the incremental backend. A SAT verdict must
     * extend to a full assignment over every variable ever blasted into
     * the persistent instance, so per-query cost grows with accumulated
     * CNF; once the instance exceeds this many SAT variables it is
     * dropped and rebuilt from the next query's expressions. Dense
     * streams of related queries (the Trojan/match loops) stay far
     * below the cap between resets; heterogeneous pipeline phases reset
     * a handful of times instead of dragging dead CNF along.
     */
    uint32_t incremental_max_vars = 65536;
    /**
     * Assumption-prefix trail reuse in the incremental backend: keep
     * the SAT trail segment for the longest common assumption prefix
     * between consecutive solves instead of re-establishing the whole
     * stack per query. Pure acceleration -- verdicts are unchanged;
     * only the search path (and therefore which equally-valid core is
     * reported) may differ.
     */
    bool enable_trail_reuse = true;
    /**
     * Cross-solver learned-clause exchange. When a sink is set, the
     * incremental backend exports short refutation lemmas (all-guard
     * learnt clauses and ≤2-literal unsat cores over assertions whose
     * variables all lie in the designated shared prefix, i.e.
     * max_var_bound <= clause_share_var_limit) as structural
     * fingerprints. When a source is set, lemmas published by siblings
     * are imported as permanent clauses over this solver's own
     * activation literals once the implicated assertions are guarded
     * here. Imported lemmas are implied, so verdicts never flip; they
     * only steer CDCL to the refutation faster. Witness bytes stay
     * deterministic because models are always produced by the
     * exchange-free fresh-instance path. Both pointers must outlive the
     * solver; the exec layer wires them to the lock-striped
     * exec::ClauseExchange pool.
     */
    ClauseSink *clause_sink = nullptr;
    ClauseSource *clause_source = nullptr;
    uint32_t clause_share_var_limit = 0;
    /**
     * Master switch for wiring the parallel engine's clause exchange
     * (exec/worker.cc creates the shared pool and per-worker channels
     * only when set). The sink/source pointers above are the mechanism;
     * this is the ablation toggle benches and tests flip.
     */
    bool share_learned_clauses = true;
    /**
     * Cap on the shared lemma pool's live entries (<= 0 = unbounded).
     * The pool is append-only within the cap; beyond it the oldest
     * lemma is evicted (and may re-earn its slot by being re-derived),
     * bounding the exchange's memory for long-running service
     * deployments. Evicting a lemma only costs siblings a potential
     * acceleration -- lemmas are implied facts, so verdicts and witness
     * bytes are unaffected by any cap.
     */
    int64_t lemma_pool_cap = 16384;
    /**
     * Observability sinks (src/obs/obs.h): when the registry is set the
     * solver bumps live per-lane counters/distributions next to its
     * merge-at-join stats bag; when the tracer is set every
     * CheckSat/CheckSatAssuming records one span on the lane's track,
     * annotated with conflicts spent, verdict, core size and stream
     * budget drawn. Default (both null) leaves a single branch per
     * query -- instrumentation is provably inert (witness sets are
     * bitwise identical obs on/off; see tests/test_obs.cc).
     */
    obs::ObsHandle obs;
    /**
     * Base CDCL parameter set (see SatParams). Applied to every SAT
     * instance the facade builds -- fresh and incremental alike -- so a
     * uniform override stays deterministic across runs and worker
     * counts. The defaults reproduce the historical solver bit-exactly.
     */
    SatParams sat_params;
    /**
     * Portfolio dispatch: classify each model-less query by cheap
     * features (QueryFeatures) and run the class's tuned strategy
     * (interval-first vs SAT-first order, core minimization on/off,
     * SatParams preset, and -- on budgeted fresh-path stragglers --
     * sequential-deterministic racing of a second configuration).
     *
     * Witness identity is preserved by construction: model-producing
     * queries always bypass the dispatcher and solve on the default
     * fresh path, unbudgeted verdicts are strategy-independent (every
     * preset is a complete search), and raced budgeted queries settle
     * their stream budget as undecided regardless of the race outcome,
     * so the budget trajectory -- and with it every downstream
     * kUnsat/kUnknown boundary -- is bitwise identical portfolio on or
     * off; a race can only upgrade a kUnknown to the verdict the query
     * truly has. kUnknown conservatism stays gated by unbudgeted() as
     * before.
     */
    bool portfolio = false;

    /** True when queries run with no conflict budget of either kind --
     *  the precondition for the incremental backend and for every
     *  unsat-core consumer (nothing may be dropped on kUnknown). */
    bool
    unbudgeted() const
    {
        return max_conflicts < 0 && !stream_budget.enabled();
    }
};

/**
 * Outcome of a batched satisfiability sweep (Solver::CheckSatBatch):
 * one verdict per guard group, in the caller's group order, plus the
 * number of SAT search rounds the sweep actually ran (the query-stream
 * compression the batch bought: rounds <= groups answered).
 *
 * Batch verdicts never carry unsat cores -- a sweep-wide refutation
 * implicates the whole pending set, not a per-group explanation -- so
 * core-guided consumers must treat batch kUnsat answers as core-less
 * (the has_core flag says exactly that). kUnknown keeps its
 * conservative meaning per group: budget exhaustion mid-sweep leaves
 * every unanswered group kUnknown, never a wrong verdict.
 */
struct BatchOutcome
{
    std::vector<CheckResult> verdicts;
    int64_t rounds = 0;
};

class Lit;

/**
 * The decision procedure facade.
 *
 * Holds state across queries: the memo cache, the incremental backend
 * (a persistent SAT instance reused for all model-less queries; see
 * SolverConfig::enable_incremental), the lemma archive fetched from a
 * ClauseSource, and the stream-budget running balance. The Achilles
 * search generates thousands of small queries sharing path-constraint
 * prefixes, so reusing CNF, learned clauses and established assumption
 * trails across the stream is the dominant speed lever.
 *
 * CheckSat/CheckSatAssuming are virtual so decorators can interpose
 * (the parallel exploration subsystem wraps each worker's solver with a
 * shared cross-worker query cache, see exec/query_cache.h). A Solver
 * instance is not thread-safe; parallel exploration gives each worker
 * its own.
 */
class Solver
{
  public:
    explicit Solver(ExprContext *ctx, SolverConfig config = {});
    virtual ~Solver();

    /**
     * Check satisfiability of the conjunction of `assertions`.
     * On kSat and non-null `model`, fills `model` with values for every
     * variable occurring in the assertions; on every other outcome a
     * non-null `model` is cleared (callers may reuse one Model object
     * across queries without reading stale values).
     */
    virtual CheckResult CheckSat(const std::vector<ExprRef> &assertions,
                                 Model *model = nullptr);

    /**
     * Check satisfiability of base ∧ extras. Semantically identical to
     * CheckSat on the concatenation; the split spells out the
     * shared-prefix query streams of the server explorer (one pathS
     * asserted per state, many ¬pathC_i iterated against it), which the
     * incremental backend turns into assumption flips over memoized
     * CNF.
     */
    virtual CheckResult CheckSatAssuming(const std::vector<ExprRef> &base,
                                         const std::vector<ExprRef> &extras,
                                         Model *model = nullptr);

    /**
     * Batched all-sat sweep: answer "is base ∧ AND(*groups[i])
     * satisfiable?" for every group in one pass. Semantically identical
     * to calling CheckSatAssuming(base, *groups[i]) per group; on the
     * unbudgeted incremental path the verdicts are enumerated from a
     * single search tree (activation-literal representatives steered by
     * throwaway selectors, see SatSolver::SolveBatch) instead of
     * |groups| independent calls. Budgeted or incremental-off
     * configurations fall back to the per-group loop, where kUnknown
     * stays conservative per group. Verdicts never carry cores (see
     * BatchOutcome); memo-cache hits still answer individual groups
     * before any solving, and decided verdicts are cached for later
     * point queries.
     */
    virtual BatchOutcome
    CheckSatBatch(const std::vector<ExprRef> &base,
                  const std::vector<const std::vector<ExprRef> *> &groups);

    /**
     * The rolling satisfying assignment left standing by past kSat
     * answers, or nullptr when none exists yet (or retain_models is
     * off). The referenced Model is owned by the solver and valid until
     * the next Check* call. It is a genuine concrete assignment --
     * every value either came from a SAT model or defaults to zero --
     * so any assertion that evaluates true under it is satisfiable;
     * nothing follows from evaluating false.
     */
    const Model *StandingModel();

    /** Convenience overload for a single (possibly And-tree) assertion. */
    CheckResult CheckSatExpr(ExprRef e, Model *model = nullptr);

    /** True iff the conjunction is satisfiable (kUnknown -> false). */
    bool
    IsSat(const std::vector<ExprRef> &assertions)
    {
        return CheckSat(assertions) == CheckResult::kSat;
    }

    ExprContext *ctx() { return ctx_; }
    const SolverConfig &config() const { return config_; }
    const StatsRegistry &stats() const
    {
        FlushClassCounters();
        return stats_;
    }
    StatsRegistry *mutable_stats()
    {
        FlushClassCounters();
        return &stats_;
    }

    /**
     * Hint from a knowledge-base consumer (the explorer's PruneIndex
     * probe loop): the upcoming query resembled a stored refutation but
     * was not subsumed by it. The portfolio classifier treats the next
     * query as one class harder. Purely advisory -- it can only steer
     * search order, never verdicts.
     */
    void NotePruneNearMiss() { prune_near_miss_ = true; }

    // -- Portfolio classification (static: unit-testable, and provably
    //    context-independent -- the features depend only on the live
    //    assertion structure and the caller-supplied stream rates). ----

    /**
     * Per-root depth memo: a term's depth is a pure structural
     * property of the expression DAG, so caching it per node is sound
     * for the node's lifetime (nodes are owned by the ExprContext and
     * outlive the solver). Entries are only ever looked up by key --
     * never ordered or iterated -- so pointer keys cannot leak
     * address order into behavior.
     */
    using DepthMemo = std::unordered_map<ExprRef, uint32_t>;

    /**
     * Extract the classifier features for a canonical live set. With
     * `depth_memo` the per-root depth walks are cached across calls
     * (the dispatch hot path passes the solver's memo: live sets
     * share prefix terms across thousands of stream queries);
     * without, every root is walked fresh -- same values either way.
     */
    static QueryFeatures ExtractFeatures(const std::vector<ExprRef> &live,
                                         bool prune_near_miss,
                                         double unknown_rate,
                                         double conflict_rate,
                                         DepthMemo *depth_memo = nullptr);
    /** Bucket features into a class. */
    static QueryClass Classify(const QueryFeatures &features);
    /** The tuned strategy for a class, derived from `base` params. */
    static QueryStrategy StrategyFor(QueryClass c, const SatParams &base);

  protected:
    /**
     * Shared workhorse for subclasses: canonicalize, consult the memo
     * cache, dispatch to the interval check and the incremental or
     * fresh-instance backend. `extras` may be null.
     */
    CheckResult CheckSatSets(const std::vector<ExprRef> &base,
                             const std::vector<ExprRef> *extras,
                             Model *model);

  private:
    struct CacheEntry
    {
        CheckStatus status;
        /** False for kSat entries produced by the model-less incremental
         *  path; such hits cannot serve model-requesting callers and are
         *  upgraded in place by a fresh-instance solve. */
        bool has_model;
        Model model;
        /** Unsat core in canonical (live-vector) indices; kUnsat entries
         *  from the fresh-instance path carry none. */
        bool has_core = false;
        std::vector<uint32_t> core;
    };
    struct AssertionsHash
    {
        size_t operator()(const std::vector<ExprRef> &assertions) const;
    };
    struct IncrementalBackend;

    /** Canonical form: live (non-trivial) assertions, structurally
     *  sorted and deduplicated, plus per-live-entry indices into the
     *  caller's base∥extras concatenation (first occurrence wins).
     *  Returns false on a trivially-false assertion, reporting its
     *  caller index through `false_index`. */
    bool Canonicalize(const std::vector<ExprRef> &base,
                      const std::vector<ExprRef> *extras,
                      std::vector<ExprRef> *live,
                      std::vector<uint32_t> *caller_index,
                      uint32_t *false_index) const;

    /** `strategy` is non-null only for portfolio-dispatched (model-less)
     *  queries; model-producing solves always run the default preset so
     *  witness bytes stay a pure function of the canonical query. */
    CheckStatus SolveFresh(const std::vector<ExprRef> &live,
                           Model *out_model,
                           const QueryStrategy *strategy = nullptr);
    /** Returns the status plus, on kUnsat with cores enabled, the core
     *  as indices into `live`. */
    CheckStatus SolveIncremental(const std::vector<ExprRef> &live,
                                 bool *has_core,
                                 std::vector<uint32_t> *core,
                                 const QueryStrategy *strategy = nullptr);

    /** Reset-or-build the persistent incremental instance: drops it
     *  past incremental_max_vars (flushing the standing model first --
     *  the SAT assignment dies with the instance) and (re)creates it
     *  with the lemma-export hook wired. */
    void EnsureIncrementalBackend();
    /** Guard every assertion of `live` in the incremental backend,
     *  appending one activation literal each to `assumptions` and
     *  maintaining the lemma-exchange anchors. Returns true when any
     *  assertion was guarded for the first time. */
    bool GuardAssertions(const std::vector<ExprRef> &live,
                         std::vector<Lit> *assumptions);
    /** Pull newly published lemmas from the clause source and install
     *  every anchorable one (skipped entirely without a source). */
    void SyncLemmaExchange(bool new_guards);
    /** Fold the persistent instance's cumulative SAT counters into this
     *  solver's stats as deltas since the last fold. */
    void DrainIncrementalStats();
    /** Merge a deferred incremental-path kSat assignment into the
     *  rolling standing model. Must run before the backend that holds
     *  the assignment is dropped; no-op when nothing is pending. */
    void RefreshStandingModel();

    /** Conflict budget for the next fresh-instance solve: the stream
     *  budget's current allowance when enabled, else max_conflicts. */
    int64_t NextConflictBudget() const;
    /** Advance the stream-budget state after a budgeted solve. */
    void SettleStreamBudget(int64_t budget, int64_t spent, bool decided);

    /** Wire the export hook of a freshly built incremental backend. */
    void InstallExportHook();
    /** Install every fetched-but-uninstalled lemma whose assertions are
     *  all guarded in the current backend. */
    void InstallFetchedLemmas();

    ExprContext *ctx_;
    SolverConfig config_;
    // Keyed by the canonical assertion vector itself (hashed by the old
    // 64-bit additive key): a hash collision degrades to a miss instead
    // of silently returning another query's result/model.
    std::unordered_map<std::vector<ExprRef>, CacheEntry, AssertionsHash>
        cache_;
    std::unique_ptr<IncrementalBackend> inc_;
    int64_t inc_conflicts_seen_ = 0;
    int64_t inc_decisions_seen_ = 0;
    int64_t inc_trail_reuses_seen_ = 0;
    /** Lemmas fetched from the clause source. Kept for the lifetime of
     *  the solver: an incremental-backend reset drops the clauses, so
     *  uninstalled flags are cleared and the archive replays into the
     *  rebuilt instance as its assertions reappear. */
    struct FetchedLemma
    {
        std::vector<LemmaFingerprint> fps;
        bool installed = false;
    };
    std::vector<FetchedLemma> fetched_lemmas_;
    /** Rolling concrete assignment from past kSat answers (see
     *  SolverConfig::retain_models and StandingModel()). */
    Model standing_model_;
    bool has_standing_model_ = false;
    /** Assertions of the latest incremental-path kSat answer whose
     *  variable values have not been pulled from the backend yet:
     *  extraction walks the persistent instance's standing assignment,
     *  so it is deferred to the first StandingModel() read instead of
     *  taxing every query. */
    std::vector<ExprRef> standing_live_;
    /** Stream-budget running state (see StreamBudget). */
    double stream_base_ = -1.0;
    int64_t stream_carry_ = 0;
    /** One-shot classifier hint from NotePruneNearMiss(), consumed by
     *  the next query (hit or miss -- it described that query). */
    bool prune_near_miss_ = false;
    /** Rolling stream state behind the classifier's rate features:
     *  solved (non-memoized) queries, their kUnknown answers, and the
     *  SAT conflicts they burned. Only maintained under portfolio. */
    int64_t stream_queries_ = 0;
    int64_t stream_unknowns_ = 0;
    int64_t stream_conflict_sum_ = 0;
    /** Bounded saturating depth of one root term; memoized in `memo`
     *  when non-null (see DepthMemo). */
    static uint32_t RootDepth(ExprRef root, DepthMemo *memo);
    /** The dispatch path's depth cache: live sets repeat their prefix
     *  terms across the whole query stream, so classification decays
     *  to one hash lookup per root instead of a DAG walk per query. */
    DepthMemo depth_memo_;
    /** Plain shadow of the "solver.sat_conflicts" stat, bumped at the
     *  same two sites, so the per-query dispatch accounting never pays
     *  a string-keyed map lookup on the hot path. */
    int64_t sat_conflicts_total_ = 0;
    /** Per-class dispatch tallies accumulate in these plain arrays --
     *  the string keys ("solver.class_queries/..." etc.) are past the
     *  small-string optimization, so bumping the registry per query
     *  would pay a heap allocation on the hot path. The tallies flush
     *  into stats_ whenever the registry is read (stats() /
     *  mutable_stats()), which is why stats_ and the arrays are
     *  mutable: the flush is an observably-pure cache writeback. */
    void FlushClassCounters() const;
    mutable int64_t class_queries_ct_[kNumQueryClasses] = {};
    mutable int64_t class_decided_ct_[kNumQueryClasses] = {};
    mutable int64_t class_unknown_ct_[kNumQueryClasses] = {};
    mutable StatsRegistry stats_;
    /** Live obs instruments on this solver's lane shard (inert handles
     *  when config_.obs carries no registry). */
    obs::MetricsRegistry::Counter obs_queries_;
    obs::MetricsRegistry::Counter obs_unknowns_;
    obs::MetricsRegistry::Counter obs_memo_hits_;
    obs::MetricsRegistry::Counter obs_batch_sweeps_;
    obs::MetricsRegistry::Counter obs_batch_guards_;
    obs::MetricsRegistry::Distribution obs_conflicts_;
    obs::MetricsRegistry::Distribution obs_core_size_;
    obs::MetricsRegistry::Distribution obs_batch_rounds_;
    /** Per-class portfolio counters (queries seen / decided), live on
     *  the lane shard like the rest; inert when obs is off. */
    obs::MetricsRegistry::Counter obs_class_queries_[kNumQueryClasses];
    obs::MetricsRegistry::Counter obs_class_decided_[kNumQueryClasses];
};

}  // namespace smt
}  // namespace achilles

#endif  // ACHILLES_SMT_SOLVER_H_
