// Achilles reproduction -- SMT library.
//
// Solver facade: the QF_BV decision procedure used by every other layer
// (symbolic execution feasibility checks, negate-operator overlap checks,
// differentFrom precomputation, Trojan queries). Combines a fast interval
// pre-check with bit-blasting + CDCL, plus a query cache, standing in for
// the STP/Z3 usage in the paper.

#ifndef ACHILLES_SMT_SOLVER_H_
#define ACHILLES_SMT_SOLVER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "smt/eval.h"
#include "smt/expr.h"
#include "support/stats.h"

namespace achilles {
namespace smt {

/** Status of a satisfiability query. */
enum class CheckStatus : uint8_t { kSat, kUnsat, kUnknown };

/**
 * Outcome of a satisfiability query: the status plus, for kUnsat
 * answers decided by the incremental assumption-based backend, the
 * unsat core mapped back to the caller's assertion indices.
 *
 * Core indexing: CheckSat(assertions) uses positions into `assertions`;
 * CheckSatAssuming(base, extras) indexes base first, then extras offset
 * by base.size(). Duplicated assertions report their first occurrence.
 * `has_core` distinguishes "no core information" (fresh-instance or
 * interval answers, cache entries recorded without one) from a genuine
 * core; an empty core with has_core set means the query is
 * unsatisfiable regardless of the assertions (cannot arise from
 * guarded assertions, but callers must treat it as "everything is
 * implicated"). Cores never accompany kSat/kUnknown: budgeted and
 * model-producing queries bypass the incremental backend entirely, so
 * core-guided callers can never confuse an undecided answer with a
 * refutation.
 *
 * The struct is source-compatible with the old `enum CheckResult`:
 * `CheckResult::kSat` still names the status constant and comparisons
 * against a CheckStatus compare the status only.
 */
struct CheckResult
{
    CheckStatus status = CheckStatus::kUnknown;
    bool has_core = false;
    /** Caller assertion indices implicated in the refutation, ascending. */
    std::vector<uint32_t> core;

    CheckResult() = default;
    /*implicit*/ CheckResult(CheckStatus s) : status(s) {}

    static constexpr CheckStatus kSat = CheckStatus::kSat;
    static constexpr CheckStatus kUnsat = CheckStatus::kUnsat;
    static constexpr CheckStatus kUnknown = CheckStatus::kUnknown;

    friend bool operator==(const CheckResult &r, CheckStatus s)
    {
        return r.status == s;
    }
    friend bool operator==(CheckStatus s, const CheckResult &r)
    {
        return r.status == s;
    }
    friend bool operator!=(const CheckResult &r, CheckStatus s)
    {
        return r.status != s;
    }
    friend bool operator!=(CheckStatus s, const CheckResult &r)
    {
        return r.status != s;
    }
    /** Two outcomes are equal iff their statuses agree: the core is an
     *  explanation of a kUnsat verdict, not part of the verdict (the
     *  same query answers kUnsat with or without core extraction). */
    friend bool operator==(const CheckResult &a, const CheckResult &b)
    {
        return a.status == b.status;
    }
    friend bool operator!=(const CheckResult &a, const CheckResult &b)
    {
        return a.status != b.status;
    }
};

const char *CheckResultName(CheckStatus s);
inline const char *
CheckResultName(const CheckResult &r)
{
    return CheckResultName(r.status);
}

/** Tunables for the solver facade. */
struct SolverConfig
{
    /** Run the interval UNSAT pre-check before bit-blasting. */
    bool use_interval_check = true;
    /** Conflict budget for the SAT search; < 0 means unlimited. */
    int64_t max_conflicts = -1;
    /** Re-evaluate every assertion under each SAT model (cheap; catches
     *  encoder bugs -- a model that fails validation is a panic). */
    bool validate_models = true;
    /** Memoize query results keyed by the assertion set. */
    bool enable_cache = true;
    /**
     * Reuse one persistent SatSolver + BitBlaster across queries: CNF is
     * memoized per expression node, each assertion is guarded by an
     * activation literal, queries solve under assumptions, and learned
     * clauses carry over (capped by ReduceDB). Only model-less,
     * unlimited-budget queries take this path: model-producing queries
     * solve a fresh instance whose CNF numbering (and therefore model)
     * is a pure function of the structurally sorted query, and
     * budget-limited queries (max_conflicts >= 0) do too, so that the
     * kUnsat/kUnknown boundary never depends on the learned clauses of
     * earlier queries. Together these keep results and witness bytes
     * bitwise deterministic across runs, worker counts and query
     * history.
     */
    bool enable_incremental = true;
    /**
     * Extract unsat cores over assumptions on the incremental path and
     * expose them through CheckResult. Extraction itself is one
     * analyze-final walk over the final conflict's implication graph
     * (near-free); consumers use cores to drop every assertion set a
     * refutation transitively implicates (core-guided predicate
     * dropping in the server explorer, witness-check reuse in
     * refinement).
     */
    bool enable_cores = true;
    /**
     * Additionally minimize each core by deletion (re-solving the core
     * minus each member until a fixpoint). Minimal cores transfer to
     * more sibling queries, which is what makes core-guided dropping
     * pay; the probes run on the already-learned incremental instance
     * and are cheap. Only applies when enable_cores is set.
     */
    bool minimize_cores = true;
    /**
     * Reset threshold for the incremental backend. A SAT verdict must
     * extend to a full assignment over every variable ever blasted into
     * the persistent instance, so per-query cost grows with accumulated
     * CNF; once the instance exceeds this many SAT variables it is
     * dropped and rebuilt from the next query's expressions. Dense
     * streams of related queries (the Trojan/match loops) stay far
     * below the cap between resets; heterogeneous pipeline phases reset
     * a handful of times instead of dragging dead CNF along.
     */
    uint32_t incremental_max_vars = 65536;
};

/**
 * The decision procedure facade.
 *
 * Holds two kinds of state across queries: the memo cache, and the
 * incremental backend (a persistent SAT instance reused for all
 * model-less queries; see SolverConfig::enable_incremental). The
 * Achilles search generates thousands of small queries sharing
 * path-constraint prefixes, so reusing CNF and learned clauses across
 * the stream is the dominant speed lever.
 *
 * CheckSat/CheckSatAssuming are virtual so decorators can interpose
 * (the parallel exploration subsystem wraps each worker's solver with a
 * shared cross-worker query cache, see exec/query_cache.h). A Solver
 * instance is not thread-safe; parallel exploration gives each worker
 * its own.
 */
class Solver
{
  public:
    explicit Solver(ExprContext *ctx, SolverConfig config = {});
    virtual ~Solver();

    /**
     * Check satisfiability of the conjunction of `assertions`.
     * On kSat and non-null `model`, fills `model` with values for every
     * variable occurring in the assertions; on every other outcome a
     * non-null `model` is cleared (callers may reuse one Model object
     * across queries without reading stale values).
     */
    virtual CheckResult CheckSat(const std::vector<ExprRef> &assertions,
                                 Model *model = nullptr);

    /**
     * Check satisfiability of base ∧ extras. Semantically identical to
     * CheckSat on the concatenation; the split spells out the
     * shared-prefix query streams of the server explorer (one pathS
     * asserted per state, many ¬pathC_i iterated against it), which the
     * incremental backend turns into assumption flips over memoized
     * CNF.
     */
    virtual CheckResult CheckSatAssuming(const std::vector<ExprRef> &base,
                                         const std::vector<ExprRef> &extras,
                                         Model *model = nullptr);

    /** Convenience overload for a single (possibly And-tree) assertion. */
    CheckResult CheckSatExpr(ExprRef e, Model *model = nullptr);

    /** True iff the conjunction is satisfiable (kUnknown -> false). */
    bool
    IsSat(const std::vector<ExprRef> &assertions)
    {
        return CheckSat(assertions) == CheckResult::kSat;
    }

    ExprContext *ctx() { return ctx_; }
    const SolverConfig &config() const { return config_; }
    const StatsRegistry &stats() const { return stats_; }
    StatsRegistry *mutable_stats() { return &stats_; }

  protected:
    /**
     * Shared workhorse for subclasses: canonicalize, consult the memo
     * cache, dispatch to the interval check and the incremental or
     * fresh-instance backend. `extras` may be null.
     */
    CheckResult CheckSatSets(const std::vector<ExprRef> &base,
                             const std::vector<ExprRef> *extras,
                             Model *model);

  private:
    struct CacheEntry
    {
        CheckStatus status;
        /** False for kSat entries produced by the model-less incremental
         *  path; such hits cannot serve model-requesting callers and are
         *  upgraded in place by a fresh-instance solve. */
        bool has_model;
        Model model;
        /** Unsat core in canonical (live-vector) indices; kUnsat entries
         *  from the fresh-instance path carry none. */
        bool has_core = false;
        std::vector<uint32_t> core;
    };
    struct AssertionsHash
    {
        size_t operator()(const std::vector<ExprRef> &assertions) const;
    };
    struct IncrementalBackend;

    /** Canonical form: live (non-trivial) assertions, structurally
     *  sorted and deduplicated, plus per-live-entry indices into the
     *  caller's base∥extras concatenation (first occurrence wins).
     *  Returns false on a trivially-false assertion, reporting its
     *  caller index through `false_index`. */
    bool Canonicalize(const std::vector<ExprRef> &base,
                      const std::vector<ExprRef> *extras,
                      std::vector<ExprRef> *live,
                      std::vector<uint32_t> *caller_index,
                      uint32_t *false_index) const;

    CheckStatus SolveFresh(const std::vector<ExprRef> &live,
                           Model *out_model);
    /** Returns the status plus, on kUnsat with cores enabled, the core
     *  as indices into `live`. */
    CheckStatus SolveIncremental(const std::vector<ExprRef> &live,
                                 bool *has_core,
                                 std::vector<uint32_t> *core);

    ExprContext *ctx_;
    SolverConfig config_;
    // Keyed by the canonical assertion vector itself (hashed by the old
    // 64-bit additive key): a hash collision degrades to a miss instead
    // of silently returning another query's result/model.
    std::unordered_map<std::vector<ExprRef>, CacheEntry, AssertionsHash>
        cache_;
    std::unique_ptr<IncrementalBackend> inc_;
    int64_t inc_conflicts_seen_ = 0;
    int64_t inc_decisions_seen_ = 0;
    StatsRegistry stats_;
};

}  // namespace smt
}  // namespace achilles

#endif  // ACHILLES_SMT_SOLVER_H_
