// Achilles reproduction -- SMT library.
//
// Solver facade: the QF_BV decision procedure used by every other layer
// (symbolic execution feasibility checks, negate-operator overlap checks,
// differentFrom precomputation, Trojan queries). Combines a fast interval
// pre-check with bit-blasting + CDCL, plus a query cache, standing in for
// the STP/Z3 usage in the paper.

#ifndef ACHILLES_SMT_SOLVER_H_
#define ACHILLES_SMT_SOLVER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "smt/eval.h"
#include "smt/expr.h"
#include "support/stats.h"

namespace achilles {
namespace smt {

/** Outcome of a satisfiability query. */
enum class CheckResult { kSat, kUnsat, kUnknown };

const char *CheckResultName(CheckResult r);

/** Tunables for the solver facade. */
struct SolverConfig
{
    /** Run the interval UNSAT pre-check before bit-blasting. */
    bool use_interval_check = true;
    /** Conflict budget for the SAT search; < 0 means unlimited. */
    int64_t max_conflicts = -1;
    /** Re-evaluate every assertion under each SAT model (cheap; catches
     *  encoder bugs -- a model that fails validation is a panic). */
    bool validate_models = true;
    /** Memoize query results keyed by the assertion set. */
    bool enable_cache = true;
};

/**
 * The decision procedure facade.
 *
 * Stateless across queries apart from the cache; each CheckSat builds a
 * fresh SAT instance (the Achilles search generates many small related
 * queries rather than one growing one, so the cache is the effective
 * incrementality mechanism).
 *
 * CheckSat is virtual so decorators can interpose (the parallel
 * exploration subsystem wraps each worker's solver with a shared
 * cross-worker query cache, see exec/query_cache.h). A Solver instance
 * is not thread-safe; parallel exploration gives each worker its own.
 */
class Solver
{
  public:
    explicit Solver(ExprContext *ctx, SolverConfig config = {});
    virtual ~Solver() = default;

    /**
     * Check satisfiability of the conjunction of `assertions`.
     * On kSat and non-null `model`, fills `model` with values for every
     * variable occurring in the assertions.
     */
    virtual CheckResult CheckSat(const std::vector<ExprRef> &assertions,
                                 Model *model = nullptr);

    /** Convenience overload for a single (possibly And-tree) assertion. */
    CheckResult CheckSatExpr(ExprRef e, Model *model = nullptr);

    /** True iff the conjunction is satisfiable (kUnknown -> false). */
    bool
    IsSat(const std::vector<ExprRef> &assertions)
    {
        return CheckSat(assertions) == CheckResult::kSat;
    }

    ExprContext *ctx() { return ctx_; }
    const SolverConfig &config() const { return config_; }
    const StatsRegistry &stats() const { return stats_; }
    StatsRegistry *mutable_stats() { return &stats_; }

  private:
    struct CacheEntry
    {
        CheckResult result;
        Model model;
    };

    uint64_t QueryKey(const std::vector<ExprRef> &assertions) const;

    ExprContext *ctx_;
    SolverConfig config_;
    std::unordered_map<uint64_t, CacheEntry> cache_;
    StatsRegistry stats_;
};

}  // namespace smt
}  // namespace achilles

#endif  // ACHILLES_SMT_SOLVER_H_
