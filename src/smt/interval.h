// Achilles reproduction -- SMT library.
//
// Unsigned-interval abstract interpretation over the expression DAG.
// Used as a cheap pre-check before bit-blasting: most UNSAT queries the
// Trojan search generates come from contradictory range checks on message
// fields (e.g. `addr < 100` on one side and `addr >= 100` on the other),
// which interval propagation refutes without touching the SAT solver.
//
// Soundness contract: IntervalCheck only ever answers "definitely UNSAT"
// or "don't know"; it never claims SAT.

#ifndef ACHILLES_SMT_INTERVAL_H_
#define ACHILLES_SMT_INTERVAL_H_

#include <unordered_map>
#include <vector>

#include "smt/expr.h"

namespace achilles {
namespace smt {

/** Closed unsigned interval [lo, hi]; lo > hi encodes the empty set. */
struct Interval
{
    uint64_t lo = 0;
    uint64_t hi = ~0ull;

    bool Empty() const { return lo > hi; }
    bool IsSingleton() const { return lo == hi; }
    bool Contains(uint64_t v) const { return lo <= v && v <= hi; }

    static Interval Full(uint32_t width) { return {0, WidthMask(width)}; }
    static Interval Point(uint64_t v) { return {v, v}; }
    static Interval EmptySet() { return {1, 0}; }

    /** Intersection of two intervals. */
    Interval
    Meet(const Interval &o) const
    {
        return {std::max(lo, o.lo), std::min(hi, o.hi)};
    }

    /** Smallest interval containing both (convex hull). */
    Interval
    Join(const Interval &o) const
    {
        if (Empty())
            return o;
        if (o.Empty())
            return *this;
        return {std::min(lo, o.lo), std::max(hi, o.hi)};
    }
};

/**
 * Interval-based UNSAT pre-check for a conjunction of width-1 assertions.
 *
 * Seeds per-variable ranges from atoms of the shapes `x op const` /
 * `const op x` (also through ZExt), iterates to a fixpoint, then
 * evaluates every assertion in the interval domain. Returns true iff the
 * conjunction is *provably* unsatisfiable.
 */
class IntervalChecker
{
  public:
    explicit IntervalChecker(const ExprContext *ctx) : ctx_(ctx) {}

    /** True iff the conjunction of `assertions` is definitely UNSAT. */
    bool DefinitelyUnsat(const std::vector<ExprRef> &assertions);

    /**
     * As DefinitelyUnsat, but on a refutation also attributes it: fills
     * `core` with the (sorted, deduplicated) indices of the assertions
     * whose atoms narrowed the refuting interval. Seed atoms map 1:1 to
     * assertions, and per variable only the atom that raised the lower
     * bound to its final value and the atom that lowered the upper
     * bound are implicated -- each alone implies its half of the bound,
     * so the reported subset is itself UNSAT (a sound unsat core, one
     * or two assertions per refuted variable). Refutations found while
     * re-evaluating an atom add that atom's assertion plus the bound
     * sources of every variable in its support. This is what lets the
     * solver facade keep the interval fast path on the core-producing
     * path instead of falling through to the SAT backend for an
     * explanation.
     */
    bool DefinitelyUnsatWithCore(const std::vector<ExprRef> &assertions,
                                 std::vector<uint32_t> *core);

    /** Interval of `e` under the last DefinitelyUnsat() environment. */
    Interval IntervalOf(ExprRef e);

  private:
    /** Which seed atoms pinned a variable's current bounds (assertion
     *  indices; -1 = the bound is still the type bound). */
    struct BoundSources
    {
        int32_t lo = -1;
        int32_t hi = -1;
    };

    bool AnalyzeUnsat(const std::vector<ExprRef> &assertions,
                      std::vector<uint32_t> *core);
    void SeedFromAtom(ExprRef atom, bool positive, int32_t source);
    void Narrow(ExprRef var_like, const Interval &interval, int32_t source);
    void AddBoundSources(uint32_t var_id, std::vector<uint32_t> *core) const;

    const ExprContext *ctx_;
    std::unordered_map<uint32_t, Interval> env_;
    std::unordered_map<uint32_t, BoundSources> sources_;
    std::unordered_map<const Expr *, Interval> memo_;
};

/** Flatten an And-tree of width-1 expressions into conjuncts. */
void FlattenConjunction(ExprRef e, std::vector<ExprRef> *out);

}  // namespace smt
}  // namespace achilles

#endif  // ACHILLES_SMT_INTERVAL_H_
