// Achilles reproduction -- SMT library.
//
// Unsigned-interval abstract interpretation over the expression DAG.
// Used as a cheap pre-check before bit-blasting: most UNSAT queries the
// Trojan search generates come from contradictory range checks on message
// fields (e.g. `addr < 100` on one side and `addr >= 100` on the other),
// which interval propagation refutes without touching the SAT solver.
//
// Soundness contract: IntervalCheck only ever answers "definitely UNSAT"
// or "don't know"; it never claims SAT.

#ifndef ACHILLES_SMT_INTERVAL_H_
#define ACHILLES_SMT_INTERVAL_H_

#include <unordered_map>
#include <vector>

#include "smt/expr.h"

namespace achilles {
namespace smt {

/** Closed unsigned interval [lo, hi]; lo > hi encodes the empty set. */
struct Interval
{
    uint64_t lo = 0;
    uint64_t hi = ~0ull;

    bool Empty() const { return lo > hi; }
    bool IsSingleton() const { return lo == hi; }
    bool Contains(uint64_t v) const { return lo <= v && v <= hi; }

    static Interval Full(uint32_t width) { return {0, WidthMask(width)}; }
    static Interval Point(uint64_t v) { return {v, v}; }
    static Interval EmptySet() { return {1, 0}; }

    /** Intersection of two intervals. */
    Interval
    Meet(const Interval &o) const
    {
        return {std::max(lo, o.lo), std::min(hi, o.hi)};
    }

    /** Smallest interval containing both (convex hull). */
    Interval
    Join(const Interval &o) const
    {
        if (Empty())
            return o;
        if (o.Empty())
            return *this;
        return {std::min(lo, o.lo), std::max(hi, o.hi)};
    }
};

/**
 * Interval-based UNSAT pre-check for a conjunction of width-1 assertions.
 *
 * Seeds per-variable ranges from atoms of the shapes `x op const` /
 * `const op x` (also through ZExt), iterates to a fixpoint, then
 * evaluates every assertion in the interval domain. Returns true iff the
 * conjunction is *provably* unsatisfiable.
 */
class IntervalChecker
{
  public:
    explicit IntervalChecker(const ExprContext *ctx) : ctx_(ctx) {}

    /** True iff the conjunction of `assertions` is definitely UNSAT. */
    bool DefinitelyUnsat(const std::vector<ExprRef> &assertions);

    /** Interval of `e` under the last DefinitelyUnsat() environment. */
    Interval IntervalOf(ExprRef e);

  private:
    void SeedFromAtom(ExprRef atom, bool positive);
    void Narrow(ExprRef var_like, const Interval &interval);

    const ExprContext *ctx_;
    std::unordered_map<uint32_t, Interval> env_;
    std::unordered_map<const Expr *, Interval> memo_;
};

/** Flatten an And-tree of width-1 expressions into conjuncts. */
void FlattenConjunction(ExprRef e, std::vector<ExprRef> *out);

}  // namespace smt
}  // namespace achilles

#endif  // ACHILLES_SMT_INTERVAL_H_
