// Achilles reproduction -- symbolic execution engine.
//
// Execution states: symbolic store (locals + arrays per call frame),
// path constraints, captured messages and path classification. States
// are value-like and cloned on symbolic branches, mirroring S2E/KLEE
// state forking.

#ifndef ACHILLES_SYMEXEC_STATE_H_
#define ACHILLES_SYMEXEC_STATE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "smt/expr.h"
#include "symexec/program.h"

namespace achilles {
namespace symexec {

/** How a finished path ended. */
enum class PathOutcome : uint8_t {
    kRunning,     ///< not finished yet
    kAccepted,    ///< server classified the message as accepted
    kRejected,    ///< server classified the message as rejected
    kClientDone,  ///< client path completed (message(s) captured)
    kKilled,      ///< dropped (drop_path / infeasible assume / listener)
    kLimit,       ///< hit the per-path step budget
};

const char *PathOutcomeName(PathOutcome o);

/** A message captured at a SendMessage() call. */
struct SentMessage
{
    std::vector<smt::ExprRef> bytes;
    std::string label;
};

/** A local array: fixed length, per-cell symbolic expressions. */
struct ArrayObject
{
    uint32_t elem_width = 8;
    std::vector<smt::ExprRef> cells;
};

/** One function activation. */
struct CallFrame
{
    uint32_t func = 0;
    uint32_t pc = 0;
    /** Name of the caller local receiving the return value ("" = none). */
    std::string ret_dest;
    std::map<std::string, std::pair<uint32_t, smt::ExprRef>> locals;
    std::map<std::string, ArrayObject> arrays;
};

/**
 * Opaque per-state payload for engine clients. The Achilles server
 * explorer attaches its live client-path-predicate set here; it is
 * cloned whenever the engine forks a state.
 */
class StateUserData
{
  public:
    virtual ~StateUserData() = default;
    virtual std::unique_ptr<StateUserData> Clone() const = 0;
};

/**
 * One symbolic execution state (== one execution path in progress).
 */
class State
{
  public:
    State(uint64_t id, const Program *program) : id_(id), program_(program)
    {
        frames_.push_back(CallFrame{});
    }

    /** Fork a copy with a fresh id. */
    std::unique_ptr<State>
    Clone(uint64_t new_id) const
    {
        auto copy = std::make_unique<State>(*this);
        copy->id_ = new_id;
        if (user_data_)
            copy->user_data_ = user_data_->Clone();
        return copy;
    }

    State(const State &other)
        : accept_label(other.accept_label), id_(other.id_),
          program_(other.program_), frames_(other.frames_),
          constraints_(other.constraints_), sent_(other.sent_),
          replied_(other.replied_), outcome_(other.outcome_),
          depth_(other.depth_), steps_(other.steps_),
          fork_seq_(other.fork_seq_)
    {
        // user_data_ is cloned by Clone(); plain copy leaves it null.
    }
    State &operator=(const State &) = delete;

    /**
     * Rewrite every expression held by this state through `translate`.
     * Used by the parallel exploration subsystem to re-home a state
     * stolen from another worker into the thief's ExprContext (see
     * exec/expr_transfer.h). The opaque user_data is untouched: it must
     * not hold ExprRefs of the source context.
     */
    void
    TranslateExprs(const std::function<smt::ExprRef(smt::ExprRef)> &translate)
    {
        for (CallFrame &frame : frames_) {
            for (auto &[name, slot] : frame.locals)
                slot.second = translate(slot.second);
            for (auto &[name, array] : frame.arrays)
                for (smt::ExprRef &cell : array.cells)
                    cell = translate(cell);
        }
        for (smt::ExprRef &c : constraints_)
            c = translate(c);
        for (SentMessage &m : sent_)
            for (smt::ExprRef &b : m.bytes)
                b = translate(b);
    }

    uint64_t id() const { return id_; }
    const Program *program() const { return program_; }

    CallFrame &TopFrame() { return frames_.back(); }
    const CallFrame &TopFrame() const { return frames_.back(); }
    std::vector<CallFrame> &frames() { return frames_; }
    size_t FrameDepth() const { return frames_.size(); }

    /** Innermost-first lookup of a local variable; null if undeclared. */
    std::pair<uint32_t, smt::ExprRef> *
    FindLocal(const std::string &name)
    {
        for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
            auto lit = it->locals.find(name);
            if (lit != it->locals.end())
                return &lit->second;
        }
        return nullptr;
    }

    /** Innermost-first lookup of an array; null if undeclared. */
    ArrayObject *
    FindArray(const std::string &name)
    {
        for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
            auto ait = it->arrays.find(name);
            if (ait != it->arrays.end())
                return &ait->second;
        }
        return nullptr;
    }

    void
    AddConstraint(smt::ExprRef c)
    {
        if (!c->IsTrue())
            constraints_.push_back(c);
    }
    const std::vector<smt::ExprRef> &constraints() const
    {
        return constraints_;
    }

    void AddSent(SentMessage m) { sent_.push_back(std::move(m)); }
    const std::vector<SentMessage> &sent() const { return sent_; }

    void SetReplied() { replied_ = true; }
    bool replied() const { return replied_; }

    void SetOutcome(PathOutcome o) { outcome_ = o; }
    PathOutcome outcome() const { return outcome_; }
    bool Finished() const { return outcome_ != PathOutcome::kRunning; }

    /** Number of symbolic branch points taken on this path. */
    size_t depth() const { return depth_; }
    void BumpDepth() { ++depth_; }

    size_t steps() const { return steps_; }
    void BumpSteps() { ++steps_; }

    /**
     * Per-state fork counter, used to derive schedule-independent child
     * state ids: the (parent id, fork sequence) pair is a deterministic
     * function of the path alone, not of exploration order.
     */
    uint32_t NextForkSeq() { return fork_seq_++; }

    void SetUserData(std::unique_ptr<StateUserData> d)
    {
        user_data_ = std::move(d);
    }
    StateUserData *user_data() { return user_data_.get(); }

    /** Label attached by the accept/reject marker that ended the path. */
    std::string accept_label;

  private:
    uint64_t id_;
    const Program *program_;
    std::vector<CallFrame> frames_;
    std::vector<smt::ExprRef> constraints_;
    std::vector<SentMessage> sent_;
    bool replied_ = false;
    PathOutcome outcome_ = PathOutcome::kRunning;
    size_t depth_ = 0;
    size_t steps_ = 0;
    uint32_t fork_seq_ = 0;
    std::unique_ptr<StateUserData> user_data_;
};

}  // namespace symexec
}  // namespace achilles

#endif  // ACHILLES_SYMEXEC_STATE_H_
