// Achilles reproduction -- symbolic execution engine.

#include "symexec/engine.h"

#include <algorithm>

#include "support/hash.h"

namespace achilles {
namespace symexec {

const char *
PathOutcomeName(PathOutcome o)
{
    switch (o) {
      case PathOutcome::kRunning: return "running";
      case PathOutcome::kAccepted: return "accepted";
      case PathOutcome::kRejected: return "rejected";
      case PathOutcome::kClientDone: return "client-done";
      case PathOutcome::kKilled: return "killed";
      case PathOutcome::kLimit: return "limit";
    }
    ACHILLES_UNREACHABLE("bad PathOutcome");
}

Engine::Engine(smt::ExprContext *ctx, smt::Solver *solver,
               const Program *program, Mode mode, EngineConfig config)
    : ctx_(ctx), solver_(solver), program_(program), mode_(mode),
      config_(config), rng_(config.random_seed)
{
    if (config_.obs.metrics_on()) {
        obs_steps_ = config_.obs.CounterFor("engine.steps");
        obs_forks_ = config_.obs.CounterFor("engine.states");
        obs_finished_ = config_.obs.CounterFor("engine.finished");
        // The serial frontier gauge belongs to the home engine; parallel
        // worker engines (lane >= 1) leave the name to the scheduler's
        // queued-state gauge registered by exec::ParallelEngine.
        if (config_.obs.lane == 0) {
            std::atomic<int64_t> *frontier = &frontier_;
            config_.obs.registry->RegisterGauge(
                "engine.frontier", [frontier] {
                    return frontier->load(std::memory_order_relaxed);
                });
        }
    }
    ACHILLES_CHECK(!program_->functions.empty(), "empty program");
    const int main_idx = program_->FindFunction("main");
    entry_func_ = main_idx >= 0 ? static_cast<uint32_t>(main_idx) : 0;
}

Engine::~Engine()
{
    // Freeze the serial frontier gauge: the lambda registered in the
    // constructor captures this engine's member, and a heartbeat
    // sampler may keep reading the name after this storage dies (or is
    // reused by the next phase's engine).
    if (config_.obs.metrics_on() && config_.obs.lane == 0) {
        const int64_t value = frontier_.load(std::memory_order_relaxed);
        config_.obs.registry->RegisterGauge("engine.frontier",
                                            [value] { return value; });
    }
}

void
Engine::SetIncomingMessage(std::vector<smt::ExprRef> bytes)
{
    incoming_ = std::move(bytes);
}

smt::ExprRef
Engine::ReadArrayCell(State &state [[maybe_unused]], ArrayObject &array,
                      smt::ExprRef index)
{
    const size_t len = array.cells.size();
    if (index->IsConst()) {
        const uint64_t i = index->ConstValue();
        if (i < len)
            return array.cells[i];
        // Out-of-bounds concrete read: model as unconstrained memory
        // (the read does not crash our abstract machine; the Trojan
        // analysis cares about acceptance, not the read value).
        stats_.Bump("engine.oob_reads");
        return ctx_->FreshVar("oob", array.elem_width);
    }
    // Symbolic index: if-then-else chain over the cells, with an
    // unconstrained default for out-of-bounds (KLEE would fork; the ITE
    // encoding avoids state explosion and keeps the path intact).
    stats_.Bump("engine.symbolic_index_reads");
    smt::ExprRef result = ctx_->FreshVar("oob", array.elem_width);
    for (size_t i = len; i > 0; --i) {
        smt::ExprRef guard = ctx_->MakeEq(
            index, ctx_->MakeConst(index->width(), i - 1));
        result = ctx_->MakeIte(guard, array.cells[i - 1], result);
    }
    return result;
}

smt::ExprRef
Engine::EvalExpr(State &state, const DExprRef &e)
{
    ACHILLES_CHECK(e != nullptr, "evaluating empty DSL expression");
    switch (e->kind) {
      case DKind::kConst:
        return ctx_->MakeConst(e->width, e->value);
      case DKind::kVarRef: {
        auto *slot = state.FindLocal(e->name);
        ACHILLES_CHECK(slot != nullptr, "undeclared variable ", e->name);
        ACHILLES_CHECK(slot->first == e->width, "width mismatch reading ",
                       e->name);
        return slot->second;
      }
      case DKind::kArrayRef: {
        ArrayObject *array = state.FindArray(e->name);
        ACHILLES_CHECK(array != nullptr, "undeclared array ", e->name);
        smt::ExprRef index = EvalExpr(state, e->kids[0]);
        return ReadArrayCell(state, *array, index);
      }
      case DKind::kOp: {
        switch (e->op) {
          case smt::Kind::kNot:
            return ctx_->MakeNot(EvalExpr(state, e->kids[0]));
          case smt::Kind::kZExt:
            return ctx_->MakeZExt(EvalExpr(state, e->kids[0]), e->width);
          case smt::Kind::kSExt:
            return ctx_->MakeSExt(EvalExpr(state, e->kids[0]), e->width);
          case smt::Kind::kExtract:
            return ctx_->MakeExtract(EvalExpr(state, e->kids[0]),
                                     static_cast<uint32_t>(e->value),
                                     e->width);
          default:
            break;
        }
        smt::ExprRef a = EvalExpr(state, e->kids[0]);
        smt::ExprRef b = EvalExpr(state, e->kids[1]);
        switch (e->op) {
          case smt::Kind::kAdd: return ctx_->MakeAdd(a, b);
          case smt::Kind::kSub: return ctx_->MakeSub(a, b);
          case smt::Kind::kMul: return ctx_->MakeMul(a, b);
          case smt::Kind::kUDiv: return ctx_->MakeUDiv(a, b);
          case smt::Kind::kURem: return ctx_->MakeURem(a, b);
          case smt::Kind::kAnd: return ctx_->MakeAnd(a, b);
          case smt::Kind::kOr: return ctx_->MakeOr(a, b);
          case smt::Kind::kXor: return ctx_->MakeXor(a, b);
          case smt::Kind::kShl: return ctx_->MakeShl(a, b);
          case smt::Kind::kLShr: return ctx_->MakeLShr(a, b);
          case smt::Kind::kAShr: return ctx_->MakeAShr(a, b);
          case smt::Kind::kConcat: return ctx_->MakeConcat(a, b);
          case smt::Kind::kEq: return ctx_->MakeEq(a, b);
          case smt::Kind::kUlt: return ctx_->MakeUlt(a, b);
          case smt::Kind::kUle: return ctx_->MakeUle(a, b);
          case smt::Kind::kSlt: return ctx_->MakeSlt(a, b);
          case smt::Kind::kSle: return ctx_->MakeSle(a, b);
          default:
            ACHILLES_UNREACHABLE("bad DSL op");
        }
      }
    }
    ACHILLES_UNREACHABLE("bad DKind");
}

bool
Engine::Feasible(const State &state, smt::ExprRef extra)
{
    // kUnknown is treated as feasible: exploration must over-approximate
    // reachability to stay complete. The base/extras split lets the
    // incremental solver backend reuse the already-asserted path prefix.
    return solver_->CheckSatAssuming(state.constraints(), {extra}) !=
           smt::CheckResult::kUnsat;
}

void
Engine::FinalizePath(State &state, PathOutcome outcome)
{
    state.SetOutcome(outcome);
    // Respect max_finished_paths BEFORE finalizing: once the budget is
    // spent, a finishing path is dropped without being recorded or
    // reported to the listener, so a run never returns more than the
    // configured number of results. The parallel engine installs a gate
    // here to enforce the cap globally across workers.
    const bool admit = finalize_gate_
                           ? finalize_gate_()
                           : results_.size() < config_.max_finished_paths;
    if (!admit) {
        stats_.Bump("engine.finished_path_drops");
        return;
    }
    // Accept notification happens here, after admission, so a listener
    // never sees (and e.g. emits a Trojan witness for) a path that the
    // budget drops -- that would desynchronize witnesses from results
    // and make capped parallel runs schedule-dependent.
    if (outcome == PathOutcome::kAccepted && listener_)
        listener_->OnAccept(state);
    PathResult result;
    result.state_id = state.id();
    result.outcome = outcome;
    result.constraints = state.constraints();
    result.sent = state.sent();
    result.accept_label = state.accept_label;
    result.depth = state.depth();
    if (listener_)
        listener_->OnPathFinished(result);
    results_.push_back(std::move(result));
    stats_.Bump("engine.paths_finished");
    obs_finished_.Bump();
}

void
Engine::ExecuteStep(State &state, std::vector<std::unique_ptr<State>> *spawned)
{
    CallFrame &frame = state.TopFrame();
    const Function &fn = program_->FunctionByIndex(frame.func);
    ACHILLES_CHECK(frame.pc < fn.instrs.size(), "pc out of range in ",
                   fn.name);
    const Instr &ins = fn.instrs[frame.pc];
    ++frame.pc;  // default fallthrough; control flow overwrites below
    stats_.Bump("engine.instructions");

    switch (ins.op) {
      case IOp::kDeclare: {
        smt::ExprRef init = ins.e0 ? EvalExpr(state, ins.e0)
                                   : ctx_->MakeConst(ins.a, 0);
        state.TopFrame().locals[ins.dest] = {ins.a, init};
        break;
      }
      case IOp::kDeclArray: {
        ArrayObject array;
        array.elem_width = ins.a;
        array.cells.assign(ins.b, ctx_->MakeConst(ins.a, 0));
        state.TopFrame().arrays[ins.array] = std::move(array);
        break;
      }
      case IOp::kAssign: {
        smt::ExprRef value = EvalExpr(state, ins.e0);
        auto *slot = state.FindLocal(ins.dest);
        ACHILLES_CHECK(slot != nullptr, "assign to undeclared ", ins.dest);
        slot->second = value;
        break;
      }
      case IOp::kAStore: {
        ArrayObject *array = state.FindArray(ins.array);
        ACHILLES_CHECK(array != nullptr, "store to undeclared array ",
                       ins.array);
        smt::ExprRef index = EvalExpr(state, ins.e0);
        smt::ExprRef value = EvalExpr(state, ins.e1);
        if (index->IsConst()) {
            const uint64_t i = index->ConstValue();
            if (i < array->cells.size())
                array->cells[i] = value;
            else
                stats_.Bump("engine.oob_writes");
        } else {
            stats_.Bump("engine.symbolic_index_writes");
            for (size_t i = 0; i < array->cells.size(); ++i) {
                smt::ExprRef guard = ctx_->MakeEq(
                    index, ctx_->MakeConst(index->width(), i));
                array->cells[i] =
                    ctx_->MakeIte(guard, value, array->cells[i]);
            }
        }
        break;
      }
      case IOp::kBranch: {
        smt::ExprRef cond = EvalExpr(state, ins.e0);
        if (cond->IsConst()) {
            frame.pc = cond->ConstValue() ? ins.a : ins.b;
            break;
        }
        state.BumpDepth();
        smt::ExprRef not_cond = ctx_->MakeNot(cond);
        const bool feas_true = Feasible(state, cond);
        const bool feas_false = Feasible(state, not_cond);
        if (feas_true && feas_false) {
            stats_.Bump("engine.forks");
            auto other = state.Clone(NextChildId(state));
            other->TopFrame().pc = ins.b;
            other->AddConstraint(not_cond);
            bool keep_other = true;
            if (listener_)
                keep_other = listener_->OnBranch(*other, not_cond);
            if (keep_other) {
                spawned->push_back(std::move(other));
            } else {
                stats_.Bump("engine.listener_pruned");
                FinalizePath(*other, PathOutcome::kKilled);
            }

            frame.pc = ins.a;
            state.AddConstraint(cond);
            if (listener_ && !listener_->OnBranch(state, cond)) {
                stats_.Bump("engine.listener_pruned");
                FinalizePath(state, PathOutcome::kKilled);
            }
        } else if (feas_true) {
            frame.pc = ins.a;
            state.AddConstraint(cond);
            if (listener_ && !listener_->OnBranch(state, cond)) {
                stats_.Bump("engine.listener_pruned");
                FinalizePath(state, PathOutcome::kKilled);
            }
        } else if (feas_false) {
            frame.pc = ins.b;
            state.AddConstraint(not_cond);
            if (listener_ && !listener_->OnBranch(state, not_cond)) {
                stats_.Bump("engine.listener_pruned");
                FinalizePath(state, PathOutcome::kKilled);
            }
        } else {
            // Current path condition itself is infeasible; drop.
            FinalizePath(state, PathOutcome::kKilled);
        }
        break;
      }
      case IOp::kJump:
        frame.pc = ins.a;
        break;
      case IOp::kCall: {
        const Function &callee = program_->FunctionByIndex(ins.a);
        CallFrame new_frame;
        new_frame.func = ins.a;
        new_frame.pc = 0;
        new_frame.ret_dest = ins.dest;
        for (size_t i = 0; i < callee.params.size(); ++i) {
            smt::ExprRef arg = EvalExpr(state, ins.args[i]);
            new_frame.locals[callee.params[i].first] = {
                callee.params[i].second, arg};
        }
        state.frames().push_back(std::move(new_frame));
        break;
      }
      case IOp::kRet: {
        smt::ExprRef ret_value = nullptr;
        if (ins.e0)
            ret_value = EvalExpr(state, ins.e0);
        const std::string ret_dest = state.TopFrame().ret_dest;
        if (state.FrameDepth() == 1) {
            // Main returned: classify by the default rule -- a server
            // that replied accepted the message; one that fell back to
            // its event loop without replying rejected it.
            if (mode_ == Mode::kServer) {
                FinalizePath(state, state.replied()
                                        ? PathOutcome::kAccepted
                                        : PathOutcome::kRejected);
            } else {
                FinalizePath(state, PathOutcome::kClientDone);
            }
            break;
        }
        const uint32_t ret_width =
            program_->FunctionByIndex(state.TopFrame().func).ret_width;
        state.frames().pop_back();
        if (!ret_dest.empty()) {
            ACHILLES_CHECK(ret_value != nullptr,
                           "missing return value for ", ret_dest);
            state.TopFrame().locals[ret_dest] = {ret_width, ret_value};
        }
        break;
      }
      case IOp::kHalt:
        if (mode_ == Mode::kServer) {
            FinalizePath(state, state.replied() ? PathOutcome::kAccepted
                                                : PathOutcome::kRejected);
        } else {
            FinalizePath(state, PathOutcome::kClientDone);
        }
        break;
      case IOp::kReadInput: {
        smt::ExprRef fresh = ctx_->FreshVar(
            ins.label.empty() ? "input" : ins.label, ins.a);
        state.TopFrame().locals[ins.dest] = {ins.a, fresh};
        stats_.Bump("engine.symbolic_inputs");
        break;
      }
      case IOp::kRecv: {
        ArrayObject array;
        array.elem_width = ins.a;
        if (mode_ == Mode::kServer) {
            ACHILLES_CHECK(!incoming_.empty(),
                           "server Recv with no incoming message set");
            ACHILLES_CHECK(incoming_.size() >= ins.b,
                           "incoming message shorter than Recv buffer");
            array.cells.assign(incoming_.begin(),
                               incoming_.begin() + ins.b);
        } else {
            // Client receiving a reply: unconstrained bytes.
            for (uint32_t i = 0; i < ins.b; ++i)
                array.cells.push_back(ctx_->FreshVar("reply", ins.a));
        }
        state.TopFrame().arrays[ins.array] = std::move(array);
        break;
      }
      case IOp::kSend: {
        ArrayObject *array = state.FindArray(ins.array);
        ACHILLES_CHECK(array != nullptr, "send of undeclared array ",
                       ins.array);
        SentMessage msg;
        msg.bytes = array->cells;
        msg.label = ins.label;
        // Error-reply classification: a reply starting with a concrete
        // error code (HTTP-4xx style) does not count as acceptance.
        bool error_reply = false;
        if (mode_ == Mode::kServer && !config_.error_reply_codes.empty() &&
            !msg.bytes.empty() && msg.bytes[0]->IsConst()) {
            const uint64_t code = msg.bytes[0]->ConstValue();
            for (uint8_t error_code : config_.error_reply_codes)
                error_reply |= (code == error_code);
        }
        state.AddSent(std::move(msg));
        if (error_reply)
            stats_.Bump("engine.error_replies");
        else
            state.SetReplied();
        stats_.Bump("engine.sends");
        if (mode_ == Mode::kClient && config_.stop_client_after_send)
            FinalizePath(state, PathOutcome::kClientDone);
        break;
      }
      case IOp::kMarkAccept:
        state.accept_label = ins.label;
        FinalizePath(state, PathOutcome::kAccepted);
        break;
      case IOp::kMarkReject:
        state.accept_label = ins.label;
        FinalizePath(state, PathOutcome::kRejected);
        break;
      case IOp::kAssume: {
        smt::ExprRef cond = EvalExpr(state, ins.e0);
        if (cond->IsFalse()) {
            FinalizePath(state, PathOutcome::kKilled);
            break;
        }
        if (!cond->IsTrue()) {
            if (!Feasible(state, cond)) {
                FinalizePath(state, PathOutcome::kKilled);
                break;
            }
            state.AddConstraint(cond);
            if (listener_ && !listener_->OnBranch(state, cond)) {
                stats_.Bump("engine.listener_pruned");
                FinalizePath(state, PathOutcome::kKilled);
            }
        }
        break;
      }
      case IOp::kDropPath:
        FinalizePath(state, PathOutcome::kKilled);
        break;
      case IOp::kMakeSymbolic: {
        smt::ExprRef fresh = ctx_->FreshVar(
            ins.label.empty() ? "sym" : ins.label, ins.a);
        auto *slot = state.FindLocal(ins.dest);
        if (slot) {
            ACHILLES_CHECK(slot->first == ins.a);
            slot->second = fresh;
        } else {
            state.TopFrame().locals[ins.dest] = {ins.a, fresh};
        }
        stats_.Bump("engine.make_symbolic");
        break;
      }
    }
}

namespace {

/** Mix (parent id, fork sequence) into a schedule-independent child id. */
uint64_t
DeriveChildId(uint64_t parent, uint32_t seq)
{
    return MixBits(parent + 0x9e3779b97f4a7c15ull * (seq + 1));
}

}  // namespace

uint64_t
Engine::NextChildId(State &parent)
{
    stats_.Bump("engine.states_created");
    obs_forks_.Bump();
    if (config_.deterministic_state_ids)
        return DeriveChildId(parent.id(), parent.NextForkSeq());
    return next_state_id_++;
}

std::unique_ptr<State>
Engine::MakeInitialState()
{
    stats_.Bump("engine.states_created");
    const uint64_t id =
        config_.deterministic_state_ids ? 0 : next_state_id_++;
    auto initial = std::make_unique<State>(id, program_);
    initial->TopFrame().func = entry_func_;
    return initial;
}

bool
Engine::AdvanceState(State &state,
                     std::vector<std::unique_ptr<State>> *spawned)
{
    obs::ScopedSpan span(config_.obs.tracer, config_.obs.lane,
                         "engine.step", "engine");
    obs_steps_.Bump();
    if (config_.obs.tracing_on())
        span.AddArg("state", static_cast<int64_t>(state.id()));
    // Run the state until it forks, finishes, or exhausts its budget.
    while (!state.Finished()) {
        if (state.steps() >= config_.max_steps_per_state) {
            FinalizePath(state, PathOutcome::kLimit);
            break;
        }
        state.BumpSteps();
        ExecuteStep(state, spawned);
        if (!spawned->empty())
            break;
    }
    return state.Finished();
}

std::unique_ptr<State>
Engine::PopNext()
{
    ACHILLES_CHECK(!worklist_.empty());
    std::unique_ptr<State> next;
    switch (config_.order) {
      case SearchOrder::kDfs:
        next = std::move(worklist_.back());
        worklist_.pop_back();
        break;
      case SearchOrder::kBfs:
        next = std::move(worklist_.front());
        worklist_.pop_front();
        break;
      case SearchOrder::kRandom: {
        const size_t i = rng_.Below(worklist_.size());
        std::swap(worklist_[i], worklist_.back());
        next = std::move(worklist_.back());
        worklist_.pop_back();
        break;
      }
    }
    return next;
}

std::vector<PathResult>
Engine::Run()
{
    results_.clear();
    worklist_.clear();
    worklist_.push_back(MakeInitialState());

    while (!worklist_.empty() &&
           results_.size() < config_.max_finished_paths) {
        auto state = PopNext();
        std::vector<std::unique_ptr<State>> spawned;
        AdvanceState(*state, &spawned);
        for (auto &s : spawned) {
            if (worklist_.size() >= config_.max_states) {
                // Graceful degradation: finish the subtree as a limit
                // path instead of exploring it (keeps the engine usable
                // as a bounded-analysis library).
                FinalizeLimit(*s);
                continue;
            }
            worklist_.push_back(std::move(s));
        }
        if (!state->Finished())
            worklist_.push_back(std::move(state));
        frontier_.store(static_cast<int64_t>(worklist_.size()),
                        std::memory_order_relaxed);
    }
    frontier_.store(0, std::memory_order_relaxed);
    return std::move(results_);
}

}  // namespace symexec
}  // namespace achilles
