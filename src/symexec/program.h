// Achilles reproduction -- symbolic execution engine.
//
// The protocol DSL: a small typed imperative language in which the
// distributed-system nodes under test (clients and servers) are written.
// This substitutes for the x86 binaries the paper runs inside S2E -- the
// Achilles algorithm only consumes (symbolic message buffers, path
// constraints), which this engine produces the same way.
//
// Programs are built with ProgramBuilder, which emits a flat instruction
// list per function (control flow lowered to branches/jumps) so that
// execution states can be forked cheaply by copying a program counter.
//
// Environment model (the paper's S2E/LD_PRELOAD interception analogue):
//   ReadInput()      -- client "local input" syscall, returns fresh
//                       symbolic data
//   ReceiveMessage() -- server receive, yields the symbolic message
//   SendMessage()    -- client send (captures the message + constraints);
//                       server reply (drives accept classification)
//   MarkAccept/MarkReject, DropPath, MakeSymbolic, AssumeRange --
//                       the paper's Section 5.2 annotations

#ifndef ACHILLES_SYMEXEC_PROGRAM_H_
#define ACHILLES_SYMEXEC_PROGRAM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "smt/expr.h"
#include "support/logging.h"

namespace achilles {
namespace symexec {

// ---------------------------------------------------------------------
// DSL expressions
// ---------------------------------------------------------------------

/** Node type of a DSL expression. */
enum class DKind : uint8_t {
    kConst,
    kVarRef,    ///< named local variable
    kArrayRef,  ///< array cell read: name + index expression
    kOp,        ///< smt-kind operation over operand expressions
};

struct DExpr;
using DExprRef = std::shared_ptr<const DExpr>;

/**
 * DSL expression tree. Pure (no side effects); evaluated against an
 * execution state's symbolic store to yield an smt::ExprRef.
 */
struct DExpr
{
    DKind kind = DKind::kConst;
    uint32_t width = 0;
    uint64_t value = 0;       ///< const value / extract offset
    std::string name;         ///< var or array name
    smt::Kind op = smt::Kind::kConst;  ///< for kOp nodes
    std::vector<DExprRef> kids;
};

/**
 * Value wrapper providing operator overloading for readable protocol
 * code: `b.If(cmd == kRead && addr < 100, ...)`.
 *
 * Comparison operators return width-1 Vals; `&&`/`||` are provided as
 * And/Or on width-1 values (no short-circuit -- DSL expressions are
 * pure, so this is sound).
 */
class Val
{
  public:
    Val() = default;
    explicit Val(DExprRef node) : node_(std::move(node)) {}

    /** Literal constant of an explicit width. */
    static Val
    Const(uint32_t width, uint64_t value)
    {
        auto n = std::make_shared<DExpr>();
        n->kind = DKind::kConst;
        n->width = width;
        n->value = value & smt::WidthMask(width);
        return Val(n);
    }

    const DExprRef &node() const { return node_; }
    uint32_t width() const { return node_ ? node_->width : 0; }
    bool valid() const { return node_ != nullptr; }

    // Structural operations.
    Val ZExt(uint32_t width) const { return Resize(smt::Kind::kZExt, width); }
    Val SExt(uint32_t width) const { return Resize(smt::Kind::kSExt, width); }

    Val
    Extract(uint32_t offset, uint32_t width) const
    {
        auto n = std::make_shared<DExpr>();
        n->kind = DKind::kOp;
        n->op = smt::Kind::kExtract;
        n->width = width;
        n->value = offset;
        n->kids = {node_};
        return Val(n);
    }

    /** Concatenate: this becomes the high part. */
    Val
    Concat(const Val &low) const
    {
        auto n = std::make_shared<DExpr>();
        n->kind = DKind::kOp;
        n->op = smt::Kind::kConcat;
        n->width = width() + low.width();
        n->kids = {node_, low.node()};
        return Val(n);
    }

    // Arithmetic / bitwise operators.
    friend Val operator+(const Val &a, const Val &b)
    {
        return Binary(smt::Kind::kAdd, a, b);
    }
    friend Val operator-(const Val &a, const Val &b)
    {
        return Binary(smt::Kind::kSub, a, b);
    }
    friend Val operator*(const Val &a, const Val &b)
    {
        return Binary(smt::Kind::kMul, a, b);
    }
    friend Val operator/(const Val &a, const Val &b)
    {
        return Binary(smt::Kind::kUDiv, a, b);
    }
    friend Val operator%(const Val &a, const Val &b)
    {
        return Binary(smt::Kind::kURem, a, b);
    }
    friend Val operator&(const Val &a, const Val &b)
    {
        return Binary(smt::Kind::kAnd, a, b);
    }
    friend Val operator|(const Val &a, const Val &b)
    {
        return Binary(smt::Kind::kOr, a, b);
    }
    friend Val operator^(const Val &a, const Val &b)
    {
        return Binary(smt::Kind::kXor, a, b);
    }
    friend Val operator<<(const Val &a, const Val &b)
    {
        return Binary(smt::Kind::kShl, a, b);
    }
    friend Val operator>>(const Val &a, const Val &b)
    {
        return Binary(smt::Kind::kLShr, a, b);
    }
    Val
    operator~() const
    {
        auto n = std::make_shared<DExpr>();
        n->kind = DKind::kOp;
        n->op = smt::Kind::kNot;
        n->width = width();
        n->kids = {node_};
        return Val(n);
    }

    // Comparisons (width-1 results). Unsigned by default; signed
    // variants are explicit methods, mirroring how protocol code usually
    // treats message fields as unsigned.
    friend Val operator==(const Val &a, const Val &b)
    {
        return Compare(smt::Kind::kEq, a, b);
    }
    friend Val operator!=(const Val &a, const Val &b)
    {
        return !Compare(smt::Kind::kEq, a, b);
    }
    friend Val operator<(const Val &a, const Val &b)
    {
        return Compare(smt::Kind::kUlt, a, b);
    }
    friend Val operator<=(const Val &a, const Val &b)
    {
        return Compare(smt::Kind::kUle, a, b);
    }
    friend Val operator>(const Val &a, const Val &b)
    {
        return Compare(smt::Kind::kUlt, b, a);
    }
    friend Val operator>=(const Val &a, const Val &b)
    {
        return Compare(smt::Kind::kUle, b, a);
    }
    Val Slt(const Val &b) const { return Compare(smt::Kind::kSlt, *this, b); }
    Val Sle(const Val &b) const { return Compare(smt::Kind::kSle, *this, b); }
    Val Sgt(const Val &b) const { return Compare(smt::Kind::kSlt, b, *this); }
    Val Sge(const Val &b) const { return Compare(smt::Kind::kSle, b, *this); }

    /** Logical negation of a width-1 value. */
    Val
    operator!() const
    {
        ACHILLES_CHECK(width() == 1, "logical ! on non-boolean");
        return ~(*this);
    }
    friend Val operator&&(const Val &a, const Val &b)
    {
        ACHILLES_CHECK(a.width() == 1 && b.width() == 1);
        return a & b;
    }
    friend Val operator||(const Val &a, const Val &b)
    {
        ACHILLES_CHECK(a.width() == 1 && b.width() == 1);
        return a | b;
    }

    // Mixed Val/integer conveniences (the literal adopts the Val width).
    friend Val operator+(const Val &a, uint64_t c)
    {
        return a + Const(a.width(), c);
    }
    friend Val operator-(const Val &a, uint64_t c)
    {
        return a - Const(a.width(), c);
    }
    friend Val operator==(const Val &a, uint64_t c)
    {
        return a == Const(a.width(), c);
    }
    friend Val operator!=(const Val &a, uint64_t c)
    {
        return a != Const(a.width(), c);
    }
    friend Val operator<(const Val &a, uint64_t c)
    {
        return a < Const(a.width(), c);
    }
    friend Val operator<=(const Val &a, uint64_t c)
    {
        return a <= Const(a.width(), c);
    }
    friend Val operator>(const Val &a, uint64_t c)
    {
        return a > Const(a.width(), c);
    }
    friend Val operator>=(const Val &a, uint64_t c)
    {
        return a >= Const(a.width(), c);
    }
    friend Val operator&(const Val &a, uint64_t c)
    {
        return a & Const(a.width(), c);
    }
    friend Val operator^(const Val &a, uint64_t c)
    {
        return a ^ Const(a.width(), c);
    }

  private:
    static Val
    Binary(smt::Kind op, const Val &a, const Val &b)
    {
        ACHILLES_CHECK(a.width() == b.width(),
                       "width mismatch in DSL op: ", a.width(), " vs ",
                       b.width());
        auto n = std::make_shared<DExpr>();
        n->kind = DKind::kOp;
        n->op = op;
        n->width = a.width();
        n->kids = {a.node(), b.node()};
        return Val(n);
    }

    static Val
    Compare(smt::Kind op, const Val &a, const Val &b)
    {
        ACHILLES_CHECK(a.width() == b.width(),
                       "width mismatch in DSL cmp: ", a.width(), " vs ",
                       b.width());
        auto n = std::make_shared<DExpr>();
        n->kind = DKind::kOp;
        n->op = op;
        n->width = 1;
        n->kids = {a.node(), b.node()};
        return Val(n);
    }

    Val
    Resize(smt::Kind op, uint32_t new_width) const
    {
        auto n = std::make_shared<DExpr>();
        n->kind = DKind::kOp;
        n->op = op;
        n->width = new_width;
        n->kids = {node_};
        return Val(n);
    }

    DExprRef node_;
};

// ---------------------------------------------------------------------
// Instructions and programs
// ---------------------------------------------------------------------

/** Opcode of one lowered instruction. */
enum class IOp : uint8_t {
    kDeclare,       ///< declare local `dest` (width `a`), optional init e0
    kDeclArray,     ///< declare array `array`, elem width `a`, length `b`
    kAssign,        ///< dest = e0
    kAStore,        ///< array[e0] = e1
    kBranch,        ///< if (e0 != 0) goto a else goto b
    kJump,          ///< goto a
    kCall,          ///< dest = call function #a (args)
    kRet,           ///< return e0 (may be empty for void)
    kHalt,          ///< terminate the path
    kReadInput,     ///< dest = fresh symbolic input (width a)
    kRecv,          ///< fill `array` with the incoming message bytes
    kSend,          ///< send `array` (captures / marks reply)
    kMarkAccept,    ///< classify path as accepting and finalize
    kMarkReject,    ///< classify path as rejecting and finalize
    kAssume,        ///< constrain e0 != 0 (drop path if infeasible)
    kDropPath,      ///< silently kill the path
    kMakeSymbolic,  ///< dest = fresh unconstrained symbolic (width a)
};

/** One lowered instruction. */
struct Instr
{
    Instr() = default;
    Instr(IOp o) : op(o) {}  // NOLINT: implicit by design for Emit({op})

    IOp op = IOp::kHalt;
    std::string dest;
    std::string array;
    DExprRef e0;
    DExprRef e1;
    uint32_t a = 0;
    uint32_t b = 0;
    std::vector<DExprRef> args;
    std::string label;  ///< debug / annotation label
};

/** A function: parameters and a flat instruction list. */
struct Function
{
    std::string name;
    std::vector<std::pair<std::string, uint32_t>> params;  // name, width
    uint32_t ret_width = 0;  ///< 0 for void
    std::vector<Instr> instrs;
};

/** A complete DSL program; function 0 is the entry point. */
struct Program
{
    std::string name;
    std::vector<Function> functions;

    const Function &
    FunctionByIndex(uint32_t idx) const
    {
        ACHILLES_CHECK(idx < functions.size());
        return functions[idx];
    }

    int
    FindFunction(const std::string &fname) const
    {
        for (size_t i = 0; i < functions.size(); ++i)
            if (functions[i].name == fname)
                return static_cast<int>(i);
        return -1;
    }

    /** Total instruction count across functions (for stats). */
    size_t
    TotalInstructions() const
    {
        size_t n = 0;
        for (const auto &f : functions)
            n += f.instrs.size();
        return n;
    }
};

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

/**
 * Structured program construction. Control flow is expressed with
 * lambdas; the builder lowers it to branches/jumps with back-patching:
 *
 *   ProgramBuilder b("server");
 *   b.Function("main", {}, 0, [&] {
 *       Val msg0 = ...;
 *       b.If(msg0 == kRead, [&] { ... }, [&] { ... });
 *   });
 *   Program p = b.Build();
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string program_name)
    {
        program_.name = std::move(program_name);
    }

    /** Define a function; `body` runs immediately to emit instructions. */
    void
    Function(const std::string &name,
             const std::vector<std::pair<std::string, uint32_t>> &params,
             uint32_t ret_width, const std::function<void()> &body)
    {
        ACHILLES_CHECK(program_.FindFunction(name) < 0,
                       "duplicate function ", name);
        ACHILLES_CHECK(current_ < 0, "nested Function() definitions");
        achilles::symexec::Function fn;
        fn.name = name;
        fn.params = params;
        fn.ret_width = ret_width;
        program_.functions.push_back(std::move(fn));
        current_ = static_cast<int>(program_.functions.size()) - 1;
        body();
        // Implicit halt/return at the end of a function body.
        if (ret_width == 0)
            Emit({IOp::kRet});
        else
            Emit({IOp::kHalt});
        current_ = -1;
    }

    // -- Declarations --------------------------------------------------

    /** Declare and initialize a local; returns a reference Val. */
    Val
    Local(const std::string &name, uint32_t width, const Val &init = Val())
    {
        Instr ins{IOp::kDeclare};
        ins.dest = name;
        ins.a = width;
        if (init.valid()) {
            ACHILLES_CHECK(init.width() == width,
                           "init width mismatch for ", name);
            ins.e0 = init.node();
        }
        Emit(std::move(ins));
        return Var(name, width);
    }

    /** Reference an already-declared variable. */
    static Val
    Var(const std::string &name, uint32_t width)
    {
        auto n = std::make_shared<DExpr>();
        n->kind = DKind::kVarRef;
        n->width = width;
        n->name = name;
        return Val(n);
    }

    /** Declare a local array of `len` cells of `elem_width` bits. */
    void
    Array(const std::string &name, uint32_t elem_width, uint32_t len)
    {
        Instr ins{IOp::kDeclArray};
        ins.array = name;
        ins.a = elem_width;
        ins.b = len;
        Emit(std::move(ins));
    }

    /** Array cell read expression. */
    static Val
    ArrayAt(const std::string &name, uint32_t elem_width, const Val &index)
    {
        auto n = std::make_shared<DExpr>();
        n->kind = DKind::kArrayRef;
        n->width = elem_width;
        n->name = name;
        n->kids = {index.node()};
        return Val(n);
    }

    // -- Statements -----------------------------------------------------

    void
    Assign(const Val &var_ref, const Val &value)
    {
        ACHILLES_CHECK(var_ref.node() &&
                           var_ref.node()->kind == DKind::kVarRef,
                       "Assign target must be a variable reference");
        ACHILLES_CHECK(var_ref.width() == value.width(),
                       "assign width mismatch for ", var_ref.node()->name);
        Instr ins{IOp::kAssign};
        ins.dest = var_ref.node()->name;
        ins.e0 = value.node();
        Emit(std::move(ins));
    }

    void
    Store(const std::string &array, const Val &index, const Val &value)
    {
        Instr ins{IOp::kAStore};
        ins.array = array;
        ins.e0 = index.node();
        ins.e1 = value.node();
        Emit(std::move(ins));
    }

    void
    If(const Val &cond, const std::function<void()> &then_body,
       const std::function<void()> &else_body = nullptr)
    {
        ACHILLES_CHECK(cond.width() == 1, "If condition must be width 1");
        const uint32_t branch_pc = EmitIndex({IOp::kBranch});
        Cur()[branch_pc].e0 = cond.node();
        Cur()[branch_pc].a = branch_pc + 1;  // then starts right after
        then_body();
        if (else_body) {
            const uint32_t jump_pc = EmitIndex({IOp::kJump});
            Cur()[branch_pc].b = NextPc();
            else_body();
            Cur()[jump_pc].a = NextPc();
        } else {
            Cur()[branch_pc].b = NextPc();
        }
    }

    /**
     * Bounded loop: `cond` is re-evaluated at the head each iteration.
     * The engine's per-path step limit bounds runaway loops.
     */
    void
    While(const Val &cond, const std::function<void()> &body)
    {
        ACHILLES_CHECK(cond.width() == 1);
        const uint32_t head = NextPc();
        const uint32_t branch_pc = EmitIndex({IOp::kBranch});
        Cur()[branch_pc].e0 = cond.node();
        Cur()[branch_pc].a = branch_pc + 1;
        body();
        Instr jump{IOp::kJump};
        jump.a = head;
        Emit(std::move(jump));
        Cur()[branch_pc].b = NextPc();
    }

    /** Counted loop with a concrete trip count; unrolled at build time. */
    void
    For(uint32_t count, const std::function<void(uint32_t)> &body)
    {
        for (uint32_t i = 0; i < count; ++i)
            body(i);
    }

    /** Switch lowered to an if/else chain (paper Figure 2 style). */
    void
    Switch(const Val &scrutinee,
           const std::vector<std::pair<uint64_t, std::function<void()>>>
               &cases,
           const std::function<void()> &default_body = nullptr)
    {
        // Recursive lowering keeps back-patching simple.
        std::function<void(size_t)> lower = [&](size_t i) {
            if (i == cases.size()) {
                if (default_body)
                    default_body();
                return;
            }
            If(scrutinee == Val::Const(scrutinee.width(), cases[i].first),
               cases[i].second, [&] { lower(i + 1); });
        };
        lower(0);
    }

    /** Call a previously defined function; returns its value (if any). */
    Val
    Call(const std::string &fname, const std::vector<Val> &args)
    {
        const int idx = program_.FindFunction(fname);
        ACHILLES_CHECK(idx >= 0, "call to unknown function ", fname);
        const auto &callee = program_.functions[idx];
        ACHILLES_CHECK(args.size() == callee.params.size(),
                       "arity mismatch calling ", fname);
        Instr ins{IOp::kCall};
        ins.a = static_cast<uint32_t>(idx);
        for (size_t i = 0; i < args.size(); ++i) {
            ACHILLES_CHECK(args[i].width() == callee.params[i].second,
                           "arg width mismatch calling ", fname);
            ins.args.push_back(args[i].node());
        }
        Val result;
        if (callee.ret_width > 0) {
            const std::string tmp =
                "%call" + std::to_string(temp_counter_++);
            ins.dest = tmp;
            result = Var(tmp, callee.ret_width);
        }
        Emit(std::move(ins));
        return result;
    }

    void
    Return(const Val &value = Val())
    {
        Instr ins{IOp::kRet};
        ins.e0 = value.node();
        Emit(std::move(ins));
    }

    void Halt() { Emit({IOp::kHalt}); }

    // -- Environment / annotations (paper Section 5) --------------------

    /** Client local-input interception: fresh symbolic input. */
    Val
    ReadInput(const std::string &name, uint32_t width)
    {
        Instr ins{IOp::kReadInput};
        ins.dest = name;
        ins.a = width;
        ins.label = name;
        Emit(std::move(ins));
        return Var(name, width);
    }

    /** Server receive: binds the incoming message to `array`. */
    void
    ReceiveMessage(const std::string &array, uint32_t len)
    {
        Instr ins{IOp::kRecv};
        ins.array = array;
        ins.a = 8;
        ins.b = len;
        Emit(std::move(ins));
    }

    /** Send the contents of `array` (client capture / server reply). */
    void
    SendMessage(const std::string &array, const std::string &label = "")
    {
        Instr ins{IOp::kSend};
        ins.array = array;
        ins.label = label;
        Emit(std::move(ins));
    }

    /** mark_accept annotation: accepting path, triggers Trojan check. */
    void
    MarkAccept(const std::string &label = "")
    {
        Instr ins{IOp::kMarkAccept};
        ins.label = label;
        Emit(std::move(ins));
    }

    /** mark_reject annotation: rejecting path. */
    void
    MarkReject(const std::string &label = "")
    {
        Instr ins{IOp::kMarkReject};
        ins.label = label;
        Emit(std::move(ins));
    }

    /** Constrain the path (drop it where the condition cannot hold). */
    void
    Assume(const Val &cond)
    {
        ACHILLES_CHECK(cond.width() == 1);
        Instr ins{IOp::kAssume};
        ins.e0 = cond.node();
        Emit(std::move(ins));
    }

    /** drop_path annotation (guarded drop == Assume(!cond) sugar). */
    void DropPath() { Emit({IOp::kDropPath}); }

    /** make_symbolic annotation: havoc a variable. */
    Val
    MakeSymbolic(const std::string &name, uint32_t width)
    {
        Instr ins{IOp::kMakeSymbolic};
        ins.dest = name;
        ins.a = width;
        ins.label = name;
        Emit(std::move(ins));
        return Var(name, width);
    }

    /**
     * The paper's function over-approximation idiom
     * (function_start/return_symbolic/drop_path/function_end): returns a
     * fresh symbolic value constrained to [lo, hi].
     */
    Val
    OverApproximate(const std::string &name, uint32_t width, uint64_t lo,
                    uint64_t hi)
    {
        Val v = MakeSymbolic(name, width);
        Assume(v >= Val::Const(width, lo));
        Assume(v <= Val::Const(width, hi));
        return v;
    }

    Program Build() { return std::move(program_); }

  private:
    std::vector<Instr> &
    Cur()
    {
        ACHILLES_CHECK(current_ >= 0, "statement outside Function()");
        return program_.functions[current_].instrs;
    }

    uint32_t NextPc() { return static_cast<uint32_t>(Cur().size()); }

    void Emit(Instr ins) { Cur().push_back(std::move(ins)); }

    uint32_t
    EmitIndex(Instr ins)
    {
        const uint32_t pc = NextPc();
        Emit(std::move(ins));
        return pc;
    }

    Program program_;
    int current_ = -1;
    uint64_t temp_counter_ = 0;
};

}  // namespace symexec
}  // namespace achilles

#endif  // ACHILLES_SYMEXEC_PROGRAM_H_
