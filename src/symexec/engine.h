// Achilles reproduction -- symbolic execution engine.
//
// The forking interpreter. Executes a DSL program over symbolic state,
// forking at feasible symbolic branches (feasibility decided by the SMT
// solver), and produces one PathResult per finished path. A Listener
// lets the Achilles core hook branch events (to prune states that can no
// longer accept Trojan messages) and accept events (to emit Trojans), as
// described in Section 3.2 / Figure 7 of the paper.

#ifndef ACHILLES_SYMEXEC_ENGINE_H_
#define ACHILLES_SYMEXEC_ENGINE_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "obs/obs.h"
#include "smt/solver.h"
#include "support/rng.h"
#include "support/stats.h"
#include "symexec/program.h"
#include "symexec/state.h"

namespace achilles {
namespace symexec {

/** Execution mode: which side of the protocol is being analyzed. */
enum class Mode : uint8_t {
    kClient,  ///< capture sent messages; ReadInput is the symbolic source
    kServer,  ///< feed a symbolic message; classify accept/reject
};

/** State selection order. */
enum class SearchOrder : uint8_t { kDfs, kBfs, kRandom };

/** Engine tunables. */
struct EngineConfig
{
    SearchOrder order = SearchOrder::kDfs;
    /** Stop a client path at its first SendMessage (the paper analyzes
     *  one message per path). */
    bool stop_client_after_send = true;
    size_t max_states = 1 << 20;
    size_t max_steps_per_state = 1 << 16;
    size_t max_finished_paths = 1 << 20;
    uint64_t random_seed = 1;
    /**
     * Number of exploration workers. 1 (the default) keeps today's
     * serial in-engine worklist; values > 1 make the higher layers
     * (ServerExplorer, classic SE, client extraction) route the run
     * through the exec::ParallelEngine work-stealing subsystem.
     */
    size_t num_workers = 1;
    /**
     * Derive child state ids from the fork tree (hash of parent id and
     * per-state fork sequence) instead of a creation counter. Tree ids
     * are independent of exploration schedule, which is what lets a
     * parallel run order its results deterministically. Off by default:
     * serial runs keep the historical dense counter ids.
     */
    bool deterministic_state_ids = false;
    /**
     * Error-reply classification (the paper's "4xx status code"
     * extension of the default accept/reject rule): a server reply
     * whose first byte is concretely one of these values counts as an
     * error signal, not an acceptance.
     */
    std::vector<uint8_t> error_reply_codes;
    /**
     * Observability sinks (src/obs/obs.h). With a registry the engine
     * bumps live per-lane exploration counters (engine.steps) and, on
     * lane 0, publishes an engine.frontier gauge over its worklist; with
     * a tracer every AdvanceState records one span on the lane's track.
     * Default-off: a single inert-handle branch per step.
     */
    obs::ObsHandle obs;
};

/** Summary of one finished execution path. */
struct PathResult
{
    uint64_t state_id = 0;
    PathOutcome outcome = PathOutcome::kRunning;
    std::vector<smt::ExprRef> constraints;
    std::vector<SentMessage> sent;
    std::string accept_label;
    size_t depth = 0;
};

/** Hook interface for the Achilles core (and tests). */
class Listener
{
  public:
    virtual ~Listener() = default;

    /**
     * A state just took a branch, appending `constraint` to its path
     * condition. Return false to kill the state (prune the subtree).
     */
    virtual bool
    OnBranch(State &state, smt::ExprRef constraint)
    {
        (void)state;
        (void)constraint;
        return true;
    }

    /**
     * A path reached accepting classification. Fires during
     * finalization, after the finished-path budget admits the path, so
     * listeners never act on paths the budget drops.
     */
    virtual void OnAccept(State &state) { (void)state; }

    /** A path finished with any outcome. */
    virtual void OnPathFinished(const PathResult &result) { (void)result; }
};

/**
 * The symbolic execution engine.
 *
 * One Engine instance explores one program in one mode. The incoming
 * message variables (server mode) are created once per Run so that every
 * path constrains the same message variables -- the property the Trojan
 * difference computation relies on.
 */
class Engine
{
  public:
    Engine(smt::ExprContext *ctx, smt::Solver *solver,
           const Program *program, Mode mode, EngineConfig config = {});
    ~Engine();

    /** Provide the symbolic message bytes served by ReceiveMessage. */
    void SetIncomingMessage(std::vector<smt::ExprRef> bytes);
    const std::vector<smt::ExprRef> &incoming_message() const
    {
        return incoming_;
    }

    void SetListener(Listener *listener) { listener_ = listener; }

    /** Explore all paths; returns results for every finished path. */
    std::vector<PathResult> Run();

    // -- Stepping interface (used by exec::ParallelEngine workers) -----
    //
    // A worker drives one Engine instance over states it does not keep
    // in the engine: MakeInitialState() creates the root, AdvanceState()
    // runs one state until it forks or finishes, TakeResults() collects
    // the finished paths afterwards. Run() is implemented on top of the
    // same primitives.

    /** Create the entry state (id 0 when deterministic ids are on). */
    std::unique_ptr<State> MakeInitialState();

    /**
     * Run `state` until it forks (children in `spawned`), finishes, or
     * hits the per-state step budget. Returns true iff it finished.
     */
    bool AdvanceState(State &state,
                      std::vector<std::unique_ptr<State>> *spawned);

    /** Finish a state as kLimit (state budget exhausted at a fork). */
    void
    FinalizeLimit(State &state)
    {
        stats_.Bump("engine.state_budget_drops");
        FinalizePath(state, PathOutcome::kLimit);
    }

    /** Move the finished-path results out of the engine. */
    std::vector<PathResult>
    TakeResults()
    {
        return std::move(results_);
    }

    /**
     * Install a global admission check consulted before a path is
     * finalized (records + listener notification). Overrides the
     * engine-local max_finished_paths check; the parallel engine uses it
     * to enforce the path cap across all workers.
     */
    void SetFinalizeGate(std::function<bool()> gate)
    {
        finalize_gate_ = std::move(gate);
    }

    const StatsRegistry &stats() const { return stats_; }

  private:
    smt::ExprRef EvalExpr(State &state, const DExprRef &e);
    smt::ExprRef ReadArrayCell(State &state, ArrayObject &array,
                               smt::ExprRef index);
    void ExecuteStep(State &state,
                     std::vector<std::unique_ptr<State>> *spawned);
    void FinalizePath(State &state, PathOutcome outcome);
    bool Feasible(const State &state, smt::ExprRef extra);
    uint64_t NextChildId(State &parent);
    std::unique_ptr<State> PopNext();

    smt::ExprContext *ctx_;
    smt::Solver *solver_;
    const Program *program_;
    Mode mode_;
    EngineConfig config_;
    Listener *listener_ = nullptr;
    std::vector<smt::ExprRef> incoming_;
    uint32_t entry_func_ = 0;
    std::deque<std::unique_ptr<State>> worklist_;
    std::vector<PathResult> results_;
    uint64_t next_state_id_ = 0;
    std::function<bool()> finalize_gate_;
    Rng rng_;
    StatsRegistry stats_;
    /** Live obs instruments (inert when config_.obs is unset). */
    obs::MetricsRegistry::Counter obs_steps_;
    obs::MetricsRegistry::Counter obs_forks_;
    obs::MetricsRegistry::Counter obs_finished_;
    /** Serial-run frontier size, read by the lane-0 gauge from the
     *  heartbeat's sampler thread. */
    std::atomic<int64_t> frontier_{0};
};

}  // namespace symexec
}  // namespace achilles

#endif  // ACHILLES_SYMEXEC_ENGINE_H_
