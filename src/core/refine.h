// Achilles reproduction -- core library.
//
// Witness refinement and enumeration -- the paper's Section 4.1
// extensions:
//
//  * Refinement (the paper's CEGAR-style future work, implemented):
//    false positives arise when client symbolic execution was
//    incomplete -- a message may only be generatable on unexplored
//    client paths. ConfirmWitnesses re-executes each client *focused on
//    the concrete witness* (every intercepted input is still symbolic,
//    but the sent message is constrained to equal the witness); if some
//    client path can produce it, the witness is refuted.
//
//  * Enumeration: a Trojan witness carries one concrete example plus a
//    symbolic definition; EnumerateTrojans produces up to k distinct
//    concrete Trojans from the definition by model blocking, for fault
//    injection campaigns ("live fire drills").

#ifndef ACHILLES_CORE_REFINE_H_
#define ACHILLES_CORE_REFINE_H_

#include <vector>

#include "core/message.h"
#include "core/server_explorer.h"
#include "smt/solver.h"
#include "symexec/engine.h"

namespace achilles {
namespace core {

/** Verdict for one refined witness. */
enum class WitnessVerdict : uint8_t {
    kConfirmed,  ///< no client path can produce the concrete message
    kRefuted,    ///< some client path produces it: a false positive
};

/** Result of a refinement pass. */
struct RefinementResult
{
    std::vector<WitnessVerdict> verdicts;  ///< parallel to the input
    size_t confirmed = 0;
    size_t refuted = 0;
    /** Per-client-path solver queries actually issued. */
    size_t solver_queries = 0;
    /**
     * Queries answered by a previously extracted unsat core instead of
     * the solver: when "client path p cannot emit witness w" was
     * refuted by a core over p's constraints plus a few pinned bytes,
     * any other witness agreeing on those bytes is rejected by the same
     * core (pins are interned per (path, offset, value), so containment
     * is pointer membership). Only consulted for unbudgeted,
     * core-enabled solvers -- a budgeted check can answer kUnknown and
     * must never be short-circuited.
     */
    size_t core_skips = 0;
};

/**
 * Re-execute the clients focused on each witness's concrete message
 * (the paper's guided re-execution). A witness is refuted iff some
 * client path can emit exactly those analyzed bytes.
 *
 * The focused run is much cheaper than blind exploration: every branch
 * infeasible under the pinned message is cut immediately.
 */
RefinementResult ConfirmWitnesses(
    smt::ExprContext *ctx, smt::Solver *solver,
    const std::vector<const symexec::Program *> &clients,
    const MessageLayout &layout,
    const std::vector<TrojanWitness> &witnesses);

/**
 * Enumerate up to `max_count` distinct concrete Trojan messages from a
 * witness's symbolic definition by iterative model blocking over the
 * analyzed bytes. The witness's own concrete message is the first
 * entry.
 */
std::vector<std::vector<uint8_t>> EnumerateTrojans(
    smt::ExprContext *ctx, smt::Solver *solver,
    const MessageLayout &layout, const TrojanWitness &witness,
    size_t max_count);

}  // namespace core
}  // namespace achilles

#endif  // ACHILLES_CORE_REFINE_H_
