// Achilles reproduction -- core library.

#include "core/different_from.h"

#include <unordered_set>

namespace achilles {
namespace core {

namespace {

/** Per-predicate, per-field definition: value expression + constraints. */
struct FieldDef
{
    smt::ExprRef expr = nullptr;
    std::vector<smt::ExprRef> constraints;
    std::unordered_set<uint32_t> vars;
};

FieldDef
DefineField(smt::ExprContext *ctx, const MessageLayout *layout,
            const ClientPathPredicate &pred, const FieldSpec &field)
{
    FieldDef def;
    def.expr = layout->FieldExpr(ctx, pred.bytes, field);
    ctx->CollectVars(def.expr, &def.vars);
    // Constraints touching the field's variables (transitively closed:
    // constraints may link the field vars to further vars).
    bool changed = true;
    std::unordered_set<const smt::Expr *> included;
    while (changed) {
        changed = false;
        for (smt::ExprRef c : pred.constraints) {
            if (included.count(c))
                continue;
            std::unordered_set<uint32_t> cvars;
            ctx->CollectVars(c, &cvars);
            bool touches = false;
            for (uint32_t v : cvars) {
                if (def.vars.count(v)) {
                    touches = true;
                    break;
                }
            }
            if (touches) {
                included.insert(c);
                def.constraints.push_back(c);
                for (uint32_t v : cvars)
                    def.vars.insert(v);
                changed = true;
            }
        }
    }
    return def;
}

}  // namespace

void
DifferentFromMatrix::Compute(const std::vector<ClientPathPredicate> &preds,
                             NegateOperator *negate_op)
{
    per_field_.clear();
    const std::vector<FieldSpec> analyzed = layout_->AnalyzedFields();
    const size_t n = preds.size();

    // Field definitions for every (pred, field).
    std::vector<std::vector<FieldDef>> defs(n);
    for (size_t p = 0; p < n; ++p) {
        defs[p].reserve(analyzed.size());
        for (const FieldSpec &field : analyzed)
            defs[p].push_back(DefineField(ctx_, layout_, preds[p], field));
    }

    // A field is independent iff, in every predicate, its variable set
    // is disjoint from every other analyzed field's variable set.
    for (size_t f = 0; f < analyzed.size(); ++f) {
        bool independent = true;
        for (size_t p = 0; p < n && independent; ++p) {
            for (size_t g = 0; g < analyzed.size() && independent; ++g) {
                if (g == f)
                    continue;
                for (uint32_t v : defs[p][f].vars) {
                    if (defs[p][g].vars.count(v)) {
                        independent = false;
                        break;
                    }
                }
            }
        }
        if (!independent) {
            stats_.Bump("difffrom.dependent_fields");
            continue;
        }
        stats_.Bump("difffrom.independent_fields");

        FieldRelation rel;
        rel.class_of.resize(n);

        // Group predicates into value classes by canonical hash of the
        // field definition (expression + constraints, alpha-renamed).
        CanonicalHasher hasher(ctx_);
        std::unordered_map<uint64_t, uint32_t> class_by_hash;
        for (size_t p = 0; p < n; ++p) {
            std::vector<smt::ExprRef> key{defs[p][f].expr};
            key.insert(key.end(), defs[p][f].constraints.begin(),
                       defs[p][f].constraints.end());
            const uint64_t h = hasher.HashExprs(key);
            auto [it, inserted] = class_by_hash.emplace(
                h, static_cast<uint32_t>(rel.members.size()));
            if (inserted)
                rel.members.emplace_back();
            rel.class_of[p] = it->second;
            rel.members[it->second].push_back(static_cast<uint32_t>(p));
        }
        const size_t c = rel.members.size();
        stats_.Bump("difffrom.value_classes", static_cast<int64_t>(c));

        // Pairwise class queries: does class A contain a field value
        // outside class B's value set?
        rel.different.assign(c, std::vector<uint8_t>(c, 0));
        smt::ExprRef probe =
            ctx_->FreshVar("probe_" + analyzed[f].name,
                           analyzed[f].size * 8);
        for (size_t a = 0; a < c; ++a) {
            const uint32_t pa = rel.members[a][0];
            for (size_t b = 0; b < c; ++b) {
                if (a == b)
                    continue;  // same definition: never different
                const uint32_t pb = rel.members[b][0];
                smt::ExprRef neg_b = negate_op->NegateFieldAgainst(
                    preds[pb], analyzed[f], probe);
                if (neg_b == nullptr) {
                    // Negation abandoned: cannot demonstrate difference.
                    continue;
                }
                std::vector<smt::ExprRef> query = defs[pa][f].constraints;
                query.push_back(ctx_->MakeEq(probe, defs[pa][f].expr));
                query.push_back(neg_b);
                stats_.Bump("difffrom.solver_queries");
                if (solver_->CheckSat(query) == smt::CheckResult::kSat)
                    rel.different[a][b] = 1;
            }
        }
        per_field_.emplace(analyzed[f].name, std::move(rel));
        field_by_token_.emplace(FieldToken(analyzed[f].name),
                                analyzed[f].name);
    }
}

uint64_t
DifferentFromMatrix::FieldToken(const std::string &field)
{
    // FNV-1a over the field name alone: stable across runs and builds,
    // which warm-start persistence relies on -- overlay entries carry
    // tokens in snapshots, and a later run's matrix must resolve them
    // to the same fields.
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : field)
        h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ull;
    return h;
}

bool
DifferentFromMatrix::OverlaySubsumed(exec::PruneIndex *overlay,
                                     size_t consumer,
                                     const exec::PruneFpVec &path_set,
                                     const exec::PruneFpVec &match_set,
                                     std::string *field) const
{
    if (overlay == nullptr)
        return false;
    // No independent fields means no token could ever resolve below;
    // skip the index probe (and its fingerprint hashing) outright.
    if (field_by_token_.empty())
        return false;
    uint64_t token = 0;
    if (!overlay->OverlaySubsumes(consumer, path_set, match_set,
                                  &token)) {
        return false;
    }
    auto it = field_by_token_.find(token);
    if (it == field_by_token_.end())
        return false;  // not one of this matrix's independent fields
    if (field != nullptr)
        *field = it->second;
    return true;
}

bool
DifferentFromMatrix::Different(size_t i, size_t j,
                               const std::string &field) const
{
    auto it = per_field_.find(field);
    if (it == per_field_.end())
        return false;
    const FieldRelation &rel = it->second;
    ACHILLES_CHECK(i < rel.class_of.size() && j < rel.class_of.size());
    const uint32_t ci = rel.class_of[i];
    const uint32_t cj = rel.class_of[j];
    if (ci == cj)
        return false;
    return rel.different[ci][cj] != 0;
}

std::vector<uint32_t>
DifferentFromMatrix::SameValueClass(size_t i, const std::string &field) const
{
    auto it = per_field_.find(field);
    if (it == per_field_.end())
        return {};
    const FieldRelation &rel = it->second;
    ACHILLES_CHECK(i < rel.class_of.size());
    return rel.members[rel.class_of[i]];
}

}  // namespace core
}  // namespace achilles
