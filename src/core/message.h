// Achilles reproduction -- core library.
//
// Message layout descriptions. Achilles reasons about messages field by
// field: the negate operator produces per-field negations, the
// differentFrom matrix is indexed by field, and masks hide fields from
// the Trojan analysis (paper Section 5.2). A MessageLayout names the
// byte ranges of a protocol's message fields.

#ifndef ACHILLES_CORE_MESSAGE_H_
#define ACHILLES_CORE_MESSAGE_H_

#include <set>
#include <string>
#include <vector>

#include "smt/expr.h"
#include "support/logging.h"

namespace achilles {
namespace core {

/** One named field: a byte range inside the message buffer. */
struct FieldSpec
{
    std::string name;
    uint32_t offset = 0;  ///< first byte
    uint32_t size = 1;    ///< size in bytes (1..8)
};

/**
 * Byte-level layout of a protocol message.
 *
 * Multi-byte fields are little-endian (byte `offset` is the least
 * significant); this only affects how field values are rendered, not
 * what the analysis can express.
 */
class MessageLayout
{
  public:
    MessageLayout() = default;
    explicit MessageLayout(uint32_t length) : length_(length) {}

    /** Append a field at the given offset. */
    MessageLayout &
    AddField(const std::string &name, uint32_t offset, uint32_t size)
    {
        ACHILLES_CHECK(size >= 1 && size <= 8, "field size out of range");
        ACHILLES_CHECK(offset + size <= length_, "field ", name,
                       " exceeds message length");
        fields_.push_back(FieldSpec{name, offset, size});
        return *this;
    }

    /**
     * Hide a field from the Trojan analysis (the paper's mask): its
     * negations are not generated and it is skipped in differentFrom.
     */
    MessageLayout &
    Mask(const std::string &name)
    {
        ACHILLES_CHECK(Find(name) != nullptr, "masking unknown field ",
                       name);
        masked_.insert(name);
        return *this;
    }

    uint32_t length() const { return length_; }
    const std::vector<FieldSpec> &fields() const { return fields_; }
    bool IsMasked(const std::string &name) const
    {
        return masked_.count(name) != 0;
    }

    const FieldSpec *
    Find(const std::string &name) const
    {
        for (const auto &f : fields_)
            if (f.name == name)
                return &f;
        return nullptr;
    }

    /** Fields participating in the analysis (unmasked), in order. */
    std::vector<FieldSpec>
    AnalyzedFields() const
    {
        std::vector<FieldSpec> out;
        for (const auto &f : fields_)
            if (!IsMasked(f.name))
                out.push_back(f);
        return out;
    }

    /**
     * Build the field's value expression from a message byte vector
     * (little-endian concat).
     */
    smt::ExprRef
    FieldExpr(smt::ExprContext *ctx,
              const std::vector<smt::ExprRef> &bytes,
              const FieldSpec &field) const
    {
        ACHILLES_CHECK(field.offset + field.size <= bytes.size(),
                       "message shorter than field ", field.name);
        smt::ExprRef value = bytes[field.offset];
        for (uint32_t i = 1; i < field.size; ++i)
            value = ctx->MakeConcat(bytes[field.offset + i], value);
        return value;
    }

    /** Field (if any) covering the given byte offset. */
    const FieldSpec *
    FieldAtByte(uint32_t byte_offset) const
    {
        for (const auto &f : fields_) {
            if (byte_offset >= f.offset && byte_offset < f.offset + f.size)
                return &f;
        }
        return nullptr;
    }

  private:
    uint32_t length_ = 0;
    std::vector<FieldSpec> fields_;
    std::set<std::string> masked_;
};

}  // namespace core
}  // namespace achilles

#endif  // ACHILLES_CORE_MESSAGE_H_
