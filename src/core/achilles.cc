// Achilles reproduction -- core library.

#include "core/achilles.h"

#include "support/timer.h"

namespace achilles {
namespace core {

AchillesResult
RunAchilles(smt::ExprContext *ctx, smt::Solver *solver,
            const AchillesConfig &config)
{
    ACHILLES_CHECK(config.server != nullptr, "no server program");
    ACHILLES_CHECK(!config.clients.empty(), "no client programs");

    AchillesResult result;
    Timer timer;

    // Phase 1: client predicate extraction.
    result.client_predicate = ExtractClientPredicate(
        ctx, solver, config.clients, config.layout, config.client_config);
    result.timings.client_extraction = timer.Seconds();
    result.preprocessing_stats.Set(
        "achilles.client_workers",
        static_cast<int64_t>(config.client_config.engine.num_workers));

    // Preprocessing: negations + differentFrom. The negate operator
    // needs the server's symbolic message up front, so the explorer is
    // constructed here (it creates the message variables) and the
    // negations are computed against it.
    timer.Reset();
    DifferentFromMatrix different_from(ctx, solver, &config.layout);
    // The server's symbolic message variables are created here and shared
    // between the negate operator (negations must constrain the same
    // variables the server paths do) and the explorer.
    std::vector<smt::ExprRef> server_message;
    for (uint32_t i = 0; i < config.layout.length(); ++i)
        server_message.push_back(ctx->FreshVar("msg", 8));

    NegateOperator negate_op(ctx, solver, &config.layout, server_message);
    result.negations.reserve(result.client_predicate.paths.size());
    for (const ClientPathPredicate &pred : result.client_predicate.paths)
        result.negations.push_back(negate_op.Negate(pred));

    if (config.compute_different_from &&
        config.server_config.use_different_from) {
        different_from.Compute(result.client_predicate.paths, &negate_op);
        result.preprocessing_stats.Merge(different_from.stats());
    }
    result.negate_stats = negate_op.stats();
    result.timings.preprocessing = timer.Seconds();

    // Phase 2: server analysis. With num_workers > 1 this phase -- the
    // dominant cost in the paper's Section 6.2 breakdown -- runs on the
    // work-stealing worker pool; the timing below is wall-clock either
    // way, so speedup shows up directly in the phase breakdown.
    timer.Reset();
    ServerExplorer explorer(ctx, solver, config.server, &config.layout,
                            &result.client_predicate.paths,
                            &result.negations, &different_from,
                            config.server_config, server_message);
    result.server = explorer.Run();
    result.timings.server_analysis = timer.Seconds();
    result.server.stats.Set(
        "achilles.server_workers",
        static_cast<int64_t>(config.server_config.engine.num_workers));
    return result;
}

}  // namespace core
}  // namespace achilles
