// Achilles reproduction -- core library.

#include "core/achilles.h"

#include "obs/trace.h"
#include "support/timer.h"

namespace achilles {
namespace core {

AchillesResult
RunAchilles(smt::ExprContext *ctx, smt::Solver *solver,
            const AchillesConfig &config)
{
    ACHILLES_CHECK(config.server != nullptr, "no server program");
    ACHILLES_CHECK(!config.clients.empty(), "no client programs");

    // Propagate the pipeline's obs handle into the phase configs unless
    // a caller already wired those explicitly.
    ClientExtractorConfig client_config = config.client_config;
    if (!client_config.engine.obs.enabled())
        client_config.engine.obs = config.obs;
    ServerExplorerConfig server_config = config.server_config;
    if (!server_config.engine.obs.enabled())
        server_config.engine.obs = config.obs;
    if (server_config.knowledge_in == nullptr)
        server_config.knowledge_in = config.knowledge_in;
    if (server_config.knowledge_out == nullptr)
        server_config.knowledge_out = config.knowledge_out;

    AchillesResult result;
    Timer timer;

    // Phase 1: client predicate extraction.
    {
        obs::ScopedSpan span(config.obs.tracer, config.obs.lane,
                             "phase.client_extraction", "pipeline");
        result.client_predicate = ExtractClientPredicate(
            ctx, solver, config.clients, config.layout, client_config);
        span.AddArg("paths", static_cast<int64_t>(
                                 result.client_predicate.paths.size()));
    }
    result.timings.client_extraction = timer.Seconds();
    result.preprocessing_stats.Set(
        "achilles.client_workers",
        static_cast<int64_t>(client_config.engine.num_workers));

    // Preprocessing: negations + differentFrom. The negate operator
    // needs the server's symbolic message up front, so the explorer is
    // constructed here (it creates the message variables) and the
    // negations are computed against it.
    timer.Reset();
    DifferentFromMatrix different_from(ctx, solver, &config.layout);
    // The server's symbolic message variables are created here and shared
    // between the negate operator (negations must constrain the same
    // variables the server paths do) and the explorer.
    std::vector<smt::ExprRef> server_message;
    for (uint32_t i = 0; i < config.layout.length(); ++i)
        server_message.push_back(ctx->FreshVar("msg", 8));

    {
        obs::ScopedSpan span(config.obs.tracer, config.obs.lane,
                             "phase.preprocessing", "pipeline");
        NegateOperator negate_op(ctx, solver, &config.layout,
                                 server_message);
        result.negations.reserve(result.client_predicate.paths.size());
        for (const ClientPathPredicate &pred :
             result.client_predicate.paths)
            result.negations.push_back(negate_op.Negate(pred));

        if (config.compute_different_from &&
            server_config.use_different_from) {
            different_from.Compute(result.client_predicate.paths,
                                   &negate_op);
            result.preprocessing_stats.Merge(different_from.stats());
        }
        result.negate_stats = negate_op.stats();
        span.AddArg("negations",
                    static_cast<int64_t>(result.negations.size()));
    }
    result.timings.preprocessing = timer.Seconds();

    // Phase 2: server analysis. With num_workers > 1 this phase -- the
    // dominant cost in the paper's Section 6.2 breakdown -- runs on the
    // work-stealing worker pool; the timing below is wall-clock either
    // way, so speedup shows up directly in the phase breakdown.
    timer.Reset();
    {
        obs::ScopedSpan span(config.obs.tracer, config.obs.lane,
                             "phase.server_analysis", "pipeline");
        ServerExplorer explorer(ctx, solver, config.server, &config.layout,
                                &result.client_predicate.paths,
                                &result.negations, &different_from,
                                server_config, server_message);
        result.server = explorer.Run();
        span.AddArg("trojans",
                    static_cast<int64_t>(result.server.trojans.size()));
    }
    result.timings.server_analysis = timer.Seconds();
    result.server.stats.Set(
        "achilles.server_workers",
        static_cast<int64_t>(server_config.engine.num_workers));

    // Fold the run's observability into the result: the merge-at-join
    // bags first, the live registry's aggregate last -- a few names
    // (e.g. solver.queries) exist in both, and the registry's value is
    // the run-wide total where the home solver's bag only saw the
    // serial phases.
    result.report.Add(result.preprocessing_stats);
    result.report.Add(result.server.stats);
    result.report.Add(solver->stats());
    if (config.obs.metrics_on())
        result.report.Add(*config.obs.registry);
    if (config.obs.tracing_on())
        result.report.AddTrace(*config.obs.tracer);
    return result;
}

}  // namespace core
}  // namespace achilles
