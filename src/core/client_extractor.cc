// Achilles reproduction -- core library.

#include "core/client_extractor.h"

#include <unordered_set>

#include "exec/worker.h"

namespace achilles {
namespace core {

ClientPredicate
ExtractClientPredicate(smt::ExprContext *ctx, smt::Solver *solver,
                       const std::vector<const symexec::Program *> &clients,
                       const MessageLayout &layout,
                       const ClientExtractorConfig &config)
{
    ClientPredicate out;
    CanonicalHasher hasher(ctx);
    std::unordered_set<uint64_t> seen;
    uint64_t next_id = 0;

    for (const symexec::Program *client : clients) {
        // With num_workers > 1 extraction runs on the worker pool:
        // client paths are independent, and the ParallelEngine returns
        // them home-translated in a schedule-independent order, so
        // predicate ids stay stable.
        const std::vector<symexec::PathResult> paths =
            exec::RunExploration(ctx, solver, client,
                                 symexec::Mode::kClient, config.engine,
                                 {}, &out.stats);
        for (const symexec::PathResult &path : paths) {
            if (path.outcome != symexec::PathOutcome::kClientDone)
                continue;
            for (const symexec::SentMessage &msg : path.sent) {
                if (msg.bytes.size() < layout.length()) {
                    out.stats.Bump("client.short_messages_skipped");
                    continue;
                }
                ClientPathPredicate pred;
                pred.id = next_id;
                pred.origin = client->name;
                pred.bytes = msg.bytes;
                pred.constraints = path.constraints;

                if (config.deduplicate) {
                    std::vector<smt::ExprRef> key = pred.bytes;
                    key.insert(key.end(), pred.constraints.begin(),
                               pred.constraints.end());
                    const uint64_t h = hasher.HashExprs(key);
                    if (!seen.insert(h).second) {
                        out.stats.Bump("client.duplicate_predicates");
                        continue;
                    }
                }
                ++next_id;
                out.paths.push_back(std::move(pred));
            }
        }
    }
    out.stats.Set("client.predicates",
                  static_cast<int64_t>(out.paths.size()));
    return out;
}

}  // namespace core
}  // namespace achilles
