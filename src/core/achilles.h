// Achilles reproduction -- core library.
//
// The public facade: configure a client/server pair plus a message
// layout, call RunAchilles(), get Trojan witnesses with per-phase
// timings. This mirrors the two-phase pipeline of the paper:
//
//   phase 1: extract the client predicate PC       (ExtractClientPredicate)
//   preprocessing: negate PC, compute differentFrom (NegateOperator /
//                                                    DifferentFromMatrix)
//   phase 2: explore the server, compute Trojans    (ServerExplorer)

#ifndef ACHILLES_CORE_ACHILLES_H_
#define ACHILLES_CORE_ACHILLES_H_

#include <vector>

#include "core/client_extractor.h"
#include "core/different_from.h"
#include "core/message.h"
#include "core/negate.h"
#include "core/server_explorer.h"
#include "obs/obs.h"
#include "obs/run_report.h"
#include "smt/solver.h"
#include "symexec/program.h"

namespace achilles {
namespace core {

/** Full-pipeline configuration. */
struct AchillesConfig
{
    MessageLayout layout;
    std::vector<const symexec::Program *> clients;
    const symexec::Program *server = nullptr;
    ClientExtractorConfig client_config;
    ServerExplorerConfig server_config;
    /** Compute the differentFrom matrix (preprocessing, 3.3 opt 2). */
    bool compute_different_from = true;
    /**
     * Observability sinks for the whole pipeline (src/obs/obs.h). When
     * set, RunAchilles records one span per pipeline phase on lane 0,
     * propagates the handle into the client-extraction and
     * server-exploration engine configs (unless those already carry
     * one), and folds the registry's aggregate plus trace accounting
     * into AchillesResult::report. The solver's own instrumentation is
     * configured at solver construction (SolverConfig::obs) -- pass the
     * same registry/tracer there.
     */
    obs::ObsHandle obs;
    /**
     * Warm-start knowledge persistence (src/persist/snapshot.h):
     * `knowledge_in` (if set) is restored into the server-exploration
     * knowledge stores before the exploration starts, and
     * `knowledge_out` (if set) receives a capture of those stores when
     * it finishes. Both forward into ServerExplorerConfig; explicit
     * server_config pointers take precedence.
     */
    const persist::KnowledgeSnapshot *knowledge_in = nullptr;
    persist::KnowledgeSnapshot *knowledge_out = nullptr;
};

/** Wall-clock seconds per pipeline phase (paper Section 6.2 breakdown). */
struct PhaseTimings
{
    double client_extraction = 0.0;
    double preprocessing = 0.0;
    double server_analysis = 0.0;
    double Total() const
    {
        return client_extraction + preprocessing + server_analysis;
    }
};

/** Full-pipeline result. */
struct AchillesResult
{
    ClientPredicate client_predicate;
    std::vector<NegatedPredicate> negations;
    ServerAnalysis server;
    PhaseTimings timings;
    NegateStats negate_stats;
    StatsRegistry preprocessing_stats;
    /** End-of-run observability summary (empty when AchillesConfig::obs
     *  is unset): registry aggregate, merge-at-join bags, trace volume. */
    obs::RunReport report;
};

/** Run the complete Achilles pipeline. */
AchillesResult RunAchilles(smt::ExprContext *ctx, smt::Solver *solver,
                           const AchillesConfig &config);

}  // namespace core
}  // namespace achilles

#endif  // ACHILLES_CORE_ACHILLES_H_
