// Achilles reproduction -- core library.
//
// Phase 2 of Achilles: explore the server on an unconstrained symbolic
// message while incrementally searching for Trojan messages (paper
// Sections 3.2-3.3, Figure 7).
//
// For every execution state the explorer tracks the set of client path
// predicates whose messages can still trigger it. At each symbolic
// branch it:
//   1. re-checks which client predicates still match (dropping the rest,
//      transitively via the differentFrom matrix for independent-field
//      branches), and
//   2. checks whether the state can still be triggered by any Trojan
//      message (pathS ∧ negate(pathC_i) for the still-live i); if not,
//      the state is pruned from the exploration.
// When a state reaches accepting classification, the Trojan query is
// satisfiable by construction; its model is emitted as a concrete Trojan
// witness together with the defining symbolic expression.

#ifndef ACHILLES_CORE_SERVER_EXPLORER_H_
#define ACHILLES_CORE_SERVER_EXPLORER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/different_from.h"
#include "core/message.h"
#include "core/negate.h"
#include "core/path_predicate.h"
#include "exec/prune_index.h"
#include "smt/solver.h"
#include "support/stats.h"
#include "support/timer.h"
#include "symexec/engine.h"

namespace achilles {

namespace persist {
struct KnowledgeSnapshot;
}  // namespace persist

namespace core {

/** How Trojan messages are computed relative to the exploration. */
enum class SearchMode : uint8_t
{
    /** The paper's Achilles: incremental checks + pruning during the
     *  server exploration. */
    kIncremental,
    /** Section 6.4 baseline: plain symbolic execution first, Trojan
     *  differencing a posteriori on every accepting path. */
    kAPosteriori,
};

/** Explorer tunables (each optimization can be ablated independently). */
struct ServerExplorerConfig
{
    symexec::EngineConfig engine;
    SearchMode mode = SearchMode::kIncremental;
    /** Drop client predicates that stop matching a state (3.3, opt 1). */
    bool drop_client_predicates = true;
    /** Use the differentFrom matrix on independent-field branches
     *  (3.3, opt 2). */
    bool use_different_from = true;
    /** Prune states that no Trojan message can trigger (3.2). */
    bool prune_trojan_free_states = true;
    /**
     * Consume unsat cores from the solver to drop every predicate a
     * refutation transitively implicates (not just the one under test)
     * and to subsume repeat Trojan refutations without a solver call.
     * Core-guided drops only ever accelerate decisions the plain query
     * path would make identically (the core proves the sibling query
     * UNSAT outright, or re-enters the differentFrom value-class rule
     * with the core's field instead of the branch constraint's), so
     * live sets -- and therefore witness sets -- are bitwise identical
     * with the toggle on or off. Never consulted when the solver runs
     * budgeted queries (flat max_conflicts >= 0 or stream-level
     * budgets): a budget can answer kUnknown, and nothing may be
     * dropped on kUnknown.
     */
    bool use_unsat_cores = true;
    /**
     * Consult and feed the run's shared pruning knowledge base
     * (exec::PruneIndex): the cross-state Trojan-core subsumption
     * index and the runtime differentFrom overlay. Every hit answers
     * exactly what the skipped solver query would have answered, so
     * witness sets are bitwise identical with the index on or off;
     * like all core reuse it is inert on budgeted solvers.
     */
    bool use_prune_index = true;
    /** Entry caps for the explorer-owned index (serial runs) and the
     *  ParallelEngine-owned one (multi-worker runs). */
    size_t prune_core_cap = 1024;
    size_t prune_overlay_cap = 1024;
    /**
     * Stream-level conflict budget for the Trojan-pruning query stream
     * (disabled by default). When enabled, pruning queries run on a
     * dedicated budgeted solver: a kUnknown answer keeps the state (no
     * witness is ever dropped) and, per the unbudgeted() gate, no core
     * is recorded or consumed on that stream. Match queries and
     * witness-producing queries stay on the main unbudgeted solver.
     */
    smt::StreamBudget trojan_stream_budget;
    /**
     * Concrete pre-filter over the solver's standing model: before any
     * solver call, evaluate the query's assertions under the last
     * satisfying assignment the solver left standing
     * (Solver::StandingModel, pure concrete evaluation via smt/eval).
     * A query every assertion of which evaluates true is kSat by
     * construction -- the standing values are a genuine assignment --
     * so match checks answer "still matches" and pruning checks answer
     * "still Trojan-triggerable" with zero solver work. The filter can
     * only ever answer kSat (no assignment satisfies an unsatisfiable
     * query), so kUnsat decisions -- drops, prunes, cores -- are taken
     * by exactly the same queries as with the filter off, and witness
     * sets are bitwise identical. On by default (it is a pure win on
     * every corpus protocol and witness-identical by construction);
     * ablation grids that count solver calls or cache entries turn it
     * off explicitly to measure the unfiltered stream.
     */
    bool use_concrete_prefilter = true;
    /**
     * Batched all-sat sweep over the per-branch predicate-match stream:
     * instead of one CheckSatAssuming per undecided live predicate,
     * HandleBranch collects the residue (after differentFrom, overlay,
     * core and prefilter decisions) and answers it with a single
     * Solver::CheckSatBatch pass -- per-guard verdicts enumerated from
     * one incremental search tree. Verdict-exact: every group gets the
     * same kSat/kUnsat answer the per-predicate loop would compute, so
     * survivor sets and witness bytes are bitwise identical. Batch
     * kUnsat verdicts carry no cores, so core-guided transitive drops
     * do not fire inside a sweep (the verdicts themselves already cover
     * every swept predicate; only the core-ablation *query counts*
     * differ, which is why the toggle defaults off and the --batch
     * ablation grid measures it explicitly). On budgeted solvers the
     * facade falls back to per-group queries with per-group kUnknown
     * conservatism: an exhausted budget mid-sweep keeps every
     * unanswered predicate alive.
     */
    bool use_batch_sweep = false;
    /**
     * Warm-start knowledge to import before exploring (null = cold
     * start). Serial runs restore into the home PruneIndex; parallel
     * runs restore into the ParallelEngine's shared stores before any
     * worker thread starts. Restored facts only ever skip queries whose
     * answers they already are, so witness sets are bitwise identical
     * to a cold run's at any worker count.
     */
    const persist::KnowledgeSnapshot *knowledge_in = nullptr;
    /** When set, the run's knowledge stores are captured (appended)
     *  here after exploration finishes. */
    persist::KnowledgeSnapshot *knowledge_out = nullptr;
};

/**
 * Preset for service deployments (ROADMAP "Stream-budget adoption in
 * the explorer"): bound worst-case exploration latency by stream-
 * budgeting the Trojan-pruning stream while keeping predicate-match
 * and witness-producing queries unbudgeted. Pruning degrades
 * conservatively under the budget -- states the solver cannot cheaply
 * refute stay alive -- so the witness set is unchanged.
 */
ServerExplorerConfig BudgetedExplorationPreset(
    ServerExplorerConfig base = {});

/** A discovered Trojan message. */
struct TrojanWitness
{
    /** Id of the server path (engine state) that accepts it. */
    uint64_t server_path_id = 0;
    /** Label of the accept marker (or "" for the default rule). */
    std::string accept_label;
    /** Defining constraint set: server path condition + negations. */
    std::vector<smt::ExprRef> definition;
    /** A concrete example message (paper: emitted for fault injection). */
    std::vector<uint8_t> concrete;
    /** Variable ids of the message bytes the definition constrains
     *  (index == byte offset); lets callers re-solve the definition
     *  with extra pins or enumerate further Trojans. */
    std::vector<uint32_t> message_vars;
    /** True when valid (client-generatable) messages share this server
     *  path -- Figure 7's "bundled" case. */
    bool bundled_with_valid = false;
    /** Seconds into server analysis when this witness was produced. */
    double discovered_at_seconds = 0.0;
    /** Symbolic branch depth of the accepting path. */
    size_t path_depth = 0;
};

/** One (path length, live predicate count) sample for Figure 11. */
struct LiveSetSample
{
    size_t path_length = 0;
    size_t live_predicates = 0;
};

/** Result of the server analysis phase. */
struct ServerAnalysis
{
    std::vector<TrojanWitness> trojans;
    /** All accepting paths (for the classic-SE comparison). */
    std::vector<symexec::PathResult> accepting_paths;
    std::vector<LiveSetSample> live_samples;
    StatsRegistry stats;
    double seconds = 0.0;
};

/**
 * The server exploration + Trojan search driver.
 *
 * Usage: construct with the preprocessed client predicate data, then
 * Run(). The same instance is not reusable.
 *
 * With config.engine.num_workers > 1 the exploration runs on the
 * exec::ParallelEngine work-stealing pool: each worker evaluates the
 * incremental checks against bridge-translated predicate tables with
 * its own solver behind the shared query cache, and the merged analysis
 * (witness definitions re-homed, ordered by path id) is identical to a
 * serial run's.
 */
class ServerExplorer : public symexec::Listener
{
  public:
    /**
     * `message` must be the same symbolic byte variables the negations
     * were computed against (NegateOperator's server message); if empty,
     * fresh variables are created (only valid when `negations` is empty
     * or was produced for those variables).
     */
    ServerExplorer(smt::ExprContext *ctx, smt::Solver *solver,
                   const symexec::Program *server,
                   const MessageLayout *layout,
                   const std::vector<ClientPathPredicate> *preds,
                   const std::vector<NegatedPredicate> *negations,
                   const DifferentFromMatrix *different_from,
                   ServerExplorerConfig config = {},
                   std::vector<smt::ExprRef> message = {});

    /** Run the analysis to completion. */
    ServerAnalysis Run();

    /** The symbolic message byte variables the server is analyzed on. */
    const std::vector<smt::ExprRef> &message_bytes() const
    {
        return message_;
    }

    // symexec::Listener interface.
    bool OnBranch(symexec::State &state, smt::ExprRef constraint) override;
    void OnAccept(symexec::State &state) override;

  private:
    struct LiveSet;
    class WorkerListener;
    class WorkerFactory;
    friend class WorkerListener;

    /**
     * One data plane for the exploration logic: the context, solver and
     * per-predicate expression tables the logic runs against, plus the
     * sinks it writes to. The serial path uses a single home plane; with
     * num_workers > 1 each worker gets a plane of bridge-translated
     * expressions, its own CachedSolver and private sinks, so the
     * LiveSet bookkeeping and witness emission never share mutable
     * state across threads. Cross-plane pruning knowledge flows only
     * through the shared PruneIndex, in context-independent
     * fingerprints.
     */
    struct Plane
    {
        smt::ExprContext *ctx;
        smt::Solver *solver;
        /** Dedicated solver for the Trojan-pruning stream (stream-
         *  budgeted presets); null means plane.solver serves it. */
        smt::Solver *trojan_solver;
        const std::vector<std::vector<smt::ExprRef>> *match;
        const std::vector<smt::ExprRef> *negations;
        const std::vector<smt::ExprRef> *message;
        /** Per-predicate sorted match fingerprints for overlay probes
         *  (empty vector = not fingerprintable, skip the index). */
        const std::vector<exec::PruneFpVec> *match_fps;
        StatsRegistry *stats;
        std::vector<LiveSetSample> *samples;
        std::vector<TrojanWitness> *trojans;
        /** The shared pruning knowledge base (null = disabled). */
        exec::PruneIndex *prune;
        size_t worker_id;
        /** Observability sinks addressed to this plane's lane (inert
         *  when the run carries none). */
        obs::ObsHandle obs;
    };

    Plane HomePlane();

    /** Live-set of a state, creating the full set on first touch. */
    LiveSet *GetLiveSet(symexec::State &state);

    /** Combined query: state constraints + client predicate i matches.
     *  The full outcome is returned so kUnsat cores can be consumed. */
    smt::CheckResult PredicateMatches(Plane &plane,
                                      const symexec::State &state,
                                      size_t i);

    /** True when core consumption off `solver` is sound and enabled:
     *  the config toggle is on and the solver runs unbudgeted
     *  queries. */
    bool SolverCoresOk(const smt::Solver *solver) const;
    /** SolverCoresOk for the plane's match-query solver. */
    bool CoresUsable(const Plane &plane) const;

    /** Per-predicate sorted match fingerprints for a plane's tables
     *  (empty entries mark non-fingerprintable predicates). */
    static std::vector<exec::PruneFpVec> BuildMatchFps(
        const exec::PruneIndex *index,
        const std::vector<std::vector<smt::ExprRef>> &match);

    /**
     * Mark every still-undecided live predicate that the core of
     * predicate `i`'s refutation also refutes: predicates whose match
     * conjunction contains all implicated match conjuncts (the
     * refutation applies verbatim), and -- when the whole core touches
     * a single independent field -- predicate i's differentFrom value
     * class for that field.
     */
    void CoreGuidedDrops(Plane &plane, const symexec::State &state,
                         const smt::CheckResult &result, uint32_t i,
                         const std::vector<uint32_t> &live,
                         std::vector<uint8_t> *decided);

    /** Subsumption probe / recording for pruning Trojan queries,
     *  routed through the shared PruneIndex as fingerprints.
     *  `path_fps` carries the precomputed fingerprints of the full
     *  path-constraint set (HandleBranch computes them once per branch
     *  for both the overlay and this probe); null means the set was
     *  not fingerprintable, which skips the index. */
    bool TrojanSubsumedByCore(
        Plane &plane, const exec::PruneFpVec *path_fps,
        const std::vector<smt::ExprRef> &negations) const;
    void RememberTrojanCore(
        Plane &plane, const std::vector<smt::ExprRef> &path_constraints,
        const std::vector<smt::ExprRef> &negations,
        const smt::CheckResult &result);

    /** Trojan query for a state; fills the model when sat. `path_fps`
     *  (optional) are the precomputed fingerprints of
     *  `path_constraints` for the pruning-probe path. */
    smt::CheckResult TrojanQuery(
        Plane &plane, const std::vector<smt::ExprRef> &path_constraints,
        const std::vector<uint32_t> &live, smt::Model *model,
        const exec::PruneFpVec *path_fps = nullptr);

    /** Fields constrained by an expression (via message byte vars). */
    std::vector<std::string> TouchedFields(const Plane &plane,
                                           smt::ExprRef e) const;

    /** Core branch/accept logic, shared by serial and worker planes. */
    bool HandleBranch(Plane &plane, symexec::State &state,
                      smt::ExprRef constraint);
    void HandleAccept(Plane &plane, symexec::State &state);

    void EmitTrojan(Plane &plane, const symexec::State &state,
                    const std::vector<uint32_t> &live);

    /** Multi-worker variant of Run's exploration (num_workers > 1). */
    std::vector<symexec::PathResult> RunParallel();

    smt::ExprContext *ctx_;
    smt::Solver *solver_;
    const symexec::Program *server_;
    const MessageLayout *layout_;
    const std::vector<ClientPathPredicate> *preds_;
    const std::vector<NegatedPredicate> *negations_;
    const DifferentFromMatrix *different_from_;
    ServerExplorerConfig config_;

    std::vector<smt::ExprRef> message_;
    /** var id -> byte offset in the message. */
    std::unordered_map<uint32_t, uint32_t> var_to_offset_;
    /** Per predicate: match conjunction (byte equalities + client pcs). */
    std::vector<std::vector<smt::ExprRef>> match_;
    /** Per predicate: negation disjunction expr (null if unusable). */
    std::vector<smt::ExprRef> negation_exprs_;

    ServerAnalysis analysis_;
    /** The pruning knowledge base for serial runs and the a-posteriori
     *  pass (multi-worker runs use the ParallelEngine's instance). */
    std::unique_ptr<exec::PruneIndex> home_prune_;
    /** Home-plane match fingerprints (parallel planes build their
     *  own). */
    std::vector<exec::PruneFpVec> home_match_fps_;
    /** Budgeted Trojan-stream solver (see trojan_stream_budget). */
    std::unique_ptr<smt::Solver> home_trojan_solver_;
    Timer timer_;
};

}  // namespace core
}  // namespace achilles

#endif  // ACHILLES_CORE_SERVER_EXPLORER_H_
