// Achilles reproduction -- core library.

#include "core/refine.h"

#include "core/client_extractor.h"
#include "smt/eval.h"

namespace achilles {
namespace core {

RefinementResult
ConfirmWitnesses(smt::ExprContext *ctx, smt::Solver *solver,
                 const std::vector<const symexec::Program *> &clients,
                 const MessageLayout &layout,
                 const std::vector<TrojanWitness> &witnesses)
{
    RefinementResult result;

    // Extract the (possibly larger / more complete) client predicate
    // once; the per-witness check is then a satisfiability query per
    // client path: "can this path's message equal the witness bytes?"
    const ClientPredicate pc =
        ExtractClientPredicate(ctx, solver, clients, layout);

    // Analyzed byte offsets: masked fields are not part of the Trojan
    // claim and are not pinned.
    std::vector<uint32_t> analyzed;
    for (const FieldSpec &f : layout.AnalyzedFields())
        for (uint32_t k = 0; k < f.size; ++k)
            analyzed.push_back(f.offset + k);

    for (const TrojanWitness &witness : witnesses) {
        bool producible = false;
        for (const ClientPathPredicate &pred : pc.paths) {
            std::vector<smt::ExprRef> query = pred.constraints;
            for (uint32_t off : analyzed) {
                query.push_back(ctx->MakeEq(
                    pred.bytes[off],
                    ctx->MakeConst(8, witness.concrete[off])));
            }
            if (solver->CheckSat(query) == smt::CheckResult::kSat) {
                producible = true;
                break;
            }
        }
        result.verdicts.push_back(producible ? WitnessVerdict::kRefuted
                                             : WitnessVerdict::kConfirmed);
        if (producible)
            ++result.refuted;
        else
            ++result.confirmed;
    }
    return result;
}

std::vector<std::vector<uint8_t>>
EnumerateTrojans(smt::ExprContext *ctx, smt::Solver *solver,
                 const MessageLayout &layout, const TrojanWitness &witness,
                 size_t max_count)
{
    std::vector<std::vector<uint8_t>> out;
    if (max_count == 0 || witness.message_vars.empty())
        return out;

    std::vector<uint32_t> analyzed;
    for (const FieldSpec &f : layout.AnalyzedFields())
        for (uint32_t k = 0; k < f.size; ++k)
            analyzed.push_back(f.offset + k);

    std::vector<smt::ExprRef> query = witness.definition;
    for (size_t n = 0; n < max_count; ++n) {
        smt::Model model;
        if (solver->CheckSat(query, &model) != smt::CheckResult::kSat)
            break;
        std::vector<uint8_t> concrete;
        concrete.reserve(witness.message_vars.size());
        for (uint32_t var : witness.message_vars)
            concrete.push_back(static_cast<uint8_t>(model.Get(var)));
        // Block this assignment of the analyzed bytes.
        std::vector<smt::ExprRef> differs;
        for (uint32_t off : analyzed) {
            differs.push_back(ctx->MakeNe(
                ctx->VarById(witness.message_vars[off]),
                ctx->MakeConst(8, concrete[off])));
        }
        query.push_back(ctx->MakeOrList(differs));
        out.push_back(std::move(concrete));
    }
    return out;
}

}  // namespace core
}  // namespace achilles
