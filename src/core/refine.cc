// Achilles reproduction -- core library.

#include "core/refine.h"

#include <algorithm>

#include "core/client_extractor.h"
#include "exec/prune_index.h"
#include "smt/eval.h"

namespace achilles {
namespace core {

RefinementResult
ConfirmWitnesses(smt::ExprContext *ctx, smt::Solver *solver,
                 const std::vector<const symexec::Program *> &clients,
                 const MessageLayout &layout,
                 const std::vector<TrojanWitness> &witnesses)
{
    RefinementResult result;

    // Extract the (possibly larger / more complete) client predicate
    // once; the per-witness check is then a satisfiability query per
    // client path: "can this path's message equal the witness bytes?"
    const ClientPredicate pc =
        ExtractClientPredicate(ctx, solver, clients, layout);

    // Analyzed byte offsets: masked fields are not part of the Trojan
    // claim and are not pinned.
    std::vector<uint32_t> analyzed;
    for (const FieldSpec &f : layout.AnalyzedFields())
        for (uint32_t k = 0; k < f.size; ++k)
            analyzed.push_back(f.offset + k);

    // Unsat cores make the bounded per-path re-checks transfer across
    // witnesses: a core refuting "path p emits witness w" is a subset
    // of p's constraints plus pinned-byte equalities, and any later
    // (path, witness) check whose constraint set contains the
    // constraint part and whose pin set contains the pin part is UNSAT
    // by the same core. The two-part subsumption probe is the shared
    // pruning knowledge base's (exec::PruneIndex, the same store the
    // server explorer's Trojan pruning uses), so reuse crosses paths
    // as well as witnesses: a core implicating only constraints shared
    // between two client paths transfers between them. Cores are only
    // consumed on unbudgeted solvers: under a flat or stream-level
    // conflict budget the solver can answer kUnknown and never
    // produces cores in the first place.
    const bool cores_usable = solver->config().enable_cores &&
                              solver->config().unbudgeted();
    exec::PruneIndexConfig prune_config;
    prune_config.shards = 4;
    prune_config.core_cap = 8 * pc.paths.size();
    exec::PruneIndex prune(prune_config);
    // Per-path constraint fingerprints, computed once (single context,
    // always fingerprintable under the unlimited var bound).
    std::vector<exec::PruneFpVec> path_fps(pc.paths.size());
    for (size_t p = 0; p < pc.paths.size(); ++p)
        prune.Fingerprint(pc.paths[p].constraints, &path_fps[p]);

    for (const TrojanWitness &witness : witnesses) {
        bool producible = false;
        for (size_t p = 0; p < pc.paths.size() && !producible; ++p) {
            const ClientPathPredicate &pred = pc.paths[p];
            // Path constraints as the base, pinned-byte equalities as
            // the extras: every witness re-asserts the same base, which
            // the incremental backend turns into assumption flips over
            // already-blasted CNF with the common trail prefix kept,
            // and stream-budgeted solvers spread their conflict budget
            // over the whole per-path stream. `query` is the base ∥
            // extras concatenation CheckSatAssuming indexes cores into.
            std::vector<smt::ExprRef> query = pred.constraints;
            std::vector<smt::ExprRef> pins;
            pins.reserve(analyzed.size());
            for (uint32_t off : analyzed) {
                pins.push_back(ctx->MakeEq(
                    pred.bytes[off],
                    ctx->MakeConst(8, witness.concrete[off])));
            }
            query.insert(query.end(), pins.begin(), pins.end());
            exec::PruneFpVec pin_fps;
            if (cores_usable) {
                prune.Fingerprint(pins, &pin_fps);
                if (prune.SubsumesCore(0, path_fps[p], pin_fps)) {
                    ++result.core_skips;
                    continue;  // this path cannot emit the witness
                }
            }
            ++result.solver_queries;
            const smt::CheckResult r =
                solver->CheckSatAssuming(pred.constraints, pins);
            if (r == smt::CheckResult::kSat) {
                producible = true;
            } else if (cores_usable && r == smt::CheckResult::kUnsat &&
                       r.has_core) {
                // Record the core split into its constraint part and
                // its pin part (indices below pred.constraints.size()
                // are constraints).
                std::vector<smt::ExprRef> constraint_part;
                std::vector<smt::ExprRef> pin_part;
                for (uint32_t idx : r.core) {
                    if (idx < pred.constraints.size())
                        constraint_part.push_back(query[idx]);
                    else
                        pin_part.push_back(query[idx]);
                }
                exec::PruneFpVec constraint_part_fps, pin_part_fps;
                prune.Fingerprint(constraint_part, &constraint_part_fps);
                prune.Fingerprint(pin_part, &pin_part_fps);
                prune.RecordCore(0, constraint_part_fps, pin_part_fps);
            }
        }
        result.verdicts.push_back(producible ? WitnessVerdict::kRefuted
                                             : WitnessVerdict::kConfirmed);
        if (producible)
            ++result.refuted;
        else
            ++result.confirmed;
    }
    return result;
}

std::vector<std::vector<uint8_t>>
EnumerateTrojans(smt::ExprContext *ctx, smt::Solver *solver,
                 const MessageLayout &layout, const TrojanWitness &witness,
                 size_t max_count)
{
    std::vector<std::vector<uint8_t>> out;
    if (max_count == 0 || witness.message_vars.empty())
        return out;

    std::vector<uint32_t> analyzed;
    for (const FieldSpec &f : layout.AnalyzedFields())
        for (uint32_t k = 0; k < f.size; ++k)
            analyzed.push_back(f.offset + k);

    std::vector<smt::ExprRef> query = witness.definition;
    for (size_t n = 0; n < max_count; ++n) {
        smt::Model model;
        if (solver->CheckSat(query, &model) != smt::CheckResult::kSat)
            break;
        std::vector<uint8_t> concrete;
        concrete.reserve(witness.message_vars.size());
        for (uint32_t var : witness.message_vars)
            concrete.push_back(static_cast<uint8_t>(model.Get(var)));
        // Block this assignment of the analyzed bytes.
        std::vector<smt::ExprRef> differs;
        for (uint32_t off : analyzed) {
            differs.push_back(ctx->MakeNe(
                ctx->VarById(witness.message_vars[off]),
                ctx->MakeConst(8, concrete[off])));
        }
        query.push_back(ctx->MakeOrList(differs));
        out.push_back(std::move(concrete));
    }
    return out;
}

}  // namespace core
}  // namespace achilles
