// Achilles reproduction -- core library.
//
// Implementation of the custom negate operator.

#include "core/negate.h"

#include <unordered_map>
#include <unordered_set>

namespace achilles {
namespace core {

NegateOperator::NegateOperator(smt::ExprContext *ctx, smt::Solver *solver,
                               const MessageLayout *layout,
                               std::vector<smt::ExprRef> server_message)
    : ctx_(ctx), solver_(solver), layout_(layout),
      server_message_(std::move(server_message))
{
    ACHILLES_CHECK(server_message_.size() >= layout_->length(),
                   "server message shorter than layout");
}

std::vector<smt::ExprRef>
NegateOperator::ConstraintsTouching(
    const ClientPathPredicate &pred,
    const std::unordered_set<uint32_t> &vars) const
{
    std::vector<smt::ExprRef> out;
    for (smt::ExprRef c : pred.constraints) {
        std::unordered_set<uint32_t> cvars;
        ctx_->CollectVars(c, &cvars);
        for (uint32_t v : cvars) {
            if (vars.count(v)) {
                out.push_back(c);
                break;
            }
        }
    }
    return out;
}

FieldNegation
NegateOperator::NegateField(const ClientPathPredicate &pred,
                            const FieldSpec &field, smt::ExprRef target)
{
    FieldNegation result;
    result.field = field.name;

    smt::ExprRef e = layout_->FieldExpr(ctx_, pred.bytes, field);

    // Case 1: concrete constant -> target != C (exact complement).
    if (e->IsConst()) {
        result.expr = ctx_->MakeNe(target, e);
        result.exact = true;
        return result;
    }

    std::unordered_set<uint32_t> evars;
    ctx_->CollectVars(e, &evars);
    std::vector<smt::ExprRef> touching = ConstraintsTouching(pred, evars);

    // Does the touching constraint set involve variables beyond the
    // field's own? If so, substitution is not meaningful for this field
    // alone and we must fall through to the fresh-copy encoding.
    std::unordered_set<uint32_t> cons_vars;
    for (smt::ExprRef c : touching)
        ctx_->CollectVars(c, &cons_vars);
    bool self_contained = true;
    for (uint32_t v : cons_vars)
        self_contained &= (evars.count(v) != 0);

    // Case 2: pure input variable with self-contained constraints ->
    // substitute the server field for the variable and negate each
    // constraint (exact complement of the value set).
    if (e->IsVar() && self_contained) {
        if (touching.empty()) {
            // Unconstrained field: its value set is the full domain, so
            // the complement is exactly empty -- nothing to negate, and
            // that omission is exact.
            ++stats_.abandoned_fields;
            result.exact = true;
            return result;
        }
        std::unordered_map<uint32_t, smt::ExprRef> sub{
            {e->VarId(), target}};
        std::vector<smt::ExprRef> negated;
        for (smt::ExprRef c : touching)
            negated.push_back(ctx_->MakeNot(ctx_->Substitute(c, sub)));
        result.expr = ctx_->MakeOrList(negated);
        result.exact = true;
        return result;
    }

    // Case 3: complex expression. Make fresh copies of all involved
    // client variables, require target to be producible by the
    // expression under the *negated* constraints:
    //   target == e(λ') ∧ (¬s1(λ') ∨ ¬s2(λ') ∨ ...)
    if (touching.empty()) {
        // No constraints to negate: abandon this field (paper: "if there
        // are no constraints available, abandon the negation").
        ++stats_.abandoned_fields;
        return result;
    }
    std::unordered_set<uint32_t> all_vars = evars;
    for (uint32_t v : cons_vars)
        all_vars.insert(v);
    std::unordered_map<uint32_t, smt::ExprRef> fresh;
    for (uint32_t v : all_vars) {
        const smt::VarInfo &info = ctx_->InfoOf(v);
        fresh.emplace(v, ctx_->FreshVar(info.name + "~neg", info.width));
    }
    smt::ExprRef e_fresh = ctx_->Substitute(e, fresh);
    std::vector<smt::ExprRef> negated;
    for (smt::ExprRef c : touching)
        negated.push_back(ctx_->MakeNot(ctx_->Substitute(c, fresh)));
    smt::ExprRef candidate = ctx_->MakeAnd(
        ctx_->MakeEq(target, e_fresh), ctx_->MakeOrList(negated));

    // Soundness filter (Section 4.1): if some target value is reachable
    // both under the original constraints and under the negated copy,
    // the candidate overlaps the original value set -- discard it so the
    // negate operator stays an under-approximation of the complement.
    std::vector<smt::ExprRef> overlap_query = touching;
    overlap_query.push_back(ctx_->MakeEq(target, e));
    overlap_query.push_back(candidate);
    if (solver_->CheckSat(overlap_query) != smt::CheckResult::kUnsat) {
        ++stats_.overlap_discarded;
        return result;
    }
    result.expr = candidate;
    result.exact = false;
    return result;
}

smt::ExprRef
NegateOperator::NegateFieldAgainst(const ClientPathPredicate &pred,
                                   const FieldSpec &field,
                                   smt::ExprRef probe)
{
    return NegateField(pred, field, probe).expr;
}

NegatedPredicate
NegateOperator::Negate(const ClientPathPredicate &pred)
{
    NegatedPredicate out;
    out.pred_id = pred.id;

    const std::vector<FieldSpec> analyzed = layout_->AnalyzedFields();

    // Exactness additionally requires the analyzed fields to be pairwise
    // variable-disjoint (product structure); compute the per-field
    // variable sets once.
    std::vector<std::unordered_set<uint32_t>> field_vars(analyzed.size());
    for (size_t i = 0; i < analyzed.size(); ++i) {
        smt::ExprRef e = layout_->FieldExpr(ctx_, pred.bytes, analyzed[i]);
        ctx_->CollectVars(e, &field_vars[i]);
        for (smt::ExprRef c : ConstraintsTouching(pred, field_vars[i]))
            ctx_->CollectVars(c, &field_vars[i]);
    }
    bool disjoint = true;
    for (size_t i = 0; i < analyzed.size() && disjoint; ++i) {
        for (size_t j = i + 1; j < analyzed.size() && disjoint; ++j) {
            for (uint32_t v : field_vars[i]) {
                if (field_vars[j].count(v)) {
                    disjoint = false;
                    break;
                }
            }
        }
    }

    bool all_exact = disjoint;
    for (const FieldSpec &field : analyzed) {
        FieldNegation fn =
            NegateField(pred, field, ServerFieldExpr(field));
        all_exact &= fn.exact;
        if (fn.expr != nullptr)
            out.fields.push_back(std::move(fn));
    }
    out.exact = all_exact && !out.fields.empty();
    if (out.exact)
        ++stats_.exact_predicates;
    else
        ++stats_.approx_predicates;
    return out;
}

}  // namespace core
}  // namespace achilles
