// Achilles reproduction -- core library.
//
// Client path predicates (paper Section 3.1): one per client execution
// path that sends a message -- the symbolic message buffer plus the path
// constraints under which it is sent. The client predicate PC is the
// disjunction of all of them.
//
// Also provides canonical hashing of (expression, constraints) pairs up
// to variable renaming. Every client path allocates fresh symbolic input
// variables, so two paths that send structurally identical messages
// differ only in variable ids; canonical hashing lets the preprocessing
// phase group such value-classes without solver calls.

#ifndef ACHILLES_CORE_PATH_PREDICATE_H_
#define ACHILLES_CORE_PATH_PREDICATE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "smt/expr.h"

namespace achilles {
namespace core {

/** One client execution path's message and constraints. */
struct ClientPathPredicate
{
    uint64_t id = 0;
    /** Which client utility / program produced this path. */
    std::string origin;
    /** Symbolic message bytes (expressions over client input vars). */
    std::vector<smt::ExprRef> bytes;
    /** Path constraints under which the message is sent. */
    std::vector<smt::ExprRef> constraints;
};

/**
 * Order-insensitive, alpha-renaming-insensitive structural hash of an
 * expression list. Used to deduplicate client path predicates and to
 * group field value-classes for the differentFrom precomputation.
 */
class CanonicalHasher
{
  public:
    explicit CanonicalHasher(const smt::ExprContext *ctx) : ctx_(ctx) {}

    /**
     * Hash a set of expressions, renaming variables to de-Bruijn-style
     * indices in first-visit order. The expressions are visited in the
     * given order (callers must present them deterministically).
     */
    uint64_t
    HashExprs(const std::vector<smt::ExprRef> &exprs)
    {
        var_rename_.clear();
        uint64_t h = 0x2545f4914f6cdd1dull;
        for (smt::ExprRef e : exprs)
            h = Mix(h, HashNode(e));
        return h;
    }

  private:
    uint64_t
    HashNode(smt::ExprRef e)
    {
        // Per-expression memo is invalid across calls because the
        // renaming depends on visit order; keep it simple and rehash.
        uint64_t h = Mix(static_cast<uint64_t>(e->kind()), e->width());
        if (e->IsVar()) {
            auto [it, inserted] = var_rename_.emplace(
                e->VarId(), static_cast<uint32_t>(var_rename_.size()));
            h = Mix(h, it->second);
            return h;
        }
        h = Mix(h, e->aux());
        for (smt::ExprRef kid : e->kids())
            h = Mix(h, HashNode(kid));
        return h;
    }

    static uint64_t
    Mix(uint64_t a, uint64_t b)
    {
        uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        return x;
    }

    const smt::ExprContext *ctx_;
    std::unordered_map<uint32_t, uint32_t> var_rename_;
};

}  // namespace core
}  // namespace achilles

#endif  // ACHILLES_CORE_PATH_PREDICATE_H_
