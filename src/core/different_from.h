// Achilles reproduction -- core library.
//
// The differentFrom precomputation (paper Section 3.3).
// differentFrom[i][j][field] == TRUE means there exists a message in
// pathC_i whose value for `field` is not attainable by any message of
// pathC_j. During server exploration, when pathC_i is dropped because of
// a new constraint on an independent field a, every pathC_j with
// differentFrom[j][i][a] == FALSE can be dropped as well without a
// solver call.
//
// The matrix is only computed for *independent* fields -- fields whose
// client-side value expressions and constraints share no variables with
// other fields (the paper's condition for the optimization to be sound).
//
// Implementation note: client paths allocate fresh input variables, so
// structurally identical field definitions are first grouped into value
// classes by canonical hashing; solver queries run between class
// representatives only, which turns the O(n^2) pairwise computation into
// O(c^2) with c = number of distinct value classes (single digits in
// practice).
//
// Runtime overlay: the static matrix is computed once, before the
// exploration, so it can only relate pairs through the value classes it
// saw then. Single-field unsat cores discovered during exploration are
// appended to the run's shared exec::PruneIndex as mutable value-class
// edges ("these field-f path constraints refute every predicate whose
// match set contains these field-f conjuncts"); OverlaySubsumed is the
// read path the explorer consults alongside Different(), letting later
// branches -- on any worker -- take the same fast path for
// path-constraint/predicate pairs the precomputation never related.

#ifndef ACHILLES_CORE_DIFFERENT_FROM_H_
#define ACHILLES_CORE_DIFFERENT_FROM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/message.h"
#include "core/negate.h"
#include "core/path_predicate.h"
#include "exec/prune_index.h"
#include "smt/solver.h"
#include "support/stats.h"

namespace achilles {
namespace core {

/** Precomputed differentFrom relation over client path predicates. */
class DifferentFromMatrix
{
  public:
    DifferentFromMatrix(smt::ExprContext *ctx, smt::Solver *solver,
                        const MessageLayout *layout)
        : ctx_(ctx), solver_(solver), layout_(layout)
    {
    }

    /**
     * Compute the relation for all analyzed independent fields.
     * `negate_op` supplies per-field negations for the value-set
     * difference queries.
     */
    void Compute(const std::vector<ClientPathPredicate> &preds,
                 NegateOperator *negate_op);

    /** True iff `field` was classified independent (and computed). */
    bool
    IsIndependentField(const std::string &field) const
    {
        return per_field_.count(field) != 0;
    }

    /**
     * differentFrom[i][j][field]; false for dependent fields and
     * un-computed pairs (the conservative default -- a FALSE answer only
     * ever causes extra solver checks, never wrong dropping).
     */
    bool Different(size_t i, size_t j, const std::string &field) const;

    /** All predicates j with Different(j, i, field) == false. */
    std::vector<uint32_t> SameValueClass(size_t i,
                                         const std::string &field) const;

    /**
     * Stable token naming a field inside the pruning knowledge base's
     * overlay (exec::PruneIndex carries no core-layer types, so overlay
     * entries name their field by this hash; the matrix resolves it
     * back through the independent fields it computed).
     */
    static uint64_t FieldToken(const std::string &field);

    /**
     * The overlay read path. True when a runtime-recorded single-field
     * core in `overlay` refutes a predicate whose match fingerprints
     * are `match_set` under the path fingerprints `path_set`; on a hit
     * `*field` names the (independent, computed) field the core was
     * confined to, so the caller can re-enter the static value-class
     * rule for it. Sound to act on exactly like a kUnsat answer from
     * the solver: the recorded core is contained in the probed query.
     * `consumer` is the probing worker id (cross-worker attribution).
     */
    bool OverlaySubsumed(exec::PruneIndex *overlay, size_t consumer,
                         const exec::PruneFpVec &path_set,
                         const exec::PruneFpVec &match_set,
                         std::string *field) const;

    const StatsRegistry &stats() const { return stats_; }

  private:
    struct FieldRelation
    {
        /** Value-class index of each predicate for this field. */
        std::vector<uint32_t> class_of;
        /** Predicates per class (for SameValueClass). */
        std::vector<std::vector<uint32_t>> members;
        /** different[a][b] over class indices. */
        std::vector<std::vector<uint8_t>> different;
    };

    smt::ExprContext *ctx_;
    smt::Solver *solver_;
    const MessageLayout *layout_;
    std::unordered_map<std::string, FieldRelation> per_field_;
    /** FieldToken -> field name, for the independent fields computed. */
    std::unordered_map<uint64_t, std::string> field_by_token_;
    StatsRegistry stats_;
};

}  // namespace core
}  // namespace achilles

#endif  // ACHILLES_CORE_DIFFERENT_FROM_H_
