// Achilles reproduction -- core library.
//
// The custom negate operator (paper Section 3.2, "Negating Path
// Predicates"). Negating the client predicate PC introduces a universal
// quantifier that SMT solvers handle poorly; Achilles instead
// under-approximates negate(pathC) as a disjunction of per-field
// negations over the server's message variables:
//
//   field value is a concrete constant C    ->  M.f != C
//   field value is a pure input variable λ
//     with constraints S(λ)                 ->  ¬S(M.f)   (substitution)
//   field value is a complex expression e(λ...)
//     with constraints S(λ...)              ->  M.f == e(λ') ∧ ¬S(λ')
//                                               (fresh λ', existential)
//   field value unconstrained / S empty     ->  abandoned for this field
//
// As in Section 4.1, each generated field negation is checked for
// overlap with the original field definition using the solver; negations
// that overlap are discarded, so the negate operator never introduces
// false positives.

#ifndef ACHILLES_CORE_NEGATE_H_
#define ACHILLES_CORE_NEGATE_H_

#include <string>
#include <vector>

#include "core/message.h"
#include "core/path_predicate.h"
#include "smt/solver.h"

namespace achilles {
namespace core {

/** One per-field negation disjunct. */
struct FieldNegation
{
    std::string field;
    /** Negation over the server message vars (plus fresh aux vars). */
    smt::ExprRef expr = nullptr;
    /** True when this disjunct exactly complements the field's values. */
    bool exact = false;
};

/** The (under-approximate) negation of one client path predicate. */
struct NegatedPredicate
{
    uint64_t pred_id = 0;
    std::vector<FieldNegation> fields;
    /**
     * True when the disjunction is the exact complement of the client
     * path predicate (the "quantifier elimination succeeded" fast path):
     * every analyzed field is a constant or an invertible copy of an
     * independent input variable.
     */
    bool exact = false;

    /** Whether any field could be negated at all. */
    bool Usable() const { return !fields.empty(); }

    /** The disjunction as a single width-1 expression. */
    smt::ExprRef
    Disjunction(smt::ExprContext *ctx) const
    {
        std::vector<smt::ExprRef> parts;
        parts.reserve(fields.size());
        for (const auto &f : fields)
            parts.push_back(f.expr);
        return ctx->MakeOrList(parts);
    }

    /** The negation restricted to a single field (null if abandoned). */
    smt::ExprRef
    FieldDisjunct(const std::string &field) const
    {
        for (const auto &f : fields)
            if (f.field == field)
                return f.expr;
        return nullptr;
    }
};

/** Statistics from a batch of negations. */
struct NegateStats
{
    size_t exact_predicates = 0;
    size_t approx_predicates = 0;
    size_t abandoned_fields = 0;
    size_t overlap_discarded = 0;
};

/**
 * Computes negations of client path predicates against a fixed server
 * message (the vector of symbolic message byte variables the server is
 * executed on).
 */
class NegateOperator
{
  public:
    NegateOperator(smt::ExprContext *ctx, smt::Solver *solver,
                   const MessageLayout *layout,
                   std::vector<smt::ExprRef> server_message);

    /** Negate one client path predicate. */
    NegatedPredicate Negate(const ClientPathPredicate &pred);

    /**
     * Negate only one field of a predicate against an arbitrary probe
     * variable (used by the differentFrom precomputation, which compares
     * field value sets rather than whole messages). Returns null when
     * the field negation is abandoned.
     */
    smt::ExprRef NegateFieldAgainst(const ClientPathPredicate &pred,
                                    const FieldSpec &field,
                                    smt::ExprRef probe);

    const NegateStats &stats() const { return stats_; }

    /** Server-side expression for a field of the analyzed message. */
    smt::ExprRef
    ServerFieldExpr(const FieldSpec &field) const
    {
        return layout_->FieldExpr(ctx_, server_message_, field);
    }

  private:
    /**
     * Core of the per-field negation: negation of `pred`'s field value
     * set, phrased over `target` (a server field expression or a probe
     * variable). Returns {expr, exact} with expr == null if abandoned.
     */
    FieldNegation NegateField(const ClientPathPredicate &pred,
                              const FieldSpec &field, smt::ExprRef target);

    /** Constraints of `pred` mentioning any of the given variables. */
    std::vector<smt::ExprRef> ConstraintsTouching(
        const ClientPathPredicate &pred,
        const std::unordered_set<uint32_t> &vars) const;

    smt::ExprContext *ctx_;
    smt::Solver *solver_;
    const MessageLayout *layout_;
    std::vector<smt::ExprRef> server_message_;
    NegateStats stats_;
};

}  // namespace core
}  // namespace achilles

#endif  // ACHILLES_CORE_NEGATE_H_
