// Achilles reproduction -- core library.

#include "core/server_explorer.h"

#include <algorithm>
#include <unordered_set>

#include "smt/eval.h"

namespace achilles {
namespace core {

/** Per-state payload: indices of client predicates still matching. */
struct ServerExplorer::LiveSet : public symexec::StateUserData
{
    std::vector<uint32_t> live;

    std::unique_ptr<symexec::StateUserData>
    Clone() const override
    {
        auto copy = std::make_unique<LiveSet>();
        copy->live = live;
        return copy;
    }
};

ServerExplorer::ServerExplorer(
    smt::ExprContext *ctx, smt::Solver *solver,
    const symexec::Program *server, const MessageLayout *layout,
    const std::vector<ClientPathPredicate> *preds,
    const std::vector<NegatedPredicate> *negations,
    const DifferentFromMatrix *different_from, ServerExplorerConfig config,
    std::vector<smt::ExprRef> message)
    : ctx_(ctx), solver_(solver), server_(server), layout_(layout),
      preds_(preds), negations_(negations), different_from_(different_from),
      config_(config), message_(std::move(message))
{
    ACHILLES_CHECK(preds_->size() == negations_->size(),
                   "negations out of sync with predicates");

    // The symbolic message the server is analyzed on. Every path
    // constrains these same variables; when negations were precomputed,
    // the caller passes the variables they were computed against.
    if (message_.empty()) {
        message_.reserve(layout_->length());
        for (uint32_t i = 0; i < layout_->length(); ++i)
            message_.push_back(ctx_->FreshVar("msg", 8));
    }
    ACHILLES_CHECK(message_.size() >= layout_->length(),
                   "message shorter than layout");
    for (uint32_t i = 0; i < message_.size(); ++i) {
        ACHILLES_CHECK(message_[i]->IsVar(),
                       "server message bytes must be variables");
        var_to_offset_.emplace(message_[i]->VarId(), i);
    }

    // Which byte offsets participate in the analysis (unmasked fields).
    std::vector<bool> analyzed_byte(layout_->length(), false);
    for (const FieldSpec &f : layout_->AnalyzedFields())
        for (uint32_t k = 0; k < f.size; ++k)
            analyzed_byte[f.offset + k] = true;

    // Pre-build, per client path predicate, the conjunction stating
    // "this server message is one of the predicate's messages":
    // byte equalities over analyzed bytes plus the client constraints.
    match_.resize(preds_->size());
    negation_exprs_.resize(preds_->size());
    for (size_t i = 0; i < preds_->size(); ++i) {
        const ClientPathPredicate &pred = (*preds_)[i];
        for (uint32_t k = 0; k < layout_->length(); ++k) {
            if (!analyzed_byte[k])
                continue;
            match_[i].push_back(
                ctx_->MakeEq(message_[k], pred.bytes[k]));
        }
        for (smt::ExprRef c : pred.constraints)
            match_[i].push_back(c);
        negation_exprs_[i] = (*negations_)[i].Usable()
                                 ? (*negations_)[i].Disjunction(ctx_)
                                 : nullptr;
    }
}

ServerExplorer::LiveSet *
ServerExplorer::GetLiveSet(symexec::State &state)
{
    auto *data = dynamic_cast<LiveSet *>(state.user_data());
    if (data == nullptr) {
        auto fresh = std::make_unique<LiveSet>();
        fresh->live.resize(preds_->size());
        for (size_t i = 0; i < preds_->size(); ++i)
            fresh->live[i] = static_cast<uint32_t>(i);
        data = fresh.get();
        state.SetUserData(std::move(fresh));
    }
    return data;
}

bool
ServerExplorer::PredicateMatches(const symexec::State &state, size_t i)
{
    std::vector<smt::ExprRef> query = state.constraints();
    query.insert(query.end(), match_[i].begin(), match_[i].end());
    analysis_.stats.Bump("explorer.match_queries");
    return solver_->CheckSat(query) != smt::CheckResult::kUnsat;
}

smt::CheckResult
ServerExplorer::TrojanQuery(
    const std::vector<smt::ExprRef> &path_constraints,
    const std::vector<uint32_t> &live, smt::Model *model)
{
    std::vector<smt::ExprRef> query = path_constraints;
    for (uint32_t i : live) {
        if (negation_exprs_[i] == nullptr) {
            // An un-negatable live predicate blocks the whole query: we
            // cannot certify any message as outside its value set.
            analysis_.stats.Bump("explorer.blocked_by_unusable_negation");
            return smt::CheckResult::kUnsat;
        }
        query.push_back(negation_exprs_[i]);
    }
    analysis_.stats.Bump("explorer.trojan_queries");
    return solver_->CheckSat(query, model);
}

std::vector<std::string>
ServerExplorer::TouchedFields(smt::ExprRef e) const
{
    std::unordered_set<uint32_t> vars;
    ctx_->CollectVars(e, &vars);
    std::vector<std::string> fields;
    for (uint32_t v : vars) {
        auto it = var_to_offset_.find(v);
        if (it == var_to_offset_.end())
            continue;
        const FieldSpec *f = layout_->FieldAtByte(it->second);
        if (f == nullptr)
            continue;
        if (std::find(fields.begin(), fields.end(), f->name) ==
            fields.end())
            fields.push_back(f->name);
    }
    return fields;
}

bool
ServerExplorer::OnBranch(symexec::State &state, smt::ExprRef constraint)
{
    if (config_.mode == SearchMode::kAPosteriori)
        return true;

    LiveSet *data = GetLiveSet(state);

    // Only constraints over the message can change which client
    // predicates match (skipping others is conservative: we merely keep
    // predicates live longer).
    const std::vector<std::string> fields = TouchedFields(constraint);
    if (!fields.empty() && config_.drop_client_predicates) {
        const bool single_independent_field =
            config_.use_different_from && fields.size() == 1 &&
            different_from_ != nullptr &&
            different_from_->IsIndependentField(fields[0]);

        std::vector<uint32_t> survivors;
        survivors.reserve(data->live.size());
        std::vector<uint8_t> decided(preds_->size(), 0);  // 1=drop, 2=keep
        for (uint32_t i : data->live) {
            if (decided[i] == 1) {
                analysis_.stats.Bump("explorer.difffrom_drops");
                continue;
            }
            if (decided[i] == 2) {
                survivors.push_back(i);
                continue;
            }
            if (PredicateMatches(state, i)) {
                survivors.push_back(i);
                decided[i] = 2;
                continue;
            }
            decided[i] = 1;
            analysis_.stats.Bump("explorer.predicate_drops");
            if (single_independent_field) {
                // Everything in i's value class (and any j that has no
                // extra values for this field) dies with i.
                for (uint32_t j : data->live) {
                    if (decided[j] == 0 &&
                        !different_from_->Different(j, i, fields[0])) {
                        decided[j] = 1;
                    }
                }
            }
        }
        data->live = std::move(survivors);
    }

    analysis_.live_samples.push_back(
        LiveSetSample{state.depth(), data->live.size()});

    if (config_.prune_trojan_free_states) {
        const smt::CheckResult r =
            TrojanQuery(state.constraints(), data->live, nullptr);
        if (r == smt::CheckResult::kUnsat) {
            analysis_.stats.Bump("explorer.states_pruned");
            return false;
        }
    }
    return true;
}

void
ServerExplorer::EmitTrojan(const symexec::State &state,
                           const std::vector<uint32_t> &live)
{
    smt::Model model;
    const smt::CheckResult r =
        TrojanQuery(state.constraints(), live, &model);
    if (r != smt::CheckResult::kSat) {
        analysis_.stats.Bump("explorer.accepting_without_trojans");
        return;
    }
    TrojanWitness witness;
    witness.server_path_id = state.id();
    witness.accept_label = state.accept_label;
    witness.definition = state.constraints();
    for (uint32_t i : live)
        witness.definition.push_back(negation_exprs_[i]);
    witness.concrete.reserve(message_.size());
    for (smt::ExprRef byte : message_) {
        witness.concrete.push_back(
            static_cast<uint8_t>(smt::Evaluate(byte, model)));
        witness.message_vars.push_back(byte->VarId());
    }
    witness.bundled_with_valid = !live.empty();
    witness.discovered_at_seconds = timer_.Seconds();
    witness.path_depth = state.depth();
    analysis_.trojans.push_back(std::move(witness));
    analysis_.stats.Bump("explorer.trojans");
}

void
ServerExplorer::OnAccept(symexec::State &state)
{
    if (config_.mode == SearchMode::kAPosteriori)
        return;
    LiveSet *data = GetLiveSet(state);
    EmitTrojan(state, data->live);
}

ServerAnalysis
ServerExplorer::Run()
{
    timer_.Reset();
    symexec::Engine engine(ctx_, solver_, server_, symexec::Mode::kServer,
                           config_.engine);
    engine.SetIncomingMessage(message_);
    engine.SetListener(this);
    std::vector<symexec::PathResult> paths = engine.Run();
    analysis_.stats.Merge(engine.stats());

    for (symexec::PathResult &path : paths) {
        if (path.outcome == symexec::PathOutcome::kAccepted)
            analysis_.accepting_paths.push_back(path);
    }

    if (config_.mode == SearchMode::kAPosteriori) {
        // Differencing after the fact: conjoin every predicate's
        // negation on each accepting path.
        std::vector<uint32_t> all(preds_->size());
        for (size_t i = 0; i < all.size(); ++i)
            all[i] = static_cast<uint32_t>(i);
        for (const symexec::PathResult &path : analysis_.accepting_paths) {
            smt::Model model;
            if (TrojanQuery(path.constraints, all, &model) !=
                smt::CheckResult::kSat) {
                continue;
            }
            TrojanWitness witness;
            witness.server_path_id = path.state_id;
            witness.accept_label = path.accept_label;
            witness.definition = path.constraints;
            for (uint32_t i : all)
                if (negation_exprs_[i] != nullptr)
                    witness.definition.push_back(negation_exprs_[i]);
            for (smt::ExprRef byte : message_) {
                witness.concrete.push_back(
                    static_cast<uint8_t>(smt::Evaluate(byte, model)));
                witness.message_vars.push_back(byte->VarId());
            }
            witness.bundled_with_valid = true;  // not tracked in this mode
            witness.discovered_at_seconds = timer_.Seconds();
            witness.path_depth = path.depth;
            analysis_.trojans.push_back(std::move(witness));
            analysis_.stats.Bump("explorer.trojans");
        }
    }

    analysis_.seconds = timer_.Seconds();
    return std::move(analysis_);
}

}  // namespace core
}  // namespace achilles
