// Achilles reproduction -- core library.

#include "core/server_explorer.h"

#include <algorithm>
#include <unordered_set>

#include "exec/worker.h"
#include "persist/snapshot.h"
#include "smt/eval.h"

namespace achilles {
namespace core {

namespace {

/**
 * True when every assertion evaluates true under `model` -- which,
 * because a Model is a total concrete assignment (absent variables read
 * as zero), proves the conjunction satisfiable. Nothing follows from a
 * false evaluation: the model just fails to witness this query.
 */
bool
AllTrueUnder(const std::vector<smt::ExprRef> &assertions,
             const smt::Model &model)
{
    for (smt::ExprRef e : assertions) {
        if (!smt::EvaluateBool(e, model))
            return false;
    }
    return true;
}

}  // namespace

/** Per-state payload: indices of client predicates still matching. */
struct ServerExplorer::LiveSet : public symexec::StateUserData
{
    std::vector<uint32_t> live;

    std::unique_ptr<symexec::StateUserData>
    Clone() const override
    {
        auto copy = std::make_unique<LiveSet>();
        copy->live = live;
        return copy;
    }
};

/**
 * Per-worker listener: bridge-translated copies of the predicate-match
 * and negation tables, private result sinks, and the worker's own
 * cached solver. The heavy lifting delegates to the owner's
 * HandleBranch/HandleAccept over this worker's plane.
 */
class ServerExplorer::WorkerListener : public symexec::Listener
{
  public:
    WorkerListener(ServerExplorer *owner, exec::WorkerContext *wc)
        : owner_(owner), wc_(wc)
    {
        // Translate the shared expression tables into this worker's
        // context (single-threaded: runs before worker threads start).
        match_.resize(owner->match_.size());
        for (size_t i = 0; i < owner->match_.size(); ++i) {
            match_[i].reserve(owner->match_[i].size());
            for (smt::ExprRef e : owner->match_[i])
                match_[i].push_back(wc->bridge->ToRemote(e));
        }
        negations_.reserve(owner->negation_exprs_.size());
        for (smt::ExprRef e : owner->negation_exprs_)
            negations_.push_back(e ? wc->bridge->ToRemote(e) : nullptr);
        // The engine's incoming message is the worker replica of the
        // home message; id alignment makes var_to_offset_ valid here.
        message_ = wc->incoming;
        for (size_t i = 0; i < message_.size(); ++i) {
            ACHILLES_CHECK(message_[i]->VarId() ==
                               owner->message_[i]->VarId(),
                           "message variables out of alignment");
        }
        prune_ = owner->config_.use_prune_index ? wc->prune_index
                                                : nullptr;
        match_fps_ = BuildMatchFps(prune_, match_);
        if (owner->config_.trojan_stream_budget.enabled()) {
            smt::SolverConfig budgeted = wc->solver->config();
            budgeted.stream_budget = owner->config_.trojan_stream_budget;
            // The budgeted stream neither exports nor needs lemmas;
            // keep the worker's clause channel exclusive to the main
            // solver.
            budgeted.clause_sink = nullptr;
            budgeted.clause_source = nullptr;
            trojan_solver_ =
                std::make_unique<smt::Solver>(&wc->ctx, budgeted);
        }
    }

    Plane
    plane()
    {
        Plane p;
        p.ctx = &wc_->ctx;
        p.solver = wc_->solver.get();
        p.trojan_solver = trojan_solver_.get();
        p.match = &match_;
        p.negations = &negations_;
        p.message = &message_;
        p.match_fps = &match_fps_;
        p.stats = &stats_;
        p.samples = &samples_;
        p.trojans = &trojans_;
        p.prune = prune_;
        p.worker_id = wc_->worker_id;
        // Worker w bumps/traces on obs lane 1 + w, matching the lane
        // numbering the ParallelEngine gives its engines and solvers.
        p.obs = owner_->config_.engine.obs.ForLane(wc_->worker_id + 1);
        return p;
    }

    bool
    OnBranch(symexec::State &state, smt::ExprRef constraint) override
    {
        Plane p = plane();
        return owner_->HandleBranch(p, state, constraint);
    }

    void
    OnAccept(symexec::State &state) override
    {
        Plane p = plane();
        owner_->HandleAccept(p, state);
    }

    exec::WorkerContext *wc() { return wc_; }
    StatsRegistry &stats() { return stats_; }
    std::vector<LiveSetSample> &samples() { return samples_; }
    std::vector<TrojanWitness> &trojans() { return trojans_; }

  private:
    ServerExplorer *owner_;
    exec::WorkerContext *wc_;
    std::vector<std::vector<smt::ExprRef>> match_;
    std::vector<smt::ExprRef> negations_;
    std::vector<smt::ExprRef> message_;
    std::vector<exec::PruneFpVec> match_fps_;
    exec::PruneIndex *prune_ = nullptr;
    std::unique_ptr<smt::Solver> trojan_solver_;
    StatsRegistry stats_;
    std::vector<LiveSetSample> samples_;
    std::vector<TrojanWitness> trojans_;
};

class ServerExplorer::WorkerFactory : public exec::WorkerListenerFactory
{
  public:
    explicit WorkerFactory(ServerExplorer *owner) : owner_(owner) {}

    std::unique_ptr<symexec::Listener>
    MakeListener(exec::WorkerContext *wc) override
    {
        auto listener = std::make_unique<WorkerListener>(owner_, wc);
        created_.push_back(listener.get());
        return listener;
    }

    /** Listeners in worker-id order (owned by the ParallelEngine). */
    const std::vector<WorkerListener *> &created() const
    {
        return created_;
    }

  private:
    ServerExplorer *owner_;
    std::vector<WorkerListener *> created_;
};

ServerExplorer::ServerExplorer(
    smt::ExprContext *ctx, smt::Solver *solver,
    const symexec::Program *server, const MessageLayout *layout,
    const std::vector<ClientPathPredicate> *preds,
    const std::vector<NegatedPredicate> *negations,
    const DifferentFromMatrix *different_from, ServerExplorerConfig config,
    std::vector<smt::ExprRef> message)
    : ctx_(ctx), solver_(solver), server_(server), layout_(layout),
      preds_(preds), negations_(negations), different_from_(different_from),
      config_(config), message_(std::move(message))
{
    ACHILLES_CHECK(preds_->size() == negations_->size(),
                   "negations out of sync with predicates");

    // The symbolic message the server is analyzed on. Every path
    // constrains these same variables; when negations were precomputed,
    // the caller passes the variables they were computed against.
    if (message_.empty()) {
        message_.reserve(layout_->length());
        for (uint32_t i = 0; i < layout_->length(); ++i)
            message_.push_back(ctx_->FreshVar("msg", 8));
    }
    ACHILLES_CHECK(message_.size() >= layout_->length(),
                   "message shorter than layout");
    for (uint32_t i = 0; i < message_.size(); ++i) {
        ACHILLES_CHECK(message_[i]->IsVar(),
                       "server message bytes must be variables");
        var_to_offset_.emplace(message_[i]->VarId(), i);
    }

    // Which byte offsets participate in the analysis (unmasked fields).
    std::vector<bool> analyzed_byte(layout_->length(), false);
    for (const FieldSpec &f : layout_->AnalyzedFields())
        for (uint32_t k = 0; k < f.size; ++k)
            analyzed_byte[f.offset + k] = true;

    // Pre-build, per client path predicate, the conjunction stating
    // "this server message is one of the predicate's messages":
    // byte equalities over analyzed bytes plus the client constraints.
    match_.resize(preds_->size());
    negation_exprs_.resize(preds_->size());
    for (size_t i = 0; i < preds_->size(); ++i) {
        const ClientPathPredicate &pred = (*preds_)[i];
        for (uint32_t k = 0; k < layout_->length(); ++k) {
            if (!analyzed_byte[k])
                continue;
            match_[i].push_back(
                ctx_->MakeEq(message_[k], pred.bytes[k]));
        }
        for (smt::ExprRef c : pred.constraints)
            match_[i].push_back(c);
        negation_exprs_[i] = (*negations_)[i].Usable()
                                 ? (*negations_)[i].Disjunction(ctx_)
                                 : nullptr;
    }

    if (config_.use_prune_index) {
        // The serial-run knowledge base (multi-worker runs share the
        // ParallelEngine's instance instead). One context, so every
        // expression is fingerprintable.
        exec::PruneIndexConfig prune_config;
        prune_config.core_cap = config_.prune_core_cap;
        prune_config.overlay_cap = config_.prune_overlay_cap;
        home_prune_ = std::make_unique<exec::PruneIndex>(prune_config);
        home_match_fps_ = BuildMatchFps(home_prune_.get(), match_);
    }
    if (config_.trojan_stream_budget.enabled()) {
        smt::SolverConfig budgeted = solver_->config();
        budgeted.stream_budget = config_.trojan_stream_budget;
        budgeted.clause_sink = nullptr;
        budgeted.clause_source = nullptr;
        home_trojan_solver_ =
            std::make_unique<smt::Solver>(ctx_, budgeted);
    }
}

ServerExplorerConfig
BudgetedExplorationPreset(ServerExplorerConfig base)
{
    // Generous opening budget decaying toward a floor, with half of
    // every decided query's unspent conflicts rolling forward: early
    // (hard, discriminating) pruning queries get room, the long tail
    // of repetitive ones is clamped, and the stream as a whole is
    // bounded. Match and witness queries stay unbudgeted.
    base.trojan_stream_budget.base = 4096;
    base.trojan_stream_budget.decay = 0.98;
    base.trojan_stream_budget.floor = 256;
    base.trojan_stream_budget.carry = 0.5;
    return base;
}

ServerExplorer::Plane
ServerExplorer::HomePlane()
{
    Plane p;
    p.ctx = ctx_;
    p.solver = solver_;
    p.trojan_solver = home_trojan_solver_.get();
    p.match = &match_;
    p.negations = &negation_exprs_;
    p.message = &message_;
    p.match_fps = &home_match_fps_;
    p.stats = &analysis_.stats;
    p.samples = &analysis_.live_samples;
    p.trojans = &analysis_.trojans;
    p.prune = home_prune_.get();
    p.worker_id = 0;
    p.obs = config_.engine.obs;
    return p;
}

std::vector<exec::PruneFpVec>
ServerExplorer::BuildMatchFps(
    const exec::PruneIndex *index,
    const std::vector<std::vector<smt::ExprRef>> &match)
{
    std::vector<exec::PruneFpVec> out(match.size());
    if (index == nullptr)
        return out;
    for (size_t i = 0; i < match.size(); ++i) {
        if (!index->Fingerprint(match[i], &out[i]))
            out[i].clear();  // empty marks "skip the index"
    }
    return out;
}

ServerExplorer::LiveSet *
ServerExplorer::GetLiveSet(symexec::State &state)
{
    auto *data = dynamic_cast<LiveSet *>(state.user_data());
    if (data == nullptr) {
        auto fresh = std::make_unique<LiveSet>();
        fresh->live.resize(preds_->size());
        for (size_t i = 0; i < preds_->size(); ++i)
            fresh->live[i] = static_cast<uint32_t>(i);
        data = fresh.get();
        state.SetUserData(std::move(fresh));
    }
    return data;
}

smt::CheckResult
ServerExplorer::PredicateMatches(Plane &plane, const symexec::State &state,
                                 size_t i)
{
    // pathS as the base, predicate i's match conjunction as the extras:
    // iterating i over the live set re-asserts the same base, which the
    // incremental solver backend turns into assumption flips over
    // already-blasted CNF.
    plane.stats->Bump("explorer.match_queries");
    return plane.solver->CheckSatAssuming(state.constraints(),
                                          (*plane.match)[i]);
}

bool
ServerExplorer::SolverCoresOk(const smt::Solver *solver) const
{
    // Budgeted solvers -- flat max_conflicts or stream-level budgets --
    // can answer kUnknown; nothing may be dropped or subsumed off a
    // core then (the no-drop-on-kUnknown contract), so core consumption
    // is reserved for unbudgeted configurations where every core-guided
    // decision coincides with a kUnsat the solver would have produced.
    return config_.use_unsat_cores && solver->config().enable_cores &&
           solver->config().unbudgeted();
}

bool
ServerExplorer::CoresUsable(const Plane &plane) const
{
    return SolverCoresOk(plane.solver);
}

void
ServerExplorer::CoreGuidedDrops(Plane &plane, const symexec::State &state,
                                const smt::CheckResult &result, uint32_t i,
                                const std::vector<uint32_t> &live,
                                std::vector<uint8_t> *decided)
{
    // Split the core (caller indices over pathS ∥ match_i) back into
    // expressions.
    const std::vector<smt::ExprRef> &path = state.constraints();
    const std::vector<smt::ExprRef> &match_i = (*plane.match)[i];
    std::vector<smt::ExprRef> path_part;
    std::vector<smt::ExprRef> match_part;
    std::vector<smt::ExprRef> core_exprs;
    core_exprs.reserve(result.core.size());
    for (uint32_t idx : result.core) {
        if (idx < path.size()) {
            path_part.push_back(path[idx]);
            core_exprs.push_back(path_part.back());
        } else {
            ACHILLES_CHECK(idx - path.size() < match_i.size(),
                           "core index out of range");
            match_part.push_back(match_i[idx - path.size()]);
            core_exprs.push_back(match_part.back());
        }
    }

    // Rule 1 (verbatim transfer): a predicate whose match conjunction
    // contains every implicated match conjunct is refuted by the very
    // same core -- pathS is shared, so its query is UNSAT without
    // asking. Conjuncts are interned per plane context, so containment
    // is pointer membership. (Byte equalities over constant-valued
    // fields are shared across predicates, which is what makes this
    // fire: one refuted command byte kills every predicate of that
    // command.)
    for (uint32_t j : live) {
        if ((*decided)[j] != 0 || j == i)
            continue;
        if (smt::ContainsAllExprs((*plane.match)[j], match_part)) {
            (*decided)[j] = 3;
            plane.stats->Bump("explorer.core_subset_marks");
        }
    }

    // Rule 2 (field-localized conflict): when every implicated
    // constraint is confined to one independent field, the refutation
    // excludes a superset of predicate i's value set for that field, so
    // i's differentFrom value class dies with it -- the matrix rule the
    // branch-constraint path only reaches when the branch itself was
    // single-field.
    if (config_.use_different_from && different_from_ != nullptr) {
        std::string field;
        bool single = true;
        for (smt::ExprRef e : core_exprs) {
            for (const std::string &f : TouchedFields(plane, e)) {
                if (field.empty()) {
                    field = f;
                } else if (field != f) {
                    single = false;
                    break;
                }
            }
            if (!single)
                break;
        }
        if (single && !field.empty() &&
            different_from_->IsIndependentField(field)) {
            for (uint32_t j : live) {
                if ((*decided)[j] == 0 && j != i &&
                    !different_from_->Different(j, i, field)) {
                    (*decided)[j] = 3;
                    plane.stats->Bump("explorer.core_field_marks");
                }
            }
            // Densify the differentFrom overlay: the single-field core
            // becomes a mutable value-class edge any plane (any
            // worker) can take on later branches whose path contains
            // the implicated field-f constraints. Entries must
            // implicate the match side; a path-only core cannot arise
            // from a feasible state, but guard anyway.
            if (plane.prune != nullptr && !match_part.empty()) {
                exec::PruneFpVec path_fps, match_fps;
                if (plane.prune->Fingerprint(path_part, &path_fps) &&
                    plane.prune->Fingerprint(match_part, &match_fps)) {
                    plane.prune->RecordFieldCore(
                        plane.worker_id,
                        DifferentFromMatrix::FieldToken(field),
                        path_fps, match_fps);
                }
            }
        }
    }
}

bool
ServerExplorer::TrojanSubsumedByCore(
    Plane &plane, const exec::PruneFpVec *path_fps,
    const std::vector<smt::ExprRef> &negations) const
{
    if (plane.prune == nullptr || path_fps == nullptr)
        return false;
    exec::PruneFpVec neg_fps;
    if (!plane.prune->Fingerprint(negations, &neg_fps))
        return false;  // worker-local variable: not index-portable
    return plane.prune->SubsumesCore(plane.worker_id, *path_fps,
                                     neg_fps);
}

void
ServerExplorer::RememberTrojanCore(
    Plane &plane, const std::vector<smt::ExprRef> &path_constraints,
    const std::vector<smt::ExprRef> &negations,
    const smt::CheckResult &result)
{
    if (plane.prune == nullptr)
        return;
    // Split the core into its path part and its negation part; keyed
    // by the path part, it subsumes any descendant state's query --
    // on any worker -- whose constraints contain the path part and
    // whose live negations contain the negation part.
    std::vector<smt::ExprRef> path_part;
    std::vector<smt::ExprRef> negation_part;
    for (uint32_t idx : result.core) {
        if (idx < path_constraints.size()) {
            path_part.push_back(path_constraints[idx]);
        } else {
            ACHILLES_CHECK(idx - path_constraints.size() < negations.size(),
                           "core index out of range");
            negation_part.push_back(
                negations[idx - path_constraints.size()]);
        }
    }
    exec::PruneFpVec path_fps, neg_fps;
    if (!plane.prune->Fingerprint(path_part, &path_fps) ||
        !plane.prune->Fingerprint(negation_part, &neg_fps)) {
        return;
    }
    plane.prune->RecordCore(plane.worker_id, path_fps, neg_fps);
}

smt::CheckResult
ServerExplorer::TrojanQuery(
    Plane &plane, const std::vector<smt::ExprRef> &path_constraints,
    const std::vector<uint32_t> &live, smt::Model *model,
    const exec::PruneFpVec *path_fps)
{
    std::vector<smt::ExprRef> negations;
    negations.reserve(live.size());
    for (uint32_t i : live) {
        if ((*plane.negations)[i] == nullptr) {
            // An un-negatable live predicate blocks the whole query: we
            // cannot certify any message as outside its value set.
            plane.stats->Bump("explorer.blocked_by_unusable_negation");
            return smt::CheckResult::kUnsat;
        }
        negations.push_back((*plane.negations)[i]);
    }
    // Concrete pre-filter: a standing assignment satisfying the path
    // and every live negation proves the pruning query kSat outright
    // (keep the state) with zero solver work. Restricted to model-less
    // queries -- witness-producing ones must run the fresh-instance
    // path for their deterministic model bytes. Decision-identical:
    // the filter only ever answers an exact kSat the solver would have
    // answered too (or conservatively kept via kUnknown on a budgeted
    // stream), and it can never fire for an unsatisfiable query.
    if (model == nullptr && config_.use_concrete_prefilter) {
        const smt::Model *standing = plane.solver->StandingModel();
        if (standing != nullptr &&
            AllTrueUnder(path_constraints, *standing) &&
            AllTrueUnder(negations, *standing)) {
            plane.stats->Bump("explorer.prefilter_trojan_hits");
            return smt::CheckResult(smt::CheckStatus::kSat);
        }
    }
    // Pruning (model-less) queries may run on the dedicated
    // stream-budgeted Trojan solver; witness-producing queries always
    // use the main solver's deterministic fresh-instance path for
    // their model bytes.
    smt::Solver *solver = plane.solver;
    if (model == nullptr && plane.trojan_solver != nullptr)
        solver = plane.trojan_solver;
    // Only model-less (pruning) queries answered by an unbudgeted
    // solver consult and feed the shared core index: a budgeted stream
    // can answer kUnknown, so it must neither skip queries nor record
    // cores (no-drop-on-kUnknown).
    const bool cores = model == nullptr && SolverCoresOk(solver);
    if (cores && TrojanSubsumedByCore(plane, path_fps, negations)) {
        plane.stats->Bump("explorer.trojan_core_subsumed");
        return smt::CheckResult(smt::CheckStatus::kUnsat);
    }
    // A query that consulted the knowledge base but was not discharged
    // is near-miss territory: similar refutations exist in the index,
    // so it is likely UNSAT-adjacent and worth a deeper strategy. The
    // hint only steers the portfolio classifier (solver.h); it cannot
    // change any verdict.
    if (cores && path_fps != nullptr && plane.prune != nullptr)
        solver->NotePruneNearMiss();
    plane.stats->Bump("explorer.trojan_queries");
    smt::CheckResult result = solver->CheckSatAssuming(
        path_constraints, negations, model);
    if (cores && result == smt::CheckResult::kUnsat && result.has_core)
        RememberTrojanCore(plane, path_constraints, negations, result);
    return result;
}

std::vector<std::string>
ServerExplorer::TouchedFields(const Plane &plane, smt::ExprRef e) const
{
    std::unordered_set<uint32_t> vars;
    plane.ctx->CollectVars(e, &vars);
    std::vector<std::string> fields;
    for (uint32_t v : vars) {
        auto it = var_to_offset_.find(v);
        if (it == var_to_offset_.end())
            continue;
        const FieldSpec *f = layout_->FieldAtByte(it->second);
        if (f == nullptr)
            continue;
        if (std::find(fields.begin(), fields.end(), f->name) ==
            fields.end())
            fields.push_back(f->name);
    }
    return fields;
}

bool
ServerExplorer::HandleBranch(Plane &plane, symexec::State &state,
                             smt::ExprRef constraint)
{
    LiveSet *data = GetLiveSet(state);

    // Path fingerprints for the index probes, computed once per branch
    // (the differentFrom overlay and the Trojan-core store share
    // them); an un-fingerprintable constraint set -- a worker-local
    // variable -- just skips the index.
    exec::PruneFpVec path_fps;
    const bool path_fps_ok =
        plane.prune != nullptr && config_.use_unsat_cores &&
        plane.prune->Fingerprint(state.constraints(), &path_fps);

    // Only constraints over the message can change which client
    // predicates match (skipping others is conservative: we merely keep
    // predicates live longer).
    const std::vector<std::string> fields = TouchedFields(plane, constraint);
    if (!fields.empty() && config_.drop_client_predicates) {
        const bool single_independent_field =
            config_.use_different_from && fields.size() == 1 &&
            different_from_ != nullptr &&
            different_from_->IsIndependentField(fields[0]);

        const bool cores_usable = CoresUsable(plane);
        const bool overlay_usable =
            cores_usable && path_fps_ok &&
            config_.use_different_from && different_from_ != nullptr;
        // Concrete pre-filter context, computed once per branch: the
        // path-constraint evaluation is shared by every live predicate,
        // so each predicate costs only its own match conjuncts.
        const smt::Model *standing = config_.use_concrete_prefilter
                                         ? plane.solver->StandingModel()
                                         : nullptr;
        const bool path_holds =
            standing != nullptr &&
            AllTrueUnder(state.constraints(), *standing);
        const bool batch = config_.use_batch_sweep;
        int64_t prefilter_hits = 0;
        std::vector<uint32_t> queued;
        std::vector<uint32_t> survivors;
        survivors.reserve(data->live.size());
        // Per-predicate verdicts: 1 = drop via the differentFrom value
        // class, 2 = keep (matched), 3 = drop via an unsat core.
        std::vector<uint8_t> decided(preds_->size(), 0);
        for (uint32_t i : data->live) {
            if (decided[i] == 1) {
                plane.stats->Bump("explorer.difffrom_drops");
                continue;
            }
            if (decided[i] == 3) {
                plane.stats->Bump("explorer.core_drops");
                continue;
            }
            if (decided[i] == 2) {
                survivors.push_back(i);
                continue;
            }
            // The differentFrom overlay: a single-field core recorded
            // on an earlier branch (possibly by another worker) whose
            // path part this state contains refutes predicate i
            // outright, and names a field, so i's value class takes
            // the static fast path too -- exactly the decisions the
            // solver query below would have produced.
            std::string overlay_field;
            if (overlay_usable && !(*plane.match_fps)[i].empty() &&
                different_from_->OverlaySubsumed(
                    plane.prune, plane.worker_id, path_fps,
                    (*plane.match_fps)[i], &overlay_field)) {
                decided[i] = 3;
                plane.stats->Bump("explorer.overlay_drops");
                if (different_from_->IsIndependentField(overlay_field)) {
                    for (uint32_t j : data->live) {
                        if (decided[j] == 0 && j != i &&
                            !different_from_->Different(j, i,
                                                        overlay_field)) {
                            decided[j] = 3;
                            plane.stats->Bump(
                                "explorer.overlay_field_marks");
                        }
                    }
                }
                continue;
            }
            // Concrete pre-filter: the standing model satisfying pathS
            // and match_i proves the match query kSat -- keep i with no
            // solver call. kUnsat decisions are untouched (no
            // assignment satisfies an unsatisfiable query), so drops,
            // value-class marks and cores fire on exactly the same
            // queries as with the filter off.
            if (path_holds && AllTrueUnder((*plane.match)[i], *standing)) {
                ++prefilter_hits;
                survivors.push_back(i);
                decided[i] = 2;
                continue;
            }
            if (batch) {
                // Deferred to the one-pass sweep below.
                queued.push_back(i);
                continue;
            }
            const smt::CheckResult r = PredicateMatches(plane, state, i);
            if (r != smt::CheckResult::kUnsat) {
                survivors.push_back(i);
                decided[i] = 2;
                continue;
            }
            decided[i] = 1;
            plane.stats->Bump("explorer.predicate_drops");
            if (single_independent_field) {
                // Everything in i's value class (and any j that has no
                // extra values for this field) dies with i.
                for (uint32_t j : data->live) {
                    if (decided[j] == 0 &&
                        !different_from_->Different(j, i, fields[0])) {
                        decided[j] = 1;
                    }
                }
            }
            // Core-guided transitive drops: everything the refutation
            // itself implicates dies with i, whatever the branch
            // constraint touched.
            if (cores_usable && r.has_core)
                CoreGuidedDrops(plane, state, r, i, data->live, &decided);
        }
        if (prefilter_hits > 0) {
            plane.stats->Bump("explorer.prefilter_hits", prefilter_hits);
            if (plane.obs.metrics_on()) {
                plane.obs.CounterFor("explorer.prefilter_hits")
                    .Bump(prefilter_hits);
            }
        }
        if (batch && !queued.empty()) {
            // Batched all-sat sweep: one CheckSatBatch pass answers
            // every still-undecided live predicate. Verdict-exact vs
            // the per-predicate loop -- the shortcuts the serial path
            // would have taken (differentFrom value-class marks, core
            // drops) only ever skip queries whose answer is kUnsat, and
            // the sweep answers those kUnsat explicitly, so the
            // survivor set (and with it every witness byte) is
            // identical. explorer.match_queries counts solver passes:
            // a sweep contributes its rounds, which is exactly the
            // stream compression the --batch ablation measures.
            obs::ScopedSpan span(plane.obs.tracer, plane.obs.lane,
                                 "explorer.batch_sweep", "explorer");
            std::vector<const std::vector<smt::ExprRef> *> groups;
            groups.reserve(queued.size());
            for (uint32_t i : queued)
                groups.push_back(&(*plane.match)[i]);
            const smt::BatchOutcome outcome =
                plane.solver->CheckSatBatch(state.constraints(), groups);
            plane.stats->Bump("explorer.batch_sweeps");
            plane.stats->Bump("explorer.batch_guards",
                              static_cast<int64_t>(queued.size()));
            plane.stats->Bump("explorer.batch_rounds", outcome.rounds);
            plane.stats->Bump("explorer.match_queries", outcome.rounds);
            if (plane.obs.metrics_on()) {
                plane.obs.CounterFor("explorer.batch_sweeps").Bump();
                plane.obs.CounterFor("explorer.batch_guards")
                    .Bump(static_cast<int64_t>(queued.size()));
                plane.obs.CounterFor("explorer.batch_rounds")
                    .Bump(outcome.rounds);
            }
            if (plane.obs.enabled()) {
                span.AddArg("guards", static_cast<int64_t>(queued.size()));
                span.AddArg("rounds", outcome.rounds);
            }
            for (size_t k = 0; k < queued.size(); ++k) {
                const uint32_t i = queued[k];
                if (outcome.verdicts[k] == smt::CheckResult::kUnsat) {
                    decided[i] = 1;
                    plane.stats->Bump("explorer.predicate_drops");
                } else {
                    // kSat -- or kUnknown off a budgeted fallback:
                    // conservatively keep (never drop on kUnknown).
                    decided[i] = 2;
                }
            }
            // Rebuild the survivor set in original live order: sweep
            // verdicts interleave with prefilter and overlay decisions.
            survivors.clear();
            for (uint32_t i : data->live) {
                if (decided[i] == 2)
                    survivors.push_back(i);
            }
        }
        data->live = std::move(survivors);
    }

    plane.samples->push_back(
        LiveSetSample{state.depth(), data->live.size()});

    if (config_.prune_trojan_free_states) {
        const smt::CheckResult r =
            TrojanQuery(plane, state.constraints(), data->live, nullptr,
                        path_fps_ok ? &path_fps : nullptr);
        if (r == smt::CheckResult::kUnsat) {
            plane.stats->Bump("explorer.states_pruned");
            obs::TraceInstant(plane.obs.tracer, plane.obs.lane,
                              "explorer.state_pruned", "explorer", "state",
                              static_cast<int64_t>(state.id()));
            return false;
        }
    }
    return true;
}

void
ServerExplorer::EmitTrojan(Plane &plane, const symexec::State &state,
                           const std::vector<uint32_t> &live)
{
    smt::Model model;
    const smt::CheckResult r =
        TrojanQuery(plane, state.constraints(), live, &model);
    if (r != smt::CheckResult::kSat) {
        plane.stats->Bump("explorer.accepting_without_trojans");
        return;
    }
    TrojanWitness witness;
    witness.server_path_id = state.id();
    witness.accept_label = state.accept_label;
    witness.definition = state.constraints();
    for (uint32_t i : live)
        witness.definition.push_back((*plane.negations)[i]);
    witness.concrete.reserve(plane.message->size());
    for (smt::ExprRef byte : *plane.message) {
        witness.concrete.push_back(
            static_cast<uint8_t>(smt::Evaluate(byte, model)));
        witness.message_vars.push_back(byte->VarId());
    }
    witness.bundled_with_valid = !live.empty();
    witness.discovered_at_seconds = timer_.Seconds();
    witness.path_depth = state.depth();
    plane.trojans->push_back(std::move(witness));
    plane.stats->Bump("explorer.trojans");
    obs::TraceInstant(plane.obs.tracer, plane.obs.lane,
                      "explorer.trojan_witness", "explorer", "path",
                      static_cast<int64_t>(state.id()));
}

void
ServerExplorer::HandleAccept(Plane &plane, symexec::State &state)
{
    LiveSet *data = GetLiveSet(state);
    EmitTrojan(plane, state, data->live);
}

bool
ServerExplorer::OnBranch(symexec::State &state, smt::ExprRef constraint)
{
    if (config_.mode == SearchMode::kAPosteriori)
        return true;
    Plane plane = HomePlane();
    return HandleBranch(plane, state, constraint);
}

void
ServerExplorer::OnAccept(symexec::State &state)
{
    if (config_.mode == SearchMode::kAPosteriori)
        return;
    Plane plane = HomePlane();
    HandleAccept(plane, state);
}

std::vector<symexec::PathResult>
ServerExplorer::RunParallel()
{
    exec::ParallelEngine engine(ctx_, server_, symexec::Mode::kServer,
                                config_.engine, solver_->config());
    exec::PruneIndexConfig prune_config;
    prune_config.core_cap = config_.prune_core_cap;
    prune_config.overlay_cap = config_.prune_overlay_cap;
    engine.SetPruneIndexConfig(prune_config);
    engine.SetIncomingMessage(message_);
    // Warm-start wiring: the persist layer is injected from above
    // (exec must not depend on it). Restore runs single-threaded before
    // any worker starts; capture runs after every worker has joined.
    exec::ParallelEngine::KnowledgeHook restore;
    if (config_.knowledge_in != nullptr) {
        const persist::KnowledgeSnapshot *in = config_.knowledge_in;
        restore = [in](exec::PruneIndex *prune, exec::QueryCache *cache,
                       exec::ClauseExchange *exchange) {
            persist::RestoreKnowledge(*in, prune, cache, exchange);
        };
    }
    exec::ParallelEngine::KnowledgeHook capture;
    if (config_.knowledge_out != nullptr) {
        persist::KnowledgeSnapshot *out = config_.knowledge_out;
        capture = [out](exec::PruneIndex *prune, exec::QueryCache *cache,
                        exec::ClauseExchange *exchange) {
            persist::CaptureKnowledge(prune, cache, exchange, out);
        };
    }
    if (restore || capture)
        engine.SetKnowledgeHooks(std::move(restore), std::move(capture));
    WorkerFactory factory(this);
    const bool incremental = config_.mode == SearchMode::kIncremental;
    if (incremental)
        engine.SetListenerFactory(&factory);
    std::vector<symexec::PathResult> paths = engine.Run();
    analysis_.stats.Merge(engine.stats());

    if (!incremental)
        return paths;

    // Merge the worker-private sinks. Witness definitions live in the
    // worker contexts; translate them home so callers can re-solve them
    // against the home message variables, exactly as in a serial run.
    for (WorkerListener *listener : factory.created()) {
        analysis_.stats.Merge(listener->stats());
        analysis_.live_samples.insert(analysis_.live_samples.end(),
                                      listener->samples().begin(),
                                      listener->samples().end());
        for (TrojanWitness &witness : listener->trojans()) {
            for (smt::ExprRef &e : witness.definition)
                e = listener->wc()->bridge->ToHome(e);
            analysis_.trojans.push_back(std::move(witness));
        }
    }
    // Deterministic presentation regardless of schedule: witnesses by
    // (schedule-independent) accepting path id, samples by position.
    std::stable_sort(analysis_.trojans.begin(), analysis_.trojans.end(),
                     [](const TrojanWitness &a, const TrojanWitness &b) {
                         return a.server_path_id < b.server_path_id;
                     });
    std::stable_sort(analysis_.live_samples.begin(),
                     analysis_.live_samples.end(),
                     [](const LiveSetSample &a, const LiveSetSample &b) {
                         return a.path_length != b.path_length
                                    ? a.path_length < b.path_length
                                    : a.live_predicates < b.live_predicates;
                     });
    return paths;
}

ServerAnalysis
ServerExplorer::Run()
{
    timer_.Reset();
    // The home index serves serial runs and the a-posteriori
    // differencing pass; parallel incremental runs consult the
    // ParallelEngine's stores instead (restored via RunParallel's
    // hooks), so warming the home index there would only duplicate
    // capture output.
    const bool home_kb =
        home_prune_ != nullptr && (config_.engine.num_workers <= 1 ||
                                   config_.mode == SearchMode::kAPosteriori);
    if (home_kb && config_.knowledge_in != nullptr) {
        persist::RestoreKnowledge(*config_.knowledge_in, home_prune_.get(),
                                  nullptr, nullptr);
    }
    std::vector<symexec::PathResult> paths;
    if (config_.engine.num_workers > 1) {
        paths = RunParallel();
    } else {
        // Serial runs own their prune index here (parallel runs get
        // theirs from ParallelEngine, which registers its own gauges);
        // expose it to the heartbeat for the duration of the run, then
        // freeze so the gauges never outlive home_prune_ as live reads.
        const bool gauges = config_.engine.obs.metrics_on() &&
                            home_prune_ != nullptr;
        if (gauges) {
            obs::MetricsRegistry *reg = config_.engine.obs.registry;
            const exec::PruneIndex *prune = home_prune_.get();
            reg->RegisterGauge("prune.core_hits",
                               [prune] { return prune->core_hits(); });
            reg->RegisterGauge("prune.overlay_hits",
                               [prune] { return prune->overlay_hits(); });
            reg->RegisterGauge("prune.core_probes",
                               [prune] { return prune->core_probes(); });
            reg->RegisterGauge("prune.overlay_probes", [prune] {
                return prune->overlay_probes();
            });
        }
        symexec::Engine engine(ctx_, solver_, server_,
                               symexec::Mode::kServer, config_.engine);
        engine.SetIncomingMessage(message_);
        engine.SetListener(this);
        paths = engine.Run();
        analysis_.stats.Merge(engine.stats());
        if (gauges) {
            obs::MetricsRegistry *reg = config_.engine.obs.registry;
            const auto freeze = [reg](const std::string &name,
                                      int64_t value) {
                reg->RegisterGauge(name, [value] { return value; });
            };
            freeze("prune.core_hits", home_prune_->core_hits());
            freeze("prune.overlay_hits", home_prune_->overlay_hits());
            freeze("prune.core_probes", home_prune_->core_probes());
            freeze("prune.overlay_probes", home_prune_->overlay_probes());
        }
    }

    for (symexec::PathResult &path : paths) {
        if (path.outcome == symexec::PathOutcome::kAccepted)
            analysis_.accepting_paths.push_back(path);
    }

    if (config_.mode == SearchMode::kAPosteriori) {
        // Differencing after the fact: conjoin every predicate's
        // negation on each accepting path. Paths from a parallel run
        // are already home-translated, so this stays a serial pass on
        // the home solver either way.
        Plane plane = HomePlane();
        std::vector<uint32_t> all(preds_->size());
        for (size_t i = 0; i < all.size(); ++i)
            all[i] = static_cast<uint32_t>(i);
        for (const symexec::PathResult &path : analysis_.accepting_paths) {
            smt::Model model;
            if (TrojanQuery(plane, path.constraints, all, &model) !=
                smt::CheckResult::kSat) {
                continue;
            }
            TrojanWitness witness;
            witness.server_path_id = path.state_id;
            witness.accept_label = path.accept_label;
            witness.definition = path.constraints;
            for (uint32_t i : all)
                if (negation_exprs_[i] != nullptr)
                    witness.definition.push_back(negation_exprs_[i]);
            for (smt::ExprRef byte : message_) {
                witness.concrete.push_back(
                    static_cast<uint8_t>(smt::Evaluate(byte, model)));
                witness.message_vars.push_back(byte->VarId());
            }
            witness.bundled_with_valid = true;  // not tracked in this mode
            witness.discovered_at_seconds = timer_.Seconds();
            witness.path_depth = path.depth;
            analysis_.trojans.push_back(std::move(witness));
            analysis_.stats.Bump("explorer.trojans");
        }
    }

    if (home_kb && config_.knowledge_out != nullptr) {
        persist::CaptureKnowledge(home_prune_.get(), nullptr, nullptr,
                                  config_.knowledge_out);
    }
    if (home_prune_ != nullptr)
        home_prune_->ExportStats(&analysis_.stats);
    analysis_.seconds = timer_.Seconds();
    return std::move(analysis_);
}

}  // namespace core
}  // namespace achilles
