// Achilles reproduction -- core library.
//
// Phase 1 of Achilles: extract the client predicate PC by symbolically
// executing each client program in a symbolic environment (all local
// inputs intercepted and replaced by symbolic data) and capturing the
// message sent on every path, together with the path constraints
// (paper Section 3.1, "Client Predicate").

#ifndef ACHILLES_CORE_CLIENT_EXTRACTOR_H_
#define ACHILLES_CORE_CLIENT_EXTRACTOR_H_

#include <vector>

#include "core/message.h"
#include "core/path_predicate.h"
#include "smt/solver.h"
#include "support/stats.h"
#include "symexec/engine.h"

namespace achilles {
namespace core {

/** Options for client predicate extraction. */
struct ClientExtractorConfig
{
    symexec::EngineConfig engine;
    /** Drop structurally duplicate predicates (alpha-renamed). */
    bool deduplicate = true;
};

/** Result of the extraction phase. */
struct ClientPredicate
{
    std::vector<ClientPathPredicate> paths;
    StatsRegistry stats;
};

/**
 * Run every client program symbolically and collect one
 * ClientPathPredicate per (path, sent message).
 */
ClientPredicate ExtractClientPredicate(
    smt::ExprContext *ctx, smt::Solver *solver,
    const std::vector<const symexec::Program *> &clients,
    const MessageLayout &layout, const ClientExtractorConfig &config = {});

}  // namespace core
}  // namespace achilles

#endif  // ACHILLES_CORE_CLIENT_EXTRACTOR_H_
