// Achilles reproduction -- core library.
//
// Human-readable reporting of analysis results: Trojan witnesses with
// their concrete example messages and defining symbolic expressions
// (what the paper's tool prints for fault-injection testing).

#ifndef ACHILLES_CORE_REPORT_H_
#define ACHILLES_CORE_REPORT_H_

#include <iomanip>
#include <ostream>

#include "core/achilles.h"

namespace achilles {
namespace core {

/** Render one concrete message as hex bytes with field annotations. */
inline void
PrintConcreteMessage(std::ostream &os, const MessageLayout &layout,
                     const std::vector<uint8_t> &bytes)
{
    os << std::hex << std::setfill('0');
    for (size_t i = 0; i < bytes.size(); ++i)
        os << std::setw(2) << static_cast<unsigned>(bytes[i])
           << (i + 1 < bytes.size() ? " " : "");
    os << std::dec << std::setfill(' ');
    os << "  [";
    bool first = true;
    for (const FieldSpec &f : layout.fields()) {
        uint64_t value = 0;
        for (uint32_t k = 0; k < f.size; ++k)
            value |= static_cast<uint64_t>(bytes[f.offset + k]) << (8 * k);
        if (!first)
            os << " ";
        first = false;
        os << f.name << "=" << value;
        if (layout.IsMasked(f.name))
            os << "(masked)";
    }
    os << "]";
}

/** Print a summary of a full Achilles run. */
inline void
PrintReport(std::ostream &os, const MessageLayout &layout,
            const AchillesResult &result, bool print_definitions = false,
            smt::ExprContext *ctx = nullptr)
{
    os << "=== Achilles report ===\n";
    os << "client path predicates: "
       << result.client_predicate.paths.size() << "\n";
    os << "negations: exact=" << result.negate_stats.exact_predicates
       << " approx=" << result.negate_stats.approx_predicates
       << " abandoned-fields=" << result.negate_stats.abandoned_fields
       << " overlap-discarded=" << result.negate_stats.overlap_discarded
       << "\n";
    os << "phase timings (s): client="
       << result.timings.client_extraction
       << " preprocess=" << result.timings.preprocessing
       << " server=" << result.timings.server_analysis << "\n";
    os << "accepting server paths: "
       << result.server.accepting_paths.size() << "\n";
    os << "trojan witnesses: " << result.server.trojans.size() << "\n";
    for (size_t i = 0; i < result.server.trojans.size(); ++i) {
        const TrojanWitness &t = result.server.trojans[i];
        os << "  trojan[" << i << "] path=" << t.server_path_id
           << (t.accept_label.empty() ? ""
                                      : " label=" + t.accept_label)
           << (t.bundled_with_valid ? " (bundled with valid messages)"
                                    : " (trojan-exclusive path)")
           << "\n    concrete: ";
        PrintConcreteMessage(os, layout, t.concrete);
        os << "\n";
        if (print_definitions && ctx != nullptr) {
            os << "    definition:\n";
            for (smt::ExprRef e : t.definition)
                os << "      " << ctx->ToString(e) << "\n";
        }
    }
}

}  // namespace core
}  // namespace achilles

#endif  // ACHILLES_CORE_REPORT_H_
