// Achilles reproduction -- support library.
//
// Deterministic pseudo-random number generation (splitmix64 +
// xoshiro256**). All stochastic components of the reproduction (fuzzing
// baseline, random searcher, property-test input generation) draw from
// this generator so experiments are reproducible from a seed.

#ifndef ACHILLES_SUPPORT_RNG_H_
#define ACHILLES_SUPPORT_RNG_H_

#include <cstdint>

namespace achilles {

/**
 * Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
 *
 * Not cryptographically secure; used only to drive simulations and
 * fuzzing workloads deterministically.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

    /** Re-seed the generator. */
    void
    Seed(uint64_t seed)
    {
        // splitmix64 to fill the state from a single word.
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next uniformly distributed 64-bit value. */
    uint64_t
    Next()
    {
        const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = Rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    uint64_t
    Below(uint64_t bound)
    {
        // Multiply-shift rejection-free mapping (slightly biased for huge
        // bounds; irrelevant for simulation purposes).
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(Next()) * bound) >> 64);
    }

    /** Uniform value in [lo, hi] inclusive. */
    uint64_t
    Range(uint64_t lo, uint64_t hi)
    {
        return lo + Below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    NextDouble()
    {
        return static_cast<double>(Next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool Chance(double p) { return NextDouble() < p; }

  private:
    static uint64_t
    Rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

}  // namespace achilles

#endif  // ACHILLES_SUPPORT_RNG_H_
