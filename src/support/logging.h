// Achilles reproduction -- support library.
//
// Error-reporting primitives in the spirit of gem5's logging.hh:
//   Panic()  -- internal invariant violated (a bug in this library); aborts.
//   Fatal()  -- unrecoverable user/configuration error; exits cleanly.
//   Warn()   -- something suspicious but survivable.
//
// Warn routes through the observability layer's leveled logger
// (src/obs/log.h): one whole prefixed line per message with the run id
// and the calling thread's worker lane, suppressible via ACHILLES_LOG.
// Panic and Fatal terminate the process, so they print unconditionally
// -- but through the same single-write discipline, because an invariant
// can trip on a worker thread while its siblings are still logging.

#ifndef ACHILLES_SUPPORT_LOGGING_H_
#define ACHILLES_SUPPORT_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "obs/log.h"

namespace achilles {

/** Terminate with a message indicating an internal bug. */
[[noreturn]] inline void
Panic(const std::string &msg, const char *file, int line)
{
    std::string out = "panic: ";
    out += msg;
    out += " (";
    out += file;
    out += ":";
    out += std::to_string(line);
    out += ")\n";
    std::fwrite(out.data(), 1, out.size(), stderr);
    std::abort();
}

/** Terminate with a message indicating a user-facing error. */
[[noreturn]] inline void
Fatal(const std::string &msg)
{
    std::string out = "fatal: ";
    out += msg;
    out += "\n";
    std::fwrite(out.data(), 1, out.size(), stderr);
    std::exit(1);
}

/** Emit a non-fatal warning (leveled, run-id/worker-id prefixed). */
inline void
Warn(const std::string &msg)
{
    obs::LogWarn(msg);
}

namespace detail {

/** Build a message from stream-style parts. */
template <typename... Args>
std::string
Concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

}  // namespace detail

}  // namespace achilles

/** Assert an internal invariant; active in all build types. */
#define ACHILLES_CHECK(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::achilles::Panic(                                             \
                ::achilles::detail::Concat("check failed: " #cond " ",     \
                                           ##__VA_ARGS__),                 \
                __FILE__, __LINE__);                                       \
        }                                                                  \
    } while (0)

/** Report an unreachable code path. */
#define ACHILLES_UNREACHABLE(...)                                          \
    ::achilles::Panic(                                                     \
        ::achilles::detail::Concat("unreachable ", ##__VA_ARGS__),         \
        __FILE__, __LINE__)

#endif  // ACHILLES_SUPPORT_LOGGING_H_
