// Achilles reproduction -- support library.
//
// Error-reporting primitives in the spirit of gem5's logging.hh:
//   Panic()  -- internal invariant violated (a bug in this library); aborts.
//   Fatal()  -- unrecoverable user/configuration error; exits cleanly.
//   Warn()   -- something suspicious but survivable.

#ifndef ACHILLES_SUPPORT_LOGGING_H_
#define ACHILLES_SUPPORT_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace achilles {

/** Terminate with a message indicating an internal bug. */
[[noreturn]] inline void
Panic(const std::string &msg, const char *file, int line)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")\n";
    std::abort();
}

/** Terminate with a message indicating a user-facing error. */
[[noreturn]] inline void
Fatal(const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n";
    std::exit(1);
}

/** Emit a non-fatal warning. */
inline void
Warn(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

namespace detail {

/** Build a message from stream-style parts. */
template <typename... Args>
std::string
Concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

}  // namespace detail

}  // namespace achilles

/** Assert an internal invariant; active in all build types. */
#define ACHILLES_CHECK(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::achilles::Panic(                                             \
                ::achilles::detail::Concat("check failed: " #cond " ",     \
                                           ##__VA_ARGS__),                 \
                __FILE__, __LINE__);                                       \
        }                                                                  \
    } while (0)

/** Report an unreachable code path. */
#define ACHILLES_UNREACHABLE(...)                                          \
    ::achilles::Panic(                                                     \
        ::achilles::detail::Concat("unreachable ", ##__VA_ARGS__),         \
        __FILE__, __LINE__)

#endif  // ACHILLES_SUPPORT_LOGGING_H_
