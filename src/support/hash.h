// Achilles reproduction -- support library.
//
// Shared hashing primitives. Deterministic across runs and platforms;
// used for expression fingerprints, tree-derived state ids and query
// cache keys, so every user must mix bits identically.

#ifndef ACHILLES_SUPPORT_HASH_H_
#define ACHILLES_SUPPORT_HASH_H_

#include <cstdint>

namespace achilles {

/** splitmix64 finalizer -- avalanche a 64-bit value. */
inline uint64_t
MixBits(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

}  // namespace achilles

#endif  // ACHILLES_SUPPORT_HASH_H_
