// Achilles reproduction -- support library.
//
// Lightweight named statistics counters. Components (SAT solver, symbolic
// execution engine, Trojan search) register counters in a StatsRegistry so
// experiment harnesses can dump internal metrics, the way S2E plugins
// export execution statistics.
//
// The original map-bag class here was not thread-safe: once the parallel
// exec/ subsystem existed, a stray cross-thread Bump was a data race.
// The implementation now lives in the observability layer as
// obs::LocalStats -- the same Bump/Set/Get/All/Merge/Dump surface behind
// a mutex -- and this header aliases it so the ~30 existing call sites
// keep compiling unchanged. The live, run-wide sharded layer (lock-free
// per-worker counters, distributions, gauges) is obs::MetricsRegistry
// (src/obs/metrics.h); these bags remain the merge-at-join accounting
// currency.

#ifndef ACHILLES_SUPPORT_STATS_H_
#define ACHILLES_SUPPORT_STATS_H_

#include "obs/metrics.h"

namespace achilles {

/** A named bag of integer counters (thread-safe). */
using StatsRegistry = obs::LocalStats;

}  // namespace achilles

#endif  // ACHILLES_SUPPORT_STATS_H_
