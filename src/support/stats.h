// Achilles reproduction -- support library.
//
// Lightweight named statistics counters. Components (SAT solver, symbolic
// execution engine, Trojan search) register counters in a StatsRegistry so
// experiment harnesses can dump internal metrics, the way S2E plugins
// export execution statistics.

#ifndef ACHILLES_SUPPORT_STATS_H_
#define ACHILLES_SUPPORT_STATS_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace achilles {

/** A named bag of integer counters. */
class StatsRegistry
{
  public:
    /** Add delta to the named counter (creating it at zero). */
    void Bump(const std::string &name, int64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Set the named counter to an absolute value. */
    void Set(const std::string &name, int64_t value)
    {
        counters_[name] = value;
    }

    /** Read a counter; zero if it was never touched. */
    int64_t
    Get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** All counters, sorted by name. */
    const std::map<std::string, int64_t> &All() const { return counters_; }

    /** Merge another registry into this one (summing counters). */
    void
    Merge(const StatsRegistry &other)
    {
        for (const auto &[name, value] : other.counters_)
            counters_[name] += value;
    }

    /** Pretty-print all counters, one per line. */
    void
    Dump(std::ostream &os, const std::string &prefix = "") const
    {
        for (const auto &[name, value] : counters_)
            os << prefix << name << " = " << value << "\n";
    }

  private:
    std::map<std::string, int64_t> counters_;
};

}  // namespace achilles

#endif  // ACHILLES_SUPPORT_STATS_H_
