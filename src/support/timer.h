// Achilles reproduction -- support library.
//
// Wall-clock timing helpers used by the experiment harnesses to report
// per-phase timings (client extraction / preprocessing / server analysis),
// mirroring the breakdown reported in Section 6.2 of the paper.

#ifndef ACHILLES_SUPPORT_TIMER_H_
#define ACHILLES_SUPPORT_TIMER_H_

#include <chrono>

namespace achilles {

/** Simple monotonic stopwatch. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void Reset() { start_ = Clock::now(); }

    /** Elapsed time in seconds since construction or last Reset(). */
    double
    Seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed time in milliseconds. */
    double Millis() const { return Seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace achilles

#endif  // ACHILLES_SUPPORT_TIMER_H_
