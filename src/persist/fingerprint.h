// Achilles reproduction -- warm-start knowledge persistence.
//
// Protocol fingerprinting: a structural hash over a materialized
// ProtocolBundle that keys knowledge snapshots. The soundness of
// cross-run fingerprint reuse rests on "same protocol => same
// deterministic construction => same variable ids"; this hash is the
// machine-checkable form of "same protocol". It covers everything the
// construction depends on -- layout geometry and masks, every client
// and server instruction, and every DSL expression tree -- so editing a
// field width, an opcode operand, or a guard constant changes the
// fingerprint and retires the old snapshot to a silent cold start.

#ifndef ACHILLES_PERSIST_FINGERPRINT_H_
#define ACHILLES_PERSIST_FINGERPRINT_H_

#include <cstdint>

#include "proto/registry.h"

namespace achilles {
namespace persist {

/** Structural FNV-1a hash of the bundle (layout + server + clients). */
uint64_t ProtocolFingerprint(const proto::ProtocolBundle &bundle);

}  // namespace persist
}  // namespace achilles

#endif  // ACHILLES_PERSIST_FINGERPRINT_H_
