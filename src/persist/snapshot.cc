// Achilles reproduction -- warm-start knowledge persistence.

#include "persist/snapshot.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <tuple>

namespace achilles {
namespace persist {

namespace {

constexpr char kMagic[8] = {'A', 'C', 'H', 'S', 'N', 'A', 'P', '\0'};

// Section tags. Unknown tags fail the load: a future writer's snapshot
// is not partially importable, per the all-or-nothing rule.
constexpr uint32_t kSectionCores = 1;
constexpr uint32_t kSectionOverlay = 2;
constexpr uint32_t kSectionQueryCores = 3;
constexpr uint32_t kSectionLemmas = 4;
constexpr uint32_t kSectionQueries = 5;

// ------------------------------------------------------------ encoding

void
PutU32(std::vector<uint8_t> *buf, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
PutU64(std::vector<uint8_t> *buf, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
PutFpVec(std::vector<uint8_t> *buf, const exec::PruneFpVec &fps)
{
    PutU64(buf, fps.size());
    for (const exec::PruneFp &fp : fps) {
        PutU64(buf, fp.first);
        PutU64(buf, fp.second);
    }
}

/** Bounds-checked little-endian reader; every defect latches ok=false
 *  and subsequent reads return zeros. */
struct Reader
{
    const uint8_t *data = nullptr;
    size_t size = 0;
    size_t pos = 0;
    bool ok = true;

    bool
    Need(size_t n)
    {
        if (!ok || size - pos < n) {
            ok = false;
            return false;
        }
        return true;
    }
    uint32_t
    U32()
    {
        if (!Need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(data[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }
    uint64_t
    U64()
    {
        if (!Need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }
    uint8_t
    U8()
    {
        if (!Need(1))
            return 0;
        return data[pos++];
    }
};

bool
GetFpVec(Reader *r, exec::PruneFpVec *out)
{
    const uint64_t count = r->U64();
    // Each fingerprint is 16 bytes; a count the remaining payload
    // cannot hold is a corruption, caught before any allocation.
    if (!r->ok || count > (r->size - r->pos) / 16) {
        r->ok = false;
        return false;
    }
    out->clear();
    out->reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
        const uint64_t first = r->U64();
        const uint64_t second = r->U64();
        out->emplace_back(first, second);
    }
    if (!r->ok || !std::is_sorted(out->begin(), out->end())) {
        r->ok = false;
        return false;
    }
    return true;
}

// ---------------------------------------------------- section payloads

std::vector<uint8_t>
EncodeEntries(const std::vector<exec::PruneIndex::ExportedEntry> &entries)
{
    std::vector<uint8_t> buf;
    PutU64(&buf, entries.size());
    for (const auto &e : entries) {
        PutU64(&buf, e.payload);
        PutFpVec(&buf, e.primary);
        PutFpVec(&buf, e.secondary);
    }
    return buf;
}

bool
DecodeEntries(Reader *r,
              std::vector<exec::PruneIndex::ExportedEntry> *out)
{
    const uint64_t count = r->U64();
    if (!r->ok || count > (r->size - r->pos) / 24)
        return false;
    out->reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
        exec::PruneIndex::ExportedEntry e;
        e.payload = r->U64();
        if (!GetFpVec(r, &e.primary) || !GetFpVec(r, &e.secondary))
            return false;
        out->push_back(std::move(e));
    }
    return r->ok;
}

std::vector<uint8_t>
EncodeQueryCores(
    const std::vector<exec::PruneIndex::ExportedQueryCore> &entries)
{
    std::vector<uint8_t> buf;
    PutU64(&buf, entries.size());
    for (const auto &e : entries) {
        PutFpVec(&buf, e.query);
        PutFpVec(&buf, e.core);
    }
    return buf;
}

bool
DecodeQueryCores(Reader *r,
                 std::vector<exec::PruneIndex::ExportedQueryCore> *out)
{
    const uint64_t count = r->U64();
    if (!r->ok || count > (r->size - r->pos) / 16)
        return false;
    out->reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
        exec::PruneIndex::ExportedQueryCore e;
        if (!GetFpVec(r, &e.query) || !GetFpVec(r, &e.core))
            return false;
        out->push_back(std::move(e));
    }
    return r->ok;
}

std::vector<uint8_t>
EncodeLemmas(const std::vector<exec::Lemma> &lemmas)
{
    std::vector<uint8_t> buf;
    PutU64(&buf, lemmas.size());
    for (const exec::Lemma &lemma : lemmas)
        PutFpVec(&buf, lemma);
    return buf;
}

bool
DecodeLemmas(Reader *r, std::vector<exec::Lemma> *out)
{
    const uint64_t count = r->U64();
    if (!r->ok || count > (r->size - r->pos) / 8)
        return false;
    out->reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
        exec::Lemma lemma;
        if (!GetFpVec(r, &lemma) || lemma.empty())
            return false;
        out->push_back(std::move(lemma));
    }
    return r->ok;
}

std::vector<uint8_t>
EncodeQueries(const std::vector<exec::QueryCache::ExportedEntry> &entries)
{
    std::vector<uint8_t> buf;
    PutU64(&buf, entries.size());
    for (const auto &e : entries) {
        PutFpVec(&buf, e.fingerprints);
        buf.push_back(static_cast<uint8_t>(e.status));
        buf.push_back(e.has_model ? 1 : 0);
        PutU64(&buf, e.model_values.size());
        for (const auto &[id, value] : e.model_values) {
            PutU32(&buf, id);
            PutU64(&buf, value);
        }
    }
    return buf;
}

bool
DecodeQueries(Reader *r,
              std::vector<exec::QueryCache::ExportedEntry> *out)
{
    const uint64_t count = r->U64();
    if (!r->ok || count > (r->size - r->pos) / 18)
        return false;
    out->reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
        exec::QueryCache::ExportedEntry e;
        if (!GetFpVec(r, &e.fingerprints))
            return false;
        const uint8_t status = r->U8();
        // Only decided verdicts are ever stored (Insert refuses
        // kUnknown); any other byte is corruption.
        if (status > 1)
            return false;
        e.status = static_cast<smt::CheckStatus>(status);
        e.has_model = r->U8() != 0;
        const uint64_t values = r->U64();
        if (!r->ok || values > (r->size - r->pos) / 12)
            return false;
        e.model_values.reserve(static_cast<size_t>(values));
        for (uint64_t k = 0; k < values; ++k) {
            const uint32_t id = r->U32();
            const uint64_t value = r->U64();
            e.model_values.emplace_back(id, value);
        }
        if (!std::is_sorted(e.model_values.begin(),
                            e.model_values.end())) {
            return false;
        }
        out->push_back(std::move(e));
    }
    return r->ok;
}

// -------------------------------------------------- canonical ordering

bool
EntryLess(const exec::PruneIndex::ExportedEntry &a,
          const exec::PruneIndex::ExportedEntry &b)
{
    return std::tie(a.primary, a.secondary, a.payload) <
           std::tie(b.primary, b.secondary, b.payload);
}

bool
EntryEq(const exec::PruneIndex::ExportedEntry &a,
        const exec::PruneIndex::ExportedEntry &b)
{
    return a.primary == b.primary && a.secondary == b.secondary &&
           a.payload == b.payload;
}

void
Canonicalize(KnowledgeSnapshot *snap)
{
    // Deterministic bytes for identical knowledge: shard layout,
    // capture order and duplicate appends (engine stores + home index)
    // must not show in the file.
    std::sort(snap->cores.begin(), snap->cores.end(), EntryLess);
    snap->cores.erase(std::unique(snap->cores.begin(), snap->cores.end(),
                                  EntryEq),
                      snap->cores.end());
    std::sort(snap->overlay.begin(), snap->overlay.end(), EntryLess);
    snap->overlay.erase(std::unique(snap->overlay.begin(),
                                    snap->overlay.end(), EntryEq),
                        snap->overlay.end());
    const auto qc_less = [](const exec::PruneIndex::ExportedQueryCore &a,
                            const exec::PruneIndex::ExportedQueryCore &b) {
        return std::tie(a.query, a.core) < std::tie(b.query, b.core);
    };
    const auto qc_eq = [](const exec::PruneIndex::ExportedQueryCore &a,
                          const exec::PruneIndex::ExportedQueryCore &b) {
        return a.query == b.query && a.core == b.core;
    };
    std::sort(snap->query_cores.begin(), snap->query_cores.end(), qc_less);
    snap->query_cores.erase(std::unique(snap->query_cores.begin(),
                                        snap->query_cores.end(), qc_eq),
                            snap->query_cores.end());
    std::sort(snap->lemmas.begin(), snap->lemmas.end());
    snap->lemmas.erase(
        std::unique(snap->lemmas.begin(), snap->lemmas.end()),
        snap->lemmas.end());
    // Queries: dedup by fingerprint vector, preferring the entry that
    // carries a model (models are pure functions of the query, so any
    // carrier has the same bytes).
    const auto q_less = [](const exec::QueryCache::ExportedEntry &a,
                           const exec::QueryCache::ExportedEntry &b) {
        if (a.fingerprints != b.fingerprints)
            return a.fingerprints < b.fingerprints;
        return a.has_model > b.has_model;
    };
    const auto q_same_query = [](const exec::QueryCache::ExportedEntry &a,
                                 const exec::QueryCache::ExportedEntry &b) {
        return a.fingerprints == b.fingerprints;
    };
    std::sort(snap->queries.begin(), snap->queries.end(), q_less);
    snap->queries.erase(std::unique(snap->queries.begin(),
                                    snap->queries.end(), q_same_query),
                        snap->queries.end());
}

void
AppendSection(std::vector<uint8_t> *file, uint32_t tag,
              const std::vector<uint8_t> &payload)
{
    PutU32(file, tag);
    PutU64(file, payload.size());
    PutU32(file, payload.empty()
                     ? Crc32(nullptr, 0)
                     : Crc32(payload.data(), payload.size()));
    file->insert(file->end(), payload.begin(), payload.end());
}

}  // namespace

uint32_t
Crc32(const uint8_t *data, size_t size)
{
    // IEEE 802.3 reflected polynomial, table built on first use.
    static const auto table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    uint32_t crc = 0xFFFFFFFFu;
    for (size_t i = 0; i < size; ++i)
        crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

bool
SaveSnapshot(const KnowledgeSnapshot &snapshot, const std::string &path,
             std::string *error)
{
    KnowledgeSnapshot canonical = snapshot;
    Canonicalize(&canonical);

    std::vector<uint8_t> file;
    file.insert(file.end(), kMagic, kMagic + sizeof(kMagic));
    PutU32(&file, kSnapshotFormatVersion);
    PutU64(&file, canonical.protocol_fingerprint);
    PutU32(&file, 5);  // section count
    AppendSection(&file, kSectionCores, EncodeEntries(canonical.cores));
    AppendSection(&file, kSectionOverlay,
                  EncodeEntries(canonical.overlay));
    AppendSection(&file, kSectionQueryCores,
                  EncodeQueryCores(canonical.query_cores));
    AppendSection(&file, kSectionLemmas, EncodeLemmas(canonical.lemmas));
    AppendSection(&file, kSectionQueries,
                  EncodeQueries(canonical.queries));

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        if (error)
            *error = "cannot open " + path + " for writing";
        return false;
    }
    const size_t written = std::fwrite(file.data(), 1, file.size(), f);
    const bool closed = std::fclose(f) == 0;
    if (written != file.size() || !closed) {
        if (error)
            *error = "short write to " + path;
        return false;
    }
    return true;
}

bool
LoadSnapshot(const std::string &path, uint64_t expected_fingerprint,
             KnowledgeSnapshot *out, std::string *error)
{
    const auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        *out = KnowledgeSnapshot{};
        return false;
    };

    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return fail("cannot open " + path);
    std::vector<uint8_t> file;
    uint8_t chunk[1 << 16];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        file.insert(file.end(), chunk, chunk + n);
    std::fclose(f);

    Reader r{file.data(), file.size(), 0, true};
    if (!r.Need(sizeof(kMagic)) ||
        std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
        return fail("bad magic (not an Achilles snapshot)");
    }
    r.pos = sizeof(kMagic);
    const uint32_t version = r.U32();
    if (!r.ok || version != kSnapshotFormatVersion)
        return fail("unsupported format version " +
                    std::to_string(version));
    const uint64_t fingerprint = r.U64();
    if (!r.ok || fingerprint != expected_fingerprint) {
        // The common, silent miss: a snapshot of a different (or
        // edited) protocol. Its fingerprints would mean different
        // assertions; never import them.
        return fail("protocol fingerprint mismatch");
    }
    const uint32_t section_count = r.U32();
    if (!r.ok)
        return fail("truncated header");

    KnowledgeSnapshot snap;
    snap.protocol_fingerprint = fingerprint;
    bool seen[6] = {false, false, false, false, false, false};
    for (uint32_t s = 0; s < section_count; ++s) {
        const uint32_t tag = r.U32();
        const uint64_t payload_size = r.U64();
        const uint32_t crc = r.U32();
        if (!r.ok || payload_size > r.size - r.pos)
            return fail("truncated section header/payload");
        const uint8_t *payload = file.data() + r.pos;
        if (Crc32(payload, static_cast<size_t>(payload_size)) != crc)
            return fail("section CRC mismatch (tag " +
                        std::to_string(tag) + ")");
        if (tag == 0 || tag > 5 || seen[tag])
            return fail("unknown or duplicate section tag " +
                        std::to_string(tag));
        seen[tag] = true;
        Reader sec{payload, static_cast<size_t>(payload_size), 0, true};
        bool decoded = false;
        switch (tag) {
            case kSectionCores:
                decoded = DecodeEntries(&sec, &snap.cores);
                break;
            case kSectionOverlay:
                decoded = DecodeEntries(&sec, &snap.overlay);
                break;
            case kSectionQueryCores:
                decoded = DecodeQueryCores(&sec, &snap.query_cores);
                break;
            case kSectionLemmas:
                decoded = DecodeLemmas(&sec, &snap.lemmas);
                break;
            case kSectionQueries:
                decoded = DecodeQueries(&sec, &snap.queries);
                break;
        }
        // The payload must decode cleanly AND account for every byte;
        // trailing garbage means the size field and the content
        // disagree.
        if (!decoded || !sec.ok || sec.pos != sec.size)
            return fail("malformed section payload (tag " +
                        std::to_string(tag) + ")");
        r.pos += static_cast<size_t>(payload_size);
    }
    if (r.pos != r.size)
        return fail("trailing bytes after last section");

    *out = std::move(snap);
    return true;
}

void
RestoreKnowledge(const KnowledgeSnapshot &snapshot,
                 exec::PruneIndex *prune, exec::QueryCache *cache,
                 exec::ClauseExchange *exchange)
{
    if (prune != nullptr) {
        prune->ImportCores(snapshot.cores);
        prune->ImportOverlay(snapshot.overlay);
        prune->ImportQueryCores(snapshot.query_cores);
    }
    if (cache != nullptr)
        cache->Import(snapshot.queries);
    if (exchange != nullptr)
        exchange->Import(snapshot.lemmas);
}

void
CaptureKnowledge(const exec::PruneIndex *prune,
                 const exec::QueryCache *cache,
                 const exec::ClauseExchange *exchange,
                 KnowledgeSnapshot *out)
{
    if (prune != nullptr) {
        prune->ExportCores(&out->cores);
        prune->ExportOverlay(&out->overlay);
        prune->ExportQueryCores(&out->query_cores);
    }
    if (cache != nullptr)
        cache->Export(&out->queries);
    if (exchange != nullptr)
        exchange->Export(&out->lemmas);
}

}  // namespace persist
}  // namespace achilles
