// Achilles reproduction -- warm-start knowledge persistence.
//
// Cross-run snapshot/restore of the three knowledge stores the
// exploration builds as it proves things: the PruneIndex (two-part core
// subsumption, differentFrom overlay, delegated query cores), the
// clause-exchange lemma pool, and the cross-worker query cache. Every
// run today rediscovers from scratch what prior runs already proved;
// all three stores speak context-independent structural fingerprints
// by construction, so persisting them is a format problem, not a
// semantics problem -- the same (struct_hash, struct_hash2) pairs mean
// the same assertions in any run of the same protocol, because the
// protocol's deterministic construction assigns the same variable ids.
//
// Format (little-endian throughout):
//
//   magic "ACHSNAP\0" | u32 format version | u64 protocol fingerprint
//   | u32 section count | sections...
//
//   section: u32 tag | u64 payload size | u32 CRC-32 of payload
//            | payload bytes
//
// Section payloads encode counted vectors of fixed-width integers (see
// snapshot.cc); tags are kSectionCores/Overlay/QueryCores/Lemmas/
// Queries. The protocol fingerprint (persist/fingerprint.h) is a
// structural hash of the materialized protocol bundle, so a snapshot of
// an edited protocol silently misses instead of poisoning the run.
//
// Verification-on-load discipline (the query cache's collision rule,
// applied to the whole file): loading is all-or-nothing. A truncated
// file, a flipped bit (per-section CRC), a version or fingerprint
// mismatch, an unsorted fingerprint vector, or an out-of-range status
// byte each fail the load completely, and the caller proceeds with a
// cold start -- a bad snapshot can cost the warm start, never an
// answer. On the import side the stores re-verify what they can:
// query-cache keys are recomputed from the fingerprint vectors (never
// read from the file), and every restored fact is only ever used to
// skip a query whose answer it already is, so a snapshot -- even an
// adversarial one -- cannot flip a verdict, only waste space.

#ifndef ACHILLES_PERSIST_SNAPSHOT_H_
#define ACHILLES_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/clause_exchange.h"
#include "exec/prune_index.h"
#include "exec/query_cache.h"

namespace achilles {
namespace persist {

/** Current snapshot format version (bumped on layout changes; loaders
 *  reject other versions, degrading to a cold start). */
constexpr uint32_t kSnapshotFormatVersion = 1;

/**
 * Everything a run's knowledge stores proved, in portable form.
 * Capture* appends (a run may capture the engine's shared stores and
 * the explorer's home index into one snapshot); SaveSnapshot sorts and
 * deduplicates, so the on-disk bytes are deterministic regardless of
 * capture order or shard layout.
 */
struct KnowledgeSnapshot
{
    uint64_t protocol_fingerprint = 0;
    std::vector<exec::PruneIndex::ExportedEntry> cores;
    std::vector<exec::PruneIndex::ExportedEntry> overlay;
    std::vector<exec::PruneIndex::ExportedQueryCore> query_cores;
    std::vector<exec::Lemma> lemmas;
    std::vector<exec::QueryCache::ExportedEntry> queries;

    bool
    Empty() const
    {
        return cores.empty() && overlay.empty() && query_cores.empty() &&
               lemmas.empty() && queries.empty();
    }
    size_t
    TotalEntries() const
    {
        return cores.size() + overlay.size() + query_cores.size() +
               lemmas.size() + queries.size();
    }
};

/** CRC-32 (IEEE 802.3 polynomial, table-driven). */
uint32_t Crc32(const uint8_t *data, size_t size);

/**
 * Serialize and write atomically-ish (write then rename is overkill for
 * a cache file; a torn write is caught by the CRCs on load). Sorts and
 * deduplicates every section first. Returns false with `*error` set on
 * I/O failure.
 */
bool SaveSnapshot(const KnowledgeSnapshot &snapshot,
                  const std::string &path, std::string *error);

/**
 * Load and fully verify. All-or-nothing: on any defect (missing file,
 * truncation, CRC mismatch, wrong magic/version, fingerprint !=
 * `expected_fingerprint`, malformed payload) `*out` is left empty,
 * `*error` names the defect, and the caller cold-starts.
 */
bool LoadSnapshot(const std::string &path, uint64_t expected_fingerprint,
                  KnowledgeSnapshot *out, std::string *error);

/**
 * Import a snapshot into live stores; null stores are skipped (serial
 * runs have no query cache or lemma pool). Routed through the stores'
 * normal record paths, so dedup and eviction apply.
 */
void RestoreKnowledge(const KnowledgeSnapshot &snapshot,
                      exec::PruneIndex *prune, exec::QueryCache *cache,
                      exec::ClauseExchange *exchange);

/** Append the live stores' contents to `*out`; null stores are
 *  skipped. Does not touch `out->protocol_fingerprint`. */
void CaptureKnowledge(const exec::PruneIndex *prune,
                      const exec::QueryCache *cache,
                      const exec::ClauseExchange *exchange,
                      KnowledgeSnapshot *out);

}  // namespace persist
}  // namespace achilles

#endif  // ACHILLES_PERSIST_SNAPSHOT_H_
