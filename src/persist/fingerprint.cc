// Achilles reproduction -- warm-start knowledge persistence.

#include "persist/fingerprint.h"

#include <string>
#include <vector>

#include "core/message.h"
#include "symexec/program.h"

namespace achilles {
namespace persist {

namespace {

/** FNV-1a accumulator. Every field is hashed with a leading type/count
 *  byte sequence so that adjacent variable-length parts (names, kid
 *  lists) cannot alias each other's encodings. */
struct Fnv
{
    uint64_t h = 0xcbf29ce484222325ull;

    void
    Byte(uint8_t b)
    {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    void
    U32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            Byte(static_cast<uint8_t>(v >> (8 * i)));
    }
    void
    U64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            Byte(static_cast<uint8_t>(v >> (8 * i)));
    }
    void
    Str(const std::string &s)
    {
        U64(s.size());
        for (char c : s)
            Byte(static_cast<uint8_t>(c));
    }
};

void
HashDExpr(Fnv *fnv, const symexec::DExprRef &node)
{
    if (node == nullptr) {
        fnv->Byte(0);
        return;
    }
    fnv->Byte(1);
    fnv->Byte(static_cast<uint8_t>(node->kind));
    fnv->U32(node->width);
    fnv->U64(node->value);
    fnv->Str(node->name);
    fnv->Byte(static_cast<uint8_t>(node->op));
    fnv->U64(node->kids.size());
    for (const symexec::DExprRef &kid : node->kids)
        HashDExpr(fnv, kid);
}

void
HashProgram(Fnv *fnv, const symexec::Program &program)
{
    fnv->Str(program.name);
    fnv->U64(program.functions.size());
    for (const symexec::Function &fn : program.functions) {
        fnv->Str(fn.name);
        fnv->U64(fn.params.size());
        for (const auto &[pname, pwidth] : fn.params) {
            fnv->Str(pname);
            fnv->U32(pwidth);
        }
        fnv->U32(fn.ret_width);
        fnv->U64(fn.instrs.size());
        for (const symexec::Instr &ins : fn.instrs) {
            fnv->Byte(static_cast<uint8_t>(ins.op));
            fnv->Str(ins.dest);
            fnv->Str(ins.array);
            HashDExpr(fnv, ins.e0);
            HashDExpr(fnv, ins.e1);
            fnv->U32(ins.a);
            fnv->U32(ins.b);
            fnv->U64(ins.args.size());
            for (const symexec::DExprRef &arg : ins.args)
                HashDExpr(fnv, arg);
            fnv->Str(ins.label);
        }
    }
}

void
HashLayout(Fnv *fnv, const core::MessageLayout &layout)
{
    fnv->U32(layout.length());
    fnv->U64(layout.fields().size());
    for (const core::FieldSpec &field : layout.fields()) {
        fnv->Str(field.name);
        fnv->U32(field.offset);
        fnv->U32(field.size);
        fnv->Byte(layout.IsMasked(field.name) ? 1 : 0);
    }
}

}  // namespace

uint64_t
ProtocolFingerprint(const proto::ProtocolBundle &bundle)
{
    Fnv fnv;
    // The registry name participates: two same-shape protocols under
    // different names keep separate snapshot files, which is what the
    // fingerprint-named --knowledge-dir scheme wants.
    fnv.Str(bundle.info.name);
    HashLayout(&fnv, bundle.layout);
    HashProgram(&fnv, bundle.server);
    fnv.U64(bundle.clients.size());
    for (const symexec::Program &client : bundle.clients)
        HashProgram(&fnv, client);
    return fnv.h;
}

}  // namespace persist
}  // namespace achilles
