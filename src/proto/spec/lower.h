// Achilles reproduction -- wire-format spec frontend: lowering.
//
// Compiles a parsed ProtocolSpec (proto/spec/spec.h) through
// symexec::ProgramBuilder into the client/server Programs and the
// MessageLayout the pipeline consumes, and registers the result as a
// ProtocolFactory.
//
// Lowering contract:
//   * one client Program per variant -- the client reads symbolic
//     inputs for the variant's free fields, halts (sends nothing)
//     outside its client rules, constructs coupled fields from their
//     affine definition, stores the tag / length prefix / constant
//     fields, and sends;
//   * one server Program -- receive, extract every field
//     (little-endian), check the protocol-wide server rules, dispatch
//     on the tag (tlv/union), check the variant's server rules,
//     perform the reply actions, and accept with the variant's label;
//     unknown tags and failed checks reject;
//   * bytes covered by no field stay constant 0 on the client and are
//     never read by the server (pad bytes);
//   * a length-prefixed payload is zero-filled past the length on the
//     client; the server only constrains it through explicit rules --
//     a spec whose server omits the length bound reproduces FSP's
//     mismatched-length bug by construction.

#ifndef ACHILLES_PROTO_SPEC_LOWER_H_
#define ACHILLES_PROTO_SPEC_LOWER_H_

#include <memory>
#include <string>
#include <vector>

#include "proto/registry.h"
#include "proto/spec/spec.h"

namespace achilles {
namespace spec {

/** The analysis layout: every field at its offset, masks applied. */
core::MessageLayout BuildLayout(const ProtocolSpec &spec);

/** The server Program ("<name>-server"). */
symexec::Program BuildServer(const ProtocolSpec &spec);

/** One client Program per variant ("<name>-client-<label>"). */
std::vector<symexec::Program> BuildClients(const ProtocolSpec &spec);

/** Materialize the whole protocol (layout + server + clients). */
proto::ProtocolBundle BuildProtocol(const ProtocolSpec &spec);

/** Wrap a validated spec as a registry factory (family "spec"). */
std::shared_ptr<const proto::ProtocolFactory>
MakeSpecFactory(ProtocolSpec spec);

/**
 * Parse spec text and register it (replacing a same-name entry, so
 * spec edits reload). On success *name holds the registered protocol
 * name; on failure *error holds the line-anchored message
 * ("<source>:<line>: ...") and nothing is registered.
 */
bool RegisterSpecText(const std::string &text, const std::string &source,
                      proto::ProtocolRegistry *registry,
                      std::string *name, std::string *error);

/** RegisterSpecText over a file's contents. */
bool RegisterSpecFile(const std::string &path,
                      proto::ProtocolRegistry *registry,
                      std::string *name, std::string *error);

}  // namespace spec
}  // namespace achilles

#endif  // ACHILLES_PROTO_SPEC_LOWER_H_
