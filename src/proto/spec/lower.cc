// Achilles reproduction -- wire-format spec frontend: lowering.

#include "proto/spec/lower.h"

#include <fstream>
#include <map>
#include <sstream>

namespace achilles {
namespace spec {

namespace {

using symexec::ProgramBuilder;
using symexec::Val;

uint32_t
FieldBits(const SpecField &field)
{
    return field.size * 8;
}

/** Width-adapt a value (zero-extend up, truncate down). */
Val
Fit(const Val &v, uint32_t bits)
{
    if (v.width() == bits)
        return v;
    if (v.width() < bits)
        return v.ZExt(bits);
    return v.Extract(0, bits);
}

/** The affine rule's right-hand side at the target width. */
Val
AffineValue(const FieldRule &rule, const Val &base, uint32_t bits)
{
    return Fit(base, bits) * Val::Const(bits, rule.mul) +
           Val::Const(bits, rule.add);
}

/** Width-1 condition of a compare rule over the field's value. */
Val
CompareCond(const FieldRule &rule, const Val &fv)
{
    const Val c = Val::Const(fv.width(), rule.value);
    switch (rule.op) {
        case RelOp::kEq: return fv == c;
        case RelOp::kNe: return fv != c;
        case RelOp::kLt: return fv < c;
        case RelOp::kLe: return fv <= c;
        case RelOp::kGt: return fv > c;
        case RelOp::kGe: return fv >= c;
    }
    return fv == c;
}

Val
Idx(uint32_t offset)
{
    return Val::Const(32, offset);
}

/** Store a field value into "msg" little-endian, one byte at a time. */
void
StoreField(ProgramBuilder &b, const SpecField &field, const Val &value)
{
    for (uint32_t k = 0; k < field.size; ++k)
        b.Store("msg", Idx(field.offset + k), value.Extract(k * 8, 8));
}

/**
 * One client per variant. The client reads symbolic inputs for the
 * free fields, halts (sends nothing) when a client rule is violated --
 * so the rules become path constraints of every captured message --
 * constructs affine-coupled fields from their bases, and sends.
 */
symexec::Program
BuildClientForVariant(const ProtocolSpec &spec, const SpecVariant &variant)
{
    ProgramBuilder b(spec.name + "-client-" + variant.label);
    b.Function("main", {}, 0, [&] {
        b.Array("msg", 8, spec.length);

        // Effective rules: protocol-wide first, then the variant's.
        std::vector<FieldRule> rules = spec.client_rules;
        rules.insert(rules.end(), variant.client_rules.begin(),
                     variant.client_rules.end());
        std::map<std::string, std::vector<const FieldRule *>> compares;
        std::map<std::string, const FieldRule *> affine;
        for (const FieldRule &r : rules) {
            if (r.kind == FieldRule::Kind::kCompare)
                compares[r.field].push_back(&r);
            else
                affine[r.field] = &r;
        }

        // Validation guard: halt without sending outside the rules.
        auto guard = [&](const std::string &fname, const Val &fv) {
            auto it = compares.find(fname);
            if (it == compares.end())
                return;
            for (const FieldRule *r : it->second)
                b.If(!CompareCond(*r, fv), [&] { b.Halt(); });
        };

        const bool has_len = spec.HasLengthPrefix();
        std::map<std::string, Val> vals;

        // Pass 1: tag, constants, and symbolic inputs. Length-prefixed
        // payload bytes are handled by the conditional loop below.
        if (spec.HasDispatch()) {
            const SpecField *tag = spec.FindField(spec.dispatch_field);
            vals[tag->name] = Val::Const(FieldBits(*tag), variant.tag);
        }
        for (const SpecField &f : spec.fields) {
            if (vals.count(f.name) != 0)
                continue;
            if (f.is_const) {
                vals[f.name] = Val::Const(FieldBits(f), f.const_value);
                continue;
            }
            if (affine.count(f.name) != 0)
                continue;  // pass 2: constructed, not read
            if (has_len && f.is_payload_byte)
                continue;
            vals[f.name] = b.ReadInput(f.name, FieldBits(f));
        }
        // Pass 2: coupled fields (validation guarantees the base is a
        // pass-1 field, so one pass resolves every coupling).
        for (const SpecField &f : spec.fields) {
            auto it = affine.find(f.name);
            if (it == affine.end())
                continue;
            vals[f.name] =
                AffineValue(*it->second, vals.at(it->second->base),
                            FieldBits(f));
        }

        // Validation: every scalar field's compare rules.
        for (const SpecField &f : spec.fields) {
            auto it = vals.find(f.name);
            if (it != vals.end() && !f.is_const)
                guard(f.name, it->second);
        }
        // The implicit guarantee of a length prefix: the declared
        // length never exceeds the payload the client actually has.
        Val lenv;
        if (has_len) {
            lenv = vals.at(spec.len_field);
            b.If(lenv > Val::Const(lenv.width(), spec.payload_bytes),
                 [&] { b.Halt(); });
        }

        // Assemble and send.
        for (const SpecField &f : spec.fields) {
            if (has_len && f.is_payload_byte)
                continue;
            StoreField(b, f, vals.at(f.name));
        }
        if (has_len) {
            // Only the first `len` payload bytes carry data; the rest
            // stay constant 0 (kDeclArray zero-initialization). `lenv`
            // is concrete per forked path, so the fan-out is linear in
            // the payload size, FSP-scan style.
            for (uint32_t i = 0; i < spec.payload_bytes; ++i) {
                b.If(Val::Const(lenv.width(), i) < lenv, [&] {
                    const std::string name =
                        spec.payload_name + std::to_string(i);
                    Val c = b.ReadInput(name, 8);
                    guard(name, c);
                    b.Store("msg", Idx(spec.payload_offset + i), c);
                });
            }
        }
        b.SendMessage("msg", variant.label);
    });
    return b.Build();
}

}  // namespace

core::MessageLayout
BuildLayout(const ProtocolSpec &spec)
{
    core::MessageLayout layout(spec.length);
    for (const SpecField &f : spec.fields)
        layout.AddField(f.name, f.offset, f.size);
    for (const SpecField &f : spec.fields)
        if (f.masked)
            layout.Mask(f.name);
    return layout;
}

symexec::Program
BuildServer(const ProtocolSpec &spec)
{
    ProgramBuilder b(spec.name + "-server");
    b.Function("main", {}, 0, [&] {
        b.ReceiveMessage("msg", spec.length);
        auto byte = [&](uint32_t off) {
            return ProgramBuilder::ArrayAt("msg", 8, Idx(off));
        };
        // Little-endian field reassembly (the FSP `Concat` idiom).
        auto field_val = [&](const SpecField &f) {
            Val v = byte(f.offset);
            for (uint32_t i = 1; i < f.size; ++i)
                v = byte(f.offset + i).Concat(v);
            return v;
        };
        auto named_val = [&](const std::string &name) {
            const SpecField *f = spec.FindField(name);
            ACHILLES_CHECK(f != nullptr, "unvalidated spec field ", name);
            return field_val(*f);
        };
        auto check = [&](const FieldRule &r) {
            Val fv = named_val(r.field);
            Val cond = r.kind == FieldRule::Kind::kCompare
                           ? CompareCond(r, fv)
                           : fv == AffineValue(r, named_val(r.base),
                                               fv.width());
            b.If(!cond, [&] { b.MarkReject("check-" + r.field); });
        };

        // Wire constants are always verified (the legacy substrates'
        // header-constant checks); spec'd server rules come next. Note
        // there is no implicit length-vs-payload check -- a spec whose
        // server rules omit the bound ships that Trojan, intentionally.
        for (const SpecField &f : spec.fields) {
            if (!f.is_const)
                continue;
            b.If(field_val(f) !=
                     Val::Const(FieldBits(f), f.const_value),
                 [&] { b.MarkReject("bad-" + f.name); });
        }
        for (const FieldRule &r : spec.server_rules)
            check(r);

        auto accept_variant = [&](const SpecVariant &v) {
            for (const FieldRule &r : v.server_rules)
                check(r);
            if (!v.replies.empty()) {
                b.Array("reply", 8, spec.length);
                for (const ReplyAction &a : v.replies) {
                    const SpecField *f = spec.FindField(a.field);
                    for (uint32_t k = 0; k < f->size; ++k)
                        b.Store("reply", Idx(f->offset + k),
                                Val::Const(8, (a.value >> (k * 8)) &
                                                  0xff));
                }
                b.SendMessage("reply", v.label);
            }
            b.MarkAccept(v.label);
        };

        if (spec.HasDispatch()) {
            Val tag = named_val(spec.dispatch_field);
            std::vector<std::pair<uint64_t, std::function<void()>>> cases;
            cases.reserve(spec.variants.size());
            for (size_t i = 0; i < spec.variants.size(); ++i) {
                cases.emplace_back(spec.variants[i].tag, [&, i] {
                    accept_variant(spec.variants[i]);
                });
            }
            b.Switch(tag, cases, [&] { b.MarkReject("bad-tag"); });
        } else {
            accept_variant(spec.variants.front());
        }
    });
    return b.Build();
}

std::vector<symexec::Program>
BuildClients(const ProtocolSpec &spec)
{
    std::vector<symexec::Program> clients;
    clients.reserve(spec.variants.size());
    for (const SpecVariant &v : spec.variants)
        clients.push_back(BuildClientForVariant(spec, v));
    return clients;
}

proto::ProtocolBundle
BuildProtocol(const ProtocolSpec &spec)
{
    proto::ProtocolBundle bundle;
    bundle.info.name = spec.name;
    bundle.info.family = "spec";
    bundle.info.description = std::string(WireKindName(spec.wire)) +
                              " wire-format spec (" + spec.source + ")";
    bundle.layout = BuildLayout(spec);
    bundle.server = BuildServer(spec);
    bundle.clients = BuildClients(spec);
    return bundle;
}

std::shared_ptr<const proto::ProtocolFactory>
MakeSpecFactory(ProtocolSpec spec)
{
    auto shared = std::make_shared<const ProtocolSpec>(std::move(spec));
    proto::ProtocolInfo info;
    info.name = shared->name;
    info.family = "spec";
    info.description = std::string(WireKindName(shared->wire)) +
                       " wire-format spec (" + shared->source + ")";
    return std::make_shared<proto::LambdaProtocolFactory>(
        info, [shared] { return BuildLayout(*shared); },
        [shared] { return BuildServer(*shared); },
        [shared] { return BuildClients(*shared); });
}

bool
RegisterSpecText(const std::string &text, const std::string &source,
                 proto::ProtocolRegistry *registry, std::string *name,
                 std::string *error)
{
    ProtocolSpec parsed;
    SpecError err;
    if (!ParseSpec(text, source, &parsed, &err)) {
        if (error != nullptr)
            *error = err.Format(source);
        return false;
    }
    auto factory = MakeSpecFactory(std::move(parsed));
    // Trial-build so lowering problems surface at load time, not in
    // the middle of a pipeline run.
    factory->Make();
    if (name != nullptr)
        *name = factory->info().name;
    if (registry == nullptr)
        registry = &proto::ProtocolRegistry::Global();
    registry->RegisterOrReplace(std::move(factory));
    return true;
}

bool
RegisterSpecFile(const std::string &path,
                 proto::ProtocolRegistry *registry, std::string *name,
                 std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error != nullptr)
            *error = path + ": cannot read spec file";
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return RegisterSpecText(text.str(), path, registry, name, error);
}

}  // namespace spec
}  // namespace achilles
