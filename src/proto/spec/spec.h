// Achilles reproduction -- wire-format spec frontend.
//
// Declarative message-format specs make protocols data instead of C++:
// a spec names the wire discipline (TLV, length-prefixed, or tagged
// union), the message fields (offsets, widths, constants, masks), the
// validation predicates each side enforces, the dispatch rules, and the
// server's reply actions. src/proto/spec/lower.* compiles a parsed spec
// through symexec::ProgramBuilder into the client/server Programs the
// pipeline consumes, and registers the result in the protocol registry
// -- new protocols are files under examples/, not recompiles.
//
// Grammar (line-oriented; '#' starts a comment; keywords lowercase):
//
//   protocol <name>
//   wire tlv | lenprefix | union
//   length <bytes>
//
//   field <name> <offset> <size> [const <value>] [mask]
//   payload <name> <offset> <bytes>      # expands to per-byte fields
//   lenfield <name>                      # length prefix (tlv/lenprefix)
//   dispatch <field>                     # tag field (default: first)
//
//   client <predicate>                   # protocol-wide client rule
//   server <predicate>                   # protocol-wide server check
//
//   variant <tag-value> <label>
//     client <predicate>
//     server <predicate>
//     reply <field> <value>              # reply action on accept
//   end
//
// Predicates:
//   <field> ==|!=|<|<=|>|>= <value>      # bound check
//   <field> in <lo> .. <hi>              # range sugar (two bounds)
//   <field> == <field> * <k> + <c>       # affine field coupling
//
// Client rules are what correct clients *guarantee*: plain rules become
// validation (the client halts without sending outside them); an affine
// client rule makes the client construct the field from its base (a
// checksum). Server rules are what the server *checks* (reject on
// violation). Everything a client guarantees but the server never
// checks is a Trojan source by construction -- exactly the asymmetry
// Achilles mines.
//
// Parse errors are line-anchored: ParseSpec reports the 1-based line
// and a message, formatted "<source>:<line>: <message>".

#ifndef ACHILLES_PROTO_SPEC_SPEC_H_
#define ACHILLES_PROTO_SPEC_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace achilles {
namespace spec {

/** Wire discipline of a spec'd protocol. */
enum class WireKind : uint8_t {
    kTlv,             ///< tag dispatch + length prefix
    kLengthPrefixed,  ///< length prefix only (single variant allowed)
    kTaggedUnion,     ///< tag dispatch only
};

const char *WireKindName(WireKind kind);

/** Comparison operator of a bound rule. */
enum class RelOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/** One validation predicate (client guarantee or server check). */
struct FieldRule
{
    enum class Kind : uint8_t {
        kCompare,  ///< field <relop> value
        kAffine,   ///< field == base * mul + add  (mod 2^width)
    };
    Kind kind = Kind::kCompare;
    std::string field;
    RelOp op = RelOp::kEq;
    uint64_t value = 0;
    std::string base;   ///< affine: source field
    uint64_t mul = 1;   ///< affine: multiplier
    uint64_t add = 0;   ///< affine: addend
    int line = 0;       ///< 1-based spec line (error anchoring)
};

/** One named field. */
struct SpecField
{
    std::string name;
    uint32_t offset = 0;
    uint32_t size = 1;  ///< bytes (1..8)
    bool is_const = false;
    uint64_t const_value = 0;
    bool masked = false;
    bool is_payload_byte = false;  ///< expanded from a payload decl
    int line = 0;
};

/** Server reply action: store <value> into <field> of the reply. */
struct ReplyAction
{
    std::string field;
    uint64_t value = 0;
    int line = 0;
};

/** One dispatch variant (message kind selected by the tag value). */
struct SpecVariant
{
    uint64_t tag = 0;
    std::string label;
    std::vector<FieldRule> client_rules;
    std::vector<FieldRule> server_rules;
    std::vector<ReplyAction> replies;
    int line = 0;
};

/** A parsed protocol spec. */
struct ProtocolSpec
{
    std::string name;
    std::string source;  ///< file name / origin (error messages)
    WireKind wire = WireKind::kTaggedUnion;
    uint32_t length = 0;  ///< total message bytes

    std::vector<SpecField> fields;
    std::string dispatch_field;  ///< tag field (union/tlv)
    std::string len_field;       ///< length prefix (tlv/lenprefix)
    /** Payload declaration ("" when absent). */
    std::string payload_name;
    uint32_t payload_offset = 0;
    uint32_t payload_bytes = 0;

    std::vector<FieldRule> client_rules;  ///< protocol-wide
    std::vector<FieldRule> server_rules;  ///< protocol-wide
    std::vector<SpecVariant> variants;

    const SpecField *
    FindField(const std::string &field_name) const
    {
        for (const SpecField &f : fields)
            if (f.name == field_name)
                return &f;
        return nullptr;
    }

    bool HasLengthPrefix() const { return !len_field.empty(); }
    bool
    HasDispatch() const
    {
        return wire != WireKind::kLengthPrefixed;
    }
};

/** Line-anchored parse/validation error. */
struct SpecError
{
    int line = 0;  ///< 1-based; 0 = whole-file error
    std::string message;

    /** "<source>:<line>: <message>". */
    std::string Format(const std::string &source) const;
};

/**
 * Parse and validate a spec. Returns false with *err filled (line +
 * message) on the first syntax or consistency error; on success *out
 * is a fully validated spec (fields in range and non-overlapping,
 * rules referencing known fields, variant tags unique and
 * representable, wire-discipline requirements met).
 */
bool ParseSpec(const std::string &text, const std::string &source,
               ProtocolSpec *out, SpecError *err);

}  // namespace spec
}  // namespace achilles

#endif  // ACHILLES_PROTO_SPEC_SPEC_H_
