// Achilles reproduction -- wire-format spec frontend: parser.

#include "proto/spec/spec.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <set>
#include <sstream>

namespace achilles {
namespace spec {

namespace {

/** Whitespace-token split with '#' comment stripping. */
std::vector<std::string>
Tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string current;
    for (char c : line) {
        if (c == '#')
            break;
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!current.empty()) {
                tokens.push_back(current);
                current.clear();
            }
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        tokens.push_back(current);
    return tokens;
}

bool
IsIdentifier(const std::string &s)
{
    if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0])))
        return false;
    for (char c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '-')
            return false;
    }
    return true;
}

bool
ParseNumber(const std::string &s, uint64_t *out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    if (errno != 0 || end == nullptr || *end != '\0')
        return false;
    *out = static_cast<uint64_t>(v);
    return true;
}

bool
ParseRelOp(const std::string &s, RelOp *out)
{
    if (s == "==") *out = RelOp::kEq;
    else if (s == "!=") *out = RelOp::kNe;
    else if (s == "<") *out = RelOp::kLt;
    else if (s == "<=") *out = RelOp::kLe;
    else if (s == ">") *out = RelOp::kGt;
    else if (s == ">=") *out = RelOp::kGe;
    else return false;
    return true;
}

/** Parser context: accumulates the spec and the first error. */
struct Parser
{
    ProtocolSpec spec;
    SpecError error;
    bool failed = false;

    bool
    Fail(int line, const std::string &message)
    {
        if (!failed) {
            failed = true;
            error.line = line;
            error.message = message;
        }
        return false;
    }
};

/**
 * Parse one predicate from `tokens[first..]`. Emits one FieldRule for
 * bound/affine forms, two for the `in lo .. hi` sugar.
 */
bool
ParsePredicate(Parser *p, const std::vector<std::string> &tokens,
               size_t first, int line, std::vector<FieldRule> *out)
{
    if (tokens.size() < first + 3)
        return p->Fail(line, "predicate needs `<field> <op> <value>`");
    const std::string &field = tokens[first];
    const std::string &op_token = tokens[first + 1];

    if (op_token == "in") {
        // `field in lo .. hi` (the ".." may touch the numbers).
        std::string joined;
        for (size_t i = first + 2; i < tokens.size(); ++i)
            joined += tokens[i];
        const size_t dots = joined.find("..");
        if (dots == std::string::npos)
            return p->Fail(line, "range predicate needs `lo .. hi`");
        uint64_t lo = 0, hi = 0;
        if (!ParseNumber(joined.substr(0, dots), &lo) ||
            !ParseNumber(joined.substr(dots + 2), &hi))
            return p->Fail(line, "bad range bounds in `" + joined + "`");
        if (lo > hi)
            return p->Fail(line, "empty range: lo > hi");
        FieldRule ge;
        ge.field = field;
        ge.op = RelOp::kGe;
        ge.value = lo;
        ge.line = line;
        FieldRule le;
        le.field = field;
        le.op = RelOp::kLe;
        le.value = hi;
        le.line = line;
        out->push_back(ge);
        out->push_back(le);
        return true;
    }

    RelOp op;
    if (!ParseRelOp(op_token, &op))
        return p->Fail(line, "unknown operator `" + op_token + "`");

    uint64_t value = 0;
    if (ParseNumber(tokens[first + 2], &value)) {
        if (tokens.size() != first + 3)
            return p->Fail(line, "trailing tokens after predicate");
        FieldRule rule;
        rule.field = field;
        rule.op = op;
        rule.value = value;
        rule.line = line;
        out->push_back(rule);
        return true;
    }

    // Affine coupling: `field == base * mul + add`.
    if (op != RelOp::kEq)
        return p->Fail(line,
                       "field-coupled predicate must use `==` "
                       "(`field == base * k + c`)");
    if (tokens.size() != first + 7 || tokens[first + 3] != "*" ||
        tokens[first + 5] != "+")
        return p->Fail(line,
                       "coupled predicate must be `field == base * k + c`");
    FieldRule rule;
    rule.kind = FieldRule::Kind::kAffine;
    rule.field = field;
    rule.base = tokens[first + 2];
    rule.line = line;
    if (!ParseNumber(tokens[first + 4], &rule.mul) ||
        !ParseNumber(tokens[first + 6], &rule.add))
        return p->Fail(line, "bad affine coefficients");
    out->push_back(rule);
    return true;
}

uint64_t
FieldMask(const SpecField &field)
{
    return field.size >= 8 ? ~0ull : ((1ull << (field.size * 8)) - 1);
}

/** Post-parse consistency validation (all errors line-anchored). */
bool
Validate(Parser *p)
{
    ProtocolSpec &s = p->spec;
    if (s.name.empty())
        return p->Fail(0, "missing `protocol <name>`");
    if (s.length == 0)
        return p->Fail(0, "missing `length <bytes>`");
    if (s.fields.empty())
        return p->Fail(0, "spec declares no fields");

    // Fields: unique names, in range, non-overlapping.
    std::set<std::string> names;
    std::vector<int> covered(s.length, 0);
    for (const SpecField &f : s.fields) {
        if (!names.insert(f.name).second)
            return p->Fail(f.line, "duplicate field `" + f.name + "`");
        if (f.size < 1 || f.size > 8)
            return p->Fail(f.line, "field `" + f.name +
                                       "` size must be 1..8 bytes");
        if (f.offset + f.size > s.length)
            return p->Fail(f.line, "field `" + f.name +
                                       "` exceeds message length");
        for (uint32_t i = f.offset; i < f.offset + f.size; ++i) {
            if (covered[i]++)
                return p->Fail(f.line, "field `" + f.name +
                                           "` overlaps an earlier field");
        }
        if (f.is_const && f.const_value > FieldMask(f))
            return p->Fail(f.line, "constant does not fit field `" +
                                       f.name + "`");
    }

    // Wire-discipline requirements.
    if (s.HasDispatch()) {
        if (s.dispatch_field.empty()) {
            // Default: the first non-payload, non-const field.
            for (const SpecField &f : s.fields) {
                if (!f.is_payload_byte && !f.is_const) {
                    s.dispatch_field = f.name;
                    break;
                }
            }
            if (s.dispatch_field.empty())
                return p->Fail(0, "no field usable for dispatch");
        }
        const SpecField *tag = s.FindField(s.dispatch_field);
        if (tag == nullptr)
            return p->Fail(0, "dispatch field `" + s.dispatch_field +
                                  "` is not declared");
        if (tag->is_const)
            return p->Fail(tag->line, "dispatch field `" + tag->name +
                                          "` cannot be const");
        if (s.variants.empty())
            return p->Fail(0, std::string(WireKindName(s.wire)) +
                                  " spec needs at least one variant");
        std::set<uint64_t> tags;
        std::set<std::string> labels;
        for (const SpecVariant &v : s.variants) {
            if (!tags.insert(v.tag).second)
                return p->Fail(v.line, "duplicate variant tag");
            if (v.tag > FieldMask(*tag))
                return p->Fail(v.line,
                               "variant tag does not fit the dispatch "
                               "field");
            if (!labels.insert(v.label).second)
                return p->Fail(v.line, "duplicate variant label `" +
                                           v.label + "`");
        }
    } else {
        if (!s.dispatch_field.empty())
            return p->Fail(0, "`dispatch` requires wire tlv or union");
        if (s.variants.size() != 1)
            return p->Fail(0,
                           "lenprefix spec needs exactly one variant");
    }

    const bool needs_len = s.wire != WireKind::kTaggedUnion;
    if (needs_len) {
        if (s.len_field.empty())
            return p->Fail(0, std::string(WireKindName(s.wire)) +
                                  " spec needs a `lenfield`");
        const SpecField *len = s.FindField(s.len_field);
        if (len == nullptr)
            return p->Fail(0, "lenfield `" + s.len_field +
                                  "` is not declared");
        if (len->is_const || len->is_payload_byte)
            return p->Fail(len->line,
                           "lenfield must be a plain scalar field");
        if (s.payload_name.empty())
            return p->Fail(0, std::string(WireKindName(s.wire)) +
                                  " spec needs a `payload`");
        if (s.payload_bytes > FieldMask(*len))
            return p->Fail(len->line,
                           "payload longer than the lenfield can count");
    } else if (!s.len_field.empty()) {
        return p->Fail(0, "`lenfield` requires wire tlv or lenprefix");
    }

    // Rules: known fields, sane targets. Client-side affine couplings
    // must be single-level (a coupling base cannot itself be coupled),
    // which keeps the client lowering a single resolution pass.
    auto check_rules = [&](const std::vector<FieldRule> &rules,
                           bool client_side) {
        std::set<std::string> affine_targets;
        for (const FieldRule &r : rules)
            if (client_side && r.kind == FieldRule::Kind::kAffine)
                affine_targets.insert(r.field);
        for (const FieldRule &r : rules) {
            if (client_side && r.kind == FieldRule::Kind::kAffine &&
                affine_targets.count(r.base) != 0)
                return p->Fail(r.line, "coupling base `" + r.base +
                                           "` is itself coupled");
        }
        affine_targets.clear();
        for (const FieldRule &r : rules) {
            const SpecField *f = s.FindField(r.field);
            if (f == nullptr)
                return p->Fail(r.line, "rule references unknown field `" +
                                           r.field + "`");
            if (r.kind == FieldRule::Kind::kCompare) {
                if (r.value > FieldMask(*f))
                    return p->Fail(r.line, "value does not fit field `" +
                                               r.field + "`");
                if (client_side && f->is_const)
                    return p->Fail(r.line,
                                   "client rule on const field `" +
                                       r.field + "` is vacuous");
                continue;
            }
            const SpecField *base = s.FindField(r.base);
            if (base == nullptr)
                return p->Fail(r.line, "rule references unknown field `" +
                                           r.base + "`");
            if (f->is_const)
                return p->Fail(r.line, "coupled field `" + r.field +
                                           "` cannot be const");
            if (r.field == r.base)
                return p->Fail(r.line, "field coupled to itself");
            if (client_side) {
                if (r.field == s.dispatch_field || r.field == s.len_field)
                    return p->Fail(r.line,
                                   "cannot couple the dispatch or "
                                   "length field");
                // Length-prefixed payload bytes are stored conditionally
                // (only the first `len` exist), so neither side of a
                // client coupling may be one.
                if (s.HasLengthPrefix() &&
                    (f->is_payload_byte || base->is_payload_byte))
                    return p->Fail(r.line,
                                   "cannot couple length-prefixed "
                                   "payload bytes");
                if (!affine_targets.insert(r.field).second)
                    return p->Fail(r.line, "field `" + r.field +
                                               "` coupled twice");
            }
        }
        return true;
    };

    std::vector<FieldRule> all_client = s.client_rules;
    std::vector<FieldRule> all_server = s.server_rules;
    for (const SpecVariant &v : s.variants) {
        all_client.insert(all_client.end(), v.client_rules.begin(),
                          v.client_rules.end());
        all_server.insert(all_server.end(), v.server_rules.begin(),
                          v.server_rules.end());
        for (const ReplyAction &r : v.replies) {
            const SpecField *f = s.FindField(r.field);
            if (f == nullptr)
                return p->Fail(r.line, "reply references unknown field `" +
                                           r.field + "`");
            if (r.value > FieldMask(*f))
                return p->Fail(r.line, "reply value does not fit field `" +
                                           r.field + "`");
        }
    }
    if (!check_rules(all_client, /*client_side=*/true))
        return false;
    if (!check_rules(all_server, /*client_side=*/false))
        return false;
    return true;
}

}  // namespace

const char *
WireKindName(WireKind kind)
{
    switch (kind) {
        case WireKind::kTlv: return "tlv";
        case WireKind::kLengthPrefixed: return "lenprefix";
        case WireKind::kTaggedUnion: return "union";
    }
    return "?";
}

std::string
SpecError::Format(const std::string &source) const
{
    std::ostringstream out;
    out << source << ":" << line << ": " << message;
    return out.str();
}

bool
ParseSpec(const std::string &text, const std::string &source,
          ProtocolSpec *out, SpecError *err)
{
    Parser p;
    p.spec.source = source;
    SpecVariant *variant = nullptr;  // non-null inside variant...end

    std::istringstream stream(text);
    std::string line;
    int line_no = 0;
    while (std::getline(stream, line)) {
        ++line_no;
        const std::vector<std::string> tokens = Tokenize(line);
        if (tokens.empty())
            continue;
        const std::string &kw = tokens[0];

        if (kw == "variant") {
            if (variant != nullptr) {
                p.Fail(line_no, "nested variant (missing `end`?)");
                break;
            }
            uint64_t tag = 0;
            if (tokens.size() != 3 || !ParseNumber(tokens[1], &tag) ||
                !IsIdentifier(tokens[2])) {
                p.Fail(line_no, "expected `variant <tag-value> <label>`");
                break;
            }
            SpecVariant v;
            v.tag = tag;
            v.label = tokens[2];
            v.line = line_no;
            p.spec.variants.push_back(v);
            variant = &p.spec.variants.back();
            continue;
        }
        if (kw == "end") {
            if (variant == nullptr) {
                p.Fail(line_no, "`end` outside a variant");
                break;
            }
            if (tokens.size() != 1) {
                p.Fail(line_no, "trailing tokens after `end`");
                break;
            }
            variant = nullptr;
            continue;
        }
        if (kw == "client" || kw == "server") {
            std::vector<FieldRule> *sink =
                variant != nullptr
                    ? (kw == "client" ? &variant->client_rules
                                      : &variant->server_rules)
                    : (kw == "client" ? &p.spec.client_rules
                                      : &p.spec.server_rules);
            if (!ParsePredicate(&p, tokens, 1, line_no, sink))
                break;
            continue;
        }
        if (kw == "reply") {
            if (variant == nullptr) {
                p.Fail(line_no, "`reply` outside a variant");
                break;
            }
            uint64_t value = 0;
            if (tokens.size() != 3 || !ParseNumber(tokens[2], &value)) {
                p.Fail(line_no, "expected `reply <field> <value>`");
                break;
            }
            ReplyAction action;
            action.field = tokens[1];
            action.value = value;
            action.line = line_no;
            variant->replies.push_back(action);
            continue;
        }

        // Top-level-only keywords from here on.
        if (variant != nullptr) {
            p.Fail(line_no, "`" + kw + "` not allowed inside a variant");
            break;
        }
        if (kw == "protocol") {
            if (tokens.size() != 2 || !IsIdentifier(tokens[1])) {
                p.Fail(line_no, "expected `protocol <name>`");
                break;
            }
            p.spec.name = tokens[1];
        } else if (kw == "wire") {
            if (tokens.size() != 2) {
                p.Fail(line_no, "expected `wire tlv|lenprefix|union`");
                break;
            }
            if (tokens[1] == "tlv") {
                p.spec.wire = WireKind::kTlv;
            } else if (tokens[1] == "lenprefix") {
                p.spec.wire = WireKind::kLengthPrefixed;
            } else if (tokens[1] == "union") {
                p.spec.wire = WireKind::kTaggedUnion;
            } else {
                p.Fail(line_no,
                       "unknown wire kind `" + tokens[1] +
                           "` (tlv|lenprefix|union)");
                break;
            }
        } else if (kw == "length") {
            uint64_t length = 0;
            if (tokens.size() != 2 || !ParseNumber(tokens[1], &length) ||
                length == 0 || length > 4096) {
                p.Fail(line_no, "expected `length <bytes>` (1..4096)");
                break;
            }
            p.spec.length = static_cast<uint32_t>(length);
        } else if (kw == "field") {
            uint64_t offset = 0, size = 0;
            if (tokens.size() < 4 || !IsIdentifier(tokens[1]) ||
                !ParseNumber(tokens[2], &offset) ||
                !ParseNumber(tokens[3], &size)) {
                p.Fail(line_no,
                       "expected `field <name> <offset> <size>`");
                break;
            }
            SpecField field;
            field.name = tokens[1];
            field.offset = static_cast<uint32_t>(offset);
            field.size = static_cast<uint32_t>(size);
            field.line = line_no;
            bool bad = false;
            for (size_t i = 4; i < tokens.size(); ++i) {
                if (tokens[i] == "const" && i + 1 < tokens.size() &&
                    ParseNumber(tokens[i + 1], &field.const_value)) {
                    field.is_const = true;
                    ++i;
                } else if (tokens[i] == "mask") {
                    field.masked = true;
                } else {
                    p.Fail(line_no, "unknown field attribute `" +
                                        tokens[i] + "`");
                    bad = true;
                    break;
                }
            }
            if (bad)
                break;
            p.spec.fields.push_back(field);
        } else if (kw == "payload") {
            uint64_t offset = 0, bytes = 0;
            if (tokens.size() != 4 || !IsIdentifier(tokens[1]) ||
                !ParseNumber(tokens[2], &offset) ||
                !ParseNumber(tokens[3], &bytes) || bytes == 0) {
                p.Fail(line_no,
                       "expected `payload <name> <offset> <bytes>`");
                break;
            }
            if (!p.spec.payload_name.empty()) {
                p.Fail(line_no, "duplicate payload declaration");
                break;
            }
            p.spec.payload_name = tokens[1];
            p.spec.payload_offset = static_cast<uint32_t>(offset);
            p.spec.payload_bytes = static_cast<uint32_t>(bytes);
            // One single-byte field per payload position.
            for (uint32_t i = 0; i < bytes; ++i) {
                SpecField field;
                field.name = tokens[1] + std::to_string(i);
                field.offset = static_cast<uint32_t>(offset) + i;
                field.size = 1;
                field.is_payload_byte = true;
                field.line = line_no;
                p.spec.fields.push_back(field);
            }
        } else if (kw == "lenfield") {
            if (tokens.size() != 2) {
                p.Fail(line_no, "expected `lenfield <field>`");
                break;
            }
            p.spec.len_field = tokens[1];
        } else if (kw == "dispatch") {
            if (tokens.size() != 2) {
                p.Fail(line_no, "expected `dispatch <field>`");
                break;
            }
            p.spec.dispatch_field = tokens[1];
        } else {
            p.Fail(line_no, "unknown keyword `" + kw + "`");
            break;
        }
    }

    if (!p.failed && variant != nullptr)
        p.Fail(line_no, "unterminated variant (missing `end`)");
    if (!p.failed)
        Validate(&p);
    if (p.failed) {
        if (err != nullptr)
            *err = p.error;
        return false;
    }
    *out = std::move(p.spec);
    return true;
}

}  // namespace spec
}  // namespace achilles
