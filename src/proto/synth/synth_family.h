// Achilles reproduction -- synthetic protocol families.
//
// Two layers:
//
//  1. The fixed synthetic protocols of the Section 6.4 optimization
//     study (moved here from bench/synth_protocol.h): a scaled
//     CRC-tagged command protocol and a fully-validated "guarded"
//     variant that exercises cross-state pruning. These are kept
//     source-identical so the fig11/ablation benches and the prune
//     tests measure exactly what they always measured.
//
//  2. A seeded family sampler: FamilyKnobs spans a grid of protocol
//     shapes -- dispatch depth (how many binary dispatch levels the
//     server's parser has), handler fan-out (accepting handlers per
//     leaf), field coupling (how often a leaf's tag is a CRC-like
//     function of its argument), and validation density (how much of
//     what clients guarantee the server actually re-checks). Every
//     (knobs, seed) pair deterministically samples one protocol; the
//     default corpus registers hundreds of them in the protocol
//     registry ("synth/<cell>/s<seed>") for the corpus bench.
//
// Trojan content by construction: a coupled tag is never validated by
// the server, an unchecked argument or free tag leaves its whole byte
// range open, and a checked one is re-checked with the exact client
// bounds -- so a leaf is Trojan-free only when everything it relies on
// is checked, and expected yield rises with coupling and falls with
// density.

#ifndef ACHILLES_PROTO_SYNTH_SYNTH_FAMILY_H_
#define ACHILLES_PROTO_SYNTH_SYNTH_FAMILY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/message.h"
#include "proto/registry.h"
#include "symexec/program.h"

namespace achilles {
namespace synth {

// ---------------------------------------------------------------------
// Fixed Section 6.4 protocol (legacy, unchanged semantics).
//
//   message: cmd(1) | arg(1) | tag(1)
//   client, subcommand i: cmd = i, arg = λ ∈ [lo_i, lo_i+40],
//                         tag = (13·λ + 7·i) mod 256   (CRC-like)
//   server: binary dispatch on the cmd bits (a parser's nested
//           switch), then arg ∈ [lo_i, lo_i+50] (wider: Trojan band),
//           then two accepting handlers split on arg's parity; the tag
//           is never validated (second Trojan source).
// ---------------------------------------------------------------------

inline constexpr uint32_t kMessageLength = 3;

inline core::MessageLayout
MakeLayout()
{
    core::MessageLayout layout(kMessageLength);
    layout.AddField("cmd", 0, 1).AddField("arg", 1, 1).AddField("tag", 2,
                                                                 1);
    return layout;
}

inline uint64_t ClientLo(uint32_t i) { return (i * 3) % 120; }
inline uint64_t ClientHi(uint32_t i) { return ClientLo(i) + 40; }
inline uint64_t ServerHi(uint32_t i) { return ClientLo(i) + 50; }

inline symexec::Program
MakeClient(uint32_t num_subcommands)
{
    using symexec::ProgramBuilder;
    using symexec::Val;
    ProgramBuilder b("synth-client");
    b.Function("main", {}, 0, [&] {
        Val which = b.ReadInput("which", 8);
        Val arg = b.ReadInput("arg", 8);
        b.Array("msg", 8, kMessageLength);
        for (uint32_t i = 0; i < num_subcommands; ++i) {
            b.If(which == i, [&] {
                b.If(arg < ClientLo(i), [&] { b.Halt(); });
                b.If(arg > ClientHi(i), [&] { b.Halt(); });
                b.Store("msg", Val::Const(8, 0), Val::Const(8, i));
                b.Store("msg", Val::Const(8, 1), arg);
                // CRC-like integrity tag over the argument.
                Val tag = arg * Val::Const(8, 13) +
                          Val::Const(8, (7 * i) & 0xff);
                b.Store("msg", Val::Const(8, 2), tag);
                b.SendMessage("msg");
            });
        }
    });
    return b.Build();
}

inline symexec::Program
MakeServer(uint32_t num_subcommands)
{
    using symexec::ProgramBuilder;
    using symexec::Val;
    ACHILLES_CHECK((num_subcommands & (num_subcommands - 1)) == 0,
                   "num_subcommands must be a power of two");
    uint32_t bits = 0;
    while ((1u << bits) < num_subcommands)
        ++bits;

    ProgramBuilder b("synth-server");
    b.Function("main", {}, 0, [&] {
        b.ReceiveMessage("msg", kMessageLength);
        Val cmd = b.Local(
            "cmd", 8, ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, 0)));
        Val arg = b.Local(
            "arg", 8, ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, 1)));
        // Unknown high bits -> discard.
        b.If(cmd >= num_subcommands, [&] { b.MarkReject(); });

        // Binary dispatch on the cmd bits, like a nested switch: each
        // level halves the set of client predicates that still match.
        std::function<void(uint32_t, uint32_t)> dispatch =
            [&](uint32_t bit, uint32_t prefix) {
                if (bit == 0) {
                    const uint32_t i = prefix;
                    b.If(arg < ClientLo(i), [&] { b.MarkReject(); });
                    b.If(arg > ServerHi(i), [&] { b.MarkReject(); });
                    // Two accepting handlers (parity split); the tag is
                    // never validated.
                    b.If((arg & 1) == Val::Const(8, 1),
                         [&] { b.MarkAccept("odd"); },
                         [&] { b.MarkAccept("even"); });
                    return;
                }
                const uint32_t mask = 1u << (bit - 1);
                b.If((cmd & mask) == Val::Const(8, 0),
                     [&] { dispatch(bit - 1, prefix); },
                     [&] { dispatch(bit - 1, prefix | mask); });
            };
        dispatch(bits, 0);
    });
    return b.Build();
}

// ---------------------------------------------------------------------
// Guarded variant: a fully validated protocol (the server checks every
// analyzed field, so no state has a Trojan) whose server re-derives the
// same dead-end constraints in many sibling regions, selected by a pad
// byte that belongs to no layout field. Each region's validation chain
// ends in a state provably free of Trojans; the first such refutation's
// core -- {cmd == i, arg < bound, ¬pathC_i} -- transfers verbatim to
// every other region's chain (their extra pad constraints are not
// implicated), which is exactly the workload the cross-state Trojan-core
// index prunes: one worker's dead state subsumes the descendants of
// every sibling region, including regions explored by other workers.
// ---------------------------------------------------------------------

inline constexpr uint64_t kGuardedArgBound = 10;

inline core::MessageLayout
MakeGuardedLayout()
{
    // Byte 2 ("pad") intentionally belongs to no field: the server's
    // region dispatch on it forks states without entering the
    // predicate-match logic.
    core::MessageLayout out(kMessageLength);
    out.AddField("cmd", 0, 1).AddField("arg", 1, 1);
    return out;
}

inline symexec::Program
MakeGuardedClient(uint32_t num_cmds)
{
    using symexec::ProgramBuilder;
    using symexec::Val;
    ProgramBuilder b("guarded-client");
    b.Function("main", {}, 0, [&] {
        Val which = b.ReadInput("which", 8);
        Val arg = b.ReadInput("arg", 8);
        b.Array("msg", 8, kMessageLength);
        for (uint32_t i = 0; i < num_cmds; ++i) {
            b.If(which == i, [&] {
                b.If(arg >= kGuardedArgBound, [&] { b.Halt(); });
                b.Store("msg", Val::Const(8, 0), Val::Const(8, i));
                b.Store("msg", Val::Const(8, 1), arg);
                b.Store("msg", Val::Const(8, 2), Val::Const(8, 0));
                b.SendMessage("msg");
            });
        }
    });
    return b.Build();
}

inline symexec::Program
MakeGuardedServer(uint32_t num_cmds, uint32_t regions)
{
    using symexec::ProgramBuilder;
    using symexec::Val;
    ProgramBuilder b("guarded-server");
    b.Function("main", {}, 0, [&] {
        b.ReceiveMessage("msg", kMessageLength);
        Val cmd = b.Local(
            "cmd", 8, ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, 0)));
        Val arg = b.Local(
            "arg", 8, ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, 1)));
        Val pad = b.Local(
            "pad", 8, ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, 2)));
        for (uint32_t r = 0; r < regions; ++r) {
            b.If(pad == r, [&] {
                for (uint32_t i = 0; i < num_cmds; ++i) {
                    b.If(cmd == i, [&] {
                        b.If(arg < kGuardedArgBound, [&] {
                            b.MarkAccept("h" + std::to_string(i));
                        });
                    });
                }
            });
        }
        b.MarkReject("bad");
    });
    return b.Build();
}

// ---------------------------------------------------------------------
// Seeded family sampler.
// ---------------------------------------------------------------------

/** Sampling grid cell: the protocol shape, plus the draw seed. */
struct FamilyKnobs
{
    uint32_t dispatch_depth = 1;   ///< binary dispatch levels (1..6)
    uint32_t handler_fanout = 1;   ///< accepting handlers per leaf (pow2)
    double field_coupling = 0.0;   ///< P(leaf tag is CRC-like coupled)
    double validation_density = 0.5;  ///< P(server re-checks a guarantee)
    uint64_t seed = 0;
};

/** One dispatch leaf's sampled shape. A leaf is Trojan-free exactly
 *  when check_arg && check_tag && !coupled (everything the client
 *  guarantees is re-checked with the same bounds). */
struct LeafParams
{
    uint64_t arg_lo = 0;        ///< argument lower bound (both sides)
    uint64_t arg_span = 0;      ///< argument range width (both sides)
    bool check_arg = false;     ///< server re-checks the argument bounds
    bool coupled = false;       ///< tag = arg * mul + add on the client
    uint64_t mul = 1;           ///< coupling multiplier (odd)
    uint64_t add = 0;           ///< coupling addend
    uint64_t tag_lo = 0;        ///< free-tag lower bound (both sides)
    uint64_t tag_span = 0;      ///< free-tag range width (both sides)
    bool check_tag = false;     ///< server re-checks a free tag
};

/** A fully drawn protocol: knobs plus per-leaf parameters. */
struct SampledParams
{
    FamilyKnobs knobs;
    uint32_t num_subcommands = 0;  ///< 2^dispatch_depth
    std::vector<LeafParams> leaves;
};

/** "synth/d<depth>.f<fanout>.c<coupling%>.v<density%>" (seed-free:
 *  every seed of a cell aggregates under the same family). */
std::string FamilyName(const FamilyKnobs &knobs);

/** "<FamilyName>/s<seed>": the registry key. */
std::string ProtocolName(const FamilyKnobs &knobs);

/** Draw all random parameters (one Rng pass; deterministic). */
SampledParams SampleParams(const FamilyKnobs &knobs);

core::MessageLayout MakeSampledLayout();
symexec::Program MakeSampledClient(const SampledParams &params);
symexec::Program MakeSampledServer(const SampledParams &params);

/** Registry factory for one (cell, seed) draw. */
std::shared_ptr<const proto::ProtocolFactory>
MakeFamilyFactory(const FamilyKnobs &knobs);

/**
 * The default seeded corpus: the full knob grid {depth 1,2,3} x
 * {fanout 1,2} x {coupling 0,0.75} x {density 0.25,0.75}, five seeds
 * each -- 120 protocols.
 */
std::vector<FamilyKnobs> DefaultCorpus();

/** Register factories for every knob draw (skips names already taken). */
void RegisterCorpus(proto::ProtocolRegistry *registry,
                    const std::vector<FamilyKnobs> &corpus);

}  // namespace synth
}  // namespace achilles

#endif  // ACHILLES_PROTO_SYNTH_SYNTH_FAMILY_H_
