// Achilles reproduction -- synthetic protocol family sampler.

#include "proto/synth/synth_family.h"

#include <cmath>

#include "support/rng.h"

namespace achilles {
namespace synth {

namespace {

using symexec::ProgramBuilder;
using symexec::Val;

int
Percent(double p)
{
    return static_cast<int>(std::lround(p * 100.0));
}

/** Fold the knob grid coordinates into one draw seed. */
uint64_t
MixSeed(const FamilyKnobs &knobs)
{
    uint64_t x = knobs.seed;
    x = x * 0x9e3779b97f4a7c15ull + knobs.dispatch_depth;
    x = x * 0x9e3779b97f4a7c15ull + knobs.handler_fanout;
    x = x * 0x9e3779b97f4a7c15ull +
        static_cast<uint64_t>(Percent(knobs.field_coupling));
    x = x * 0x9e3779b97f4a7c15ull +
        static_cast<uint64_t>(Percent(knobs.validation_density));
    return x;
}

}  // namespace

std::string
FamilyName(const FamilyKnobs &knobs)
{
    return "synth/d" + std::to_string(knobs.dispatch_depth) + ".f" +
           std::to_string(knobs.handler_fanout) + ".c" +
           std::to_string(Percent(knobs.field_coupling)) + ".v" +
           std::to_string(Percent(knobs.validation_density));
}

std::string
ProtocolName(const FamilyKnobs &knobs)
{
    return FamilyName(knobs) + "/s" + std::to_string(knobs.seed);
}

SampledParams
SampleParams(const FamilyKnobs &knobs)
{
    ACHILLES_CHECK(knobs.dispatch_depth >= 1 && knobs.dispatch_depth <= 6,
                   "dispatch_depth out of range");
    ACHILLES_CHECK(knobs.handler_fanout >= 1 &&
                       (knobs.handler_fanout &
                        (knobs.handler_fanout - 1)) == 0,
                   "handler_fanout must be a power of two");
    SampledParams out;
    out.knobs = knobs;
    out.num_subcommands = 1u << knobs.dispatch_depth;

    // One generator, one pass: client and server are built from the
    // same draw, so a (cell, seed) pair is one reproducible protocol.
    Rng rng(MixSeed(knobs));
    out.leaves.reserve(out.num_subcommands);
    for (uint32_t i = 0; i < out.num_subcommands; ++i) {
        LeafParams leaf;
        leaf.arg_lo = rng.Range(0, 150);
        leaf.arg_span = rng.Range(20, 60);  // lo + span stays in the byte
        leaf.check_arg = rng.Chance(knobs.validation_density);
        leaf.coupled = rng.Chance(knobs.field_coupling);
        leaf.mul = rng.Range(1, 15) * 2 + 1;  // odd: invertible mod 256
        leaf.add = rng.Range(0, 255);
        leaf.tag_lo = rng.Range(0, 150);
        leaf.tag_span = rng.Range(10, 50);
        leaf.check_tag = rng.Chance(knobs.validation_density);
        out.leaves.push_back(leaf);
    }
    return out;
}

core::MessageLayout
MakeSampledLayout()
{
    // Same shape as the fixed Section 6.4 protocol.
    return MakeLayout();
}

symexec::Program
MakeSampledClient(const SampledParams &params)
{
    ProgramBuilder b("synth-sampled-client");
    b.Function("main", {}, 0, [&] {
        Val which = b.ReadInput("which", 8);
        Val arg = b.ReadInput("arg", 8);
        b.Array("msg", 8, kMessageLength);
        for (uint32_t i = 0; i < params.num_subcommands; ++i) {
            const LeafParams &leaf = params.leaves[i];
            b.If(which == i, [&] {
                b.If(arg < leaf.arg_lo, [&] { b.Halt(); });
                b.If(arg > leaf.arg_lo + leaf.arg_span,
                     [&] { b.Halt(); });
                b.Store("msg", Val::Const(8, 0), Val::Const(8, i));
                b.Store("msg", Val::Const(8, 1), arg);
                if (leaf.coupled) {
                    // CRC-like integrity tag over the argument.
                    Val tag = arg * Val::Const(8, leaf.mul) +
                              Val::Const(8, leaf.add);
                    b.Store("msg", Val::Const(8, 2), tag);
                } else {
                    Val tag =
                        b.ReadInput("tag" + std::to_string(i), 8);
                    b.If(tag < leaf.tag_lo, [&] { b.Halt(); });
                    b.If(tag > leaf.tag_lo + leaf.tag_span,
                         [&] { b.Halt(); });
                    b.Store("msg", Val::Const(8, 2), tag);
                }
                b.SendMessage("msg");
            });
        }
    });
    return b.Build();
}

symexec::Program
MakeSampledServer(const SampledParams &params)
{
    ProgramBuilder b("synth-sampled-server");
    b.Function("main", {}, 0, [&] {
        b.ReceiveMessage("msg", kMessageLength);
        Val cmd = b.Local(
            "cmd", 8, ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, 0)));
        Val arg = b.Local(
            "arg", 8, ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, 1)));
        Val tag = b.Local(
            "tag", 8, ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, 2)));
        b.If(cmd >= params.num_subcommands, [&] { b.MarkReject(); });

        const uint32_t fanout = params.knobs.handler_fanout;
        auto leaf_body = [&](uint32_t i) {
            const LeafParams &leaf = params.leaves[i];
            // Validation density decides which client guarantees the
            // server re-checks (with the exact client bounds); an
            // unchecked field leaves its byte open, and a coupled tag
            // is never validated -- those are the Trojan sources.
            if (leaf.check_arg) {
                b.If(arg < leaf.arg_lo, [&] { b.MarkReject(); });
                b.If(arg > leaf.arg_lo + leaf.arg_span,
                     [&] { b.MarkReject(); });
            }
            if (!leaf.coupled && leaf.check_tag) {
                b.If(tag < leaf.tag_lo, [&] { b.MarkReject(); });
                b.If(tag > leaf.tag_lo + leaf.tag_span,
                     [&] { b.MarkReject(); });
            }
            // Accepting handlers, split on arg's low bits.
            if (fanout == 1) {
                b.MarkAccept("h" + std::to_string(i));
                return;
            }
            std::function<void(uint32_t, uint32_t)> split =
                [&](uint32_t bit, uint32_t which) {
                    if ((1u << bit) == fanout) {
                        b.MarkAccept("h" + std::to_string(i) + "." +
                                     std::to_string(which));
                        return;
                    }
                    const uint32_t mask = 1u << bit;
                    b.If((arg & mask) == Val::Const(8, 0),
                         [&] { split(bit + 1, which); },
                         [&] { split(bit + 1, which | mask); });
                };
            split(0, 0);
        };

        std::function<void(uint32_t, uint32_t)> dispatch =
            [&](uint32_t bit, uint32_t prefix) {
                if (bit == 0) {
                    leaf_body(prefix);
                    return;
                }
                const uint32_t mask = 1u << (bit - 1);
                b.If((cmd & mask) == Val::Const(8, 0),
                     [&] { dispatch(bit - 1, prefix); },
                     [&] { dispatch(bit - 1, prefix | mask); });
            };
        dispatch(params.knobs.dispatch_depth, 0);
    });
    return b.Build();
}

std::shared_ptr<const proto::ProtocolFactory>
MakeFamilyFactory(const FamilyKnobs &knobs)
{
    proto::ProtocolInfo info;
    info.name = ProtocolName(knobs);
    info.family = FamilyName(knobs);
    info.description =
        "sampled synthetic protocol (depth " +
        std::to_string(knobs.dispatch_depth) + ", fanout " +
        std::to_string(knobs.handler_fanout) + ", coupling " +
        std::to_string(Percent(knobs.field_coupling)) + "%, density " +
        std::to_string(Percent(knobs.validation_density)) + "%, seed " +
        std::to_string(knobs.seed) + ")";
    return std::make_shared<proto::LambdaProtocolFactory>(
        info, [] { return MakeSampledLayout(); },
        [knobs] { return MakeSampledServer(SampleParams(knobs)); },
        [knobs] {
            std::vector<symexec::Program> clients;
            clients.push_back(MakeSampledClient(SampleParams(knobs)));
            return clients;
        });
}

std::vector<FamilyKnobs>
DefaultCorpus()
{
    std::vector<FamilyKnobs> out;
    for (uint32_t depth : {1u, 2u, 3u}) {
        for (uint32_t fanout : {1u, 2u}) {
            for (double coupling : {0.0, 0.75}) {
                for (double density : {0.25, 0.75}) {
                    for (uint64_t seed = 0; seed < 5; ++seed) {
                        FamilyKnobs knobs;
                        knobs.dispatch_depth = depth;
                        knobs.handler_fanout = fanout;
                        knobs.field_coupling = coupling;
                        knobs.validation_density = density;
                        knobs.seed = seed;
                        out.push_back(knobs);
                    }
                }
            }
        }
    }
    return out;
}

void
RegisterCorpus(proto::ProtocolRegistry *registry,
               const std::vector<FamilyKnobs> &corpus)
{
    for (const FamilyKnobs &knobs : corpus) {
        if (!registry->Has(ProtocolName(knobs)))
            registry->Register(MakeFamilyFactory(knobs));
    }
}

}  // namespace synth
}  // namespace achilles
