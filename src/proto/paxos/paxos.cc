// Achilles reproduction -- Paxos substrate.

#include "proto/paxos/paxos.h"

namespace achilles {
namespace paxos {

using symexec::ProgramBuilder;
using symexec::Val;

core::MessageLayout
MakeLayout()
{
    core::MessageLayout layout(kMessageLength);
    layout.AddField("type", kOffType, 1)
        .AddField("ballot", kOffBallot, 2)
        .AddField("value", kOffValue, 2);
    return layout;
}

symexec::Program
MakeProposer(LocalStateMode mode)
{
    ProgramBuilder b("paxos-proposer");
    b.Function("main", {}, 0, [&] {
        Val value = Val::Const(16, kScenarioValue);
        if (mode == LocalStateMode::kConstructedSymbolic) {
            // The proposal came from (symbolic) client input earlier in
            // the protocol run; the proposer validated it then.
            value = b.ReadInput("proposal", 16);
            b.If(value >= Val::Const(16, kMaxProposableValue),
                 [&] { b.Halt(); });
        }
        b.Array("msg", 8, kMessageLength);
        b.Store("msg", Val::Const(8, kOffType),
                Val::Const(8, kTypeAccept));
        b.Store("msg", Val::Const(8, kOffBallot),
                Val::Const(8, kScenarioBallot & 0xff));
        b.Store("msg", Val::Const(8, kOffBallot + 1),
                Val::Const(8, (kScenarioBallot >> 8) & 0xff));
        b.Store("msg", Val::Const(8, kOffValue), value.Extract(0, 8));
        b.Store("msg", Val::Const(8, kOffValue + 1), value.Extract(8, 8));
        b.SendMessage("msg", "accept");
    });
    return b.Build();
}

symexec::Program
MakeAcceptor(LocalStateMode mode)
{
    ProgramBuilder b("paxos-acceptor");
    b.Function("main", {}, 0, [&] {
        b.ReceiveMessage("msg", kMessageLength);
        auto byte = [&](uint32_t off) {
            return ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, off));
        };
        b.If(byte(kOffType) != Val::Const(8, kTypeAccept),
             [&] { b.MarkReject("not-accept"); });

        Val bh = byte(kOffBallot + 1);
        Val ballot = b.Local("ballot", 16, bh.Concat(byte(kOffBallot)));

        // The promised ballot is the acceptor's local state.
        Val promised = Val::Const(16, kScenarioBallot);
        if (mode == LocalStateMode::kOverApproximate) {
            // Annotation idiom: havoc the state, constrain its range.
            promised = b.OverApproximate("promised", 16, 1, 10);
        }
        b.If(ballot < promised, [&] { b.MarkReject("stale-ballot"); });

        // Basic Paxos: the value is stored without cross-checking the
        // proposal -- the acceptance point.
        b.MarkAccept("accept-value");
    });
    return b.Build();
}

}  // namespace paxos
}  // namespace achilles
