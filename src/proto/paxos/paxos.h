// Achilles reproduction -- Paxos substrate (paper Section 3.4).
//
// The paper's illustration of local state: a Paxos acceptor that has
// entered the second phase "should only validate Accept messages for
// [the proposed] value -- any other message is a Trojan message". The
// acceptor itself follows basic Paxos and accepts any value with a
// sufficiently high ballot; the invariant that the value matches the
// proposal is maintained only by correct proposers, which is exactly the
// client/server asymmetry Achilles detects.
//
// The three local-state modes of Section 3.4 are exposed:
//   * kConcrete            -- the scenario is run concretely first, so
//                             the proposer/acceptor state is a constant
//                             (proposed value 7, promised ballot 5);
//   * kConstructedSymbolic -- the proposal is a symbolic value passed
//                             between nodes, so one Achilles run covers
//                             every concrete scenario at once;
//   * kOverApproximate     -- the acceptor's promised ballot is
//                             annotated as a constrained symbolic
//                             (the make_symbolic/assume idiom).

#ifndef ACHILLES_PROTO_PAXOS_PAXOS_H_
#define ACHILLES_PROTO_PAXOS_PAXOS_H_

#include "core/message.h"
#include "symexec/program.h"

namespace achilles {
namespace paxos {

/** Message: type(1) | ballot(2) | value(2). */
inline constexpr uint32_t kMessageLength = 5;
inline constexpr uint64_t kTypeAccept = 2;

inline constexpr uint32_t kOffType = 0;
inline constexpr uint32_t kOffBallot = 1;
inline constexpr uint32_t kOffValue = 3;

/** The concrete scenario of Section 3.4. */
inline constexpr uint64_t kScenarioBallot = 5;
inline constexpr uint64_t kScenarioValue = 7;
/** Proposer-side validation bound in the symbolic-state mode. */
inline constexpr uint64_t kMaxProposableValue = 100;

/** Local-state handling mode (Section 3.4). */
enum class LocalStateMode : uint8_t {
    kConcrete,
    kConstructedSymbolic,
    kOverApproximate,
};

core::MessageLayout MakeLayout();

/**
 * The phase-2 proposer (the "client"): sends ACCEPT(ballot, value). In
 * kConcrete mode both are the scenario constants; in
 * kConstructedSymbolic mode the value is the symbolic proposal the
 * protocol run built up (validated to < kMaxProposableValue).
 */
symexec::Program MakeProposer(LocalStateMode mode);

/**
 * The acceptor (the "server"): in phase 2 with promised ballot. Accepts
 * any ACCEPT whose ballot is at least the promised one -- including
 * values no correct proposer would send in this scenario.
 */
symexec::Program MakeAcceptor(LocalStateMode mode);

}  // namespace paxos
}  // namespace achilles

#endif  // ACHILLES_PROTO_PAXOS_PAXOS_H_
