// Achilles reproduction -- toy protocol (paper Section 2).

#include "proto/toy/toy_protocol.h"

namespace achilles {
namespace toy {

using symexec::ProgramBuilder;
using symexec::Val;

core::MessageLayout
MakeLayout(bool mask_crc)
{
    core::MessageLayout layout(kMessageLength);
    layout.AddField("sender", kOffSender, 1)
        .AddField("request", kOffRequest, 1)
        .AddField("address", kOffAddress, 1)
        .AddField("value", kOffValue, 1)
        .AddField("crc", kOffCrc, 1);
    if (mask_crc)
        layout.Mask("crc");
    return layout;
}

namespace {

/** The checksum expression both sides compute (Figure 2/3's CRC). */
Val
CrcExpr(const Val &sender, const Val &request, const Val &address,
        const Val &value)
{
    return sender ^ (request * Val::Const(8, 7)) ^
           (address * Val::Const(8, 13)) ^ (value * Val::Const(8, 31));
}

}  // namespace

symexec::Program
MakeClient()
{
    ProgramBuilder b("toy-client");
    b.Function("main", {}, 0, [&] {
        // getPeerID() over-approximated to [0, kPeers-1] (Figure 9).
        Val peer = b.OverApproximate("peer", 8, 0, kPeers - 1);
        Val op = b.ReadInput("op", 8);
        Val address = b.ReadInput("address", 8);
        // Client-side validation (Figure 3 lines 5-8): only addresses in
        // [0, DATASIZE) are ever sent.
        b.If(address.Sge(Val::Const(8, kDataSize)), [&] { b.Halt(); });
        b.If(address.Slt(Val::Const(8, 0)), [&] { b.Halt(); });

        b.Array("msg", 8, kMessageLength);
        b.If(op == kRead, [&] {
            b.Store("msg", Val::Const(8, kOffSender), peer);
            b.Store("msg", Val::Const(8, kOffRequest), Val::Const(8, kRead));
            b.Store("msg", Val::Const(8, kOffAddress), address);
            b.Store("msg", Val::Const(8, kOffValue), Val::Const(8, 0));
            b.Store("msg", Val::Const(8, kOffCrc),
                    CrcExpr(peer, Val::Const(8, kRead), address,
                            Val::Const(8, 0)));
            b.SendMessage("msg", "read-request");
        });
        b.If(op == kWrite, [&] {
            Val value = b.ReadInput("value", 8);
            b.Store("msg", Val::Const(8, kOffSender), peer);
            b.Store("msg", Val::Const(8, kOffRequest),
                    Val::Const(8, kWrite));
            b.Store("msg", Val::Const(8, kOffAddress), address);
            b.Store("msg", Val::Const(8, kOffValue), value);
            b.Store("msg", Val::Const(8, kOffCrc),
                    CrcExpr(peer, Val::Const(8, kWrite), address, value));
            b.SendMessage("msg", "write-request");
        });
        // Any other operation type: no message (exit).
    });
    return b.Build();
}

namespace {

/** Common server structure; `check_read_lower_bound` toggles the bug. */
symexec::Program
MakeServerImpl(bool check_read_lower_bound)
{
    ProgramBuilder b(check_read_lower_bound ? "toy-server-fixed"
                                            : "toy-server");
    b.Function("main", {}, 0, [&] {
        b.ReceiveMessage("msg", kMessageLength);
        auto field = [&](uint32_t off) {
            return ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, off));
        };
        Val sender = b.Local("sender", 8, field(kOffSender));
        Val request = b.Local("request", 8, field(kOffRequest));
        Val address = b.Local("address", 8, field(kOffAddress));
        Val value = b.Local("value", 8, field(kOffValue));
        Val crc = b.Local("crc", 8, field(kOffCrc));

        // isInSet(msg.sender, peers): peers are ids [0, kPeers).
        b.If(sender >= kPeers, [&] { b.Return(); });
        // isValidCRC(msg, msg.CRC).
        b.If(crc != CrcExpr(sender, request, address, value),
             [&] { b.Return(); });

        // The server's 100-entry data array (Figure 2 line 3).
        b.Array("data", 8, kDataSize);

        b.Switch(
            request,
            {{kRead,
              [&] {
                  b.If(address.Sge(Val::Const(8, kDataSize)),
                       [&] { b.Return(); });
                  if (check_read_lower_bound) {
                      b.If(address.Slt(Val::Const(8, 0)),
                           [&] { b.Return(); });
                  }
                  // Security vulnerability (unless fixed): negative
                  // addresses reach data[msg.address].
                  b.Array("reply", 8, 2);
                  b.Store("reply", Val::Const(8, 0), Val::Const(8, 0xAA));
                  b.Store("reply", Val::Const(8, 1),
                          ProgramBuilder::ArrayAt("data", 8, address));
                  b.SendMessage("reply", "read-reply");
                  b.Return();
              }},
             {kWrite,
              [&] {
                  b.If(address.Sge(Val::Const(8, kDataSize)),
                       [&] { b.Return(); });
                  b.If(address.Slt(Val::Const(8, 0)), [&] { b.Return(); });
                  b.Store("data", address, value);
                  b.Array("ack", 8, 1);
                  b.Store("ack", Val::Const(8, 0), Val::Const(8, 0x55));
                  b.SendMessage("ack", "write-ack");
                  b.Return();
              }}},
            [&] { b.Return(); });
    });
    return b.Build();
}

}  // namespace

symexec::Program
MakeServer()
{
    return MakeServerImpl(/*check_read_lower_bound=*/false);
}

symexec::Program
MakeFixedServer()
{
    return MakeServerImpl(/*check_read_lower_bound=*/true);
}

}  // namespace toy
}  // namespace achilles
