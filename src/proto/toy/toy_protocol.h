// Achilles reproduction -- toy protocol (paper Section 2).
//
// The working example from Figures 2-3: a read/write server over a
// 100-entry data array. The server validates `address < DATASIZE` for
// both request types but forgets `address >= 0` for READ requests; the
// client validates both bounds. READ messages with a negative address
// are therefore Trojan messages (they can leak server memory, e.g. the
// peers table stored below the data array).
//
// Message layout (5 bytes):
//   sender  : 1 byte   peer id
//   request : 1 byte   1 = READ, 2 = WRITE
//   address : 1 byte   interpreted as SIGNED by the server's bound check
//   value   : 1 byte   payload for WRITE
//   crc     : 1 byte   xor-style checksum over the other fields

#ifndef ACHILLES_PROTO_TOY_TOY_PROTOCOL_H_
#define ACHILLES_PROTO_TOY_TOY_PROTOCOL_H_

#include "core/message.h"
#include "symexec/program.h"

namespace achilles {
namespace toy {

inline constexpr uint64_t kRead = 1;
inline constexpr uint64_t kWrite = 2;
inline constexpr uint64_t kDataSize = 100;
inline constexpr uint32_t kMessageLength = 5;

inline constexpr uint32_t kOffSender = 0;
inline constexpr uint32_t kOffRequest = 1;
inline constexpr uint32_t kOffAddress = 2;
inline constexpr uint32_t kOffValue = 3;
inline constexpr uint32_t kOffCrc = 4;

/** Number of known peers accepted by the server (ids [0, kPeers)). */
inline constexpr uint64_t kPeers = 10;

/** The message layout shared by client and server analyses. */
core::MessageLayout MakeLayout(bool mask_crc = false);

/** The client of Figure 3 (validates 0 <= address < DATASIZE). */
symexec::Program MakeClient();

/** The server of Figure 2 (missing the address >= 0 check on READ). */
symexec::Program MakeServer();

/**
 * A repaired server (both bounds checked on both request types); used
 * by tests to show Achilles reports no Trojans when the bug is fixed.
 */
symexec::Program MakeFixedServer();

/** The xor-style checksum both sides compute. */
inline uint64_t
ToyCrc(uint64_t sender, uint64_t request, uint64_t address, uint64_t value)
{
    return (sender ^ (request * 7) ^ (address * 13) ^ (value * 31)) & 0xff;
}

}  // namespace toy
}  // namespace achilles

#endif  // ACHILLES_PROTO_TOY_TOY_PROTOCOL_H_
