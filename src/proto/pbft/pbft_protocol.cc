// Achilles reproduction -- PBFT substrate.

#include "proto/pbft/pbft_protocol.h"

namespace achilles {
namespace pbft {

using symexec::ProgramBuilder;
using symexec::Val;

core::MessageLayout
MakeLayout()
{
    core::MessageLayout layout(kMessageLength);
    layout.AddField("tag", kOffTag, 2)
        .AddField("extra", kOffExtra, 2)
        .AddField("size", kOffSize, 4)
        .AddField("replier", kOffReplier, 2)
        .AddField("command_size", kOffCommandSize, 2)
        .AddField("cid", kOffCid, 2)
        .AddField("rid", kOffRid, 2);
    // The 16-byte digest is approximated and masked (Section 6.1); it
    // is modeled as 2 wide fields to stay within the 8-byte field cap.
    layout.AddField("od_lo", kOffDigest, 8).AddField("od_hi",
                                                     kOffDigest + 8, 8);
    layout.Mask("od_lo").Mask("od_hi");
    for (uint32_t i = 0; i < kCommandSize; ++i)
        layout.AddField("command" + std::to_string(i), kOffCommand + i, 1);
    for (uint32_t r = 0; r < kNumReplicas; ++r)
        layout.AddField("mac" + std::to_string(r), kOffMac + 2 * r, 2);
    return layout;
}

namespace {

/** Store a 16-bit little-endian value into two message bytes. */
void
Store16(ProgramBuilder &b, const std::string &array, uint32_t off,
        const Val &v)
{
    b.Store(array, Val::Const(8, off), v.Extract(0, 8));
    b.Store(array, Val::Const(8, off + 1), v.Extract(8, 8));
}

void
Store16Const(ProgramBuilder &b, const std::string &array, uint32_t off,
             uint64_t value)
{
    b.Store(array, Val::Const(8, off), Val::Const(8, value & 0xff));
    b.Store(array, Val::Const(8, off + 1),
            Val::Const(8, (value >> 8) & 0xff));
}

Val
Load16(uint32_t off)
{
    Val high = ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, off + 1));
    Val low = ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, off));
    return high.Concat(low);
}

}  // namespace

symexec::Program
MakeClient()
{
    ProgramBuilder b("pbft-client");
    b.Function("main", {}, 0, [&] {
        // Symbolic request parameters (Section 6.1).
        Val extra = b.ReadInput("extra", 16);
        Val replier = b.ReadInput("replier", 16);
        Val cid = b.ReadInput("cid", 16);
        Val rid = b.ReadInput("rid", 16);

        b.Array("msg", 8, kMessageLength);
        Store16Const(b, "msg", kOffTag, kTagRequest);
        Store16(b, "msg", kOffExtra, extra);
        // size: 4-byte little-endian message length (constant).
        b.Store("msg", Val::Const(8, kOffSize),
                Val::Const(8, kMessageLength & 0xff));
        b.Store("msg", Val::Const(8, kOffSize + 1),
                Val::Const(8, (kMessageLength >> 8) & 0xff));
        b.Store("msg", Val::Const(8, kOffSize + 2), Val::Const(8, 0));
        b.Store("msg", Val::Const(8, kOffSize + 3), Val::Const(8, 0));
        // Digest: approximated by the predefined constant byte.
        b.For(16, [&](uint32_t i) {
            b.Store("msg", Val::Const(8, kOffDigest + i),
                    Val::Const(8, kDigestConst));
        });
        Store16(b, "msg", kOffReplier, replier);
        Store16Const(b, "msg", kOffCommandSize, kCommandSize);
        Store16(b, "msg", kOffCid, cid);
        Store16(b, "msg", kOffRid, rid);
        b.For(kCommandSize, [&](uint32_t i) {
            Val byte = b.ReadInput("command" + std::to_string(i), 8);
            b.Store("msg", Val::Const(8, kOffCommand + i), byte);
        });
        // Authenticators: a correct client signs for every replica; the
        // approximation writes the predefined "valid" constant.
        b.For(kNumReplicas, [&](uint32_t r) {
            Store16Const(b, "msg", kOffMac + 2 * r, kValidMac);
        });
        b.SendMessage("msg", "request");
    });
    return b.Build();
}

symexec::Program
MakeReplica(const ReplicaChecks &checks)
{
    ProgramBuilder b(checks.verify_mac ? "pbft-replica-fixed"
                                       : "pbft-replica");
    b.Function("main", {}, 0, [&] {
        b.ReceiveMessage("msg", kMessageLength);
        auto byte = [&](uint32_t off) {
            return ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, off));
        };

        // Message-type and framing checks.
        Val tag = b.Local("tag", 16, Load16(kOffTag));
        b.If(tag != Val::Const(16, kTagRequest),
             [&] { b.MarkReject("bad-tag"); });
        b.If(byte(kOffSize) != Val::Const(8, kMessageLength & 0xff),
             [&] { b.MarkReject("bad-size"); });
        b.If(byte(kOffSize + 1) !=
                 Val::Const(8, (kMessageLength >> 8) & 0xff),
             [&] { b.MarkReject("bad-size"); });
        b.If(byte(kOffSize + 2) != Val::Const(8, 0),
             [&] { b.MarkReject("bad-size"); });
        b.If(byte(kOffSize + 3) != Val::Const(8, 0),
             [&] { b.MarkReject("bad-size"); });
        // Digest (approximated constant) check.
        b.For(16, [&](uint32_t i) {
            b.If(byte(kOffDigest + i) != Val::Const(8, kDigestConst),
                 [&] { b.MarkReject("bad-digest"); });
        });
        Val csize = b.Local("csize", 16, Load16(kOffCommandSize));
        b.If(csize != Val::Const(16, kCommandSize),
             [&] { b.MarkReject("bad-command-size"); });

        // Client id must be known.
        Val cid = b.Local("cid", 16, Load16(kOffCid));
        b.If(cid >= Val::Const(16, kNumClients),
             [&] { b.MarkReject("unknown-client"); });

        // Request id recency against over-approximated local state (the
        // paper's Over-approximate Symbolic Local State mode): the
        // per-client last request id becomes an unconstrained symbolic.
        Val last_rid = b.MakeSymbolic("last_rid", 16);
        Val rid = b.Local("rid", 16, Load16(kOffRid));
        b.If(rid <= last_rid, [&] { b.MarkReject("stale-rid"); });

        // Read-only requests take the fast path (answered directly, no
        // Pre_prepare / agreement).
        Val extra = b.Local("extra", 16, Load16(kOffExtra));
        b.If((extra & kReadOnlyFlag) != Val::Const(16, 0),
             [&] { b.MarkReject("read-only-fastpath"); });

        if (checks.verify_mac) {
            // The fix: the primary verifies its own authenticator
            // before initiating agreement.
            b.For(kNumReplicas, [&](uint32_t r) {
                Val mac = Load16(kOffMac + 2 * r);
                b.If(mac != Val::Const(16, kValidMac),
                     [&] { b.MarkReject("bad-mac"); });
            });
        }
        // Vulnerability (default): the authenticators are never read.

        // Pre_prepare generation == acceptance (Section 6.1: "we
        // considered a message to be accepted when the replica
        // generates a Pre_prepare message for the client request").
        b.MarkAccept("pre-prepare");
    });
    return b.Build();
}

}  // namespace pbft
}  // namespace achilles
