// Achilles reproduction -- PBFT substrate.
//
// The client-request handling of a PBFT (Castro-Liskov) replica, as
// analyzed in Section 6 of the paper. PBFT clients send requests
// authenticated with a MAC vector (one authenticator per replica); the
// primary replica is supposed to verify its authenticator before
// initiating agreement, but the implementation does not -- the known
// "MAC attack" vulnerability [Clement et al., NSDI'09] that Achilles
// rediscovers: requests with corrupted authenticators are accepted and
// forwarded, and the backups' authenticator failures then trigger an
// expensive recovery protocol.
//
// Wire format (paper Section 6.1):
//   tag          : 2 bytes   message type (REQUEST)
//   extra        : 2 bytes   flags (bit 0: read-only)
//   size         : 4 bytes   message length
//   od           : 16 bytes  digest        (approximated: constant)
//   replier      : 2 bytes   responsible replica id
//   command_size : 2 bytes   command length
//   cid          : 2 bytes   client id
//   rid          : 2 bytes   request id
//   command      : kCommandSize bytes
//   mac0..3      : 2 bytes each, per-replica authenticators
//                  (approximated: constant == "valid MAC")

#ifndef ACHILLES_PROTO_PBFT_PBFT_PROTOCOL_H_
#define ACHILLES_PROTO_PBFT_PBFT_PROTOCOL_H_

#include <vector>

#include "core/message.h"
#include "symexec/program.h"

namespace achilles {
namespace pbft {

inline constexpr uint32_t kNumReplicas = 4;  // f = 1
inline constexpr uint32_t kNumClients = 8;
inline constexpr uint32_t kCommandSize = 4;

inline constexpr uint64_t kTagRequest = 0x0001;
inline constexpr uint64_t kReadOnlyFlag = 0x0001;
inline constexpr uint64_t kDigestConst = 0xD1;   ///< repeated od byte
inline constexpr uint64_t kValidMac = 0xA0C3;    ///< per-replica MAC

// Byte offsets.
inline constexpr uint32_t kOffTag = 0;
inline constexpr uint32_t kOffExtra = 2;
inline constexpr uint32_t kOffSize = 4;
inline constexpr uint32_t kOffDigest = 8;
inline constexpr uint32_t kOffReplier = 24;
inline constexpr uint32_t kOffCommandSize = 26;
inline constexpr uint32_t kOffCid = 28;
inline constexpr uint32_t kOffRid = 30;
inline constexpr uint32_t kOffCommand = 32;
inline constexpr uint32_t kOffMac = kOffCommand + kCommandSize;
inline constexpr uint32_t kMessageLength = kOffMac + 2 * kNumReplicas;

/** Layout; `od` is masked (approximated digest), the MACs are not. */
core::MessageLayout MakeLayout();

/** The PBFT client: one request with symbolic extra, replier, rid, cid
 *  and command (paper Section 6.1); digest and MACs are the predefined
 *  constants. */
symexec::Program MakeClient();

/** Replica front-end behavior toggles. */
struct ReplicaChecks
{
    /** Verify the primary's MAC before Pre_prepare (the fix). */
    bool verify_mac = false;
};

/**
 * The replica's request handler up to Pre_prepare generation (the
 * accept marker). Local state (per-client last request id) is
 * over-approximated with unconstrained symbolic values.
 */
symexec::Program MakeReplica(const ReplicaChecks &checks = {});

}  // namespace pbft
}  // namespace achilles

#endif  // ACHILLES_PROTO_PBFT_PBFT_PROTOCOL_H_
