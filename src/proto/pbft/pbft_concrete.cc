// Achilles reproduction -- PBFT substrate.

#include "proto/pbft/pbft_concrete.h"

#include "support/logging.h"

namespace achilles {
namespace pbft {

namespace {

uint16_t
Read16(const Bytes &msg, uint32_t off)
{
    return static_cast<uint16_t>(msg[off]) |
           (static_cast<uint16_t>(msg[off + 1]) << 8);
}

void
Write16(Bytes *msg, uint32_t off, uint16_t value)
{
    (*msg)[off] = value & 0xff;
    (*msg)[off + 1] = (value >> 8) & 0xff;
}

}  // namespace

Bytes
EncodeRequest(uint16_t cid, uint16_t rid,
              const std::vector<uint8_t> &command, uint16_t extra,
              uint16_t replier)
{
    Bytes msg(kMessageLength, 0);
    Write16(&msg, kOffTag, kTagRequest);
    Write16(&msg, kOffExtra, extra);
    msg[kOffSize] = kMessageLength & 0xff;
    msg[kOffSize + 1] = (kMessageLength >> 8) & 0xff;
    for (uint32_t i = 0; i < 16; ++i)
        msg[kOffDigest + i] = kDigestConst;
    Write16(&msg, kOffReplier, replier);
    Write16(&msg, kOffCommandSize, kCommandSize);
    Write16(&msg, kOffCid, cid);
    Write16(&msg, kOffRid, rid);
    for (uint32_t i = 0; i < kCommandSize && i < command.size(); ++i)
        msg[kOffCommand + i] = command[i];
    for (uint32_t r = 0; r < kNumReplicas; ++r)
        Write16(&msg, kOffMac + 2 * r, kValidMac);
    return msg;
}

Bytes
CorruptMac(Bytes msg, uint32_t replica, uint16_t bad_value)
{
    ACHILLES_CHECK(replica < kNumReplicas);
    Write16(&msg, kOffMac + 2 * replica, bad_value);
    return msg;
}

bool
ReplicaAccepts(const Bytes &msg, uint16_t last_rid_for_client,
               const ReplicaChecks &checks)
{
    if (msg.size() < kMessageLength)
        return false;
    if (Read16(msg, kOffTag) != kTagRequest)
        return false;
    if (msg[kOffSize] != (kMessageLength & 0xff) ||
        msg[kOffSize + 1] != ((kMessageLength >> 8) & 0xff) ||
        msg[kOffSize + 2] != 0 || msg[kOffSize + 3] != 0) {
        return false;
    }
    for (uint32_t i = 0; i < 16; ++i)
        if (msg[kOffDigest + i] != kDigestConst)
            return false;
    if (Read16(msg, kOffCommandSize) != kCommandSize)
        return false;
    if (Read16(msg, kOffCid) >= kNumClients)
        return false;
    if (Read16(msg, kOffRid) <= last_rid_for_client)
        return false;
    if (Read16(msg, kOffExtra) & kReadOnlyFlag)
        return false;  // fast path, no Pre_prepare
    if (checks.verify_mac) {
        for (uint32_t r = 0; r < kNumReplicas; ++r)
            if (Read16(msg, kOffMac + 2 * r) != kValidMac)
                return false;
    }
    return true;
}

bool
ClientCanGenerate(const Bytes &msg)
{
    if (msg.size() < kMessageLength)
        return false;
    if (Read16(msg, kOffTag) != kTagRequest)
        return false;
    if (msg[kOffSize] != (kMessageLength & 0xff) ||
        msg[kOffSize + 1] != ((kMessageLength >> 8) & 0xff) ||
        msg[kOffSize + 2] != 0 || msg[kOffSize + 3] != 0) {
        return false;
    }
    for (uint32_t i = 0; i < 16; ++i)
        if (msg[kOffDigest + i] != kDigestConst)
            return false;
    if (Read16(msg, kOffCommandSize) != kCommandSize)
        return false;
    // extra / replier / cid / rid / command are free; the
    // authenticators of a correct client are always valid.
    for (uint32_t r = 0; r < kNumReplicas; ++r)
        if (Read16(msg, kOffMac + 2 * r) != kValidMac)
            return false;
    return true;
}

bool
IsTrojan(const Bytes &msg, uint16_t last_rid_for_client,
         const ReplicaChecks &checks)
{
    return ReplicaAccepts(msg, last_rid_for_client, checks) &&
           !ClientCanGenerate(msg);
}

void
PbftCluster::Submit(const Bytes &request)
{
    const uint16_t cid = Read16(request, kOffCid);
    const uint16_t last =
        cid < kNumClients ? last_rid_[cid] : 0xffff;
    if (!ReplicaAccepts(request, last, primary_checks_)) {
        ++result_.rejected_at_primary;
        return;
    }
    last_rid_[cid] = Read16(request, kOffRid);
    // The primary generated a Pre_prepare. Backups now verify their
    // authenticators; any failure forces the expensive recovery
    // protocol (they cannot tell whether the client or the primary
    // corrupted the message).
    bool backup_mac_failure = false;
    for (uint32_t r = 1; r < kNumReplicas; ++r) {
        if (Read16(request, kOffMac + 2 * r) != kValidMac)
            backup_mac_failure = true;
    }
    if (backup_mac_failure) {
        ++result_.recoveries;
        result_.simulated_ms += costs_.recovery_ms;
        return;
    }
    ++result_.committed;
    result_.simulated_ms += costs_.agreement_ms;
}

WorkloadResult
PbftCluster::RunWorkload(uint64_t num_requests, double trojan_fraction,
                         Rng *rng)
{
    result_ = WorkloadResult{};
    uint16_t next_rid = 1;
    for (uint64_t i = 0; i < num_requests; ++i) {
        const uint16_t cid =
            static_cast<uint16_t>(rng->Below(kNumClients));
        Bytes request = EncodeRequest(
            cid, next_rid++,
            {static_cast<uint8_t>(rng->Below(256)),
             static_cast<uint8_t>(rng->Below(256)), 0, 0});
        if (rng->Chance(trojan_fraction)) {
            // Corrupt a backup's authenticator: passes the primary,
            // fails at the backup.
            request = CorruptMac(
                std::move(request),
                1 + static_cast<uint32_t>(rng->Below(kNumReplicas - 1)));
        }
        Submit(request);
        if (next_rid == 0xffff) {
            next_rid = 1;
            last_rid_.assign(kNumClients, 0);
        }
    }
    return result_;
}

}  // namespace pbft
}  // namespace achilles
