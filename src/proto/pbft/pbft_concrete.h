// Achilles reproduction -- PBFT substrate.
//
// Concrete PBFT mini-cluster: a primary plus backups executing the
// request -> Pre_prepare -> agreement pipeline with a cost model, used
// to demonstrate the impact of the MAC attack (Section 6.3): requests
// whose authenticators are corrupted pass the primary (which does not
// verify), fail at the backups, and trigger an expensive recovery
// protocol, collapsing cluster throughput.

#ifndef ACHILLES_PROTO_PBFT_PBFT_CONCRETE_H_
#define ACHILLES_PROTO_PBFT_PBFT_CONCRETE_H_

#include <cstdint>
#include <vector>

#include "proto/pbft/pbft_protocol.h"
#include "support/rng.h"

namespace achilles {
namespace pbft {

using Bytes = std::vector<uint8_t>;

/** Build a well-formed request (all authenticators valid). */
Bytes EncodeRequest(uint16_t cid, uint16_t rid,
                    const std::vector<uint8_t> &command,
                    uint16_t extra = 0, uint16_t replier = 0);

/** Corrupt one replica's authenticator (the MAC attack message). */
Bytes CorruptMac(Bytes msg, uint32_t replica, uint16_t bad_value = 0xDEAD);

// Ground-truth oracle (mirrors the symbolic models).
bool ReplicaAccepts(const Bytes &msg, uint16_t last_rid_for_client,
                    const ReplicaChecks &checks = {});
bool ClientCanGenerate(const Bytes &msg);
bool IsTrojan(const Bytes &msg, uint16_t last_rid_for_client = 0,
              const ReplicaChecks &checks = {});

/** Cost model for the cluster simulation (milliseconds). */
struct ClusterCosts
{
    double agreement_ms = 1.0;   ///< normal 3-phase commit
    double recovery_ms = 100.0;  ///< view-change / MAC-recovery protocol
};

/** Outcome of a simulated workload. */
struct WorkloadResult
{
    uint64_t committed = 0;
    uint64_t rejected_at_primary = 0;
    uint64_t recoveries = 0;
    double simulated_ms = 0.0;

    double
    ThroughputOpsPerSec() const
    {
        return simulated_ms <= 0.0 ? 0.0
                                   : committed / (simulated_ms / 1e3);
    }
};

/**
 * A 4-replica (f = 1) PBFT cluster with the MAC-attack vulnerability:
 * the primary forwards requests without verifying authenticators;
 * backups verify theirs and trigger recovery on failure.
 */
class PbftCluster
{
  public:
    explicit PbftCluster(ClusterCosts costs = {},
                         ReplicaChecks primary_checks = {})
        : costs_(costs), primary_checks_(primary_checks)
    {
    }

    /** Process one request; advances simulated time. */
    void Submit(const Bytes &request);

    /**
     * Run a workload of `num_requests` requests of which a fraction
     * `trojan_fraction` carry a corrupted authenticator (the malicious
     * client / corrupted-key scenario of Section 6.3).
     */
    WorkloadResult RunWorkload(uint64_t num_requests,
                               double trojan_fraction, Rng *rng);

    const WorkloadResult &result() const { return result_; }

  private:
    ClusterCosts costs_;
    ReplicaChecks primary_checks_;
    WorkloadResult result_;
    std::vector<uint16_t> last_rid_ =
        std::vector<uint16_t>(kNumClients, 0);
};

}  // namespace pbft
}  // namespace achilles

#endif  // ACHILLES_PROTO_PBFT_PBFT_CONCRETE_H_
