// Achilles reproduction -- protocol registry: built-in population.

#include "proto/registry.h"

#include "proto/fsp/fsp_concrete.h"
#include "proto/fsp/fsp_protocol.h"
#include "proto/paxos/paxos.h"
#include "proto/pbft/pbft_concrete.h"
#include "proto/pbft/pbft_protocol.h"
#include "proto/synth/synth_family.h"
#include "proto/toy/toy_protocol.h"

namespace achilles {
namespace proto {

namespace {

std::shared_ptr<const ProtocolFactory>
Builtin(const std::string &name, const std::string &description,
        std::function<core::MessageLayout()> layout,
        std::function<symexec::Program()> server,
        std::function<std::vector<symexec::Program>()> clients,
        ConcreteTrojanOracle oracle = nullptr)
{
    ProtocolInfo info;
    info.name = name;
    info.family = "builtin";
    info.description = description;
    return std::make_shared<LambdaProtocolFactory>(
        info, std::move(layout), std::move(server), std::move(clients),
        std::move(oracle));
}

std::function<std::vector<symexec::Program>()>
SingleClient(std::function<symexec::Program()> make)
{
    return [make = std::move(make)] {
        std::vector<symexec::Program> out;
        out.push_back(make());
        return out;
    };
}

std::shared_ptr<const ProtocolFactory>
PaxosVariant(const std::string &name, const std::string &description,
             paxos::LocalStateMode mode)
{
    return Builtin(
        name, description, [] { return paxos::MakeLayout(); },
        [mode] { return paxos::MakeAcceptor(mode); },
        SingleClient([mode] { return paxos::MakeProposer(mode); }));
}

/** Every legacy substrate, each building through exactly the code path
 *  a direct caller would use. */
void
RegisterBuiltins(ProtocolRegistry *registry)
{
    registry->Register(Builtin(
        "fsp", "FSP 2.8.1b26 file-transfer protocol (paper Section 6.1)",
        [] { return fsp::MakeLayout(); }, [] { return fsp::MakeServer(); },
        [] { return fsp::MakeAllClients(); },
        [](const std::vector<uint8_t> &msg) {
            return fsp::IsTrojan(msg);
        }));
    registry->Register(Builtin(
        "pbft", "PBFT replica request handling (MAC attack, Section 6)",
        [] { return pbft::MakeLayout(); },
        [] { return pbft::MakeReplica(); },
        SingleClient([] { return pbft::MakeClient(); }),
        [](const std::vector<uint8_t> &msg) {
            return pbft::IsTrojan(msg);
        }));
    registry->Register(Builtin(
        "toy", "Figure 2/3 read-write server (missing signed bound)",
        [] { return toy::MakeLayout(); }, [] { return toy::MakeServer(); },
        SingleClient([] { return toy::MakeClient(); })));
    registry->Register(Builtin(
        "toy-fixed", "repaired toy server (no Trojans expected)",
        [] { return toy::MakeLayout(); },
        [] { return toy::MakeFixedServer(); },
        SingleClient([] { return toy::MakeClient(); })));
    registry->Register(PaxosVariant(
        "paxos", "Paxos phase-2 acceptor, concrete local state",
        paxos::LocalStateMode::kConcrete));
    registry->Register(PaxosVariant(
        "paxos-symbolic",
        "Paxos phase-2 acceptor, constructed-symbolic local state",
        paxos::LocalStateMode::kConstructedSymbolic));
    registry->Register(PaxosVariant(
        "paxos-overapprox",
        "Paxos phase-2 acceptor, over-approximated local state",
        paxos::LocalStateMode::kOverApproximate));
}

}  // namespace

ProtocolRegistry &
ProtocolRegistry::Global()
{
    // Populated directly (not via per-TU static registrars, which a
    // static link is free to drop): first use builds the built-ins and
    // the default sampled corpus.
    static ProtocolRegistry *registry = [] {
        auto *r = new ProtocolRegistry();
        RegisterBuiltins(r);
        synth::RegisterCorpus(r, synth::DefaultCorpus());
        return r;
    }();
    return *registry;
}

}  // namespace proto
}  // namespace achilles
