// Achilles reproduction -- FSP (File Service Protocol) substrate.
//
// A faithful re-implementation of the FSP 2.8.1b26 client/server message
// handling analyzed in the paper (Section 6), at the protocol-logic
// level. FSP is a UDP file-transfer protocol whose clients emulate UNIX
// core utilities (rm, mv, cat, ...): a client parses a command-line file
// path, validates and glob-expands it, and sends a command message; the
// server parses the command and acts on its local filesystem.
//
// Wire format (paper Section 6.1):
//   cmd     : 1 byte   command code
//   sum     : 1 byte   checksum            (approximated: constant)
//   bb_key  : 2 bytes  message key         (approximated: constant)
//   bb_seq  : 2 bytes  sequence number     (approximated: constant)
//   bb_len  : 2 bytes  length of file path
//   bb_pos  : 4 bytes  block position      (approximated: constant)
//   buf     : kMaxPath+1 bytes  file path (+ room for the terminator)
//
// The two bugs the paper found are reproduced by construction of the
// same client/server asymmetry:
//   * wildcard bug -- clients glob-expand '*' before sending (and offer
//     no escape), so no correct client sends a raw '*'; the server
//     accepts any printable byte including '*'.
//   * mismatched-length bug -- clients always set bb_len to the true
//     path length; the server stops scanning at an embedded '\0' and
//     accepts messages whose true length is smaller than bb_len.

#ifndef ACHILLES_PROTO_FSP_FSP_PROTOCOL_H_
#define ACHILLES_PROTO_FSP_FSP_PROTOCOL_H_

#include <string>
#include <vector>

#include "core/message.h"
#include "symexec/program.h"

namespace achilles {
namespace fsp {

/** Maximum file path length analyzed (paper: "length less than 5"). */
inline constexpr uint32_t kMaxPath = 4;

/** FSP command codes (single-file-path utilities; real FSP values). */
enum Command : uint8_t {
    kGetDir = 0x41,
    kGetFile = 0x42,
    kDelFile = 0x45,
    kDelDir = 0x46,
    kGetPro = 0x47,
    kMakeDir = 0x49,
    kGrabFile = 0x4B,
    kStat = 0x4D,
};

/** The 8 analyzed utilities and their command codes. */
struct Utility
{
    const char *name;
    Command cmd;
};
const std::vector<Utility> &Utilities();

// Byte offsets.
inline constexpr uint32_t kOffCmd = 0;
inline constexpr uint32_t kOffSum = 1;
inline constexpr uint32_t kOffKey = 2;
inline constexpr uint32_t kOffSeq = 4;
inline constexpr uint32_t kOffLen = 6;
inline constexpr uint32_t kOffPos = 8;
inline constexpr uint32_t kOffBuf = 12;
inline constexpr uint32_t kMessageLength = kOffBuf + kMaxPath + 1;

// Approximated header constants (the paper's annotation bypass: the
// client writes a predefined constant and the server checks it).
inline constexpr uint64_t kSumConst = 0x5A;
inline constexpr uint64_t kKeyConst = 0xBEEF;
inline constexpr uint64_t kSeqConst = 0x0001;
inline constexpr uint64_t kPosConst = 0;

// Printable-character range accepted by the server.
inline constexpr uint64_t kPrintableMin = 33;
inline constexpr uint64_t kPrintableMax = 126;
inline constexpr uint64_t kWildcard = '*';

/**
 * The message layout. The approximated header fields (sum, key, seq,
 * pos) are masked; the analysis covers cmd, bb_len and the buf bytes --
 * the 8 bytes the paper calls "relevant to the Trojan messages".
 */
core::MessageLayout MakeLayout();

/** Which server-side bugs to include (for fix ablations). */
struct ServerBugs
{
    bool accept_wildcard = true;        ///< '*' accepted in paths
    bool skip_length_check = true;      ///< embedded '\0' accepted
};

// Note on trailing bytes: FSP's buf carries "file path + file data", so
// the bytes after the path are legitimately arbitrary on both sides
// (clients send whatever payload follows); they are modeled as
// unconstrained symbolic data in the client and are not a Trojan
// source.

/** Client program for one utility. */
symexec::Program MakeClient(const Utility &utility);

/** All 8 utility clients. */
std::vector<symexec::Program> MakeAllClients();

/** The FSP server request parser (with the selected bugs). */
symexec::Program MakeServer(const ServerBugs &bugs = {});

}  // namespace fsp
}  // namespace achilles

#endif  // ACHILLES_PROTO_FSP_FSP_PROTOCOL_H_
