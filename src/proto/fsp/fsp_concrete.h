// Achilles reproduction -- FSP substrate.
//
// Concrete (non-symbolic) FSP implementation: a real in-memory
// filesystem server and a utility client with client-side glob
// expansion. Used for
//   * ground truth: deciding whether a concrete message is accepted /
//     client-generatable / Trojan (Table 1 false-positive accounting,
//     fuzzing baseline),
//   * fault injection: demonstrating the impact of the discovered
//     Trojans (Section 6.3's wildcard and mismatched-length scenarios).

#ifndef ACHILLES_PROTO_FSP_FSP_CONCRETE_H_
#define ACHILLES_PROTO_FSP_FSP_CONCRETE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "proto/fsp/fsp_protocol.h"

namespace achilles {
namespace fsp {

/** A concrete wire message. */
using Bytes = std::vector<uint8_t>;

/** Build a well-formed message the way a correct client would. */
Bytes EncodeMessage(Command cmd, const std::string &path);

/** Craft a message with an arbitrary bb_len (for fault injection). */
Bytes EncodeRawMessage(uint8_t cmd, uint16_t bb_len,
                       const std::string &buf);

// ---------------------------------------------------------------------
// Ground truth oracle
// ---------------------------------------------------------------------

/** Would the (buggy) FSP server accept this message? */
bool ServerAccepts(const Bytes &msg, const ServerBugs &bugs = {});

/** Could any correct client utility generate this message? */
bool ClientCanGenerate(const Bytes &msg);

/** Trojan == accepted but not generatable. */
inline bool
IsTrojan(const Bytes &msg, const ServerBugs &bugs = {})
{
    return ServerAccepts(msg, bugs) && !ClientCanGenerate(msg);
}

/**
 * Classify a Trojan into the paper's known-type space:
 * (cmd, reported length, true length) with true < reported. Returns
 * nullopt for Trojans outside that family (e.g. wildcard messages).
 */
struct LengthTrojanType
{
    uint8_t cmd = 0;
    uint16_t reported_len = 0;
    uint16_t true_len = 0;

    bool
    operator<(const LengthTrojanType &o) const
    {
        if (cmd != o.cmd)
            return cmd < o.cmd;
        if (reported_len != o.reported_len)
            return reported_len < o.reported_len;
        return true_len < o.true_len;
    }
    bool
    operator==(const LengthTrojanType &o) const
    {
        return cmd == o.cmd && reported_len == o.reported_len &&
               true_len == o.true_len;
    }
};
std::optional<LengthTrojanType> ClassifyLengthTrojan(const Bytes &msg);

/** All (1+2+3+4)*8 == 80 known length-mismatch Trojan types. */
std::vector<LengthTrojanType> AllKnownLengthTrojanTypes();

/** Does the message contain a wildcard in its effective path? */
bool IsWildcardTrojan(const Bytes &msg);

// ---------------------------------------------------------------------
// Concrete server (in-memory filesystem)
// ---------------------------------------------------------------------

/** Result of handling one message on the concrete server. */
struct HandleResult
{
    bool accepted = false;
    std::string action;  ///< what the server did (for logs/tests)
};

/**
 * The concrete FSP server: an in-memory filesystem keyed by path.
 * Handles the same command set as the symbolic model and exhibits the
 * same two bugs.
 */
class FspServer
{
  public:
    explicit FspServer(ServerBugs bugs = {}) : bugs_(bugs) {}

    HandleResult Handle(const Bytes &msg);

    /** Direct filesystem access for tests / scenario setup. */
    void CreateFile(const std::string &path, const std::string &content)
    {
        files_[path] = content;
    }

    /**
     * Rename operation (the target of the utilities' `fmv`). Like the
     * real server, the names are treated literally -- '*' is a regular
     * character. Renaming onto an existing name overwrites it.
     */
    bool
    RenameFile(const std::string &src, const std::string &dst)
    {
        auto it = files_.find(src);
        if (it == files_.end())
            return false;
        files_[dst] = it->second;
        files_.erase(it);
        return true;
    }
    bool HasFile(const std::string &path) const
    {
        return files_.count(path) != 0;
    }
    std::vector<std::string> ListFiles() const;
    size_t FileCount() const { return files_.size(); }

  private:
    ServerBugs bugs_;
    std::map<std::string, std::string> files_;
};

// ---------------------------------------------------------------------
// Concrete client (with client-side globbing)
// ---------------------------------------------------------------------

/**
 * The concrete FSP utility client. Mirrors the utilities' behavior:
 * validates the argument, expands '*' patterns against the server's
 * listing (client-side globbing, no escaping possible), and sends one
 * message per expanded path.
 */
class FspClient
{
  public:
    explicit FspClient(FspServer *server) : server_(server) {}

    /**
     * Run a utility on an argument. Returns the concrete messages that
     * were sent (empty when validation fails or the glob matches
     * nothing).
     */
    std::vector<Bytes> Run(Command cmd, const std::string &arg);

    /**
     * The `fmv` utility (paper Section 6.3): the *source* pattern is
     * glob-expanded client-side, the *destination* is taken literally
     * ("destination file paths are not globbed"). `mv file1* file2*`
     * therefore renames every match of `file1*` to the literal string
     * `file2*`, destroying all but one of the originals. Returns the
     * number of renames performed.
     */
    size_t RunRename(const std::string &src_arg,
                     const std::string &dst_arg);

    /** Glob matching helper ('*' matches any character sequence). */
    static bool GlobMatch(const std::string &pattern,
                          const std::string &name);

  private:
    FspServer *server_;
};

}  // namespace fsp
}  // namespace achilles

#endif  // ACHILLES_PROTO_FSP_FSP_CONCRETE_H_
