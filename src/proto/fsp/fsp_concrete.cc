// Achilles reproduction -- FSP substrate.

#include "proto/fsp/fsp_concrete.h"

#include <algorithm>

#include "support/logging.h"

namespace achilles {
namespace fsp {

namespace {

bool
IsKnownCommand(uint8_t cmd)
{
    for (const Utility &u : Utilities())
        if (u.cmd == cmd)
            return true;
    return false;
}

bool
IsPrintable(uint8_t c)
{
    return c >= kPrintableMin && c <= kPrintableMax;
}

uint16_t
ReadLen(const Bytes &msg)
{
    return static_cast<uint16_t>(msg[kOffLen]) |
           (static_cast<uint16_t>(msg[kOffLen + 1]) << 8);
}

/** Path bytes up to the first NUL within bb_len. */
std::string
EffectivePath(const Bytes &msg)
{
    const uint16_t len = std::min<uint16_t>(ReadLen(msg), kMaxPath);
    std::string path;
    for (uint16_t i = 0; i < len; ++i) {
        const uint8_t c = msg[kOffBuf + i];
        if (c == 0)
            break;
        path.push_back(static_cast<char>(c));
    }
    return path;
}

}  // namespace

Bytes
EncodeMessage(Command cmd, const std::string &path)
{
    return EncodeRawMessage(cmd, static_cast<uint16_t>(path.size()), path);
}

Bytes
EncodeRawMessage(uint8_t cmd, uint16_t bb_len, const std::string &buf)
{
    Bytes msg(kMessageLength, 0);
    msg[kOffCmd] = cmd;
    msg[kOffSum] = kSumConst;
    msg[kOffKey] = kKeyConst & 0xff;
    msg[kOffKey + 1] = (kKeyConst >> 8) & 0xff;
    msg[kOffSeq] = kSeqConst & 0xff;
    msg[kOffSeq + 1] = (kSeqConst >> 8) & 0xff;
    msg[kOffLen] = bb_len & 0xff;
    msg[kOffLen + 1] = (bb_len >> 8) & 0xff;
    for (size_t i = 0; i < buf.size() && i <= kMaxPath; ++i)
        msg[kOffBuf + i] = static_cast<uint8_t>(buf[i]);
    return msg;
}

bool
ServerAccepts(const Bytes &msg, const ServerBugs &bugs)
{
    if (msg.size() < kMessageLength)
        return false;
    if (msg[kOffSum] != kSumConst)
        return false;
    if (msg[kOffKey] != (kKeyConst & 0xff) ||
        msg[kOffKey + 1] != ((kKeyConst >> 8) & 0xff)) {
        return false;
    }
    if (msg[kOffSeq] != (kSeqConst & 0xff) ||
        msg[kOffSeq + 1] != ((kSeqConst >> 8) & 0xff)) {
        return false;
    }
    for (uint32_t i = 0; i < 4; ++i)
        if (msg[kOffPos + i] != 0)
            return false;
    if (!IsKnownCommand(msg[kOffCmd]))
        return false;
    const uint16_t len = ReadLen(msg);
    if (len == 0 || len > kMaxPath)
        return false;
    for (uint16_t i = 0; i < len; ++i) {
        const uint8_t c = msg[kOffBuf + i];
        if (c == 0) {
            // Embedded terminator: true length < bb_len.
            return bugs.skip_length_check;
        }
        if (!IsPrintable(c))
            return false;
        if (c == kWildcard && !bugs.accept_wildcard)
            return false;
    }
    return true;
}

bool
ClientCanGenerate(const Bytes &msg)
{
    if (msg.size() < kMessageLength)
        return false;
    if (!IsKnownCommand(msg[kOffCmd]))
        return false;
    if (msg[kOffSum] != kSumConst)
        return false;
    if (msg[kOffKey] != (kKeyConst & 0xff) ||
        msg[kOffKey + 1] != ((kKeyConst >> 8) & 0xff)) {
        return false;
    }
    if (msg[kOffSeq] != (kSeqConst & 0xff) ||
        msg[kOffSeq + 1] != ((kSeqConst >> 8) & 0xff)) {
        return false;
    }
    for (uint32_t i = 0; i < 4; ++i)
        if (msg[kOffPos + i] != 0)
            return false;
    const uint16_t len = ReadLen(msg);
    if (len == 0 || len > kMaxPath)
        return false;
    // The first `len` bytes must be printable, non-wildcard, non-NUL;
    // the remainder of the buffer is file payload and unconstrained.
    for (uint16_t i = 0; i < len; ++i) {
        const uint8_t c = msg[kOffBuf + i];
        if (c == 0 || !IsPrintable(c) || c == kWildcard)
            return false;
    }
    return true;
}

std::optional<LengthTrojanType>
ClassifyLengthTrojan(const Bytes &msg)
{
    if (!IsTrojan(msg))
        return std::nullopt;
    const uint16_t len = ReadLen(msg);
    uint16_t true_len = 0;
    while (true_len < len && msg[kOffBuf + true_len] != 0)
        ++true_len;
    if (true_len >= len)
        return std::nullopt;  // not a length-mismatch Trojan
    return LengthTrojanType{msg[kOffCmd], len, true_len};
}

std::vector<LengthTrojanType>
AllKnownLengthTrojanTypes()
{
    std::vector<LengthTrojanType> all;
    for (const Utility &u : Utilities())
        for (uint16_t reported = 1; reported <= kMaxPath; ++reported)
            for (uint16_t true_len = 0; true_len < reported; ++true_len)
                all.push_back(LengthTrojanType{u.cmd, reported, true_len});
    return all;
}

bool
IsWildcardTrojan(const Bytes &msg)
{
    if (!IsTrojan(msg))
        return false;
    const std::string path = EffectivePath(msg);
    return path.find('*') != std::string::npos;
}

std::vector<std::string>
FspServer::ListFiles() const
{
    std::vector<std::string> names;
    names.reserve(files_.size());
    for (const auto &[name, content] : files_)
        names.push_back(name);
    return names;
}

HandleResult
FspServer::Handle(const Bytes &msg)
{
    HandleResult result;
    if (!ServerAccepts(msg, bugs_))
        return result;
    result.accepted = true;
    const std::string path = EffectivePath(msg);
    switch (msg[kOffCmd]) {
      case kGetFile:
      case kGrabFile:
      case kGetDir:
      case kGetPro:
      case kStat:
        result.action = "read " + path;
        break;
      case kDelFile:
      case kDelDir:
        // The server treats '*' like any regular character: it deletes
        // exactly the named file (no server-side globbing).
        if (files_.erase(path) > 0)
            result.action = "deleted " + path;
        else
            result.action = "missing " + path;
        break;
      case kMakeDir:
        files_[path] = "";
        result.action = "created " + path;
        break;
      default:
        result.action = "noop";
        break;
    }
    return result;
}

bool
FspClient::GlobMatch(const std::string &pattern, const std::string &name)
{
    // Classic recursive '*' matcher (no escaping -- the FSP bug).
    size_t p = 0, n = 0, star = std::string::npos, match = 0;
    while (n < name.size()) {
        if (p < pattern.size() &&
            (pattern[p] == name[n])) {
            ++p;
            ++n;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            match = n;
        } else if (star != std::string::npos) {
            p = star + 1;
            n = ++match;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

size_t
FspClient::RunRename(const std::string &src_arg,
                     const std::string &dst_arg)
{
    if (src_arg.empty() || dst_arg.empty())
        return 0;
    std::vector<std::string> sources;
    if (src_arg.find('*') != std::string::npos) {
        for (const std::string &name : server_->ListFiles())
            if (GlobMatch(src_arg, name))
                sources.push_back(name);
    } else {
        sources.push_back(src_arg);
    }
    // The destination is literal -- no expansion, no escaping.
    size_t renamed = 0;
    for (const std::string &src : sources)
        renamed += server_->RenameFile(src, dst_arg) ? 1 : 0;
    return renamed;
}

std::vector<Bytes>
FspClient::Run(Command cmd, const std::string &arg)
{
    std::vector<Bytes> sent;
    if (arg.empty() || arg.size() > kMaxPath)
        return sent;
    for (char c : arg) {
        if (!IsPrintable(static_cast<uint8_t>(c)))
            return sent;
    }
    std::vector<std::string> paths;
    if (arg.find('*') != std::string::npos) {
        // Client-side glob expansion against the server listing; the
        // raw pattern is never sent. There is no way to escape '*'.
        for (const std::string &name : server_->ListFiles())
            if (GlobMatch(arg, name))
                paths.push_back(name);
    } else {
        paths.push_back(arg);
    }
    for (const std::string &path : paths) {
        if (path.size() > kMaxPath)
            continue;
        Bytes msg = EncodeMessage(cmd, path);
        server_->Handle(msg);
        sent.push_back(std::move(msg));
    }
    return sent;
}

}  // namespace fsp
}  // namespace achilles
