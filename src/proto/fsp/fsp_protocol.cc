// Achilles reproduction -- FSP substrate.

#include "proto/fsp/fsp_protocol.h"

namespace achilles {
namespace fsp {

using symexec::ProgramBuilder;
using symexec::Val;

const std::vector<Utility> &
Utilities()
{
    static const std::vector<Utility> utilities = {
        {"fls", kGetDir},      {"fget", kGetFile}, {"frm", kDelFile},
        {"frmdir", kDelDir},   {"fgetpro", kGetPro}, {"fmkdir", kMakeDir},
        {"fgrab", kGrabFile},  {"fstat", kStat},
    };
    return utilities;
}

core::MessageLayout
MakeLayout()
{
    core::MessageLayout layout(kMessageLength);
    layout.AddField("cmd", kOffCmd, 1)
        .AddField("sum", kOffSum, 1)
        .AddField("bb_key", kOffKey, 2)
        .AddField("bb_seq", kOffSeq, 2)
        .AddField("bb_len", kOffLen, 2)
        .AddField("bb_pos", kOffPos, 4);
    for (uint32_t i = 0; i <= kMaxPath; ++i) {
        layout.AddField("buf" + std::to_string(i), kOffBuf + i, 1);
    }
    // The approximated fields are masked (paper Section 6.1): the client
    // writes constants and the server checks them; they carry no Trojan
    // signal and masking them keeps the solver queries small.
    layout.Mask("sum").Mask("bb_key").Mask("bb_seq").Mask("bb_pos");
    return layout;
}

symexec::Program
MakeClient(const Utility &utility)
{
    ProgramBuilder b(std::string("fsp-") + utility.name);
    b.Function("main", {}, 0, [&] {
        // The command-line argument: kMaxPath symbolic characters (the
        // fixed-length symbolic argv of Section 6.1).
        b.Array("arg", 8, kMaxPath);
        b.For(kMaxPath, [&](uint32_t i) {
            Val c = b.ReadInput("arg" + std::to_string(i), 8);
            b.Store("arg", Val::Const(8, i), c);
        });

        // Parse + validate the path the way the FSP utilities do:
        //  * stop at the terminating '\0'
        //  * only printable characters are legal in a path
        //  * a '*' triggers client-side glob expansion -- the raw
        //    pattern is never sent (and there is no escape), so paths
        //    containing '*' never leave a correct client. Expansion
        //    yields concrete '*'-free paths, which are covered by other
        //    assignments of this same symbolic argument; the path with
        //    the raw wildcard is simply not sent.
        b.Array("buf", 8, kMaxPath + 1);
        Val done = b.Local("done", 1, Val::Const(1, 0));
        Val len = b.Local("len", 16, Val::Const(16, 0));
        b.For(kMaxPath, [&](uint32_t i) {
            Val c = ProgramBuilder::ArrayAt("arg", 8, Val::Const(8, i));
            b.If(done == Val::Const(1, 0), [&] {
                b.If(
                    c == Val::Const(8, 0), [&] {
                        b.Assign(done, Val::Const(1, 1));
                    },
                    [&] {
                        b.If(c < kPrintableMin, [&] { b.Halt(); });
                        b.If(c > kPrintableMax, [&] { b.Halt(); });
                        b.If(c == kWildcard, [&] { b.Halt(); });
                        b.Store("buf", Val::Const(8, i), c);
                        b.Assign(len, len + Val::Const(16, 1));
                    });
            });
        });
        // Empty paths are rejected client-side (usage error).
        b.If(len == Val::Const(16, 0), [&] { b.Halt(); });

        // Assemble the command message. bb_len always equals the true
        // path length -- the invariant the server fails to re-check.
        b.Array("msg", 8, kMessageLength);
        b.Store("msg", Val::Const(8, kOffCmd),
                Val::Const(8, utility.cmd));
        b.Store("msg", Val::Const(8, kOffSum), Val::Const(8, kSumConst));
        b.Store("msg", Val::Const(8, kOffKey),
                Val::Const(8, kKeyConst & 0xff));
        b.Store("msg", Val::Const(8, kOffKey + 1),
                Val::Const(8, (kKeyConst >> 8) & 0xff));
        b.Store("msg", Val::Const(8, kOffSeq),
                Val::Const(8, kSeqConst & 0xff));
        b.Store("msg", Val::Const(8, kOffSeq + 1),
                Val::Const(8, (kSeqConst >> 8) & 0xff));
        b.Store("msg", Val::Const(8, kOffLen), len.Extract(0, 8));
        b.Store("msg", Val::Const(8, kOffLen + 1), len.Extract(8, 8));
        b.For(4, [&](uint32_t i) {
            b.Store("msg", Val::Const(8, kOffPos + i), Val::Const(8, 0));
        });
        // Path characters, then the terminator, then payload: the bytes
        // after the path carry file data in FSP and are arbitrary.
        // (`len` is concrete on each forked path, so these Ifs do not
        // fork.)
        b.For(kMaxPath + 1, [&](uint32_t i) {
            b.If(
                Val::Const(16, i) < len,
                [&] {
                    b.Store("msg", Val::Const(8, kOffBuf + i),
                            ProgramBuilder::ArrayAt(
                                "buf", 8, Val::Const(8, i)));
                },
                [&] {
                    Val data = b.MakeSymbolic(
                        "payload" + std::to_string(i), 8);
                    b.Store("msg", Val::Const(8, kOffBuf + i), data);
                });
        });
        b.SendMessage("msg", utility.name);
    });
    return b.Build();
}

std::vector<symexec::Program>
MakeAllClients()
{
    std::vector<symexec::Program> clients;
    clients.reserve(Utilities().size());
    for (const Utility &u : Utilities())
        clients.push_back(MakeClient(u));
    return clients;
}

symexec::Program
MakeServer(const ServerBugs &bugs)
{
    ProgramBuilder b("fsp-server");
    b.Function("main", {}, 0, [&] {
        b.ReceiveMessage("msg", kMessageLength);
        auto byte = [&](uint32_t off) {
            return ProgramBuilder::ArrayAt("msg", 8, Val::Const(8, off));
        };

        // Approximated header checks (annotation bypass): sum, key,
        // seq, pos must equal the predefined constants.
        b.If(byte(kOffSum) != Val::Const(8, kSumConst),
             [&] { b.MarkReject("bad-sum"); });
        b.If(byte(kOffKey) != Val::Const(8, kKeyConst & 0xff),
             [&] { b.MarkReject("bad-key"); });
        b.If(byte(kOffKey + 1) != Val::Const(8, (kKeyConst >> 8) & 0xff),
             [&] { b.MarkReject("bad-key"); });
        b.If(byte(kOffSeq) != Val::Const(8, kSeqConst & 0xff),
             [&] { b.MarkReject("bad-seq"); });
        b.If(byte(kOffSeq + 1) != Val::Const(8, (kSeqConst >> 8) & 0xff),
             [&] { b.MarkReject("bad-seq"); });
        b.For(4, [&](uint32_t i) {
            b.If(byte(kOffPos + i) != Val::Const(8, 0),
                 [&] { b.MarkReject("bad-pos"); });
        });

        // Command dispatch: unknown commands are discarded.
        Val cmd = b.Local("cmd", 8, byte(kOffCmd));
        Val known = b.Local("known", 1, Val::Const(1, 0));
        for (const Utility &u : Utilities()) {
            b.If(cmd == u.cmd,
                 [&] { b.Assign(known, Val::Const(1, 1)); });
        }
        b.If(known == Val::Const(1, 0), [&] { b.MarkReject("bad-cmd"); });

        // Path length: reassemble bb_len (little-endian).
        Val high = byte(kOffLen + 1);
        Val len = b.Local("len", 16, high.Concat(byte(kOffLen)));
        b.If(len == Val::Const(16, 0), [&] { b.MarkReject("empty"); });
        b.If(len > Val::Const(16, kMaxPath),
             [&] { b.MarkReject("too-long"); });

        // Scan the path. The server stops at an embedded '\0'
        // (accepting the message even though its true length is shorter
        // than bb_len -- the mismatched-length bug) and accepts every
        // printable character including '*' (the wildcard bug).
        Val done = b.Local("done", 1, Val::Const(1, 0));
        b.For(kMaxPath, [&](uint32_t i) {
            b.If(Val::Const(16, i) < len, [&] {
                b.If(done == Val::Const(1, 0), [&] {
                    Val c = byte(kOffBuf + i);
                    b.If(
                        c == Val::Const(8, 0),
                        [&] {
                            if (bugs.skip_length_check) {
                                // Bug: treat the early NUL as end of
                                // path and keep going.
                                b.Assign(done, Val::Const(1, 1));
                            } else {
                                b.MarkReject("short-path");
                            }
                        },
                        [&] {
                            b.If(c < kPrintableMin,
                                 [&] { b.MarkReject("unprintable"); });
                            b.If(c > kPrintableMax,
                                 [&] { b.MarkReject("unprintable"); });
                            if (!bugs.accept_wildcard) {
                                b.If(c == kWildcard, [&] {
                                    b.MarkReject("wildcard");
                                });
                            }
                        });
                });
            });
        });

        // The request passed parsing; the server now performs the
        // filesystem action -- the accept point of Section 6.1 ("we set
        // accept markers at the point where it invokes system calls to
        // make changes to its local file system").
        b.MarkAccept("fs-syscall");
    });
    return b.Build();
}

}  // namespace fsp
}  // namespace achilles
