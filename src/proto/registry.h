// Achilles reproduction -- protocol registry.
//
// The declarative protocol frontier's unification layer: every protocol
// substrate -- the four hand-built legacy ones (FSP, PBFT, Paxos, toy),
// wire-format specs compiled by src/proto/spec/, and the seeded
// synthetic families of src/proto/synth/ -- is published as a
// ProtocolFactory in one name-keyed registry. Consumers (achilles_cli,
// the benches, tests) resolve protocols by name and receive a
// materialized ProtocolBundle; adding a protocol never touches a
// consumer again.
//
// Factories are builders, not caches: every Make*() call constructs
// fresh Program/MessageLayout objects through exactly the code path a
// direct caller would use, so a registry-resolved pipeline run is
// bitwise-identical (witness definitions and concrete bytes) to a
// hand-wired one (tests/test_proto_registry.cc gates this per
// substrate).

#ifndef ACHILLES_PROTO_REGISTRY_H_
#define ACHILLES_PROTO_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/message.h"
#include "symexec/program.h"

namespace achilles {
namespace proto {

/** Registry metadata for one protocol. */
struct ProtocolInfo
{
    /** Registry key, e.g. "fsp", "kv_union", "synth/d2.f2.c75.v25/s3". */
    std::string name;
    /**
     * Grouping key for corpus aggregation: "builtin" for the legacy
     * substrates, "spec" for wire-format-compiled protocols, and
     * "synth/<cell>" for sampled families (every seed of a cell shares
     * the family string, so per-family yield metrics aggregate over
     * seeds).
     */
    std::string family;
    std::string description;
};

/**
 * A materialized protocol: owns the layout and programs so they outlive
 * the pipeline run (AchillesConfig stores raw pointers).
 */
struct ProtocolBundle
{
    ProtocolInfo info;
    core::MessageLayout layout;
    symexec::Program server;
    std::vector<symexec::Program> clients;

    /** Client pointer view in AchillesConfig's shape. */
    std::vector<const symexec::Program *>
    ClientPtrs() const
    {
        std::vector<const symexec::Program *> out;
        out.reserve(clients.size());
        for (const symexec::Program &c : clients)
            out.push_back(&c);
        return out;
    }
};

/**
 * Ground-truth classifier over concrete wire messages ("is this exact
 * byte string a Trojan?"), backed by a protocol's concrete counterpart
 * implementation where one exists (fsp_concrete / pbft_concrete). Null
 * when the protocol has no concrete oracle.
 */
using ConcreteTrojanOracle =
    std::function<bool(const std::vector<uint8_t> &)>;

/**
 * Builder interface for one protocol. Implementations must be
 * stateless: repeated Make*() calls return structurally identical
 * objects, and nothing is shared between calls (each pipeline run gets
 * private Program copies).
 */
class ProtocolFactory
{
  public:
    virtual ~ProtocolFactory() = default;

    virtual const ProtocolInfo &info() const = 0;
    virtual core::MessageLayout MakeLayout() const = 0;
    virtual symexec::Program MakeServer() const = 0;
    virtual std::vector<symexec::Program> MakeAllClients() const = 0;

    /** Concrete-counterpart ground truth; default: none. */
    virtual ConcreteTrojanOracle
    MakeConcreteOracle() const
    {
        return nullptr;
    }

    /** Materialize everything into one owning bundle. */
    ProtocolBundle
    Make() const
    {
        ProtocolBundle bundle;
        bundle.info = info();
        bundle.layout = MakeLayout();
        bundle.server = MakeServer();
        bundle.clients = MakeAllClients();
        return bundle;
    }
};

/** Factory over std::function hooks (the common registration shape). */
class LambdaProtocolFactory : public ProtocolFactory
{
  public:
    LambdaProtocolFactory(
        ProtocolInfo info, std::function<core::MessageLayout()> layout,
        std::function<symexec::Program()> server,
        std::function<std::vector<symexec::Program>()> clients,
        ConcreteTrojanOracle oracle = nullptr)
        : info_(std::move(info)), layout_(std::move(layout)),
          server_(std::move(server)), clients_(std::move(clients)),
          oracle_(std::move(oracle))
    {
        ACHILLES_CHECK(!info_.name.empty(), "protocol with empty name");
        ACHILLES_CHECK(layout_ && server_ && clients_,
                       "incomplete factory for ", info_.name);
    }

    const ProtocolInfo &info() const override { return info_; }
    core::MessageLayout MakeLayout() const override { return layout_(); }
    symexec::Program MakeServer() const override { return server_(); }
    std::vector<symexec::Program>
    MakeAllClients() const override
    {
        return clients_();
    }
    ConcreteTrojanOracle
    MakeConcreteOracle() const override
    {
        return oracle_;
    }

  private:
    ProtocolInfo info_;
    std::function<core::MessageLayout()> layout_;
    std::function<symexec::Program()> server_;
    std::function<std::vector<symexec::Program>()> clients_;
    ConcreteTrojanOracle oracle_;
};

/**
 * Name-keyed protocol registry. Thread-safe; factories are immutable
 * once registered. Global() carries every built-in substrate plus the
 * default synthetic corpus; wire-format specs join at load time
 * (spec::RegisterSpecFile / spec::RegisterSpecText).
 */
class ProtocolRegistry
{
  public:
    ProtocolRegistry() = default;
    ProtocolRegistry(const ProtocolRegistry &) = delete;
    ProtocolRegistry &operator=(const ProtocolRegistry &) = delete;

    /**
     * The process-wide registry, populated on first use with the four
     * legacy substrates (plus their fixed/mode variants) and the
     * default synthetic corpus (synth::DefaultCorpus).
     */
    static ProtocolRegistry &Global();

    /** Register a factory; the name must be free. */
    void
    Register(std::shared_ptr<const ProtocolFactory> factory)
    {
        ACHILLES_CHECK(factory != nullptr, "null factory");
        std::lock_guard<std::mutex> lock(mu_);
        const std::string &name = factory->info().name;
        ACHILLES_CHECK(factories_.emplace(name, std::move(factory)).second,
                       "duplicate protocol registration: ", name);
    }

    /** Register, replacing any same-name entry (spec file reloads). */
    void
    RegisterOrReplace(std::shared_ptr<const ProtocolFactory> factory)
    {
        ACHILLES_CHECK(factory != nullptr, "null factory");
        std::lock_guard<std::mutex> lock(mu_);
        factories_[factory->info().name] = std::move(factory);
    }

    /** Factory by name, or nullptr. The pointer lives as long as the
     *  registry entry does (entries are never removed). */
    std::shared_ptr<const ProtocolFactory>
    Find(const std::string &name) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = factories_.find(name);
        return it == factories_.end() ? nullptr : it->second;
    }

    bool Has(const std::string &name) const { return Find(name) != nullptr; }

    /** All registered names, sorted. */
    std::vector<std::string>
    Names() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::vector<std::string> out;
        out.reserve(factories_.size());
        for (const auto &[name, factory] : factories_)
            out.push_back(name);
        return out;
    }

    /** All factories, name-sorted. */
    std::vector<std::shared_ptr<const ProtocolFactory>>
    All() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::vector<std::shared_ptr<const ProtocolFactory>> out;
        out.reserve(factories_.size());
        for (const auto &[name, factory] : factories_)
            out.push_back(factory);
        return out;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return factories_.size();
    }

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::shared_ptr<const ProtocolFactory>>
        factories_;
};

}  // namespace proto
}  // namespace achilles

#endif  // ACHILLES_PROTO_REGISTRY_H_
