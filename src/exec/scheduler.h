// Achilles reproduction -- parallel exploration subsystem.
//
// Work-stealing state scheduler. Each worker owns a deque of pending
// execution states and serves itself from it under the configured
// search order (DFS from the back, BFS from the front, or seeded
// random), exactly mirroring the serial engine's PopNext policy. An
// idle worker steals the older half of a victim's deque -- the
// shallowest states, i.e. the biggest unexplored subtrees -- which is
// the classic policy that keeps steals rare and batches large
// (Cilk-style steal-half, as used by Cloud9's tree-partitioned
// exploration).
//
// Termination detection is a single atomic count of live (unfinished)
// states: seeded and forked states increment it, finished states
// decrement it; when it reaches zero every blocked worker is released
// and Next() returns false.

#ifndef ACHILLES_EXEC_SCHEDULER_H_
#define ACHILLES_EXEC_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "support/rng.h"
#include "support/stats.h"
#include "symexec/engine.h"
#include "symexec/state.h"

namespace achilles {
namespace exec {

/** Scheduler tunables. */
struct SchedulerConfig
{
    size_t num_workers = 1;
    symexec::SearchOrder order = symexec::SearchOrder::kDfs;
    uint64_t random_seed = 1;
    /** Global bound on queued states (mirrors EngineConfig::max_states). */
    size_t max_queued_states = 1 << 20;
};

/** Per-worker deques with steal-half load balancing. */
class WorkStealingScheduler
{
  public:
    explicit WorkStealingScheduler(const SchedulerConfig &config);
    WorkStealingScheduler(const WorkStealingScheduler &) = delete;
    WorkStealingScheduler &operator=(const WorkStealingScheduler &) =
        delete;

    /**
     * One scheduling decision: either a single state popped from the
     * worker's own deque (owner == the worker) or a stolen batch still
     * expressed in the victim's ExprContext (owner == the victim); the
     * thief must re-home the batch before executing it.
     */
    struct Batch
    {
        std::vector<std::unique_ptr<symexec::State>> states;
        size_t owner = 0;
    };

    /** Enqueue the root state (counts as live). */
    void Seed(size_t worker, std::unique_ptr<symexec::State> state);

    /**
     * Enqueue `*state` on `worker`'s deque. `fresh` marks a newly forked
     * state (counted live, subject to the queued-state budget); re-queued
     * suspended or stolen states pass false and always succeed. Returns
     * false -- leaving `*state` untouched -- when the budget rejects a
     * fresh state; the caller then finalizes it as a limit path, like
     * the serial engine does.
     */
    bool Push(size_t worker, std::unique_ptr<symexec::State> *state,
              bool fresh);

    /**
     * Produce work for `worker`: local pop, else steal, else block until
     * work appears or the exploration completes. Returns false when all
     * states are finished or Stop() was called.
     */
    bool Next(size_t worker, Batch *out);

    /** A state previously counted live has finished. */
    void OnStateFinished();

    /** Abort the exploration (e.g. global path cap reached). */
    void Stop();
    bool stopped() const { return stop_.load(std::memory_order_acquire); }

    int64_t states_stolen() const
    {
        return stolen_.load(std::memory_order_relaxed);
    }
    int64_t steal_batches() const
    {
        return steal_batches_.load(std::memory_order_relaxed);
    }
    size_t queued() const
    {
        return queued_.load(std::memory_order_relaxed);
    }

    /** Export scheduler counters into a registry. */
    void ExportStats(StatsRegistry *stats) const;

  private:
    struct WorkerDeque
    {
        std::mutex mutex;
        std::deque<std::unique_ptr<symexec::State>> states;
    };

    bool PopLocal(size_t worker, Batch *out);
    bool StealFrom(size_t thief, Batch *out);

    SchedulerConfig config_;
    std::vector<std::unique_ptr<WorkerDeque>> deques_;
    std::vector<Rng> rngs_;  ///< per-worker, used only by its owner
    std::atomic<int64_t> live_{0};
    std::atomic<size_t> queued_{0};
    std::atomic<bool> stop_{false};
    std::atomic<int64_t> stolen_{0};
    std::atomic<int64_t> steal_batches_{0};
    std::mutex wait_mutex_;
    std::condition_variable wait_cv_;
};

}  // namespace exec
}  // namespace achilles

#endif  // ACHILLES_EXEC_SCHEDULER_H_
