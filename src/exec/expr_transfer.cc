// Achilles reproduction -- parallel exploration subsystem.

#include "exec/expr_transfer.h"

#include <string>

#include "support/logging.h"

namespace achilles {
namespace exec {

namespace {

/** Strip the "!id" uniquifier FreshVar appends, to reuse as a base. */
std::string
VarBaseName(const std::string &name)
{
    const size_t bang = name.rfind('!');
    return bang == std::string::npos ? name : name.substr(0, bang);
}

/** Rebuild one node in `dst` from translated kids (non-leaf, non-var). */
smt::ExprRef
Rebuild(smt::ExprContext *dst, smt::ExprRef e,
        const std::vector<smt::ExprRef> &kids)
{
    using smt::Kind;
    switch (e->kind()) {
      case Kind::kConst: return dst->MakeConst(e->width(), e->aux());
      case Kind::kAdd: return dst->MakeAdd(kids[0], kids[1]);
      case Kind::kSub: return dst->MakeSub(kids[0], kids[1]);
      case Kind::kMul: return dst->MakeMul(kids[0], kids[1]);
      case Kind::kUDiv: return dst->MakeUDiv(kids[0], kids[1]);
      case Kind::kURem: return dst->MakeURem(kids[0], kids[1]);
      case Kind::kAnd: return dst->MakeAnd(kids[0], kids[1]);
      case Kind::kOr: return dst->MakeOr(kids[0], kids[1]);
      case Kind::kXor: return dst->MakeXor(kids[0], kids[1]);
      case Kind::kNot: return dst->MakeNot(kids[0]);
      case Kind::kShl: return dst->MakeShl(kids[0], kids[1]);
      case Kind::kLShr: return dst->MakeLShr(kids[0], kids[1]);
      case Kind::kAShr: return dst->MakeAShr(kids[0], kids[1]);
      case Kind::kConcat: return dst->MakeConcat(kids[0], kids[1]);
      case Kind::kExtract:
        return dst->MakeExtract(kids[0],
                                static_cast<uint32_t>(e->aux()),
                                e->width());
      case Kind::kZExt: return dst->MakeZExt(kids[0], e->width());
      case Kind::kSExt: return dst->MakeSExt(kids[0], e->width());
      case Kind::kEq: return dst->MakeEq(kids[0], kids[1]);
      case Kind::kUlt: return dst->MakeUlt(kids[0], kids[1]);
      case Kind::kUle: return dst->MakeUle(kids[0], kids[1]);
      case Kind::kSlt: return dst->MakeSlt(kids[0], kids[1]);
      case Kind::kSle: return dst->MakeSle(kids[0], kids[1]);
      case Kind::kIte: return dst->MakeIte(kids[0], kids[1], kids[2]);
      case Kind::kVar: break;  // handled by the caller
    }
    ACHILLES_UNREACHABLE("bad Kind in expression transfer");
}

}  // namespace

ExprBridge::ExprBridge(smt::ExprContext *home, smt::ExprContext *remote,
                       std::mutex *home_mutex)
    : home_(home), remote_(remote), mutex_(home_mutex)
{
    ACHILLES_CHECK(home != remote, "bridge endpoints must differ");
    to_remote_.dst = remote;
    to_home_.dst = home;
}

void
ExprBridge::MirrorHomeVars()
{
    std::lock_guard<std::mutex> lock(*mutex_);
    const uint32_t n = home_->NumVars();
    for (uint32_t id = 0; id < n; ++id) {
        if (to_remote_.var_map.count(id))
            continue;
        const smt::VarInfo &info = home_->InfoOf(id);
        smt::ExprRef remote_var =
            remote_->FreshVar(VarBaseName(info.name), info.width);
        // Id alignment is what makes models, cache keys and the
        // explorer's var->offset map portable; it requires mirroring
        // into a context that has not created variables of its own yet.
        ACHILLES_CHECK(remote_var->VarId() == id,
                       "worker context variables out of alignment");
        to_remote_.var_map.emplace(id, remote_var);
        to_home_.var_map.emplace(id, home_->VarById(id));
    }
}

smt::ExprRef
ExprBridge::Translate(smt::ExprRef e, Direction *fwd, Direction *rev)
{
    auto it = fwd->memo.find(e);
    if (it != fwd->memo.end())
        return it->second;

    smt::ExprRef out;
    if (e->IsVar()) {
        auto vit = fwd->var_map.find(e->VarId());
        if (vit != fwd->var_map.end()) {
            out = vit->second;
        } else {
            // A variable born on the source side mid-run (e.g. an
            // unconstrained out-of-bounds read): create a counterpart
            // and remember the correspondence both ways. The width
            // comes from the immutable node; the source context's var
            // table must NOT be consulted here -- when a thief re-homes
            // a stolen state, the victim may be growing that table
            // concurrently (only the node graph is immutable).
            out = fwd->dst->FreshVar("xfer", e->width());
            fwd->var_map.emplace(e->VarId(), out);
            rev->var_map.emplace(out->VarId(), e);
            rev->memo.emplace(out, e);
        }
    } else {
        std::vector<smt::ExprRef> kids;
        kids.reserve(e->kids().size());
        for (smt::ExprRef kid : e->kids())
            kids.push_back(Translate(kid, fwd, rev));
        out = Rebuild(fwd->dst, e, kids);
    }
    fwd->memo.emplace(e, out);
    return out;
}

smt::ExprRef
ExprBridge::ToRemote(smt::ExprRef e)
{
    std::lock_guard<std::mutex> lock(*mutex_);
    return Translate(e, &to_remote_, &to_home_);
}

smt::ExprRef
ExprBridge::ToHome(smt::ExprRef e)
{
    std::lock_guard<std::mutex> lock(*mutex_);
    return Translate(e, &to_home_, &to_remote_);
}

smt::ExprRef
ExprBridge::ToRemoteLocked(smt::ExprRef e)
{
    return Translate(e, &to_remote_, &to_home_);
}

smt::ExprRef
ExprBridge::ToHomeLocked(smt::ExprRef e)
{
    return Translate(e, &to_home_, &to_remote_);
}

std::unique_ptr<symexec::State>
TransferState(const symexec::State &state, ExprBridge *from, ExprBridge *to)
{
    ACHILLES_CHECK(from->shared_mutex() == to->shared_mutex(),
                   "bridges from different parallel runs");
    std::lock_guard<std::mutex> lock(*from->shared_mutex());
    auto copy = state.Clone(state.id());
    copy->TranslateExprs([from, to](smt::ExprRef e) {
        return to->ToRemoteLocked(from->ToHomeLocked(e));
    });
    return copy;
}

}  // namespace exec
}  // namespace achilles
