// Achilles reproduction -- parallel exploration subsystem.
//
// PruneIndex: the unified cross-state pruning knowledge base. The
// exploration's dominant cost is deciding, per candidate state and per
// client predicate, whether a refutation already proven elsewhere makes
// the next solver query redundant. Before this subsystem that knowledge
// was scattered across three memos that could not see each other: a
// per-plane Trojan-core ring inside ServerExplorer (worker-private, so
// one worker's dead states never pruned another's descendants), the
// fingerprint-encoded cores duplicated inside exec/query_cache entries,
// and the static differentFrom matrix (which single-field cores
// discovered at run time could never densify). PruneIndex consolidates
// all three behind one lock-striped, evictable store shared by every
// worker of a run:
//
//   1. Two-part core subsumption index ("Trojan cores"). A refutation
//      core split into its path-constraint part and its negation (or
//      pin) part, stored as sorted context-independent structural
//      fingerprints and keyed by the path part's smallest fingerprint.
//      Any later query whose path set contains the path part and whose
//      negation set contains the negation part is UNSAT by the very
//      same core -- across states, across workers, without a solver
//      call. Also reused verbatim by refinement's cross-witness core
//      reuse (base = client path constraints, secondary = pinned-byte
//      equalities).
//
//   2. DifferentFrom overlay ("field cores"). Single-field cores from
//      the predicate-match loop append value-class edges at run time:
//      an entry records that `path_part ∧ match_part` is unsatisfiable
//      and that every implicated expression is confined to one
//      independent field. Consulted through
//      DifferentFromMatrix::OverlaySubsumed alongside the static
//      matrix, so later branches (and other workers' branches) take
//      the static fast path -- drop the predicate and its whole
//      value class for that field -- for pairs the precomputation
//      never related to the new path constraints.
//
//   3. Query-core store. The shared query cache delegates unsat-core
//      storage here instead of duplicating core fingerprints inside
//      its entries: cores are keyed by a chained hash of the query's
//      sorted fingerprint vector and verified against the full vector
//      on every lookup (a collision degrades to a miss, mirroring the
//      cache's own fingerprint-verification discipline).
//
// Soundness: every stored fact is a refutation the solver actually
// produced, translated into the same context-independent fingerprint
// currency as exec/expr_transfer, exec/query_cache and
// exec/clause_exchange. A subsumption hit answers exactly what the
// skipped query would have answered (kUnsat), so live sets -- and
// therefore witness sets -- are bitwise identical with the index on or
// off, at any worker count, under any eviction schedule. Consumers gate
// recording and probing on SolverConfig::unbudgeted() so kUnknown
// conservatism is preserved (a budgeted stream records nothing and
// skips nothing).
//
// Eviction: ReduceDB-style activity/age halving, per shard. Every entry
// carries an activity counter (bumped on each subsumption hit or
// re-discovery) and an insertion stamp; when a shard reaches its cap
// the lower half by (activity, then stamp) is dropped. This caps all
// three stores for long-running service deployments; because hits are
// query-equivalent, eviction can only cost future skips, never flip a
// verdict.

#ifndef ACHILLES_EXEC_PRUNE_INDEX_H_
#define ACHILLES_EXEC_PRUNE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "smt/expr.h"
#include "support/stats.h"

namespace achilles {
namespace exec {

/** Context-independent structural fingerprint of one assertion: the
 *  (struct_hash, struct_hash2) pair, the shared currency of the query
 *  cache and the clause exchange. */
using PruneFp = std::pair<uint64_t, uint64_t>;
/** A fingerprint set, sorted ascending (subset probes use
 *  std::includes). */
using PruneFpVec = std::vector<PruneFp>;

/**
 * Per-store eviction policy: how a full shard's halving round behaves.
 * The defaults reproduce the historical shared rule bit-for-bit (keep
 * ceil(n/2) by (activity, stamp) with the hot-core exemption), so a
 * config that never touches the policies behaves exactly as before;
 * per-store overrides let the overlay and delegated-core stores be
 * tuned independently of the Trojan-core index.
 */
struct PruneStorePolicy
{
    /**
     * Fraction of a full shard's entries a halving round keeps
     * (keep = ceil(n * keep_fraction), clamped to [0, n]). 0.5 is
     * exactly the historical "keep the upper half" rule.
     */
    double keep_fraction = 0.5;
    /** Exempt entries with cross-worker hits since the last round
     *  (consuming the exemption). Ignored by the query-core store,
     *  which does not track cross-worker attribution. */
    bool hot_exemption = true;
};

struct PruneIndexConfig
{
    /** Lock stripes per store. */
    size_t shards = 16;
    /** Entry cap for the two-part core subsumption index (store 1). */
    size_t core_cap = 1024;
    /** Entry cap for the differentFrom overlay (store 2). */
    size_t overlay_cap = 1024;
    /** Entry cap for the delegated query-core store (store 3). */
    size_t query_core_cap = 4096;
    /**
     * Fingerprints hash variables by id, so an entry is only portable
     * across contexts when every implicated variable is id-aligned.
     * Expressions mentioning a variable with id >= this limit are not
     * fingerprintable (Fingerprint returns false and the caller skips
     * the index), mirroring the query cache's shared_var_limit rule.
     * Single-context (serial) owners leave it unlimited.
     */
    uint32_t shared_var_limit = 0xffffffffu;
    /** Eviction policy for the core subsumption index (store 1). */
    PruneStorePolicy core_policy;
    /** Eviction policy for the differentFrom overlay (store 2). */
    PruneStorePolicy overlay_policy;
    /** Eviction policy for the delegated query-core store (store 3);
     *  hot_exemption is ignored here. */
    PruneStorePolicy query_core_policy;
};

/**
 * The shared pruning knowledge base. Thread-safe; one instance per
 * exploration run (owned by ParallelEngine for multi-worker runs, by
 * the consumer itself for serial ones), probed and fed by every
 * worker's plane.
 */
class PruneIndex
{
  public:
    explicit PruneIndex(PruneIndexConfig config = {});
    PruneIndex(const PruneIndex &) = delete;
    PruneIndex &operator=(const PruneIndex &) = delete;

    const PruneIndexConfig &config() const { return config_; }

    /**
     * Fingerprint an assertion set (sorted, deduplicated). Returns
     * false -- caller must skip the index -- when any expression
     * mentions a variable beyond shared_var_limit.
     */
    bool Fingerprint(const std::vector<smt::ExprRef> &exprs,
                     PruneFpVec *out) const;

    // -- Store 1: two-part core subsumption index ---------------------

    /**
     * Record a refutation core split into its primary (path) and
     * secondary (negation / pin) parts. `publisher` identifies the
     * recording worker so cross-worker hits can be attributed.
     * Duplicate cores bump the existing entry's activity instead.
     */
    void RecordCore(size_t publisher, const PruneFpVec &primary,
                    const PruneFpVec &secondary);

    /**
     * True when a recorded core subsumes the query: some entry's
     * primary part is contained in `primary_set` and its secondary
     * part in `secondary_set` (both sorted). A hit bumps the entry's
     * activity; a hit on another worker's core bumps the cross-worker
     * counter.
     */
    bool SubsumesCore(size_t consumer, const PruneFpVec &primary_set,
                      const PruneFpVec &secondary_set);

    // -- Store 2: differentFrom overlay -------------------------------

    /**
     * Append a value-class edge: a single-independent-field core whose
     * path part and match part are both confined to the field named by
     * `field_token` (DifferentFromMatrix::FieldToken).
     */
    void RecordFieldCore(size_t publisher, uint64_t field_token,
                         const PruneFpVec &path_part,
                         const PruneFpVec &match_part);

    /**
     * True when a recorded field core refutes a predicate-match query:
     * some entry's path part is contained in `path_set` and its match
     * part in `match_set`. On a hit `*field_token` names the field so
     * the consumer can re-enter the static matrix's value-class rule.
     */
    bool OverlaySubsumes(size_t consumer, const PruneFpVec &path_set,
                         const PruneFpVec &match_set,
                         uint64_t *field_token);

    // -- Store 3: delegated query-core storage ------------------------

    /** Store the unsat core of the query identified by its sorted
     *  fingerprint vector (first writer wins, like the cache's own
     *  upgrade rule). */
    void RecordQueryCore(const PruneFpVec &query_fps,
                         const PruneFpVec &core_fps);

    /** Fetch a stored core; the full query fingerprint vector is
     *  verified, so a key collision is a miss, never a wrong core. */
    bool LookupQueryCore(const PruneFpVec &query_fps, PruneFpVec *core_fps);

    // -- Snapshot export / import (src/persist) -----------------------

    /**
     * Publisher id recorded on entries imported from a snapshot. Never
     * a real worker id, so any worker's hit on an imported entry counts
     * as a cross-worker hit -- imported knowledge is hot by definition
     * (it already transferred across a whole run).
     */
    static constexpr size_t kImportedPublisher =
        static_cast<size_t>(-1);

    /** One subsumption entry as it travels in a snapshot: fingerprint
     *  parts and payload only (eviction metadata is run-local). */
    struct ExportedEntry
    {
        PruneFpVec primary;
        PruneFpVec secondary;
        uint64_t payload = 0;
    };
    /** One delegated query core as it travels in a snapshot. */
    struct ExportedQueryCore
    {
        PruneFpVec query;
        PruneFpVec core;
    };

    void ExportCores(std::vector<ExportedEntry> *out) const;
    void ExportOverlay(std::vector<ExportedEntry> *out) const;
    void ExportQueryCores(std::vector<ExportedQueryCore> *out) const;

    /** Imports route through the normal record paths (dedup, eviction)
     *  under kImportedPublisher, counted separately from run-recorded
     *  entries so warm-start volume is attributable. */
    void ImportCores(const std::vector<ExportedEntry> &entries);
    void ImportOverlay(const std::vector<ExportedEntry> &entries);
    void ImportQueryCores(const std::vector<ExportedQueryCore> &entries);

    /** Entries restored from snapshots (all three stores). */
    int64_t imported() const { return Load(imported_); }

    // -- Introspection ------------------------------------------------

    size_t core_entries() const;
    size_t overlay_entries() const;
    size_t query_core_entries() const;

    int64_t core_hits() const { return Load(core_hits_); }
    int64_t overlay_hits() const { return Load(overlay_hits_); }
    int64_t core_probes() const { return Load(core_probes_); }
    int64_t overlay_probes() const { return Load(overlay_probes_); }
    int64_t cross_worker_hits() const { return Load(cross_hits_); }
    int64_t evictions() const { return Load(evictions_); }
    /** Entries spared from a halving round by the hot-core rule. */
    int64_t hot_exemptions() const { return Load(hot_exemptions_); }

    /** Export counters ("prune.cores_recorded" et al.). */
    void ExportStats(StatsRegistry *stats) const;

  private:
    struct FpHash
    {
        size_t
        operator()(const PruneFp &fp) const
        {
            return static_cast<size_t>(
                fp.first ^ (fp.second * 0x9e3779b97f4a7c15ull));
        }
    };

    /** One subsumption entry: fingerprint parts + eviction metadata. */
    struct Entry
    {
        PruneFpVec primary;
        PruneFpVec secondary;
        uint64_t payload = 0;  ///< field token (overlay entries).
        size_t publisher = 0;
        uint32_t activity = 0;
        /** Hits by workers other than the publisher since the last
         *  halving: proof the entry transfers. EvictHalf exempts such
         *  entries from one round and zeroes the counter, so an entry
         *  gone cold competes normally the round after. */
        uint32_t cross_hits = 0;
        uint64_t stamp = 0;
    };

    /**
     * A lock-striped two-part subsumption store (backs stores 1 and 2).
     * Entries are keyed by their smallest primary fingerprint (falling
     * back to the secondary part, then to a zero key), so a probe only
     * scans buckets whose key appears in its own fingerprint sets.
     */
    struct SubsumptionStore
    {
        struct Shard
        {
            mutable std::mutex mutex;
            std::vector<Entry> entries;
            std::unordered_map<PruneFp, std::vector<uint32_t>, FpHash>
                buckets;
            uint64_t next_stamp = 0;
        };
        std::vector<std::unique_ptr<Shard>> shards;
        size_t per_shard_cap = 0;
        PruneStorePolicy policy;
        /** Total live entries across shards, maintained by Record /
         *  EvictHalf: lets probes skip an empty store without taking
         *  any shard lock (the differentFrom overlay is empty for the
         *  whole run whenever no single-field core is ever found, yet
         *  it used to be hashed and locked on every match query). */
        std::atomic<size_t> live{0};
    };

    /** One delegated query core. */
    struct QueryCoreEntry
    {
        PruneFpVec query;
        PruneFpVec core;
        uint32_t activity = 0;
        uint64_t stamp = 0;
    };
    struct QueryCoreShard
    {
        mutable std::mutex mutex;
        std::unordered_map<uint64_t, QueryCoreEntry> map;
        uint64_t next_stamp = 0;
    };

    static int64_t
    Load(const std::atomic<int64_t> &v)
    {
        return v.load(std::memory_order_relaxed);
    }

    static PruneFp KeyOf(const PruneFpVec &primary,
                         const PruneFpVec &secondary);
    void InitStore(SubsumptionStore *store, size_t cap,
                   const PruneStorePolicy &policy) const;
    SubsumptionStore::Shard &ShardFor(SubsumptionStore &store,
                                      const PruneFp &key) const;
    void Record(SubsumptionStore *store, size_t publisher,
                uint64_t payload, const PruneFpVec &primary,
                const PruneFpVec &secondary);
    bool Probe(SubsumptionStore *store, size_t consumer,
               const PruneFpVec &primary_set,
               const PruneFpVec &secondary_set, uint64_t *payload,
               std::atomic<int64_t> *hit_counter);
    /** Drop a full shard's lower entries by (activity, stamp), keeping
     *  the store policy's fraction. */
    void EvictHalf(SubsumptionStore *store,
                   SubsumptionStore::Shard *shard);
    static size_t StoreSize(const SubsumptionStore &store);
    static void ExportStore(const SubsumptionStore &store,
                            std::vector<ExportedEntry> *out);
    /** Insert one delegated query core (the shared body of
     *  RecordQueryCore and ImportQueryCores); true when inserted. */
    bool PutQueryCore(const PruneFpVec &query_fps,
                      const PruneFpVec &core_fps);

    static uint64_t ChainHash(const PruneFpVec &fps);

    PruneIndexConfig config_;
    SubsumptionStore cores_;
    SubsumptionStore overlay_;
    std::vector<std::unique_ptr<QueryCoreShard>> query_cores_;
    size_t query_core_shard_cap_ = 0;

    std::atomic<int64_t> cores_recorded_{0};
    std::atomic<int64_t> overlay_recorded_{0};
    std::atomic<int64_t> query_cores_recorded_{0};
    std::atomic<int64_t> core_hits_{0};
    std::atomic<int64_t> overlay_hits_{0};
    std::atomic<int64_t> core_probes_{0};
    std::atomic<int64_t> overlay_probes_{0};
    std::atomic<int64_t> query_core_hits_{0};
    std::atomic<int64_t> cross_hits_{0};
    std::atomic<int64_t> evictions_{0};
    std::atomic<int64_t> hot_exemptions_{0};
    std::atomic<int64_t> imported_{0};
};

}  // namespace exec
}  // namespace achilles

#endif  // ACHILLES_EXEC_PRUNE_INDEX_H_
