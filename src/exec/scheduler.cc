// Achilles reproduction -- parallel exploration subsystem.

#include "exec/scheduler.h"

#include <chrono>

namespace achilles {
namespace exec {

WorkStealingScheduler::WorkStealingScheduler(const SchedulerConfig &config)
    : config_(config)
{
    ACHILLES_CHECK(config_.num_workers >= 1, "need at least one worker");
    deques_.reserve(config_.num_workers);
    rngs_.reserve(config_.num_workers);
    for (size_t i = 0; i < config_.num_workers; ++i) {
        deques_.push_back(std::make_unique<WorkerDeque>());
        rngs_.emplace_back(config_.random_seed + i);
    }
}

void
WorkStealingScheduler::Seed(size_t worker,
                            std::unique_ptr<symexec::State> state)
{
    live_.fetch_add(1, std::memory_order_acq_rel);
    {
        std::lock_guard<std::mutex> lock(deques_[worker]->mutex);
        deques_[worker]->states.push_back(std::move(state));
    }
    queued_.fetch_add(1, std::memory_order_acq_rel);
    wait_cv_.notify_one();
}

bool
WorkStealingScheduler::Push(size_t worker,
                            std::unique_ptr<symexec::State> *state,
                            bool fresh)
{
    if (fresh) {
        if (queued_.load(std::memory_order_acquire) >=
            config_.max_queued_states) {
            return false;
        }
        live_.fetch_add(1, std::memory_order_acq_rel);
    }
    {
        std::lock_guard<std::mutex> lock(deques_[worker]->mutex);
        deques_[worker]->states.push_back(std::move(*state));
    }
    queued_.fetch_add(1, std::memory_order_acq_rel);
    wait_cv_.notify_one();
    return true;
}

bool
WorkStealingScheduler::PopLocal(size_t worker, Batch *out)
{
    WorkerDeque &dq = *deques_[worker];
    std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.states.empty())
        return false;
    std::unique_ptr<symexec::State> state;
    switch (config_.order) {
      case symexec::SearchOrder::kDfs:
        state = std::move(dq.states.back());
        dq.states.pop_back();
        break;
      case symexec::SearchOrder::kBfs:
        state = std::move(dq.states.front());
        dq.states.pop_front();
        break;
      case symexec::SearchOrder::kRandom: {
        const size_t i = rngs_[worker].Below(dq.states.size());
        std::swap(dq.states[i], dq.states.back());
        state = std::move(dq.states.back());
        dq.states.pop_back();
        break;
      }
    }
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    out->states.clear();
    out->states.push_back(std::move(state));
    out->owner = worker;
    return true;
}

bool
WorkStealingScheduler::StealFrom(size_t thief, Batch *out)
{
    const size_t n = deques_.size();
    for (size_t hop = 1; hop < n; ++hop) {
        const size_t victim = (thief + hop) % n;
        WorkerDeque &dq = *deques_[victim];
        std::lock_guard<std::mutex> lock(dq.mutex);
        const size_t available = dq.states.size();
        if (available == 0)
            continue;
        // Steal the older half: the shallowest states and therefore the
        // largest unexplored subtrees, so one steal lasts a while.
        const size_t take = (available + 1) / 2;
        out->states.clear();
        out->states.reserve(take);
        for (size_t i = 0; i < take; ++i) {
            out->states.push_back(std::move(dq.states.front()));
            dq.states.pop_front();
        }
        out->owner = victim;
        queued_.fetch_sub(take, std::memory_order_acq_rel);
        stolen_.fetch_add(static_cast<int64_t>(take),
                          std::memory_order_relaxed);
        steal_batches_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

bool
WorkStealingScheduler::Next(size_t worker, Batch *out)
{
    for (;;) {
        if (stop_.load(std::memory_order_acquire))
            return false;
        if (PopLocal(worker, out))
            return true;
        if (StealFrom(worker, out))
            return true;
        if (live_.load(std::memory_order_acquire) == 0) {
            wait_cv_.notify_all();
            return false;
        }
        // Nothing to run but states are still in flight on other
        // workers (they may fork). Block until something is pushed or
        // the exploration drains; the timeout guards the unlikely
        // missed-wakeup window between the checks above and the wait.
        std::unique_lock<std::mutex> lock(wait_mutex_);
        wait_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
}

void
WorkStealingScheduler::OnStateFinished()
{
    if (live_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        wait_cv_.notify_all();
}

void
WorkStealingScheduler::Stop()
{
    stop_.store(true, std::memory_order_release);
    wait_cv_.notify_all();
}

void
WorkStealingScheduler::ExportStats(StatsRegistry *stats) const
{
    stats->Bump("exec.states_stolen", states_stolen());
    stats->Bump("exec.steal_batches", steal_batches());
}

}  // namespace exec
}  // namespace achilles
