// Achilles reproduction -- parallel exploration subsystem.
//
// The worker pool. Each worker owns a full private solving stack -- an
// ExprContext replica, a CachedSolver (its own bit-blasting solver
// behind the shared cross-worker query cache, with a private
// incremental assumption-based SAT backend that persists CNF and
// learned clauses across the worker's model-less query stream) and a
// symexec::Engine driven state-by-state -- plus an ExprBridge that
// re-homes states stolen from other workers, and a ClauseChannel onto
// the shared learned-clause exchange so one worker's short refutation
// lemmas prune its siblings' searches (exec/clause_exchange.h).
// ParallelEngine wires the pool to the work-stealing scheduler and
// exposes the same surface as the serial engine: set an incoming
// message, run, get PathResults in the home context.
//
// Determinism: worker engines derive state ids from the fork tree
// (schedule-independent), contexts are variable-id-aligned, expression
// canonicalization and solver assertion ordering are structural, so the
// merged results -- ordered by state id -- are identical for any worker
// count and any steal interleaving. The incremental backends keep this
// intact because every model is produced by the fresh-instance path (a
// pure function of the canonicalized query), never by the
// history-dependent persistent SAT instance.
//
// Unsat cores cross workers without expression translation: a worker's
// incremental backend reports a core as indices into the caller's own
// assertion vectors (already in that worker's context), and the shared
// query cache stores cores as context-independent structural
// fingerprints that each CachedSolver re-anchors to its caller's
// indices on a hit (exec/query_cache.h). Cores from different solver
// histories may differ, but every core proves the same kUnsat verdict,
// so core-guided consumers (the server explorer's predicate dropping)
// stay schedule-independent in their results even when their skipped
// query counts differ.

#ifndef ACHILLES_EXEC_WORKER_H_
#define ACHILLES_EXEC_WORKER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/clause_exchange.h"
#include "exec/expr_transfer.h"
#include "exec/prune_index.h"
#include "exec/query_cache.h"
#include "exec/scheduler.h"
#include "smt/solver.h"
#include "support/stats.h"
#include "symexec/engine.h"

namespace achilles {
namespace exec {

/** One worker's private solving stack. */
struct WorkerContext
{
    size_t worker_id = 0;
    smt::ExprContext ctx;
    std::unique_ptr<ExprBridge> bridge;
    /** This worker's face of the shared learned-clause pool (null when
     *  the exchange is off or the run is serial); the solver's
     *  clause_sink/clause_source point at it, so it is declared before
     *  the solver to outlive it through teardown. */
    std::unique_ptr<ClauseChannel> clause_channel;
    std::unique_ptr<CachedSolver> solver;
    std::unique_ptr<symexec::Engine> engine;
    /** Worker-context replicas of the home incoming-message bytes. */
    std::vector<smt::ExprRef> incoming;
    /** This worker's handle onto the run's shared pruning knowledge
     *  base (Trojan-core subsumption, differentFrom overlay, delegated
     *  query cores); identical pointer in every worker. */
    PruneIndex *prune_index = nullptr;
};

/**
 * Creates the per-worker engine listener. Implementations translate
 * whatever shared expression data they need through wc->bridge (called
 * once per worker, before any worker thread starts) and must only touch
 * worker-local or properly synchronized state from the callbacks.
 */
class WorkerListenerFactory
{
  public:
    virtual ~WorkerListenerFactory() = default;
    virtual std::unique_ptr<symexec::Listener>
    MakeListener(WorkerContext *wc) = 0;
};

/**
 * Multi-threaded drop-in for symexec::Engine::Run.
 *
 * One-shot: construct, configure, Run() once. The instance must stay
 * alive while callers post-process worker-context data (e.g. the server
 * explorer translating Trojan definitions home through worker bridges).
 */
class ParallelEngine
{
  public:
    ParallelEngine(smt::ExprContext *home, const symexec::Program *program,
                   symexec::Mode mode, symexec::EngineConfig config,
                   smt::SolverConfig solver_config = {});

    /** Home-context symbolic message bytes served by ReceiveMessage. */
    void SetIncomingMessage(std::vector<smt::ExprRef> bytes);

    void SetListenerFactory(WorkerListenerFactory *factory)
    {
        factory_ = factory;
    }

    /** Override the pruning knowledge base's caps before Run (the
     *  shared_var_limit field is recomputed at launch regardless). */
    void SetPruneIndexConfig(PruneIndexConfig config)
    {
        prune_config_ = config;
    }

    /**
     * Hook over the run's shared knowledge stores (the clause-exchange
     * pointer is null when the exchange is off). Used by the warm-start
     * persistence layer (src/persist), which this subsystem must not
     * depend on -- callers inject the snapshot logic from above.
     */
    using KnowledgeHook =
        std::function<void(PruneIndex *, QueryCache *, ClauseExchange *)>;

    /**
     * `restore` runs after the shared stores are constructed and before
     * any worker thread starts (single-threaded, so imports need no
     * coordination with consumers); `capture` runs after every worker
     * has joined and stats are merged, immediately before Run returns.
     * Either may be null.
     */
    void
    SetKnowledgeHooks(KnowledgeHook restore, KnowledgeHook capture)
    {
        restore_hook_ = std::move(restore);
        capture_hook_ = std::move(capture);
    }

    /**
     * Explore all paths with num_workers threads; returns one PathResult
     * per finished path, expressed in the home context and ordered by
     * (schedule-independent) state id.
     */
    std::vector<symexec::PathResult> Run();

    const StatsRegistry &stats() const { return stats_; }

    size_t num_workers() const { return workers_.size(); }
    WorkerContext &worker(size_t i) { return *workers_[i]; }
    QueryCache *query_cache() { return cache_.get(); }
    /** The shared lemma pool (null when the exchange is disabled). */
    ClauseExchange *clause_exchange() { return clause_exchange_.get(); }
    /** The run's shared pruning knowledge base. */
    PruneIndex *prune_index() { return prune_index_.get(); }

  private:
    void WorkerLoop(size_t worker_id);

    smt::ExprContext *home_;
    const symexec::Program *program_;
    symexec::Mode mode_;
    symexec::EngineConfig config_;
    smt::SolverConfig solver_config_;
    WorkerListenerFactory *factory_ = nullptr;
    std::vector<smt::ExprRef> incoming_;

    std::mutex home_mutex_;
    PruneIndexConfig prune_config_;
    std::unique_ptr<PruneIndex> prune_index_;
    std::unique_ptr<QueryCache> cache_;
    std::unique_ptr<ClauseExchange> clause_exchange_;
    std::unique_ptr<WorkStealingScheduler> scheduler_;
    std::vector<std::unique_ptr<WorkerContext>> workers_;
    std::vector<std::unique_ptr<symexec::Listener>> listeners_;
    std::atomic<size_t> finished_paths_{0};
    StatsRegistry stats_;
    KnowledgeHook restore_hook_;
    KnowledgeHook capture_hook_;
    bool ran_ = false;
};

/**
 * Listener-less exploration dispatch: the serial engine (using the
 * caller's solver) for num_workers <= 1, the ParallelEngine otherwise.
 * Engine stats are merged into `stats`. Shared by the classic-SE
 * baseline and client predicate extraction.
 */
std::vector<symexec::PathResult> RunExploration(
    smt::ExprContext *ctx, smt::Solver *solver,
    const symexec::Program *program, symexec::Mode mode,
    const symexec::EngineConfig &config,
    std::vector<smt::ExprRef> incoming, StatsRegistry *stats);

}  // namespace exec
}  // namespace achilles

#endif  // ACHILLES_EXEC_WORKER_H_
