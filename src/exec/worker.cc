// Achilles reproduction -- parallel exploration subsystem.

#include "exec/worker.h"

#include <algorithm>
#include <thread>

#include "obs/log.h"

namespace achilles {
namespace exec {

ParallelEngine::ParallelEngine(smt::ExprContext *home,
                               const symexec::Program *program,
                               symexec::Mode mode,
                               symexec::EngineConfig config,
                               smt::SolverConfig solver_config)
    : home_(home), program_(program), mode_(mode), config_(config),
      solver_config_(solver_config)
{
    if (config_.num_workers < 1)
        config_.num_workers = 1;
}

void
ParallelEngine::SetIncomingMessage(std::vector<smt::ExprRef> bytes)
{
    incoming_ = std::move(bytes);
}

std::vector<symexec::PathResult>
ParallelEngine::Run()
{
    ACHILLES_CHECK(!ran_, "ParallelEngine is one-shot");
    ran_ = true;

    const size_t n = config_.num_workers;
    // Every variable existing in the home context now is id-aligned in
    // every worker context; only queries confined to these variables may
    // use the shared cache (worker-local variable ids are ambiguous).
    const uint32_t shared_var_limit = home_->NumVars();
    // The shared pruning knowledge base: Trojan-core subsumption and
    // the differentFrom overlay for the explorer's planes, delegated
    // core storage for the query cache. Portability of its fingerprints
    // follows the same id-alignment rule as the cache's keys.
    prune_config_.shared_var_limit = shared_var_limit;
    prune_index_ = std::make_unique<PruneIndex>(prune_config_);
    cache_ = std::make_unique<QueryCache>();
    cache_->SetPruneIndex(prune_index_.get());
    // The learned-clause exchange shares one worker's short refutation
    // lemmas with its siblings. Only meaningful with siblings to share
    // with, and only wired when the incremental backends that produce
    // the lemmas are on.
    if (n > 1 && solver_config_.share_learned_clauses &&
        solver_config_.enable_incremental) {
        clause_exchange_ = std::make_unique<ClauseExchange>(
            16, solver_config_.lemma_pool_cap > 0
                    ? static_cast<size_t>(solver_config_.lemma_pool_cap)
                    : 0);
    }
    // Warm start: restore persisted knowledge into the freshly built
    // stores before any worker thread exists. Restored facts only skip
    // queries whose answers they already are, so witness sets stay
    // bitwise identical to a cold run's.
    if (restore_hook_) {
        restore_hook_(prune_index_.get(), cache_.get(),
                      clause_exchange_.get());
    }

    SchedulerConfig sched_config;
    sched_config.num_workers = n;
    sched_config.order = config_.order;
    sched_config.random_seed = config_.random_seed;
    sched_config.max_queued_states = config_.max_states;
    scheduler_ = std::make_unique<WorkStealingScheduler>(sched_config);

    // Absorb the shared components' existing lock-free counters into the
    // run's metrics registry as gauges: the heartbeat's sampler reads
    // them live without the components' hot paths ever touching the
    // registry. (RegisterGauge replaces by name, so the scheduler's
    // queued-state count overrides any serial engine.frontier gauge.)
    if (config_.obs.metrics_on()) {
        obs::MetricsRegistry *reg = config_.obs.registry;
        const QueryCache *cache = cache_.get();
        reg->RegisterGauge("cache.hits", [cache] { return cache->hits(); });
        reg->RegisterGauge("cache.misses",
                           [cache] { return cache->misses(); });
        reg->RegisterGauge("cache.collisions",
                           [cache] { return cache->collisions(); });
        const PruneIndex *prune = prune_index_.get();
        reg->RegisterGauge("prune.core_hits",
                           [prune] { return prune->core_hits(); });
        reg->RegisterGauge("prune.overlay_hits",
                           [prune] { return prune->overlay_hits(); });
        reg->RegisterGauge("prune.core_probes",
                           [prune] { return prune->core_probes(); });
        reg->RegisterGauge("prune.overlay_probes",
                           [prune] { return prune->overlay_probes(); });
        reg->RegisterGauge("prune.cross_worker_hits",
                           [prune] { return prune->cross_worker_hits(); });
        reg->RegisterGauge("prune.evictions",
                           [prune] { return prune->evictions(); });
        reg->RegisterGauge("prune.hot_exemptions",
                           [prune] { return prune->hot_exemptions(); });
        const WorkStealingScheduler *sched = scheduler_.get();
        reg->RegisterGauge("engine.frontier", [sched] {
            return static_cast<int64_t>(sched->queued());
        });
        reg->RegisterGauge("exec.states_stolen",
                           [sched] { return sched->states_stolen(); });
        if (clause_exchange_) {
            const ClauseExchange *pool = clause_exchange_.get();
            reg->RegisterGauge("lemmas.published",
                               [pool] { return pool->published(); });
            reg->RegisterGauge("lemmas.fetched",
                               [pool] { return pool->fetched(); });
            reg->RegisterGauge("lemmas.evicted",
                               [pool] { return pool->evicted(); });
        }
    }

    // Per-worker engines explore disjoint subtrees; ids must therefore
    // come from the fork tree, not from per-engine counters.
    symexec::EngineConfig engine_config = config_;
    engine_config.deterministic_state_ids = true;

    workers_.reserve(n);
    listeners_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        auto wc = std::make_unique<WorkerContext>();
        wc->worker_id = i;
        // Worker w owns obs lane 1 + w: its own metric shard and its own
        // trace track (lane 0 stays with the main/pipeline thread).
        engine_config.obs = config_.obs.ForLane(i + 1);
        wc->prune_index = prune_index_.get();
        wc->bridge =
            std::make_unique<ExprBridge>(home_, &wc->ctx, &home_mutex_);
        wc->bridge->MirrorHomeVars();
        smt::SolverConfig worker_config = solver_config_;
        worker_config.obs = solver_config_.obs.ForLane(i + 1);
        if (clause_exchange_) {
            wc->clause_channel = std::make_unique<ClauseChannel>(
                clause_exchange_.get(), i);
            worker_config.clause_sink = wc->clause_channel.get();
            worker_config.clause_source = wc->clause_channel.get();
            // Lemmas may only name assertions over the id-aligned
            // prefix -- the same portability rule as the query cache.
            worker_config.clause_share_var_limit = shared_var_limit;
        }
        wc->solver = std::make_unique<CachedSolver>(
            &wc->ctx, cache_.get(), shared_var_limit, worker_config);
        wc->engine = std::make_unique<symexec::Engine>(
            &wc->ctx, wc->solver.get(), program_, mode_, engine_config);
        wc->engine->SetFinalizeGate([this] {
            const size_t slot =
                finished_paths_.fetch_add(1, std::memory_order_acq_rel);
            if (slot + 1 >= config_.max_finished_paths)
                scheduler_->Stop();
            return slot < config_.max_finished_paths;
        });
        if (!incoming_.empty()) {
            wc->incoming.reserve(incoming_.size());
            for (smt::ExprRef b : incoming_)
                wc->incoming.push_back(wc->bridge->ToRemote(b));
            wc->engine->SetIncomingMessage(wc->incoming);
        }
        std::unique_ptr<symexec::Listener> listener;
        if (factory_) {
            listener = factory_->MakeListener(wc.get());
            wc->engine->SetListener(listener.get());
        }
        listeners_.push_back(std::move(listener));
        workers_.push_back(std::move(wc));
    }

    scheduler_->Seed(0, workers_[0]->engine->MakeInitialState());

    std::vector<std::thread> threads;
    threads.reserve(n);
    for (size_t i = 0; i < n; ++i)
        threads.emplace_back([this, i] { WorkerLoop(i); });
    for (std::thread &t : threads)
        t.join();

    // Merge: translate every worker's finished paths into the home
    // context and order them by their schedule-independent state ids.
    std::vector<symexec::PathResult> results;
    for (auto &wc : workers_) {
        std::vector<symexec::PathResult> part = wc->engine->TakeResults();
        for (symexec::PathResult &r : part) {
            for (smt::ExprRef &c : r.constraints)
                c = wc->bridge->ToHome(c);
            for (symexec::SentMessage &m : r.sent)
                for (smt::ExprRef &b : m.bytes)
                    b = wc->bridge->ToHome(b);
            results.push_back(std::move(r));
        }
        stats_.Merge(wc->engine->stats());
        stats_.Merge(wc->solver->stats());
    }
    std::stable_sort(results.begin(), results.end(),
                     [](const symexec::PathResult &a,
                        const symexec::PathResult &b) {
                         return a.state_id < b.state_id;
                     });
    scheduler_->ExportStats(&stats_);
    cache_->ExportStats(&stats_);
    prune_index_->ExportStats(&stats_);
    if (clause_exchange_)
        clause_exchange_->ExportStats(&stats_);
    stats_.Set("exec.workers", static_cast<int64_t>(n));

    // The gauges registered above read components this engine owns;
    // freeze them to their final values so a heartbeat (or RunReport)
    // sampling after this engine is destroyed reads constants, not
    // dangling pointers.
    if (config_.obs.metrics_on()) {
        obs::MetricsRegistry *reg = config_.obs.registry;
        const auto freeze = [reg](const std::string &name, int64_t value) {
            reg->RegisterGauge(name, [value] { return value; });
        };
        freeze("cache.hits", cache_->hits());
        freeze("cache.misses", cache_->misses());
        freeze("cache.collisions", cache_->collisions());
        freeze("prune.core_hits", prune_index_->core_hits());
        freeze("prune.overlay_hits", prune_index_->overlay_hits());
        freeze("prune.core_probes", prune_index_->core_probes());
        freeze("prune.overlay_probes", prune_index_->overlay_probes());
        freeze("prune.cross_worker_hits",
               prune_index_->cross_worker_hits());
        freeze("prune.evictions", prune_index_->evictions());
        freeze("prune.hot_exemptions", prune_index_->hot_exemptions());
        freeze("engine.frontier", 0);
        freeze("exec.states_stolen", scheduler_->states_stolen());
        if (clause_exchange_) {
            freeze("lemmas.published", clause_exchange_->published());
            freeze("lemmas.fetched", clause_exchange_->fetched());
            freeze("lemmas.evicted", clause_exchange_->evicted());
        }
    }
    // Everything this run proved, for the next run's warm start. After
    // the join, so the stores are quiescent.
    if (capture_hook_) {
        capture_hook_(prune_index_.get(), cache_.get(),
                      clause_exchange_.get());
    }
    return results;
}

void
ParallelEngine::WorkerLoop(size_t worker_id)
{
    // Tag this thread's log lines (and any Warn from the layers below)
    // with the worker lane.
    obs::ScopedLogWorkerId log_id(static_cast<int>(worker_id));
    WorkerContext &wc = *workers_[worker_id];
    WorkStealingScheduler::Batch batch;
    std::vector<std::unique_ptr<symexec::State>> spawned;

    while (scheduler_->Next(worker_id, &batch)) {
        if (batch.owner != worker_id) {
            // Stolen work: re-home it into this worker's context, queue
            // it locally (preserving deque order) and go pop normally.
            for (auto &s : batch.states) {
                s = TransferState(*s, workers_[batch.owner]->bridge.get(),
                                  wc.bridge.get());
                scheduler_->Push(worker_id, &s, /*fresh=*/false);
            }
            continue;
        }
        auto state = std::move(batch.states.front());
        spawned.clear();
        wc.engine->AdvanceState(*state, &spawned);
        for (auto &s : spawned) {
            if (!scheduler_->Push(worker_id, &s, /*fresh=*/true))
                wc.engine->FinalizeLimit(*s);
        }
        if (state->Finished())
            scheduler_->OnStateFinished();
        else
            scheduler_->Push(worker_id, &state, /*fresh=*/false);
    }
}

std::vector<symexec::PathResult>
RunExploration(smt::ExprContext *ctx, smt::Solver *solver,
               const symexec::Program *program, symexec::Mode mode,
               const symexec::EngineConfig &config,
               std::vector<smt::ExprRef> incoming, StatsRegistry *stats)
{
    if (config.num_workers > 1) {
        ParallelEngine engine(ctx, program, mode, config,
                              solver->config());
        if (!incoming.empty())
            engine.SetIncomingMessage(std::move(incoming));
        std::vector<symexec::PathResult> paths = engine.Run();
        stats->Merge(engine.stats());
        return paths;
    }
    symexec::Engine engine(ctx, solver, program, mode, config);
    if (!incoming.empty())
        engine.SetIncomingMessage(std::move(incoming));
    std::vector<symexec::PathResult> paths = engine.Run();
    stats->Merge(engine.stats());
    return paths;
}

}  // namespace exec
}  // namespace achilles
