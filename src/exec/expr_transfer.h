// Achilles reproduction -- parallel exploration subsystem.
//
// Expression translation between the home ExprContext and a worker's
// private replica context. ExprContext is a single-threaded interning
// arena, so every worker owns its own; states forked on one worker can
// then be stolen and re-solved on another only if their expressions can
// be re-homed. The bridge does that:
//
//  * Variables are id-aligned: at launch every variable of the home
//    context is mirrored into the worker context in id order, so
//    variable k means the same thing everywhere. This is what makes
//    solver models, the shared query cache and the explorer's
//    var-to-field map portable across workers.
//  * Nodes are rebuilt bottom-up through the destination context's
//    factory methods. Factories canonicalize by the context-independent
//    structural fingerprint (smt::StructuralCompare), so a round trip
//    reproduces the identical node the serial engine would have built.
//  * Cross-worker transfer routes through home (A -> home -> B), giving
//    every expression a canonical home form and keeping the number of
//    pairwise mappings linear in the worker count.
//
// All bridges of one parallel run share a single mutex (the home
// context is the shared resource); translation only happens at steal
// time and at result-merge time, so contention is low by construction.

#ifndef ACHILLES_EXEC_EXPR_TRANSFER_H_
#define ACHILLES_EXEC_EXPR_TRANSFER_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "smt/expr.h"
#include "symexec/state.h"

namespace achilles {
namespace exec {

/** Bidirectional home <-> worker expression translator. */
class ExprBridge
{
  public:
    /**
     * `home_mutex` guards the home context and this bridge's internal
     * maps; all bridges of one parallel run must share it.
     */
    ExprBridge(smt::ExprContext *home, smt::ExprContext *remote,
               std::mutex *home_mutex);

    /**
     * Mirror every home variable that does not yet exist remotely into
     * the remote context, in id order. Call before the remote context
     * creates any variable of its own so that ids align.
     */
    void MirrorHomeVars();

    /** Translate home -> remote (locks the shared mutex). */
    smt::ExprRef ToRemote(smt::ExprRef e);
    /** Translate remote -> home (locks the shared mutex). */
    smt::ExprRef ToHome(smt::ExprRef e);

    /** Unlocked variants; the caller must hold the shared mutex. */
    smt::ExprRef ToRemoteLocked(smt::ExprRef e);
    smt::ExprRef ToHomeLocked(smt::ExprRef e);

    smt::ExprContext *home() { return home_; }
    smt::ExprContext *remote() { return remote_; }
    std::mutex *shared_mutex() { return mutex_; }

  private:
    struct Direction
    {
        smt::ExprContext *dst = nullptr;
        /** Source var id -> destination variable node. */
        std::unordered_map<uint32_t, smt::ExprRef> var_map;
        /** Source node -> destination node (persistent memo). */
        std::unordered_map<smt::ExprRef, smt::ExprRef> memo;
    };

    smt::ExprRef Translate(smt::ExprRef e, Direction *fwd, Direction *rev);

    smt::ExprContext *home_;
    smt::ExprContext *remote_;
    std::mutex *mutex_;
    Direction to_remote_;  ///< home -> remote
    Direction to_home_;    ///< remote -> home
};

/**
 * Re-home a state stolen from worker `from` onto worker `to`, routing
 * every expression through the home context. Returns a fresh deep copy;
 * the original is left untouched. Takes the shared mutex once.
 */
std::unique_ptr<symexec::State> TransferState(const symexec::State &state,
                                              ExprBridge *from,
                                              ExprBridge *to);

}  // namespace exec
}  // namespace achilles

#endif  // ACHILLES_EXEC_EXPR_TRANSFER_H_
