// Achilles reproduction -- parallel exploration subsystem.
//
// Cross-worker learned-clause exchange. Each worker's incremental SMT
// backend learns short refutation lemmas -- "these guarded assertions
// are jointly unsatisfiable" -- over id-aligned CNF for the shared
// variable prefix; without sharing, every sibling re-derives the same
// refutations from scratch. This pool lets one worker's refutations
// prune the others' searches: lemmas travel as the context-independent
// structural fingerprints of the implicated expressions (the same
// translation currency as exec/expr_transfer and the shared query
// cache), so a consumer re-anchors them to its own activation literals
// without any expression bridging.
//
// Sharding mirrors exec/query_cache: lemmas are distributed over
// independent lock-striped shards keyed by their first fingerprint, and
// each shard keeps a log plus a dedup set. Consumers poll with a
// per-consumer cursor (one position per shard), so a fetch hands out
// exactly the lemmas published since the consumer's previous fetch,
// skipping its own publications.
//
// Eviction: the pool is capped for long-running service deployments
// (the same policy family as exec/prune_index). Each shard's log is a
// ring over absolute positions: when full, the oldest lemma is dropped
// (age) and erased from the dedup set, so a later re-discovery
// re-publishes it (activity -- a lemma still being derived earns its
// slot back). Cursors are absolute, so consumers simply skip the
// evicted prefix; dropping a lemma only costs siblings a potential
// acceleration, never a verdict (lemmas are implied facts).
//
// Soundness: every lemma is implied by the semantics of the expressions
// it names, so importing one can never flip a verdict -- it only steers
// CDCL to the refutation faster. Witness determinism is untouched
// because models are always produced by the exchange-free
// fresh-instance path (see smt/solver.h).

#ifndef ACHILLES_EXEC_CLAUSE_EXCHANGE_H_
#define ACHILLES_EXEC_CLAUSE_EXCHANGE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "smt/solver.h"
#include "support/stats.h"

namespace achilles {
namespace exec {

/** A lemma as it travels: sorted fingerprints of the guarded
 *  expressions whose conjunction is unsatisfiable (1 or 2 entries --
 *  the SAT layer only exports units and binaries). */
using Lemma = std::vector<smt::LemmaFingerprint>;

/**
 * The shared lock-striped lemma pool. Thread-safe; one instance per
 * parallel run, shared by every worker's ClauseChannel.
 */
class ClauseExchange
{
  public:
    /** `lemma_cap` bounds the pooled lemmas across all shards
     *  (0 = unbounded, the pre-eviction behavior). */
    explicit ClauseExchange(size_t shards = 16, size_t lemma_cap = 0);
    ClauseExchange(const ClauseExchange &) = delete;
    ClauseExchange &operator=(const ClauseExchange &) = delete;

    /** Publish a lemma (idempotent: duplicates are dropped).
     *  `publisher` identifies the worker so its own fetches skip it. */
    void Publish(size_t publisher, const Lemma &lemma);

    /** Per-consumer fetch position, one entry per shard. */
    struct Cursor
    {
        std::vector<size_t> next;
    };

    /** Append every lemma published since `cursor` by a worker other
     *  than `consumer`; advances the cursor. Returns the count. */
    size_t Fetch(size_t consumer, Cursor *cursor, std::vector<Lemma> *out);

    // -- Snapshot export / import (src/persist) -----------------------

    /**
     * Publisher id for lemmas restored from a snapshot. Never a real
     * worker id, so every worker's fetch hands imported lemmas out
     * (fetches only skip the consumer's own publications).
     */
    static constexpr size_t kImportedPublisher =
        static_cast<size_t>(-1);

    /** Collect every pooled lemma (the live ring windows). */
    void Export(std::vector<Lemma> *out) const;

    /** Publish snapshot lemmas under kImportedPublisher (normal dedup
     *  and ring eviction apply); returns the count offered. */
    size_t Import(const std::vector<Lemma> &lemmas);

    /** Distinct lemmas currently pooled. */
    size_t size() const;

    int64_t published() const
    {
        return published_.load(std::memory_order_relaxed);
    }
    int64_t duplicates() const
    {
        return duplicates_.load(std::memory_order_relaxed);
    }
    int64_t fetched() const
    {
        return fetched_.load(std::memory_order_relaxed);
    }
    int64_t evicted() const
    {
        return evicted_.load(std::memory_order_relaxed);
    }

    /** Export counters ("exec.lemmas_published" et al.). */
    void ExportStats(StatsRegistry *stats) const;

  private:
    struct LemmaHash
    {
        size_t
        operator()(const Lemma &lemma) const
        {
            uint64_t h = 0xcbf29ce484222325ull;
            for (const smt::LemmaFingerprint &fp : lemma) {
                h = (h ^ fp.first) * 0x100000001b3ull;
                h = (h ^ fp.second) * 0x100000001b3ull;
            }
            return static_cast<size_t>(h);
        }
    };
    struct Entry
    {
        Lemma lemma;
        size_t publisher;
    };
    struct Shard
    {
        std::mutex mutex;
        /** Live window of the shard's publication history: absolute
         *  positions [base, base + log.size()). */
        std::deque<Entry> log;
        size_t base = 0;
        std::unordered_set<Lemma, LemmaHash> dedup;
    };

    Shard &ShardFor(const Lemma &lemma);

    std::vector<std::unique_ptr<Shard>> shards_;
    /** Per-shard live-entry cap (0 = unbounded). */
    size_t per_shard_cap_ = 0;
    std::atomic<int64_t> published_{0};
    std::atomic<int64_t> duplicates_{0};
    std::atomic<int64_t> fetched_{0};
    std::atomic<int64_t> evicted_{0};
};

/**
 * Per-worker adapter wiring a worker's private Solver to the shared
 * pool: the solver publishes through the ClauseSink face and imports
 * through the ClauseSource face, with this channel owning the worker's
 * fetch cursor. One channel per worker; the channel itself is only
 * touched from that worker's thread (the pool handles cross-thread
 * synchronization).
 */
class ClauseChannel : public smt::ClauseSink, public smt::ClauseSource
{
  public:
    ClauseChannel(ClauseExchange *pool, size_t worker_id)
        : pool_(pool), worker_id_(worker_id)
    {
    }

    void
    PublishLemma(const std::vector<smt::LemmaFingerprint> &lemma) override
    {
        pool_->Publish(worker_id_, lemma);
    }

    void
    FetchLemmas(std::vector<std::vector<smt::LemmaFingerprint>> *out)
        override
    {
        pool_->Fetch(worker_id_, &cursor_, out);
    }

  private:
    ClauseExchange *pool_;
    size_t worker_id_;
    ClauseExchange::Cursor cursor_;
};

}  // namespace exec
}  // namespace achilles

#endif  // ACHILLES_EXEC_CLAUSE_EXCHANGE_H_
