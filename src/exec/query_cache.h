// Achilles reproduction -- parallel exploration subsystem.
//
// Shared, sharded, lock-striped SMT query cache. The server exploration
// re-issues the same feasibility and predicate-match queries from many
// sibling states (ServerExplorer::PredicateMatches is the dominant
// repeated work); with several workers the repetition also crosses
// threads. This cache memoizes CheckSat results under a canonical
// 128-bit key computed from the context-independent structural
// fingerprints of the assertion set, verified against the per-assertion
// fingerprints on every probe. Models are carried for entries produced
// (or later upgraded) by the model-producing fresh-instance path, so an
// identical Trojan query can resolve witness bytes without a SAT call;
// entries from the model-less incremental path serve result-only
// callers and are upgraded in place on first model demand.
//
// Key soundness: fingerprints hash variables by id, so a key is only
// valid across contexts when the ids mean the same variable everywhere.
// The parallel engine id-aligns every variable that exists in the home
// context at launch time (exec/expr_transfer.h); queries mentioning any
// later, worker-local variable are simply not cached (ComputeKey returns
// false). Models are stored as id -> value maps and are therefore valid
// in any worker context for cacheable queries.

#ifndef ACHILLES_EXEC_QUERY_CACHE_H_
#define ACHILLES_EXEC_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "exec/prune_index.h"
#include "smt/solver.h"
#include "support/stats.h"

namespace achilles {
namespace exec {

/** Canonical 128-bit key of an assertion set (order-insensitive). */
struct QueryCacheKey
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool
    operator==(const QueryCacheKey &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
};

/**
 * Per-assertion verification material stored next to each entry: the
 * sorted (struct_hash, struct_hash2) pairs of the canonical assertion
 * set. The 128-bit map key is an additive accumulation, so two distinct
 * assertion sets can collide on it; comparing the per-assertion
 * fingerprints on every hit turns such a collision into a miss instead
 * of silently returning another query's result/model.
 */
using QueryFingerprints = std::vector<std::pair<uint64_t, uint64_t>>;

/**
 * The shared cross-worker query cache.
 *
 * Lock-striped: keys are distributed over `shards` independent maps,
 * each behind its own mutex, so concurrent workers rarely contend.
 */
class QueryCache
{
  public:
    explicit QueryCache(size_t shards = 16);
    QueryCache(const QueryCache &) = delete;
    QueryCache &operator=(const QueryCache &) = delete;

    /**
     * Delegate unsat-core storage to the shared pruning knowledge base
     * (the single source of truth for core fingerprints). Without an
     * index, kUnsat entries are cached core-less: hits still answer the
     * verdict, callers just cannot accelerate off a replayed core.
     */
    void SetPruneIndex(PruneIndex *index) { prune_ = index; }

    /**
     * Compute the canonical key for an assertion set (optionally split
     * as assertions ∪ extras, mirroring CheckSatAssuming, so hot
     * callers need not concatenate), plus the sorted per-assertion
     * fingerprints verified on every probe. Returns false -- query not
     * cacheable -- when any assertion mentions a variable with id >=
     * `shared_var_limit` (a worker-local variable whose id is not
     * globally meaningful). Duplicate assertions do not affect the key.
     */
    static bool ComputeKey(const std::vector<smt::ExprRef> &assertions,
                           uint32_t shared_var_limit, QueryCacheKey *out,
                           QueryFingerprints *fingerprints,
                           const std::vector<smt::ExprRef> *extras = nullptr);

    /**
     * The key as a pure function of the sorted per-assertion
     * fingerprints (the accumulation is commutative, so summing in
     * fingerprint order equals ComputeKey's assertion order;
     * fingerprints are deduplicated exactly like the assertions). This
     * is what makes entries portable across runs: an importer
     * recomputes the key from the verified fingerprints instead of
     * trusting a stored one.
     */
    static QueryCacheKey KeyFromFingerprints(
        const QueryFingerprints &fingerprints);

    /**
     * Probe. A hit requires the stored fingerprints to match (a bare
     * key match is treated as a collision and reported as a miss) and,
     * when `want_model` is set, a kSat entry to actually carry a model
     * (entries published by the model-less incremental solving path do
     * not; the caller re-solves on the deterministic model-producing
     * path and upgrades the entry via Insert). For kUnsat answers the
     * unsat core -- stored in the attached PruneIndex, not in the entry
     * -- is replayed as the fingerprints of the implicated assertions
     * (`*has_core`/`*core`); the core store verifies the full query
     * fingerprint vector itself, so a replayed core always belongs to
     * exactly this assertion set.
     */
    bool Lookup(const QueryCacheKey &key,
                const QueryFingerprints &fingerprints, bool want_model,
                smt::CheckStatus *status, smt::Model *model,
                bool *has_core = nullptr, QueryFingerprints *core = nullptr);

    /**
     * Publish a result (kUnknown results are not stored). Re-inserting
     * an existing entry with `has_model` set upgrades a model-less
     * entry in place; fingerprint-mismatched keys are left untouched.
     * `core` holds the sorted fingerprints of the core assertions for
     * kUnsat answers decided by the incremental backend; it is handed
     * to the attached PruneIndex (first writer wins there too).
     */
    void Insert(const QueryCacheKey &key,
                const QueryFingerprints &fingerprints,
                smt::CheckStatus status, bool has_model,
                const smt::Model &model, bool has_core = false,
                const QueryFingerprints &core = {});

    // -- Snapshot export / import (src/persist) -----------------------

    /**
     * One cache entry as it travels in a snapshot. The 128-bit map key
     * is deliberately absent: importers recompute it from the
     * fingerprint vector (KeyFromFingerprints), so a corrupted or
     * hand-edited key can never alias another query's entry. Models are
     * flattened to sorted (var id, value) pairs -- ids are portable
     * because cacheable queries only mention id-aligned variables.
     */
    struct ExportedEntry
    {
        QueryFingerprints fingerprints;
        smt::CheckStatus status = smt::CheckStatus::kUnknown;
        bool has_model = false;
        std::vector<std::pair<uint32_t, uint64_t>> model_values;
    };

    void Export(std::vector<ExportedEntry> *out) const;

    /** Re-publish snapshot entries through Insert (kUnknown and
     *  unsorted-fingerprint entries are skipped); returns the number
     *  accepted. */
    size_t Import(const std::vector<ExportedEntry> &entries);

    int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
    int64_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }
    int64_t collisions() const
    {
        return collisions_.load(std::memory_order_relaxed);
    }
    size_t size() const;

    /** Export counters ("exec.queries_cached" et al.) into a registry. */
    void ExportStats(StatsRegistry *stats) const;

  private:
    struct Entry
    {
        smt::CheckStatus status = smt::CheckStatus::kUnknown;
        bool has_model = false;
        QueryFingerprints fingerprints;
        smt::Model model;
    };
    struct KeyHash
    {
        size_t operator()(const QueryCacheKey &k) const
        {
            return static_cast<size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ull));
        }
    };
    struct Shard
    {
        std::mutex mutex;
        std::unordered_map<QueryCacheKey, Entry, KeyHash> map;
    };

    Shard &ShardFor(const QueryCacheKey &key);

    std::vector<std::unique_ptr<Shard>> shards_;
    PruneIndex *prune_ = nullptr;
    std::atomic<int64_t> hits_{0};
    std::atomic<int64_t> misses_{0};
    std::atomic<int64_t> collisions_{0};
};

/**
 * Solver decorator consulting the shared cache before the real decision
 * procedure. Each worker owns one, wrapping its private context-bound
 * Solver; every layer running on the worker (engine feasibility checks,
 * predicate-match queries, Trojan queries) goes through it unchanged.
 */
class CachedSolver : public smt::Solver
{
  public:
    /**
     * `shared_var_limit` is the number of id-aligned variables (the home
     * context's variable count at parallel-run launch); queries touching
     * later variables bypass the shared cache.
     */
    CachedSolver(smt::ExprContext *ctx, QueryCache *cache,
                 uint32_t shared_var_limit, smt::SolverConfig config = {});

    smt::CheckResult CheckSat(const std::vector<smt::ExprRef> &assertions,
                              smt::Model *model = nullptr) override;

    smt::CheckResult CheckSatAssuming(
        const std::vector<smt::ExprRef> &base,
        const std::vector<smt::ExprRef> &extras,
        smt::Model *model = nullptr) override;

    /**
     * Batched sweep with the shared cache in front: groups another
     * worker already decided are answered from the cache (status-only
     * -- batch verdicts carry neither models nor cores), the residue is
     * swept by the base Solver in one pass, and every decided residue
     * verdict is published for the siblings. Uncacheable groups (worker-
     * local variables) simply ride through to the sweep.
     */
    smt::BatchOutcome CheckSatBatch(
        const std::vector<smt::ExprRef> &base,
        const std::vector<const std::vector<smt::ExprRef> *> &groups)
        override;

  private:
    smt::CheckResult CheckShared(const std::vector<smt::ExprRef> &base,
                                 const std::vector<smt::ExprRef> *extras,
                                 smt::Model *model);

    QueryCache *cache_;
    uint32_t shared_var_limit_;
};

}  // namespace exec
}  // namespace achilles

#endif  // ACHILLES_EXEC_QUERY_CACHE_H_
