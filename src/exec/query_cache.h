// Achilles reproduction -- parallel exploration subsystem.
//
// Shared, sharded, lock-striped SMT query cache. The server exploration
// re-issues the same feasibility and predicate-match queries from many
// sibling states (ServerExplorer::PredicateMatches is the dominant
// repeated work); with several workers the repetition also crosses
// threads. This cache memoizes CheckSat results -- including the model,
// so a later identical Trojan query resolves without a SAT call -- under
// a canonical 128-bit key computed from the context-independent
// structural fingerprints of the assertion set.
//
// Key soundness: fingerprints hash variables by id, so a key is only
// valid across contexts when the ids mean the same variable everywhere.
// The parallel engine id-aligns every variable that exists in the home
// context at launch time (exec/expr_transfer.h); queries mentioning any
// later, worker-local variable are simply not cached (ComputeKey returns
// false). Models are stored as id -> value maps and are therefore valid
// in any worker context for cacheable queries.

#ifndef ACHILLES_EXEC_QUERY_CACHE_H_
#define ACHILLES_EXEC_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "smt/solver.h"
#include "support/stats.h"

namespace achilles {
namespace exec {

/** Canonical 128-bit key of an assertion set (order-insensitive). */
struct QueryCacheKey
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool
    operator==(const QueryCacheKey &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
};

/**
 * The shared cross-worker query cache.
 *
 * Lock-striped: keys are distributed over `shards` independent maps,
 * each behind its own mutex, so concurrent workers rarely contend.
 */
class QueryCache
{
  public:
    explicit QueryCache(size_t shards = 16);
    QueryCache(const QueryCache &) = delete;
    QueryCache &operator=(const QueryCache &) = delete;

    /**
     * Compute the canonical key for an assertion set. Returns false --
     * query not cacheable -- when any assertion mentions a variable with
     * id >= `shared_var_limit` (a worker-local variable whose id is not
     * globally meaningful). Duplicate assertions do not affect the key.
     */
    static bool ComputeKey(const std::vector<smt::ExprRef> &assertions,
                           uint32_t shared_var_limit, QueryCacheKey *out);

    /** Probe; fills result (and model, when non-null) on a hit. */
    bool Lookup(const QueryCacheKey &key, smt::CheckResult *result,
                smt::Model *model);

    /** Publish a result (kUnknown results are not stored). */
    void Insert(const QueryCacheKey &key, smt::CheckResult result,
                const smt::Model &model);

    int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
    int64_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }
    size_t size() const;

    /** Export counters ("exec.queries_cached" et al.) into a registry. */
    void ExportStats(StatsRegistry *stats) const;

  private:
    struct Entry
    {
        smt::CheckResult result = smt::CheckResult::kUnknown;
        smt::Model model;
    };
    struct KeyHash
    {
        size_t operator()(const QueryCacheKey &k) const
        {
            return static_cast<size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ull));
        }
    };
    struct Shard
    {
        std::mutex mutex;
        std::unordered_map<QueryCacheKey, Entry, KeyHash> map;
    };

    Shard &ShardFor(const QueryCacheKey &key);

    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<int64_t> hits_{0};
    std::atomic<int64_t> misses_{0};
};

/**
 * Solver decorator consulting the shared cache before the real decision
 * procedure. Each worker owns one, wrapping its private context-bound
 * Solver; every layer running on the worker (engine feasibility checks,
 * predicate-match queries, Trojan queries) goes through it unchanged.
 */
class CachedSolver : public smt::Solver
{
  public:
    /**
     * `shared_var_limit` is the number of id-aligned variables (the home
     * context's variable count at parallel-run launch); queries touching
     * later variables bypass the shared cache.
     */
    CachedSolver(smt::ExprContext *ctx, QueryCache *cache,
                 uint32_t shared_var_limit, smt::SolverConfig config = {});

    smt::CheckResult CheckSat(const std::vector<smt::ExprRef> &assertions,
                              smt::Model *model = nullptr) override;

  private:
    QueryCache *cache_;
    uint32_t shared_var_limit_;
};

}  // namespace exec
}  // namespace achilles

#endif  // ACHILLES_EXEC_QUERY_CACHE_H_
