// Achilles reproduction -- parallel exploration subsystem.

#include "exec/clause_exchange.h"

#include <algorithm>

namespace achilles {
namespace exec {

ClauseExchange::ClauseExchange(size_t shards, size_t lemma_cap)
{
    if (shards == 0)
        shards = 1;
    // A cap below the shard count would overshoot with one lemma per
    // shard; shrink the stripe count so the pool-wide bound holds.
    if (lemma_cap != 0 && lemma_cap < shards)
        shards = lemma_cap;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
    if (lemma_cap != 0)
        per_shard_cap_ = lemma_cap / shards;
}

ClauseExchange::Shard &
ClauseExchange::ShardFor(const Lemma &lemma)
{
    const uint64_t key = lemma.empty() ? 0 : lemma.front().first;
    return *shards_[static_cast<size_t>(key) % shards_.size()];
}

void
ClauseExchange::Publish(size_t publisher, const Lemma &lemma)
{
    if (lemma.empty())
        return;
    Shard &shard = ShardFor(lemma);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (!shard.dedup.insert(lemma).second) {
        duplicates_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (per_shard_cap_ != 0 && shard.log.size() >= per_shard_cap_) {
        // Age-based eviction: drop the oldest lemma and forget it in
        // the dedup set, so a re-discovery (the activity signal) can
        // re-publish it into the live window.
        shard.dedup.erase(shard.log.front().lemma);
        shard.log.pop_front();
        ++shard.base;
        evicted_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.log.push_back(Entry{lemma, publisher});
    published_.fetch_add(1, std::memory_order_relaxed);
}

size_t
ClauseExchange::Fetch(size_t consumer, Cursor *cursor,
                      std::vector<Lemma> *out)
{
    cursor->next.resize(shards_.size(), 0);
    size_t appended = 0;
    for (size_t i = 0; i < shards_.size(); ++i) {
        Shard &shard = *shards_[i];
        std::lock_guard<std::mutex> lock(shard.mutex);
        // Cursors are absolute publication positions; anything below
        // the live window's base was evicted before this consumer got
        // to it and is simply skipped.
        const size_t end = shard.base + shard.log.size();
        for (size_t k = std::max(cursor->next[i], shard.base); k < end;
             ++k) {
            const Entry &entry = shard.log[k - shard.base];
            if (entry.publisher == consumer)
                continue;  // the consumer already owns its own lemmas
            out->push_back(entry.lemma);
            ++appended;
        }
        cursor->next[i] = end;
    }
    fetched_.fetch_add(static_cast<int64_t>(appended),
                       std::memory_order_relaxed);
    return appended;
}

void
ClauseExchange::Export(std::vector<Lemma> *out) const
{
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (const Entry &entry : shard->log)
            out->push_back(entry.lemma);
    }
}

size_t
ClauseExchange::Import(const std::vector<Lemma> &lemmas)
{
    for (const Lemma &lemma : lemmas)
        Publish(kImportedPublisher, lemma);
    return lemmas.size();
}

size_t
ClauseExchange::size() const
{
    size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->log.size();
    }
    return total;
}

void
ClauseExchange::ExportStats(StatsRegistry *stats) const
{
    stats->Bump("exec.lemmas_published", published());
    stats->Bump("exec.lemmas_deduped", duplicates());
    stats->Bump("exec.lemmas_fetched", fetched());
    stats->Bump("exec.lemmas_evicted", evicted());
    stats->Set("exec.lemma_pool_entries", static_cast<int64_t>(size()));
}

}  // namespace exec
}  // namespace achilles
