// Achilles reproduction -- parallel exploration subsystem.

#include "exec/clause_exchange.h"

namespace achilles {
namespace exec {

ClauseExchange::ClauseExchange(size_t shards)
{
    if (shards == 0)
        shards = 1;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ClauseExchange::Shard &
ClauseExchange::ShardFor(const Lemma &lemma)
{
    const uint64_t key = lemma.empty() ? 0 : lemma.front().first;
    return *shards_[static_cast<size_t>(key) % shards_.size()];
}

void
ClauseExchange::Publish(size_t publisher, const Lemma &lemma)
{
    if (lemma.empty())
        return;
    Shard &shard = ShardFor(lemma);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (!shard.dedup.insert(lemma).second) {
        duplicates_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    shard.log.push_back(Entry{lemma, publisher});
    published_.fetch_add(1, std::memory_order_relaxed);
}

size_t
ClauseExchange::Fetch(size_t consumer, Cursor *cursor,
                      std::vector<Lemma> *out)
{
    cursor->next.resize(shards_.size(), 0);
    size_t appended = 0;
    for (size_t i = 0; i < shards_.size(); ++i) {
        Shard &shard = *shards_[i];
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (size_t k = cursor->next[i]; k < shard.log.size(); ++k) {
            const Entry &entry = shard.log[k];
            if (entry.publisher == consumer)
                continue;  // the consumer already owns its own lemmas
            out->push_back(entry.lemma);
            ++appended;
        }
        cursor->next[i] = shard.log.size();
    }
    fetched_.fetch_add(static_cast<int64_t>(appended),
                       std::memory_order_relaxed);
    return appended;
}

size_t
ClauseExchange::size() const
{
    size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->log.size();
    }
    return total;
}

void
ClauseExchange::ExportStats(StatsRegistry *stats) const
{
    stats->Bump("exec.lemmas_published", published());
    stats->Bump("exec.lemmas_deduped", duplicates());
    stats->Bump("exec.lemmas_fetched", fetched());
    stats->Set("exec.lemma_pool_entries", static_cast<int64_t>(size()));
}

}  // namespace exec
}  // namespace achilles
