// Achilles reproduction -- parallel exploration subsystem.

#include "exec/query_cache.h"

#include <algorithm>

#include "support/hash.h"

namespace achilles {
namespace exec {

bool
QueryCache::ComputeKey(const std::vector<smt::ExprRef> &assertions,
                       uint32_t shared_var_limit, QueryCacheKey *out,
                       QueryFingerprints *fingerprints,
                       const std::vector<smt::ExprRef> *extras)
{
    // Deduplicate (nodes are interned, pointer identity == structural
    // identity within a context) so the key matches however the caller
    // happened to repeat or split conjuncts.
    std::vector<smt::ExprRef> unique_assertions;
    unique_assertions.reserve(assertions.size() +
                              (extras ? extras->size() : 0));
    unique_assertions.insert(unique_assertions.end(), assertions.begin(),
                             assertions.end());
    if (extras != nullptr) {
        unique_assertions.insert(unique_assertions.end(), extras->begin(),
                                 extras->end());
    }
    std::sort(unique_assertions.begin(), unique_assertions.end());
    unique_assertions.erase(
        std::unique(unique_assertions.begin(), unique_assertions.end()),
        unique_assertions.end());

    // Both fingerprints and the variable bound are precomputed per
    // node, so this is O(1) per assertion. The additive key alone is
    // collision-prone (sums of per-assertion hashes can coincide across
    // different sets), so the sorted per-assertion fingerprints travel
    // with it for verification on every Lookup/Insert.
    fingerprints->clear();
    fingerprints->reserve(unique_assertions.size());
    for (smt::ExprRef e : unique_assertions) {
        if (e->max_var_bound() > shared_var_limit)
            return false;
        fingerprints->emplace_back(e->struct_hash(), e->struct_hash2());
    }
    std::sort(fingerprints->begin(), fingerprints->end());
    *out = KeyFromFingerprints(*fingerprints);
    return true;
}

QueryCacheKey
QueryCache::KeyFromFingerprints(const QueryFingerprints &fingerprints)
{
    // Commutative accumulation keeps the key order-insensitive,
    // matching the logical conjunction the assertions denote -- and
    // makes the key a pure function of the sorted fingerprint vector,
    // which is what snapshot importers recompute it from.
    uint64_t lo = 0x51ed270b9f9f2b4dull +
                  0x632be59bd9b4e019ull * fingerprints.size();
    uint64_t hi = 0x8ebc6af09c88c6e3ull;
    for (const auto &fp : fingerprints) {
        lo += MixBits(fp.first ^ 0xa0761d6478bd642full);
        hi += MixBits(fp.second + 0xe7037ed1a0b428dbull);
    }
    QueryCacheKey key;
    key.lo = lo;
    key.hi = hi;
    return key;
}

QueryCache::QueryCache(size_t shards)
{
    if (shards == 0)
        shards = 1;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

QueryCache::Shard &
QueryCache::ShardFor(const QueryCacheKey &key)
{
    return *shards_[static_cast<size_t>(key.lo) % shards_.size()];
}

bool
QueryCache::Lookup(const QueryCacheKey &key,
                   const QueryFingerprints &fingerprints, bool want_model,
                   smt::CheckStatus *status, smt::Model *model,
                   bool *has_core, QueryFingerprints *core)
{
    Shard &shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    const Entry &entry = it->second;
    if (entry.fingerprints != fingerprints) {
        collisions_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (want_model && entry.status == smt::CheckStatus::kSat &&
        !entry.has_model) {
        // Known-sat but no witness stored: the caller must re-solve on
        // the model-producing path (which will upgrade this entry).
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    *status = entry.status;
    if (model)
        *model = entry.model;
    if (has_core) {
        // Cores live in the shared pruning knowledge base, keyed (and
        // verified) by the query's own fingerprint vector.
        *has_core = entry.status == smt::CheckStatus::kUnsat &&
                    prune_ != nullptr &&
                    prune_->LookupQueryCore(fingerprints, core);
    }
    return true;
}

void
QueryCache::Insert(const QueryCacheKey &key,
                   const QueryFingerprints &fingerprints,
                   smt::CheckStatus status, bool has_model,
                   const smt::Model &model, bool has_core,
                   const QueryFingerprints &core)
{
    if (status == smt::CheckStatus::kUnknown)
        return;  // may become decidable with a bigger budget; don't pin
    if (has_core && prune_ != nullptr &&
        status == smt::CheckStatus::kUnsat) {
        // Single source of truth for core fingerprints: the shared
        // pruning knowledge base. Cores of the same query may differ
        // across solver histories -- any of them is a valid
        // refutation, so the store's first-writer rule is fine.
        prune_->RecordQueryCore(fingerprints, core);
    }
    Shard &shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto [it, inserted] = shard.map.try_emplace(
        key, Entry{status, has_model, fingerprints, model});
    if (inserted)
        return;
    Entry &entry = it->second;
    if (entry.fingerprints != fingerprints) {
        // Key collision with a different assertion set: first one wins,
        // the loser simply stays uncached.
        collisions_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (has_model && !entry.has_model) {
        // Model upgrade. The fresh-instance path computes models as a
        // pure function of the query, so whichever worker performs the
        // upgrade stores the same bytes.
        entry.model = model;
        entry.has_model = true;
    }
}

size_t
QueryCache::size() const
{
    size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->map.size();
    }
    return total;
}

void
QueryCache::ExportStats(StatsRegistry *stats) const
{
    stats->Bump("exec.queries_cached", hits());
    stats->Bump("exec.query_cache_misses", misses());
    stats->Bump("exec.query_cache_collisions", collisions());
    stats->Set("exec.query_cache_entries", static_cast<int64_t>(size()));
}

void
QueryCache::Export(std::vector<ExportedEntry> *out) const
{
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (const auto &[key, entry] : shard->map) {
            ExportedEntry exported;
            exported.fingerprints = entry.fingerprints;
            exported.status = entry.status;
            exported.has_model = entry.has_model;
            if (entry.has_model) {
                exported.model_values.reserve(entry.model.values().size());
                for (const auto &[id, value] : entry.model.values())
                    exported.model_values.emplace_back(id, value);
                // Deterministic bytes: the model map is unordered.
                std::sort(exported.model_values.begin(),
                          exported.model_values.end());
            }
            out->push_back(std::move(exported));
        }
    }
}

size_t
QueryCache::Import(const std::vector<ExportedEntry> &entries)
{
    size_t accepted = 0;
    for (const ExportedEntry &e : entries) {
        // Full verification on load: the key is recomputed from the
        // fingerprint vector (never read from the snapshot), kUnknown
        // is never imported (same rule as Insert), and a malformed
        // unsorted vector is rejected outright -- Lookup's equality
        // check against freshly sorted fingerprints could never hit it,
        // it would only squat on a key.
        if (e.status == smt::CheckStatus::kUnknown)
            continue;
        if (!std::is_sorted(e.fingerprints.begin(), e.fingerprints.end()))
            continue;
        smt::Model model;
        for (const auto &[id, value] : e.model_values)
            model.Set(id, value);
        Insert(KeyFromFingerprints(e.fingerprints), e.fingerprints,
               e.status, e.has_model, model);
        ++accepted;
    }
    return accepted;
}

CachedSolver::CachedSolver(smt::ExprContext *ctx, QueryCache *cache,
                           uint32_t shared_var_limit,
                           smt::SolverConfig config)
    : Solver(ctx, config), cache_(cache), shared_var_limit_(shared_var_limit)
{
}

smt::CheckResult
CachedSolver::CheckSat(const std::vector<smt::ExprRef> &assertions,
                       smt::Model *model)
{
    return CheckShared(assertions, nullptr, model);
}

smt::CheckResult
CachedSolver::CheckSatAssuming(const std::vector<smt::ExprRef> &base,
                               const std::vector<smt::ExprRef> &extras,
                               smt::Model *model)
{
    return CheckShared(base, &extras, model);
}

smt::CheckResult
CachedSolver::CheckShared(const std::vector<smt::ExprRef> &base,
                          const std::vector<smt::ExprRef> *extras,
                          smt::Model *model)
{
    QueryCacheKey key;
    QueryFingerprints fingerprints;
    if (cache_ == nullptr ||
        !QueryCache::ComputeKey(base, shared_var_limit_, &key,
                                &fingerprints, extras)) {
        return Solver::CheckSatSets(base, extras, model);
    }
    const auto assertion_at = [&](uint32_t idx) {
        return idx < base.size() ? base[idx]
                                 : (*extras)[idx - base.size()];
    };
    const size_t total =
        base.size() + (extras != nullptr ? extras->size() : 0);
    // Mirror the facade's contract: cores only surface to callers whose
    // query would have taken the core-producing path themselves, so a
    // budgeted or model-requesting caller never sees one off a shared
    // hit either.
    const bool core_path = model == nullptr &&
                           config().enable_incremental &&
                           config().unbudgeted() && config().enable_cores;

    smt::CheckStatus status;
    bool has_core = false;
    QueryFingerprints core_fps;
    if (cache_->Lookup(key, fingerprints, model != nullptr, &status,
                       model, core_path ? &has_core : nullptr,
                       core_path ? &core_fps : nullptr)) {
        // Counted once, in the cache's own hit counter (exported as
        // "exec.queries_cached" by ExportStats) -- a per-solver bump
        // here would double-count after the merge.
        smt::CheckResult result(status);
        if (has_core && core_path) {
            // Cores travel as context-independent structural
            // fingerprints; re-anchor them to this caller's assertion
            // indices (first occurrence per fingerprint, matching the
            // Solver contract for duplicated assertions).
            result.has_core = true;
            QueryFingerprints remaining = core_fps;
            for (uint32_t idx = 0;
                 idx < total && !remaining.empty(); ++idx) {
                const smt::ExprRef e = assertion_at(idx);
                const std::pair<uint64_t, uint64_t> fp(e->struct_hash(),
                                                       e->struct_hash2());
                auto it = std::find(remaining.begin(), remaining.end(),
                                    fp);
                if (it != remaining.end()) {
                    result.core.push_back(idx);
                    remaining.erase(it);
                }
            }
        }
        return result;
    }
    // Model-less queries run on the per-worker incremental backend and
    // publish model-less entries; a later model-requesting caller takes
    // the deterministic fresh-instance path and upgrades the entry.
    smt::CheckResult result = Solver::CheckSatSets(base, extras, model);
    QueryFingerprints out_core;
    if (result.has_core) {
        out_core.reserve(result.core.size());
        for (uint32_t idx : result.core) {
            const smt::ExprRef e = assertion_at(idx);
            out_core.emplace_back(e->struct_hash(), e->struct_hash2());
        }
        std::sort(out_core.begin(), out_core.end());
        out_core.erase(std::unique(out_core.begin(), out_core.end()),
                       out_core.end());
    }
    cache_->Insert(key, fingerprints, result.status,
                   /*has_model=*/model != nullptr,
                   model != nullptr ? *model : smt::Model(),
                   result.has_core, out_core);
    return result;
}

smt::BatchOutcome
CachedSolver::CheckSatBatch(
    const std::vector<smt::ExprRef> &base,
    const std::vector<const std::vector<smt::ExprRef> *> &groups)
{
    if (cache_ == nullptr)
        return Solver::CheckSatBatch(base, groups);

    // Probe the shared cache per group; only the residue is swept. A
    // group's key covers base ∥ group, exactly what CheckSatAssuming
    // would have computed, so point queries and sweeps share entries.
    struct Keyed
    {
        QueryCacheKey key;
        QueryFingerprints fingerprints;
        bool cacheable = false;
    };
    std::vector<Keyed> keyed(groups.size());
    smt::BatchOutcome out;
    out.verdicts.resize(groups.size());
    std::vector<size_t> residue;
    std::vector<const std::vector<smt::ExprRef> *> residue_groups;
    residue.reserve(groups.size());
    residue_groups.reserve(groups.size());
    for (size_t i = 0; i < groups.size(); ++i) {
        Keyed &k = keyed[i];
        k.cacheable = QueryCache::ComputeKey(base, shared_var_limit_,
                                             &k.key, &k.fingerprints,
                                             groups[i]);
        smt::CheckStatus status;
        if (k.cacheable &&
            cache_->Lookup(k.key, k.fingerprints, /*want_model=*/false,
                           &status, nullptr)) {
            // Status-only service, per the batch contract (no models,
            // no cores).
            out.verdicts[i] = status;
            continue;
        }
        residue.push_back(i);
        residue_groups.push_back(groups[i]);
    }
    if (residue.empty())
        return out;

    smt::BatchOutcome swept = Solver::CheckSatBatch(base, residue_groups);
    out.rounds = swept.rounds;
    for (size_t r = 0; r < residue.size(); ++r) {
        const size_t i = residue[r];
        out.verdicts[i] = swept.verdicts[r];
        const Keyed &k = keyed[i];
        if (k.cacheable &&
            out.verdicts[i].status != smt::CheckStatus::kUnknown) {
            // Model-less, core-less publication; a later model-
            // requesting point query upgrades the entry in place.
            cache_->Insert(k.key, k.fingerprints, out.verdicts[i].status,
                          /*has_model=*/false, smt::Model());
        }
    }
    return out;
}

}  // namespace exec
}  // namespace achilles
