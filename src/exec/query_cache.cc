// Achilles reproduction -- parallel exploration subsystem.

#include "exec/query_cache.h"

#include <algorithm>

#include "support/hash.h"

namespace achilles {
namespace exec {

bool
QueryCache::ComputeKey(const std::vector<smt::ExprRef> &assertions,
                       uint32_t shared_var_limit, QueryCacheKey *out)
{
    // Deduplicate (nodes are interned, pointer identity == structural
    // identity within a context) so the key matches however the caller
    // happened to repeat conjuncts.
    std::vector<smt::ExprRef> unique_assertions = assertions;
    std::sort(unique_assertions.begin(), unique_assertions.end());
    unique_assertions.erase(
        std::unique(unique_assertions.begin(), unique_assertions.end()),
        unique_assertions.end());

    uint64_t lo = 0x51ed270b9f9f2b4dull +
                  0x632be59bd9b4e019ull * unique_assertions.size();
    uint64_t hi = 0x8ebc6af09c88c6e3ull;
    // Commutative accumulation keeps the key order-insensitive, matching
    // the logical conjunction the assertions denote. Both fingerprints
    // and the variable bound are precomputed per node, so this is O(1)
    // per assertion.
    for (smt::ExprRef e : unique_assertions) {
        if (e->max_var_bound() > shared_var_limit)
            return false;
        lo += MixBits(e->struct_hash() ^ 0xa0761d6478bd642full);
        hi += MixBits(e->struct_hash2() + 0xe7037ed1a0b428dbull);
    }
    out->lo = lo;
    out->hi = hi;
    return true;
}

QueryCache::QueryCache(size_t shards)
{
    if (shards == 0)
        shards = 1;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

QueryCache::Shard &
QueryCache::ShardFor(const QueryCacheKey &key)
{
    return *shards_[static_cast<size_t>(key.lo) % shards_.size()];
}

bool
QueryCache::Lookup(const QueryCacheKey &key, smt::CheckResult *result,
                   smt::Model *model)
{
    Shard &shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    *result = it->second.result;
    if (model)
        *model = it->second.model;
    return true;
}

void
QueryCache::Insert(const QueryCacheKey &key, smt::CheckResult result,
                   const smt::Model &model)
{
    if (result == smt::CheckResult::kUnknown)
        return;  // may become decidable with a bigger budget; don't pin
    Shard &shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.emplace(key, Entry{result, model});
}

size_t
QueryCache::size() const
{
    size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->map.size();
    }
    return total;
}

void
QueryCache::ExportStats(StatsRegistry *stats) const
{
    stats->Bump("exec.queries_cached", hits());
    stats->Bump("exec.query_cache_misses", misses());
    stats->Set("exec.query_cache_entries", static_cast<int64_t>(size()));
}

CachedSolver::CachedSolver(smt::ExprContext *ctx, QueryCache *cache,
                           uint32_t shared_var_limit,
                           smt::SolverConfig config)
    : Solver(ctx, config), cache_(cache), shared_var_limit_(shared_var_limit)
{
}

smt::CheckResult
CachedSolver::CheckSat(const std::vector<smt::ExprRef> &assertions,
                       smt::Model *model)
{
    QueryCacheKey key;
    if (cache_ == nullptr ||
        !QueryCache::ComputeKey(assertions, shared_var_limit_, &key)) {
        return Solver::CheckSat(assertions, model);
    }
    smt::CheckResult result;
    if (cache_->Lookup(key, &result, model)) {
        // Counted once, in the cache's own hit counter (exported as
        // "exec.queries_cached" by ExportStats) -- a per-solver bump
        // here would double-count after the merge.
        return result;
    }
    // Always request the model: a hit for this key later must be able to
    // serve Trojan-query callers that want one.
    smt::Model computed;
    result = Solver::CheckSat(assertions, &computed);
    cache_->Insert(key, result, computed);
    if (model)
        *model = computed;
    return result;
}

}  // namespace exec
}  // namespace achilles
