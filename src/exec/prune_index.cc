// Achilles reproduction -- parallel exploration subsystem.

#include "exec/prune_index.h"

#include <algorithm>
#include <cmath>

namespace achilles {
namespace exec {

PruneIndex::PruneIndex(PruneIndexConfig config) : config_(config)
{
    if (config_.shards == 0)
        config_.shards = 1;
    InitStore(&cores_, config_.core_cap, config_.core_policy);
    InitStore(&overlay_, config_.overlay_cap, config_.overlay_policy);
    size_t query_shards = config_.shards;
    if (config_.query_core_cap != 0 && config_.query_core_cap < query_shards)
        query_shards = config_.query_core_cap;
    query_cores_.reserve(query_shards);
    for (size_t i = 0; i < query_shards; ++i)
        query_cores_.push_back(std::make_unique<QueryCoreShard>());
    query_core_shard_cap_ = config_.query_core_cap == 0
                                ? 0
                                : config_.query_core_cap / query_shards;
}

void
PruneIndex::InitStore(SubsumptionStore *store, size_t cap,
                      const PruneStorePolicy &policy) const
{
    // A cap below the shard count would overshoot with one entry per
    // shard; shrink the stripe count instead so the documented bound
    // holds exactly.
    size_t shards = config_.shards;
    if (cap != 0 && cap < shards)
        shards = cap;
    store->shards.reserve(shards);
    for (size_t i = 0; i < shards; ++i)
        store->shards.push_back(
            std::make_unique<SubsumptionStore::Shard>());
    store->per_shard_cap = cap == 0 ? 0 : cap / shards;
    store->policy = policy;
}

namespace {

/** Entries a halving round keeps: ceil(n * keep_fraction), clamped to
 *  [0, n]. At the default 0.5 this is exactly the historical
 *  (n + 1) / 2 "keep the upper half" rule (n * 0.5 is exact in a
 *  double for any shard-sized n). */
size_t
KeepTarget(size_t n, double keep_fraction)
{
    if (keep_fraction <= 0.0)
        return 0;
    if (keep_fraction >= 1.0)
        return n;
    const double want = std::ceil(static_cast<double>(n) * keep_fraction);
    return std::min(n, static_cast<size_t>(want));
}

}  // namespace

bool
PruneIndex::Fingerprint(const std::vector<smt::ExprRef> &exprs,
                        PruneFpVec *out) const
{
    out->clear();
    out->reserve(exprs.size());
    for (smt::ExprRef e : exprs) {
        if (e == nullptr || e->max_var_bound() > config_.shared_var_limit)
            return false;
        out->emplace_back(e->struct_hash(), e->struct_hash2());
    }
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
    return true;
}

PruneFp
PruneIndex::KeyOf(const PruneFpVec &primary, const PruneFpVec &secondary)
{
    // Sorted vectors: front() is the smallest fingerprint. An entry's
    // key must be contained in any query it subsumes, which is what
    // lets the probe confine itself to buckets keyed by its own
    // fingerprints.
    if (!primary.empty())
        return primary.front();
    if (!secondary.empty())
        return secondary.front();
    return PruneFp{0, 0};
}

PruneIndex::SubsumptionStore::Shard &
PruneIndex::ShardFor(SubsumptionStore &store, const PruneFp &key) const
{
    return *store.shards[static_cast<size_t>(FpHash{}(key)) %
                         store.shards.size()];
}

void
PruneIndex::EvictHalf(SubsumptionStore *store,
                      SubsumptionStore::Shard *shard)
{
    // ReduceDB-style halving: keep the policy's fraction of the more
    // active entries, breaking ties toward younger ones, then rebuild
    // the bucket map. Entries with cross-worker hits since the last
    // round are hot cores -- proven to transfer between workers -- and
    // are exempt from this round unconditionally (when the store policy
    // keeps the exemption on); the exemption is consumed (cross_hits
    // reset), so a core that goes cold competes on (activity, stamp)
    // next time. A shard where more than the keep target's entries are
    // hot temporarily exceeds it; the next halving corrects that.
    std::vector<Entry> &entries = shard->entries;
    const size_t keep =
        KeepTarget(entries.size(), store->policy.keep_fraction);
    std::vector<Entry> kept;
    kept.reserve(keep);
    std::vector<uint32_t> cold;
    cold.reserve(entries.size());
    for (uint32_t i = 0; i < entries.size(); ++i) {
        if (store->policy.hot_exemption && entries[i].cross_hits > 0) {
            entries[i].cross_hits = 0;
            hot_exemptions_.fetch_add(1, std::memory_order_relaxed);
            kept.push_back(std::move(entries[i]));
        } else {
            cold.push_back(i);
        }
    }
    std::sort(cold.begin(), cold.end(), [&](uint32_t a, uint32_t b) {
        if (entries[a].activity != entries[b].activity)
            return entries[a].activity > entries[b].activity;
        return entries[a].stamp > entries[b].stamp;
    });
    for (size_t i = 0; i < cold.size() && kept.size() < keep; ++i)
        kept.push_back(std::move(entries[cold[i]]));
    evictions_.fetch_add(
        static_cast<int64_t>(entries.size() - kept.size()),
        std::memory_order_relaxed);
    store->live.fetch_sub(entries.size() - kept.size(),
                          std::memory_order_relaxed);
    entries = std::move(kept);
    shard->buckets.clear();
    for (uint32_t i = 0; i < entries.size(); ++i) {
        shard->buckets[KeyOf(entries[i].primary, entries[i].secondary)]
            .push_back(i);
    }
}

void
PruneIndex::Record(SubsumptionStore *store, size_t publisher,
                   uint64_t payload, const PruneFpVec &primary,
                   const PruneFpVec &secondary)
{
    const PruneFp key = KeyOf(primary, secondary);
    SubsumptionStore::Shard &shard = ShardFor(*store, key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto bucket = shard.buckets.find(key);
    if (bucket != shard.buckets.end()) {
        for (uint32_t idx : bucket->second) {
            Entry &e = shard.entries[idx];
            if (e.payload == payload && e.primary == primary &&
                e.secondary == secondary) {
                // Re-discovery is the activity signal: a core proven
                // again was worth keeping.
                ++e.activity;
                return;
            }
        }
    }
    if (store->per_shard_cap != 0 &&
        shard.entries.size() >= store->per_shard_cap) {
        EvictHalf(store, &shard);
    }
    Entry entry;
    entry.primary = primary;
    entry.secondary = secondary;
    entry.payload = payload;
    entry.publisher = publisher;
    entry.stamp = shard.next_stamp++;
    shard.buckets[key].push_back(
        static_cast<uint32_t>(shard.entries.size()));
    shard.entries.push_back(std::move(entry));
    store->live.fetch_add(1, std::memory_order_relaxed);
}

bool
PruneIndex::Probe(SubsumptionStore *store, size_t consumer,
                  const PruneFpVec &primary_set,
                  const PruneFpVec &secondary_set, uint64_t *payload,
                  std::atomic<int64_t> *hit_counter)
{
    // Candidate bucket keys: an entry's key is its smallest primary
    // (else secondary) fingerprint, which must be contained in the
    // query for subsumption, so probing every query fingerprint (plus
    // the empty-core key) covers all possible hits.
    auto probe_key = [&](const PruneFp &key) -> bool {
        SubsumptionStore::Shard &shard = ShardFor(*store, key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto bucket = shard.buckets.find(key);
        if (bucket == shard.buckets.end())
            return false;
        for (uint32_t idx : bucket->second) {
            Entry &e = shard.entries[idx];
            if (std::includes(primary_set.begin(), primary_set.end(),
                              e.primary.begin(), e.primary.end()) &&
                std::includes(secondary_set.begin(), secondary_set.end(),
                              e.secondary.begin(), e.secondary.end())) {
                ++e.activity;
                if (payload != nullptr)
                    *payload = e.payload;
                hit_counter->fetch_add(1, std::memory_order_relaxed);
                if (e.publisher != consumer) {
                    ++e.cross_hits;
                    cross_hits_.fetch_add(1, std::memory_order_relaxed);
                }
                return true;
            }
        }
        return false;
    };
    for (const PruneFp &fp : primary_set)
        if (probe_key(fp))
            return true;
    for (const PruneFp &fp : secondary_set)
        if (probe_key(fp))
            return true;
    return probe_key(PruneFp{0, 0});
}

void
PruneIndex::RecordCore(size_t publisher, const PruneFpVec &primary,
                       const PruneFpVec &secondary)
{
    cores_recorded_.fetch_add(1, std::memory_order_relaxed);
    Record(&cores_, publisher, 0, primary, secondary);
}

bool
PruneIndex::SubsumesCore(size_t consumer, const PruneFpVec &primary_set,
                         const PruneFpVec &secondary_set)
{
    core_probes_.fetch_add(1, std::memory_order_relaxed);
    return Probe(&cores_, consumer, primary_set, secondary_set, nullptr,
                 &core_hits_);
}

void
PruneIndex::RecordFieldCore(size_t publisher, uint64_t field_token,
                            const PruneFpVec &path_part,
                            const PruneFpVec &match_part)
{
    overlay_recorded_.fetch_add(1, std::memory_order_relaxed);
    Record(&overlay_, publisher, field_token, path_part, match_part);
}

bool
PruneIndex::OverlaySubsumes(size_t consumer, const PruneFpVec &path_set,
                            const PruneFpVec &match_set,
                            uint64_t *field_token)
{
    overlay_probes_.fetch_add(1, std::memory_order_relaxed);
    // The overlay is consulted on every match query but only ever
    // populated when a single-independent-field core is found; on
    // protocols where that never happens every probe used to hash the
    // query fingerprints and take a stripe lock just to scan nothing.
    // One relaxed load answers the common empty case instead (a racing
    // insert missed here would at worst have been a hit; missing it is
    // indistinguishable from probing before the insert).
    if (overlay_.live.load(std::memory_order_relaxed) == 0)
        return false;
    return Probe(&overlay_, consumer, path_set, match_set, field_token,
                 &overlay_hits_);
}

uint64_t
PruneIndex::ChainHash(const PruneFpVec &fps)
{
    // Order-dependent chain over the sorted vector: far more
    // collision-resistant than an additive key, and deterministic
    // across contexts because the fingerprints themselves are.
    uint64_t h = 0xcbf29ce484222325ull + 0x9e3779b9ull * fps.size();
    for (const PruneFp &fp : fps) {
        h = (h ^ fp.first) * 0x100000001b3ull;
        h = (h ^ fp.second) * 0x100000001b3ull;
    }
    return h;
}

bool
PruneIndex::PutQueryCore(const PruneFpVec &query_fps,
                         const PruneFpVec &core_fps)
{
    const uint64_t key = ChainHash(query_fps);
    QueryCoreShard &shard =
        *query_cores_[static_cast<size_t>(key) % query_cores_.size()];
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (query_core_shard_cap_ != 0 &&
        shard.map.size() >= query_core_shard_cap_ &&
        shard.map.find(key) == shard.map.end()) {
        // Reduce by (activity, stamp), the same ReduceDB rule as the
        // subsumption stores, keeping this store's policy fraction.
        std::vector<std::pair<uint64_t, const QueryCoreEntry *>> scored;
        scored.reserve(shard.map.size());
        for (const auto &[k, e] : shard.map)
            scored.emplace_back(k, &e);
        std::sort(scored.begin(), scored.end(),
                  [](const auto &a, const auto &b) {
                      if (a.second->activity != b.second->activity)
                          return a.second->activity > b.second->activity;
                      return a.second->stamp > b.second->stamp;
                  });
        const size_t keep = KeepTarget(
            scored.size(), config_.query_core_policy.keep_fraction);
        std::unordered_map<uint64_t, QueryCoreEntry> kept;
        kept.reserve(keep);
        for (size_t i = 0; i < keep; ++i)
            kept.emplace(scored[i].first, *scored[i].second);
        evictions_.fetch_add(
            static_cast<int64_t>(shard.map.size() - keep),
            std::memory_order_relaxed);
        shard.map = std::move(kept);
    }
    auto [it, inserted] = shard.map.try_emplace(key);
    if (!inserted)
        return false;  // first writer wins (any core proves the verdict)
    it->second.query = query_fps;
    it->second.core = core_fps;
    it->second.stamp = shard.next_stamp++;
    return true;
}

void
PruneIndex::RecordQueryCore(const PruneFpVec &query_fps,
                            const PruneFpVec &core_fps)
{
    if (PutQueryCore(query_fps, core_fps))
        query_cores_recorded_.fetch_add(1, std::memory_order_relaxed);
}

bool
PruneIndex::LookupQueryCore(const PruneFpVec &query_fps,
                            PruneFpVec *core_fps)
{
    const uint64_t key = ChainHash(query_fps);
    QueryCoreShard &shard =
        *query_cores_[static_cast<size_t>(key) % query_cores_.size()];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end() || it->second.query != query_fps)
        return false;
    ++it->second.activity;
    query_core_hits_.fetch_add(1, std::memory_order_relaxed);
    if (core_fps != nullptr)
        *core_fps = it->second.core;
    return true;
}

void
PruneIndex::ExportStore(const SubsumptionStore &store,
                        std::vector<ExportedEntry> *out)
{
    for (const auto &shard : store.shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (const Entry &e : shard->entries) {
            ExportedEntry exported;
            exported.primary = e.primary;
            exported.secondary = e.secondary;
            exported.payload = e.payload;
            out->push_back(std::move(exported));
        }
    }
}

void
PruneIndex::ExportCores(std::vector<ExportedEntry> *out) const
{
    ExportStore(cores_, out);
}

void
PruneIndex::ExportOverlay(std::vector<ExportedEntry> *out) const
{
    ExportStore(overlay_, out);
}

void
PruneIndex::ExportQueryCores(std::vector<ExportedQueryCore> *out) const
{
    for (const auto &shard : query_cores_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (const auto &[key, e] : shard->map) {
            ExportedQueryCore exported;
            exported.query = e.query;
            exported.core = e.core;
            out->push_back(std::move(exported));
        }
    }
}

void
PruneIndex::ImportCores(const std::vector<ExportedEntry> &entries)
{
    for (const ExportedEntry &e : entries) {
        Record(&cores_, kImportedPublisher, e.payload, e.primary,
               e.secondary);
        imported_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
PruneIndex::ImportOverlay(const std::vector<ExportedEntry> &entries)
{
    for (const ExportedEntry &e : entries) {
        Record(&overlay_, kImportedPublisher, e.payload, e.primary,
               e.secondary);
        imported_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
PruneIndex::ImportQueryCores(const std::vector<ExportedQueryCore> &entries)
{
    for (const ExportedQueryCore &e : entries) {
        PutQueryCore(e.query, e.core);
        imported_.fetch_add(1, std::memory_order_relaxed);
    }
}

size_t
PruneIndex::StoreSize(const SubsumptionStore &store)
{
    size_t total = 0;
    for (const auto &shard : store.shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->entries.size();
    }
    return total;
}

size_t
PruneIndex::core_entries() const
{
    return StoreSize(cores_);
}

size_t
PruneIndex::overlay_entries() const
{
    return StoreSize(overlay_);
}

size_t
PruneIndex::query_core_entries() const
{
    size_t total = 0;
    for (const auto &shard : query_cores_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->map.size();
    }
    return total;
}

void
PruneIndex::ExportStats(StatsRegistry *stats) const
{
    stats->Bump("prune.cores_recorded", Load(cores_recorded_));
    stats->Bump("prune.core_hits", Load(core_hits_));
    stats->Bump("prune.core_probes", Load(core_probes_));
    stats->Bump("prune.overlay_probes", Load(overlay_probes_));
    stats->Bump("prune.overlay_edges", Load(overlay_recorded_));
    stats->Bump("prune.overlay_hits", Load(overlay_hits_));
    stats->Bump("prune.query_cores_recorded",
                Load(query_cores_recorded_));
    stats->Bump("prune.query_core_hits", Load(query_core_hits_));
    stats->Bump("prune.cross_worker_hits", Load(cross_hits_));
    stats->Bump("prune.evictions", Load(evictions_));
    stats->Bump("prune.hot_exemptions", Load(hot_exemptions_));
    stats->Bump("prune.imported", Load(imported_));
    // Bumped, not Set: a run can export more than one index (the
    // ParallelEngine's shared instance plus the explorer's home one),
    // and the honest gauge is their sum -- a Set would let whichever
    // exports last clobber the other's entries.
    stats->Bump("prune.core_entries",
                static_cast<int64_t>(core_entries()));
    stats->Bump("prune.overlay_entries",
                static_cast<int64_t>(overlay_entries()));
    stats->Bump("prune.query_core_entries",
                static_cast<int64_t>(query_core_entries()));
}

}  // namespace exec
}  // namespace achilles
