// Achilles reproduction -- baselines.
//
// Black-box fuzzing baseline (paper Section 6.2): generate random
// messages, run them against the concrete server oracle, and count how
// many accepted / Trojan messages turn up. The paper's comparison is
// deliberately generous to the fuzzer -- it fuzzes only the same bytes
// Achilles analyzes -- and fuzzing still loses by orders of magnitude.

#ifndef ACHILLES_BASELINES_FUZZER_H_
#define ACHILLES_BASELINES_FUZZER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "support/rng.h"
#include "support/timer.h"

namespace achilles {
namespace baselines {

/** Outcome of a fuzzing campaign. */
struct FuzzResult
{
    uint64_t tests = 0;
    uint64_t accepted = 0;       ///< accepted by the server
    uint64_t trojans = 0;        ///< accepted and not client-generatable
    uint64_t false_positives = 0;///< accepted but not Trojan ("noise")
    double seconds = 0.0;

    double
    TestsPerMinute() const
    {
        return seconds <= 0.0 ? 0.0 : tests / (seconds / 60.0);
    }
};

/** Fuzzing campaign driver. */
class Fuzzer
{
  public:
    /** Produce the next random message. */
    using Generator = std::function<std::vector<uint8_t>(Rng *)>;
    /** Server acceptance oracle. */
    using Oracle = std::function<bool(const std::vector<uint8_t> &)>;

    Fuzzer(Generator generator, Oracle accepts, Oracle is_trojan,
           uint64_t seed = 1)
        : generator_(std::move(generator)), accepts_(std::move(accepts)),
          is_trojan_(std::move(is_trojan)), rng_(seed)
    {
    }

    /** Run `num_tests` random tests. */
    FuzzResult
    Run(uint64_t num_tests)
    {
        FuzzResult result;
        Timer timer;
        for (uint64_t i = 0; i < num_tests; ++i) {
            const std::vector<uint8_t> msg = generator_(&rng_);
            ++result.tests;
            if (!accepts_(msg))
                continue;
            ++result.accepted;
            if (is_trojan_(msg))
                ++result.trojans;
            else
                ++result.false_positives;
        }
        result.seconds = timer.Seconds();
        return result;
    }

  private:
    Generator generator_;
    Oracle accepts_;
    Oracle is_trojan_;
    Rng rng_;
};

/**
 * Analytical expectation: with `trojan_count` Trojans in a space of
 * `space_size` messages, the expected number of Trojans found by N
 * uniform random tests.
 */
inline double
ExpectedTrojansFound(double trojan_count, double space_size,
                     double num_tests)
{
    return num_tests * (trojan_count / space_size);
}

}  // namespace baselines
}  // namespace achilles

#endif  // ACHILLES_BASELINES_FUZZER_H_
