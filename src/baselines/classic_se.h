// Achilles reproduction -- baselines.
//
// Classic symbolic execution baseline (paper Section 6.2 / Table 1):
// run the server alone under vanilla symbolic execution, collect the
// accepting paths, and enumerate concrete messages satisfying each path
// by iterative model blocking. This is what a developer gets without
// Achilles: all accepted messages, Trojan and valid alike, with no way
// to tell them apart ("it is left to the developer to sift among the
// results").

#ifndef ACHILLES_BASELINES_CLASSIC_SE_H_
#define ACHILLES_BASELINES_CLASSIC_SE_H_

#include <vector>

#include "core/message.h"
#include "smt/solver.h"
#include "support/stats.h"
#include "symexec/engine.h"

namespace achilles {
namespace baselines {

/** Configuration for the classic-SE baseline. */
struct ClassicSeConfig
{
    /** engine.num_workers > 1 runs the exploration on the
     *  exec::ParallelEngine work-stealing pool. */
    symexec::EngineConfig engine;
    /** Max concrete messages enumerated per accepting path. */
    size_t enumerate_per_path = 1;
};

/** Result of the baseline run. */
struct ClassicSeResult
{
    /** All accepting server paths. */
    std::vector<symexec::PathResult> accepting_paths;
    /** Concrete messages produced (per path, model-blocked). */
    std::vector<std::vector<uint8_t>> messages;
    /** Exploration time only (what the paper's "2 minutes" measures). */
    double exploration_seconds = 0.0;
    /** Exploration + per-path message enumeration. */
    double seconds = 0.0;
    StatsRegistry stats;
};

/**
 * Run vanilla symbolic execution of the server and enumerate accepted
 * messages. Enumeration blocks previous models on the *analyzed*
 * (unmasked) bytes only, so masked header fields do not inflate the
 * count.
 */
ClassicSeResult RunClassicSe(smt::ExprContext *ctx, smt::Solver *solver,
                             const symexec::Program *server,
                             const core::MessageLayout &layout,
                             const ClassicSeConfig &config = {});

}  // namespace baselines
}  // namespace achilles

#endif  // ACHILLES_BASELINES_CLASSIC_SE_H_
