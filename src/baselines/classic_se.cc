// Achilles reproduction -- baselines.

#include "baselines/classic_se.h"

#include "exec/worker.h"
#include "smt/eval.h"
#include "support/timer.h"

namespace achilles {
namespace baselines {

ClassicSeResult
RunClassicSe(smt::ExprContext *ctx, smt::Solver *solver,
             const symexec::Program *server,
             const core::MessageLayout &layout,
             const ClassicSeConfig &config)
{
    ClassicSeResult result;
    Timer timer;

    // Fresh symbolic message.
    std::vector<smt::ExprRef> message;
    for (uint32_t i = 0; i < layout.length(); ++i)
        message.push_back(ctx->FreshVar("msg", 8));

    std::vector<symexec::PathResult> paths =
        exec::RunExploration(ctx, solver, server, symexec::Mode::kServer,
                             config.engine, message, &result.stats);
    result.exploration_seconds = timer.Seconds();

    // Analyzed byte offsets (model blocking is restricted to these).
    std::vector<uint32_t> analyzed;
    for (const core::FieldSpec &f : layout.AnalyzedFields())
        for (uint32_t k = 0; k < f.size; ++k)
            analyzed.push_back(f.offset + k);

    for (symexec::PathResult &path : paths) {
        if (path.outcome != symexec::PathOutcome::kAccepted)
            continue;
        result.accepting_paths.push_back(path);

        std::vector<smt::ExprRef> query = path.constraints;
        for (size_t n = 0; n < config.enumerate_per_path; ++n) {
            smt::Model model;
            if (solver->CheckSat(query, &model) !=
                smt::CheckResult::kSat) {
                break;
            }
            std::vector<uint8_t> concrete;
            concrete.reserve(message.size());
            for (smt::ExprRef byte : message)
                concrete.push_back(
                    static_cast<uint8_t>(smt::Evaluate(byte, model)));
            result.messages.push_back(std::move(concrete));
            result.stats.Bump("classic.messages");

            // Block this assignment of the analyzed bytes to force a
            // distinct next message.
            std::vector<smt::ExprRef> differs;
            for (uint32_t off : analyzed) {
                const uint64_t v = smt::Evaluate(message[off], model);
                differs.push_back(ctx->MakeNe(
                    message[off], ctx->MakeConst(8, v)));
            }
            query.push_back(ctx->MakeOrList(differs));
        }
    }
    result.seconds = timer.Seconds();
    return result;
}

}  // namespace baselines
}  // namespace achilles
