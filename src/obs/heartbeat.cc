// Achilles reproduction -- observability layer.

#include "obs/heartbeat.h"

#include <chrono>
#include <cstdio>

#include "obs/log.h"

namespace achilles {
namespace obs {

namespace {

/** Read one aggregated value by name (counter or gauge; 0 if absent). */
int64_t
ValueOf(const std::map<std::string, MetricSnapshot> &agg,
        const std::string &name)
{
    const auto it = agg.find(name);
    return it == agg.end() ? 0 : it->second.value;
}

double
Percent(int64_t hits, int64_t total)
{
    return total > 0 ? 100.0 * static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
}

}  // namespace

std::string
HeartbeatSample::Format() const
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "progress t=%.1fs states=%lld frontier=%lld queries=%lld "
        "(%.1f/s) cache=%.1f%% prune=%.1f%% overlay=%.1f%% "
        "lemmas=%lld/%lld unknown=%.1f%%",
        elapsed_seconds, static_cast<long long>(states_explored),
        static_cast<long long>(frontier), static_cast<long long>(queries),
        queries_per_sec, cache_hit_rate, prune_hit_rate, overlay_hit_rate,
        static_cast<long long>(lemmas_published),
        static_cast<long long>(lemmas_fetched), unknown_rate);
    return buf;
}

Heartbeat::Heartbeat(const MetricsRegistry *registry,
                     double interval_seconds, Sink sink)
    : registry_(registry),
      interval_seconds_(interval_seconds > 0.05 ? interval_seconds : 0.05),
      sink_(std::move(sink))
{
    if (!sink_) {
        sink_ = [](const HeartbeatSample &sample) {
            LogInfo(sample.Format());
        };
    }
}

Heartbeat::~Heartbeat() { Stop(); }

void
Heartbeat::Start()
{
    if (registry_ == nullptr || running_)
        return;
    start_time_ = std::chrono::steady_clock::now();
    last_time_ = start_time_;
    last_queries_ = 0;
    stop_ = false;
    running_ = true;
    thread_ = std::thread([this] { Loop(); });
}

void
Heartbeat::Stop()
{
    if (!running_)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    running_ = false;
    // One final sample so runs shorter than the interval still report.
    sink_(Sample());
}

HeartbeatSample
Heartbeat::Sample()
{
    const auto now = std::chrono::steady_clock::now();
    const auto agg = registry_->Aggregate();

    HeartbeatSample s;
    s.elapsed_seconds =
        std::chrono::duration<double>(now - start_time_).count();
    s.states_explored = ValueOf(agg, "engine.steps");
    s.frontier = ValueOf(agg, "engine.frontier");
    s.queries = ValueOf(agg, "solver.queries");

    const double tick_seconds =
        std::chrono::duration<double>(now - last_time_).count();
    if (tick_seconds > 1e-6)
        s.queries_per_sec =
            static_cast<double>(s.queries - last_queries_) / tick_seconds;
    last_time_ = now;
    last_queries_ = s.queries;

    const int64_t cache_hits = ValueOf(agg, "cache.hits");
    s.cache_hit_rate =
        Percent(cache_hits, cache_hits + ValueOf(agg, "cache.misses"));
    s.prune_hit_rate = Percent(ValueOf(agg, "prune.core_hits"),
                               ValueOf(agg, "prune.core_probes"));
    s.overlay_hit_rate = Percent(ValueOf(agg, "prune.overlay_hits"),
                                 ValueOf(agg, "prune.overlay_probes"));
    s.lemmas_published = ValueOf(agg, "lemmas.published");
    s.lemmas_fetched = ValueOf(agg, "lemmas.fetched");
    s.unknown_rate = Percent(ValueOf(agg, "solver.unknowns"), s.queries);
    return s;
}

void
Heartbeat::Loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto interval = std::chrono::duration<double>(interval_seconds_);
    while (!stop_) {
        if (cv_.wait_for(lock, interval, [this] { return stop_; }))
            break;
        // Sampling reads only aggregated shard snapshots; drop the lock
        // so Stop() is never blocked behind a slow sink.
        lock.unlock();
        sink_(Sample());
        lock.lock();
    }
}

}  // namespace obs
}  // namespace achilles
