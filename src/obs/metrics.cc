// Achilles reproduction -- observability layer.

#include "obs/metrics.h"

#include <algorithm>
#include <limits>

namespace achilles {
namespace obs {

/** One distribution's per-shard accumulator. All fields are atomic so
 *  the sampler thread can read mid-run and an off-lane writer is merely
 *  slow, never racy. min/max use CAS; count/sum use fetch_add. */
struct MetricsRegistry::DistSlot
{
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{std::numeric_limits<int64_t>::max()};
    std::atomic<int64_t> max{std::numeric_limits<int64_t>::min()};
};

/** Per-shard slot storage. Deques give pointer stability under growth,
 *  so a handle captured at registration stays valid for the registry's
 *  lifetime while later registrations extend the tables. */
struct MetricsRegistry::Shard
{
    std::deque<std::atomic<int64_t>> counters;
    std::deque<DistSlot> dists;
};

void
MetricsRegistry::Distribution::Record(int64_t value)
{
    if (slot_ == nullptr)
        return;
    slot_->count.fetch_add(1, std::memory_order_relaxed);
    slot_->sum.fetch_add(value, std::memory_order_relaxed);
    int64_t seen = slot_->min.load(std::memory_order_relaxed);
    while (value < seen &&
           !slot_->min.compare_exchange_weak(seen, value,
                                             std::memory_order_relaxed)) {
    }
    seen = slot_->max.load(std::memory_order_relaxed);
    while (value > seen &&
           !slot_->max.compare_exchange_weak(seen, value,
                                             std::memory_order_relaxed)) {
    }
}

MetricsRegistry::MetricsRegistry(size_t num_shards)
{
    if (num_shards < 1)
        num_shards = 1;
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

MetricsRegistry::~MetricsRegistry() = default;

uint32_t
MetricsRegistry::Intern(const std::string &name, Kind kind)
{
    auto it = ids_.find(name);
    if (it != ids_.end())
        return it->second;
    const uint32_t id = static_cast<uint32_t>(names_.size());
    ids_.emplace(name, id);
    names_.push_back(name);
    kinds_.push_back(kind);
    // Per-kind dense slot indices: the metric id indexes names_/kinds_;
    // each shard's slot table is extended lazily below.
    for (auto &shard : shards_) {
        if (kind == Kind::kCounter)
            shard->counters.emplace_back(0);
        else
            shard->dists.emplace_back();
    }
    return id;
}

MetricsRegistry::Counter
MetricsRegistry::GetCounter(size_t shard, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const uint32_t id = Intern(name, Kind::kCounter);
    if (kinds_[id] != Kind::kCounter)
        return Counter();  // name already taken by a distribution
    // Count how many counters precede this id: slot tables are dense
    // per kind, in interning order.
    size_t slot = 0;
    for (uint32_t i = 0; i < id; ++i)
        slot += kinds_[i] == Kind::kCounter ? 1 : 0;
    return Counter(&shards_[shard % shards_.size()]->counters[slot]);
}

MetricsRegistry::Distribution
MetricsRegistry::GetDistribution(size_t shard, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const uint32_t id = Intern(name, Kind::kDistribution);
    if (kinds_[id] != Kind::kDistribution)
        return Distribution();
    size_t slot = 0;
    for (uint32_t i = 0; i < id; ++i)
        slot += kinds_[i] == Kind::kDistribution ? 1 : 0;
    return Distribution(&shards_[shard % shards_.size()]->dists[slot]);
}

void
MetricsRegistry::RegisterGauge(const std::string &name,
                               std::function<int64_t()> read)
{
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[name] = std::move(read);
}

std::map<std::string, MetricSnapshot>
MetricsRegistry::Aggregate() const
{
    // The registration mutex is held for the whole fold: it orders this
    // read against concurrent slot-table growth (Intern's emplace_back).
    // Bump paths never take it -- slot values are read with relaxed
    // loads, so live workers are not blocked, only later registrations
    // (cold, component-construction-time) briefly are. Gauge callbacks
    // run under the lock and must not re-enter the registry.
    std::lock_guard<std::mutex> lock(mutex_);

    std::map<std::string, MetricSnapshot> out;
    size_t counter_slot = 0;
    size_t dist_slot = 0;
    for (size_t id = 0; id < names_.size(); ++id) {
        MetricSnapshot snap;
        if (kinds_[id] == Kind::kCounter) {
            snap.kind = MetricSnapshot::Kind::kCounter;
            for (const auto &shard : shards_) {
                snap.value += shard->counters[counter_slot].load(
                    std::memory_order_relaxed);
            }
            ++counter_slot;
        } else {
            snap.kind = MetricSnapshot::Kind::kDistribution;
            DistSnapshot &d = snap.dist;
            for (const auto &shard : shards_) {
                const DistSlot &s = shard->dists[dist_slot];
                const int64_t count =
                    s.count.load(std::memory_order_relaxed);
                if (count == 0)
                    continue;
                const int64_t lo = s.min.load(std::memory_order_relaxed);
                const int64_t hi = s.max.load(std::memory_order_relaxed);
                if (d.count == 0) {
                    d.min = lo;
                    d.max = hi;
                } else {
                    d.min = std::min(d.min, lo);
                    d.max = std::max(d.max, hi);
                }
                d.count += count;
                d.sum += s.sum.load(std::memory_order_relaxed);
            }
            ++dist_slot;
        }
        out.emplace(names_[id], snap);
    }
    for (const auto &[name, read] : gauges_) {
        MetricSnapshot snap;
        snap.kind = MetricSnapshot::Kind::kGauge;
        snap.value = read();
        out[name] = snap;
    }
    return out;
}

void
MetricsRegistry::Dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[name, snap] : Aggregate()) {
        if (snap.kind == MetricSnapshot::Kind::kDistribution) {
            os << prefix << name << " = {count=" << snap.dist.count
               << " sum=" << snap.dist.sum << " min=" << snap.dist.min
               << " max=" << snap.dist.max << "}\n";
        } else {
            os << prefix << name << " = " << snap.value << "\n";
        }
    }
}

}  // namespace obs
}  // namespace achilles
