// Achilles reproduction -- observability layer.
//
// Periodic progress heartbeat: a sampler thread that wakes every
// `interval_seconds`, folds the MetricsRegistry's shard snapshots
// (relaxed loads plus registered gauges -- it never touches worker
// structures), and reports one line of live run state:
//
//   states explored, frontier depth, queries + queries/sec, cache /
//   prune-index / overlay hit rates, lemma traffic, kUnknown rate
//
// Rates are deltas between consecutive samples. The line goes through
// the leveled logger by default (whole-line writes, run-id prefix); a
// test sink can capture it instead.

#ifndef ACHILLES_OBS_HEARTBEAT_H_
#define ACHILLES_OBS_HEARTBEAT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace achilles {
namespace obs {

/** One formatted sample (also handed to a custom sink for tests). */
struct HeartbeatSample
{
    double elapsed_seconds = 0.0;
    int64_t states_explored = 0;
    int64_t frontier = 0;
    int64_t queries = 0;
    double queries_per_sec = 0.0;
    double cache_hit_rate = 0.0;    ///< shared query cache, percent
    double prune_hit_rate = 0.0;    ///< prune-index core probes, percent
    double overlay_hit_rate = 0.0;  ///< differentFrom overlay, percent
    int64_t lemmas_published = 0;
    int64_t lemmas_fetched = 0;
    double unknown_rate = 0.0;      ///< kUnknown verdicts, percent

    std::string Format() const;
};

/** The sampler. Start() spawns the thread; Stop() joins it (and emits
 *  one final sample so short runs still report). */
class Heartbeat
{
  public:
    using Sink = std::function<void(const HeartbeatSample &)>;

    /** `sink` defaults to logging the formatted line at info level. */
    Heartbeat(const MetricsRegistry *registry, double interval_seconds,
              Sink sink = nullptr);
    ~Heartbeat();

    Heartbeat(const Heartbeat &) = delete;
    Heartbeat &operator=(const Heartbeat &) = delete;

    void Start();
    void Stop();

    /** Compute one sample from the registry's current aggregate
     *  (exposed for tests; Start/Stop drive it periodically). */
    HeartbeatSample Sample();

  private:
    void Loop();

    const MetricsRegistry *registry_;
    double interval_seconds_;
    Sink sink_;

    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    bool running_ = false;
    std::thread thread_;

    /** Previous sample state for rate deltas. */
    std::chrono::steady_clock::time_point start_time_;
    std::chrono::steady_clock::time_point last_time_;
    int64_t last_queries_ = 0;
};

}  // namespace obs
}  // namespace achilles

#endif  // ACHILLES_OBS_HEARTBEAT_H_
