// Achilles reproduction -- observability layer.
//
// ObsHandle: the one struct threaded through the pipeline's config
// objects (AchillesConfig, EngineConfig, SolverConfig) to turn
// instrumentation on. It is a pair of non-owning pointers plus a lane
// number:
//
//   registry  the run-wide sharded MetricsRegistry (null = metrics off)
//   tracer    the Chrome-trace recorder (null = tracing off)
//   lane      this consumer's shard/track index: 0 for the main or
//             pipeline thread, 1 + w for parallel worker w
//
// Copying a handle is how it propagates: the parallel engine copies the
// home config's handle into each worker config with ForLane(1 + w), so
// every layer running on that worker bumps its own metric shard and
// writes its own trace track. A default-constructed handle (both
// pointers null) makes every instrumentation site inert behind a single
// branch -- the zero-cost-when-disabled contract.

#ifndef ACHILLES_OBS_OBS_H_
#define ACHILLES_OBS_OBS_H_

#include <cstddef>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace achilles {
namespace obs {

struct ObsHandle
{
    MetricsRegistry *registry = nullptr;
    TraceRecorder *tracer = nullptr;
    size_t lane = 0;

    bool enabled() const { return registry != nullptr || tracer != nullptr; }
    bool metrics_on() const { return registry != nullptr; }
    bool tracing_on() const { return tracer != nullptr; }

    /** The same sinks, re-addressed to another lane. */
    ObsHandle
    ForLane(size_t new_lane) const
    {
        ObsHandle h = *this;
        h.lane = new_lane;
        return h;
    }

    /** Counter handle on this lane's shard (inert when metrics off). */
    MetricsRegistry::Counter
    CounterFor(const std::string &name) const
    {
        return registry != nullptr
                   ? registry->GetCounter(lane, name)
                   : MetricsRegistry::Counter();
    }

    /** Distribution handle on this lane's shard (inert when off). */
    MetricsRegistry::Distribution
    DistributionFor(const std::string &name) const
    {
        return registry != nullptr
                   ? registry->GetDistribution(lane, name)
                   : MetricsRegistry::Distribution();
    }
};

}  // namespace obs
}  // namespace achilles

#endif  // ACHILLES_OBS_OBS_H_
