// Achilles reproduction -- observability layer.

#include "obs/run_report.h"

#include <cmath>
#include <cstdio>

namespace achilles {
namespace obs {

void
RunReport::Set(const std::string &name, double value)
{
    const auto it = index_.find(name);
    if (it != index_.end()) {
        metrics_[it->second].second = value;
        return;
    }
    index_.emplace(name, metrics_.size());
    metrics_.emplace_back(name, value);
}

double
RunReport::Get(const std::string &name, bool *found) const
{
    const auto it = index_.find(name);
    if (found != nullptr)
        *found = it != index_.end();
    return it == index_.end() ? 0.0 : metrics_[it->second].second;
}

void
RunReport::Add(const LocalStats &stats)
{
    for (const auto &[name, value] : stats.All())
        Set(name, static_cast<double>(value));
}

void
RunReport::Add(const MetricsRegistry &registry)
{
    for (const auto &[name, snap] : registry.Aggregate()) {
        if (snap.kind == MetricSnapshot::Kind::kDistribution) {
            Set(name + ".count", static_cast<double>(snap.dist.count));
            Set(name + ".sum", static_cast<double>(snap.dist.sum));
            if (snap.dist.count > 0) {
                Set(name + ".min", static_cast<double>(snap.dist.min));
                Set(name + ".max", static_cast<double>(snap.dist.max));
                Set(name + ".mean", snap.dist.Mean());
            }
        } else {
            Set(name, static_cast<double>(snap.value));
        }
    }
}

void
RunReport::AddTrace(const TraceRecorder &recorder)
{
    Set("obs.trace_events", static_cast<double>(recorder.TotalRetained()));
    Set("obs.trace_dropped", static_cast<double>(recorder.TotalDropped()));
}

namespace {

/** Format a value: integers without a decimal point, the rest with
 *  enough digits to round-trip rates and means. */
void
WriteNumber(std::ostream &os, double value)
{
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 9.0e15) {
        os << static_cast<long long>(value);
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    os << buf;
}

}  // namespace

void
RunReport::WriteJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const auto &[name, value] : metrics_) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << name << "\":";
        WriteNumber(os, value);
    }
    os << "}";
}

void
RunReport::Dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[name, value] : metrics_) {
        os << prefix << name << " = ";
        WriteNumber(os, value);
        os << "\n";
    }
}

}  // namespace obs
}  // namespace achilles
