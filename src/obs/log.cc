// Achilles reproduction -- observability layer.

#include "obs/log.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace achilles {
namespace obs {

namespace {

LogLevel
ParseThreshold()
{
    const char *env = std::getenv("ACHILLES_LOG");
    if (env == nullptr || *env == '\0')
        return LogLevel::kInfo;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::kDebug;
    if (std::strcmp(env, "info") == 0)
        return LogLevel::kInfo;
    if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "warning") == 0)
        return LogLevel::kWarn;
    if (std::strcmp(env, "error") == 0)
        return LogLevel::kError;
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "none") == 0)
        return LogLevel::kOff;
    return LogLevel::kInfo;  // unknown value: keep the default
}

const char *
LevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
      case LogLevel::kOff: return "off";
    }
    return "?";
}

thread_local int g_worker_id = -1;

}  // namespace

LogLevel
LogThreshold()
{
    static const LogLevel threshold = ParseThreshold();
    return threshold;
}

uint64_t
LogRunId()
{
    // Derived once from the wall clock: distinct across runs, stable
    // within one, short enough to grep for.
    static const uint64_t run_id = [] {
        const auto now =
            std::chrono::system_clock::now().time_since_epoch();
        const uint64_t ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now)
                .count());
        uint64_t h = ns * 0x9e3779b97f4a7c15ull;
        h ^= h >> 32;
        return h & 0xffffffull;
    }();
    return run_id;
}

void
SetLogWorkerId(int worker_id)
{
    g_worker_id = worker_id;
}

int
LogWorkerId()
{
    return g_worker_id;
}

void
LogWrite(LogLevel level, const std::string &message)
{
    if (!LogEnabled(level) || level == LogLevel::kOff)
        return;
    // One buffer, one fwrite: stderr is unbuffered, so the whole line
    // reaches the fd in a single write and concurrent workers cannot
    // splice fragments into each other's lines.
    char prefix[64];
    if (g_worker_id >= 0) {
        std::snprintf(prefix, sizeof(prefix),
                      "[achilles %06llx w%d] %s: ",
                      static_cast<unsigned long long>(LogRunId()),
                      g_worker_id, LevelName(level));
    } else {
        std::snprintf(prefix, sizeof(prefix), "[achilles %06llx w-] %s: ",
                      static_cast<unsigned long long>(LogRunId()),
                      LevelName(level));
    }
    std::string line;
    line.reserve(std::strlen(prefix) + message.size() + 1);
    line += prefix;
    line += message;
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace obs
}  // namespace achilles
