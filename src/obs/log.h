// Achilles reproduction -- observability layer.
//
// Leveled logger with a run-id/worker-id prefix. The old support
// idiom -- raw `std::cerr <<` from whatever thread noticed something --
// interleaves partial lines as soon as workers run concurrently; this
// logger assembles each message into one buffer and hands it to stderr
// in a single write, prefixed
//
//   [achilles <run-id> w<worker-id>] <level>: <message>
//
// so concurrent workers produce whole, attributable lines. The worker
// id is a thread-local lane tag set by the exec layer (w- for the main
// thread). The threshold comes from the ACHILLES_LOG environment
// variable (debug|info|warn|error|off, default info), read once.

#ifndef ACHILLES_OBS_LOG_H_
#define ACHILLES_OBS_LOG_H_

#include <cstdint>
#include <string>

namespace achilles {
namespace obs {

enum class LogLevel : int {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
    kOff = 4,
};

/** The active threshold (ACHILLES_LOG override, default kInfo). */
LogLevel LogThreshold();

/** True when `level` messages currently print. */
inline bool
LogEnabled(LogLevel level)
{
    return static_cast<int>(level) >= static_cast<int>(LogThreshold());
}

/** This process's run id (stable for the process lifetime). */
uint64_t LogRunId();

/** Tag the calling thread's log lines with a worker id (-1 = main). */
void SetLogWorkerId(int worker_id);
int LogWorkerId();

/** RAII worker-id tag for the exec layer's worker loops. */
class ScopedLogWorkerId
{
  public:
    explicit ScopedLogWorkerId(int worker_id) : prev_(LogWorkerId())
    {
        SetLogWorkerId(worker_id);
    }
    ~ScopedLogWorkerId() { SetLogWorkerId(prev_); }

  private:
    int prev_;
};

/** Emit one whole prefixed line (a trailing newline is appended). */
void LogWrite(LogLevel level, const std::string &message);

inline void
LogDebug(const std::string &message)
{
    LogWrite(LogLevel::kDebug, message);
}
inline void
LogInfo(const std::string &message)
{
    LogWrite(LogLevel::kInfo, message);
}
inline void
LogWarn(const std::string &message)
{
    LogWrite(LogLevel::kWarn, message);
}
inline void
LogError(const std::string &message)
{
    LogWrite(LogLevel::kError, message);
}

}  // namespace obs
}  // namespace achilles

#endif  // ACHILLES_OBS_LOG_H_
