// Achilles reproduction -- observability layer.
//
// RunReport: the end-of-run observability summary folded into
// AchillesResult, every bench `--json` record (as a nested "metrics"
// object) and the `achilles_cli --metrics-out` dump. A flat, ordered
// name -> double map: counters and gauges keep their dotted names,
// distributions flatten to `<name>.count/.sum/.min/.max/.mean`, and
// trace accounting lands under `obs.trace_events` / `obs.trace_dropped`.

#ifndef ACHILLES_OBS_RUN_REPORT_H_
#define ACHILLES_OBS_RUN_REPORT_H_

#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace achilles {
namespace obs {

class RunReport
{
  public:
    /** Name -> value entries in insertion order (names deduplicated:
     *  re-setting a name overwrites in place). */
    const std::vector<std::pair<std::string, double>> &
    metrics() const
    {
        return metrics_;
    }

    bool empty() const { return metrics_.empty(); }

    /** Set one entry (overwrites an existing name). */
    void Set(const std::string &name, double value);

    /** Read one entry; 0 if absent (`found` reports presence). */
    double Get(const std::string &name, bool *found = nullptr) const;

    /** Fold a merge-at-join counter bag in (names kept verbatim). */
    void Add(const LocalStats &stats);

    /** Fold the live registry's aggregate in, flattening
     *  distributions to .count/.sum/.min/.max/.mean. */
    void Add(const MetricsRegistry &registry);

    /** Record trace volume: obs.trace_events (retained) and
     *  obs.trace_dropped (ring overwrites). */
    void AddTrace(const TraceRecorder &recorder);

    /**
     * Emit the report as one JSON object, `{"name": value, ...}` in
     * entry order. Integral values print without a decimal point so
     * counter-derived entries stay greppable as integers.
     */
    void WriteJson(std::ostream &os) const;

    /** Pretty-print, one `name = value` line per entry. */
    void Dump(std::ostream &os, const std::string &prefix = "") const;

  private:
    std::vector<std::pair<std::string, double>> metrics_;
    std::unordered_map<std::string, size_t> index_;
};

}  // namespace obs
}  // namespace achilles

#endif  // ACHILLES_OBS_RUN_REPORT_H_
