// Achilles reproduction -- observability layer.
//
// Scoped-span tracer emitting Chrome trace-event JSON (open the file in
// chrome://tracing or https://ui.perfetto.dev). One track per worker
// thread (track 0 is the main/pipeline thread, track 1+w is worker w),
// each backed by a fixed-capacity ring of complete-span events, so
// tracing is allocation-bounded: when a ring wraps, the oldest events
// are overwritten and counted as dropped -- recording never blocks and
// never allocates after construction.
//
// Writer discipline: each track is written by exactly one thread (its
// lane owner). The rings are only read after the traced threads have
// joined (WriteChromeTrace at run exit); the recorder makes no
// mid-run read guarantees and the heartbeat never touches it.
//
// Event names/categories/arg keys are `const char *` and must outlive
// the recorder -- string literals in practice; spans carry up to four
// integer args (conflicts, verdict codes, core sizes, budget spent).

#ifndef ACHILLES_OBS_TRACE_H_
#define ACHILLES_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace achilles {
namespace obs {

/** One recorded event: a complete span ("ph":"X") or, with
 *  duration < 0, an instant event ("ph":"i"). */
struct TraceEvent
{
    static constexpr size_t kMaxArgs = 4;

    const char *name = nullptr;
    const char *category = nullptr;
    int64_t start_us = 0;
    int64_t duration_us = 0;  ///< < 0 marks an instant event
    uint32_t num_args = 0;
    const char *arg_keys[kMaxArgs] = {};
    int64_t arg_values[kMaxArgs] = {};
    /** Optional string-valued arg (e.g. a verdict); key null = unused. */
    const char *str_arg_key = nullptr;
    const char *str_arg_value = nullptr;
};

/** The per-run recorder. */
class TraceRecorder
{
  public:
    /** `ring_capacity` events are retained per track. */
    TraceRecorder(size_t num_tracks, size_t ring_capacity = 1 << 15);
    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    size_t num_tracks() const { return tracks_.size(); }

    /** Microseconds since recorder construction (the trace epoch). */
    int64_t
    NowMicros() const
    {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   Clock::now() - epoch_)
            .count();
    }

    /** Record a complete event on `track` (wraps modulo num_tracks).
     *  Called by the track's owner thread only. */
    void Record(size_t track, const TraceEvent &event);

    /** Events overwritten by ring wrap-around on one track / overall. */
    int64_t DroppedOn(size_t track) const;
    int64_t TotalDropped() const;
    /** Events currently retained across all tracks. */
    int64_t TotalRetained() const;

    /**
     * Emit the Chrome trace-event JSON object. Call only after every
     * traced thread has joined. Tracks come out oldest-event-first with
     * thread-name metadata ("main" / "worker-N") and a per-track
     * `obs.trace_dropped` counter event when the ring wrapped.
     */
    void WriteChromeTrace(std::ostream &os) const;

  private:
    using Clock = std::chrono::steady_clock;

    struct Track
    {
        std::vector<TraceEvent> ring;
        /** Monotone publication count; events [head - retained, head)
         *  survive, where retained = min(head, ring.size()). */
        std::atomic<uint64_t> head{0};
    };

    Clock::time_point epoch_;
    size_t capacity_;
    std::vector<std::unique_ptr<Track>> tracks_;
};

/**
 * RAII span: captures the start time at construction, records on
 * destruction. Inert (no clock reads, no recording) when constructed
 * with a null recorder, so instrumentation sites pay one branch when
 * tracing is off.
 */
class ScopedSpan
{
  public:
    ScopedSpan(TraceRecorder *recorder, size_t track, const char *name,
               const char *category)
        : recorder_(recorder)
    {
        if (recorder_ == nullptr)
            return;
        track_ = track;
        event_.name = name;
        event_.category = category;
        event_.start_us = recorder_->NowMicros();
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Attach an integer arg (ignored beyond TraceEvent::kMaxArgs). */
    void
    AddArg(const char *key, int64_t value)
    {
        if (recorder_ == nullptr ||
            event_.num_args >= TraceEvent::kMaxArgs)
            return;
        event_.arg_keys[event_.num_args] = key;
        event_.arg_values[event_.num_args] = value;
        ++event_.num_args;
    }

    /** Attach the string arg (e.g. "verdict": "unsat"). */
    void
    SetStrArg(const char *key, const char *value)
    {
        if (recorder_ == nullptr)
            return;
        event_.str_arg_key = key;
        event_.str_arg_value = value;
    }

    ~ScopedSpan()
    {
        if (recorder_ == nullptr)
            return;
        event_.duration_us = recorder_->NowMicros() - event_.start_us;
        recorder_->Record(track_, event_);
    }

  private:
    TraceRecorder *recorder_;
    size_t track_ = 0;
    TraceEvent event_;
};

/** Record an instant event (a point-in-time marker with args). */
inline void
TraceInstant(TraceRecorder *recorder, size_t track, const char *name,
             const char *category, const char *key = nullptr,
             int64_t value = 0)
{
    if (recorder == nullptr)
        return;
    TraceEvent event;
    event.name = name;
    event.category = category;
    event.start_us = recorder->NowMicros();
    event.duration_us = -1;
    if (key != nullptr) {
        event.arg_keys[0] = key;
        event.arg_values[0] = value;
        event.num_args = 1;
    }
    recorder->Record(track, event);
}

}  // namespace obs
}  // namespace achilles

#endif  // ACHILLES_OBS_TRACE_H_
