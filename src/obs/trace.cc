// Achilles reproduction -- observability layer.

#include "obs/trace.h"

#include <algorithm>

namespace achilles {
namespace obs {

TraceRecorder::TraceRecorder(size_t num_tracks, size_t ring_capacity)
    : epoch_(Clock::now()),
      capacity_(ring_capacity < 1 ? 1 : ring_capacity)
{
    if (num_tracks < 1)
        num_tracks = 1;
    tracks_.reserve(num_tracks);
    for (size_t i = 0; i < num_tracks; ++i) {
        auto track = std::make_unique<Track>();
        track->ring.resize(capacity_);
        tracks_.push_back(std::move(track));
    }
}

void
TraceRecorder::Record(size_t track, const TraceEvent &event)
{
    Track &t = *tracks_[track % tracks_.size()];
    // Single writer per track: the plain load/store pair below is not a
    // race (the only other access is the relaxed DroppedOn read, which
    // tolerates any torn ordering of count vs slot).
    const uint64_t head = t.head.load(std::memory_order_relaxed);
    t.ring[head % capacity_] = event;
    t.head.store(head + 1, std::memory_order_release);
}

int64_t
TraceRecorder::DroppedOn(size_t track) const
{
    const Track &t = *tracks_[track % tracks_.size()];
    const uint64_t head = t.head.load(std::memory_order_acquire);
    return head > capacity_ ? static_cast<int64_t>(head - capacity_) : 0;
}

int64_t
TraceRecorder::TotalDropped() const
{
    int64_t total = 0;
    for (size_t i = 0; i < tracks_.size(); ++i)
        total += DroppedOn(i);
    return total;
}

int64_t
TraceRecorder::TotalRetained() const
{
    int64_t total = 0;
    for (const auto &t : tracks_) {
        const uint64_t head = t->head.load(std::memory_order_acquire);
        total += static_cast<int64_t>(
            std::min<uint64_t>(head, capacity_));
    }
    return total;
}

namespace {

/** Minimal JSON string escaping for event names (ASCII expected). */
void
WriteJsonString(std::ostream &os, const char *s)
{
    os << '"';
    for (; *s != '\0'; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20)
            os << ' ';
        else
            os << c;
    }
    os << '"';
}

}  // namespace

void
TraceRecorder::WriteChromeTrace(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    const auto comma = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    for (size_t tid = 0; tid < tracks_.size(); ++tid) {
        const Track &t = *tracks_[tid];
        const uint64_t head = t.head.load(std::memory_order_acquire);
        const uint64_t retained = std::min<uint64_t>(head, capacity_);
        if (retained == 0)
            continue;

        comma();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
           << tid << ",\"args\":{\"name\":\""
           << (tid == 0 ? std::string("main")
                        : "worker-" + std::to_string(tid - 1))
           << "\"}}";
        if (head > retained) {
            comma();
            os << "{\"name\":\"obs.trace_dropped\",\"cat\":\"obs\","
                  "\"ph\":\"C\",\"ts\":0,\"pid\":1,\"tid\":" << tid
               << ",\"args\":{\"dropped\":" << (head - retained) << "}}";
        }

        for (uint64_t k = head - retained; k < head; ++k) {
            const TraceEvent &e = t.ring[k % capacity_];
            comma();
            os << "{\"name\":";
            WriteJsonString(os, e.name != nullptr ? e.name : "?");
            os << ",\"cat\":";
            WriteJsonString(os,
                            e.category != nullptr ? e.category : "achilles");
            if (e.duration_us < 0) {
                os << ",\"ph\":\"i\",\"s\":\"t\"";
            } else {
                os << ",\"ph\":\"X\",\"dur\":" << e.duration_us;
            }
            os << ",\"ts\":" << e.start_us << ",\"pid\":1,\"tid\":" << tid;
            const bool has_args =
                e.num_args > 0 || e.str_arg_key != nullptr;
            if (has_args) {
                os << ",\"args\":{";
                for (uint32_t a = 0; a < e.num_args; ++a) {
                    if (a > 0)
                        os << ",";
                    WriteJsonString(os, e.arg_keys[a]);
                    os << ":" << e.arg_values[a];
                }
                if (e.str_arg_key != nullptr) {
                    if (e.num_args > 0)
                        os << ",";
                    WriteJsonString(os, e.str_arg_key);
                    os << ":";
                    WriteJsonString(os, e.str_arg_value != nullptr
                                            ? e.str_arg_value
                                            : "?");
                }
                os << "}";
            }
            os << "}";
        }
    }
    os << "\n]}\n";
}

}  // namespace obs
}  // namespace achilles
